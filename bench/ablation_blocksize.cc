// Ablation: block size of the blocked-list framework. The paper (footnote 5)
// notes 128 as the standard space/time tradeoff suggested by prior work
// [3, 42]; this bench sweeps 16/32/64/128-element blocks for two scalar
// codecs and reports space, decompression, and skewed intersection time.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "invlist/pfordelta.h"
#include "invlist/vb.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

template <typename Traits, size_t kBlockN>
void RunOne(const std::vector<uint32_t>& l1, const std::vector<uint32_t>& l2,
            uint64_t domain, int repeats, std::vector<std::string>* rows,
            std::vector<std::vector<double>>* values) {
  BlockedListCodec<Traits, kBlockN> codec;
  auto s1 = codec.Encode(l1, domain);
  auto s2 = codec.Encode(l2, domain);
  std::vector<uint32_t> out;
  // Key the metrics artifact by codec/blocksize so --metrics-out captures
  // one latency histogram per swept configuration.
  const std::string key =
      std::string(Traits::kName) + "/" + std::to_string(kBlockN);
  const double decode_ms = MeasureOpMs(
      key, obs::OpKind::kDecode, [&] { codec.Decode(*s2, &out); }, repeats);
  const double inter_ms = MeasureOpMs(
      key, obs::OpKind::kIntersect, [&] { codec.Intersect(*s1, *s2, &out); },
      repeats);
  rows->push_back(key);
  values->push_back({ToMb(s2->SizeInBytes()), decode_ms, inter_ms});
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("ablation_blocksize", flags);
  const size_t n2 = flags.GetInt("size", 2000000);
  const size_t ratio = flags.GetInt("ratio", 1000);
  const uint64_t domain = flags.GetInt("domain", kPaperDomain);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 52);

  const auto l1 = GenerateUniform(std::max<size_t>(1, n2 / ratio), domain,
                                  seed + 1);
  const auto l2 = GenerateUniform(n2, domain, seed + 2);

  std::vector<std::string> rows;
  std::vector<std::vector<double>> values;
  RunOne<VbTraits, 16>(l1, l2, domain, repeats, &rows, &values);
  RunOne<VbTraits, 32>(l1, l2, domain, repeats, &rows, &values);
  RunOne<VbTraits, 64>(l1, l2, domain, repeats, &rows, &values);
  RunOne<VbTraits, 128>(l1, l2, domain, repeats, &rows, &values);
  RunOne<PforDeltaTraits, 16>(l1, l2, domain, repeats, &rows, &values);
  RunOne<PforDeltaTraits, 32>(l1, l2, domain, repeats, &rows, &values);
  RunOne<PforDeltaTraits, 64>(l1, l2, domain, repeats, &rows, &values);
  RunOne<PforDeltaTraits, 128>(l1, l2, domain, repeats, &rows, &values);

  char title[96];
  std::snprintf(title, sizeof(title),
                "Ablation: block size (uniform, |L2| = %zu, ratio = %zu)", n2,
                ratio);
  PrintMatrix(title, {"space(MB)", "decode(ms)", "intersect(ms)"}, rows,
              values);
  PrintPaperShape(
      "smaller blocks add skip-pointer overhead but skip more precisely; "
      "larger blocks compress better but decompress more per probe — 128 is "
      "the balanced choice (paper footnote 5).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
