// Ablation: the Hybrid extension codec (paper lesson 1) against its two
// component methods across a density sweep. Hybrid should track the better
// component on both sides of the bitmap/list crossover.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("ablation_hybrid", flags);
  const uint64_t domain = flags.GetInt("domain", 1 << 24);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 53);

  const Codec* codecs[] = {FindCodec("Roaring"), FindCodec("SIMDPforDelta*"),
                           FindCodec("Hybrid")};

  std::vector<std::string> rows;
  std::vector<std::vector<double>> values;
  for (double density : {0.001, 0.01, 0.05, 0.1, 0.3, 0.5}) {
    const size_t n = static_cast<size_t>(density * domain);
    const auto l1 = GenerateUniform(n, domain, seed + 1);
    const auto l2 = GenerateUniform(n, domain, seed + 2);
    for (const Codec* codec : codecs) {
      auto s1 = codec->Encode(l1, domain);
      auto s2 = codec->Encode(l2, domain);
      std::vector<uint32_t> out;
      const double inter_ms = MeasureOpMs(
          codec->Name(), obs::OpKind::kIntersect,
          [&] { codec->Intersect(*s1, *s2, &out); }, repeats);
      const double union_ms = MeasureOpMs(
          codec->Name(), obs::OpKind::kUnion,
          [&] { codec->Union(*s1, *s2, &out); }, repeats);
      rows.push_back(std::string(codec->Name()) + "@" +
                     std::to_string(density));
      values.push_back({ToMb(s1->SizeInBytes() + s2->SizeInBytes()), inter_ms,
                        union_ms});
    }
  }
  PrintMatrix("Ablation: Hybrid vs components across density",
              {"space(MB)", "intersect(ms)", "union(ms)"}, rows, values);
  PrintPaperShape(
      "Hybrid matches SIMDPforDelta* space below the ~0.2 density threshold "
      "and Roaring speed above it — the unified method of paper lesson 1.");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
