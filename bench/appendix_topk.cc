// Appendix A.1: top-k query processing. The paper recommends Roaring for
// top-k because step 1 (intersection of the query terms' lists) dominates
// the cost [33]; this bench measures end-to-end top-10 time per codec and
// the fraction spent intersecting.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "core/topk.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("appendix_topk", flags);
  const uint64_t docs = flags.GetInt("docs", 4000000);
  const size_t k = flags.GetInt("k", 10);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 54);

  // A 3-term conjunctive query over skewed postings.
  std::vector<std::vector<uint32_t>> lists = {
      GenerateUniform(docs / 100, docs, seed + 1),
      GenerateUniform(docs / 20, docs, seed + 2),
      GenerateUniform(docs / 5, docs, seed + 3),
  };
  auto scorer = [](uint32_t doc) {
    return std::fmod(doc * 0.61803398875, 1.0);  // stand-in relevance score
  };

  std::vector<std::string> rows;
  std::vector<std::vector<double>> values;
  size_t expected = static_cast<size_t>(-1);
  std::vector<const Codec*> all(AllCodecs().begin(), AllCodecs().end());
  all.insert(all.end(), ExtensionCodecs().begin(), ExtensionCodecs().end());
  for (const Codec* codec : all) {
    EncodedLists enc = EncodeLists(*codec, lists, docs);
    auto ptrs = enc.Ptrs();
    std::vector<ScoredDoc> top;
    const double topk_ms =
        MeasureMs([&] { top = TopK(*codec, ptrs, k, scorer); }, repeats);
    std::vector<uint32_t> out;
    const double inter_ms =
        MeasureMs([&] { IntersectSets(*codec, ptrs, &out); }, repeats);
    if (expected == static_cast<size_t>(-1)) {
      expected = out.size();
    } else if (out.size() != expected) {
      std::fprintf(stderr, "CHECKSUM MISMATCH for %s\n",
                   std::string(codec->Name()).c_str());
    }
    rows.emplace_back(codec->Name());
    values.push_back({enc.space_mb, topk_ms,
                      topk_ms > 0 ? 100.0 * inter_ms / topk_ms : 0.0});
  }
  PrintMatrix("Appendix A.1: top-10 conjunctive query",
              {"space(MB)", "topk(ms)", "intersect%"}, rows, values);
  std::printf("# candidates: %zu\n", expected);
  PrintPaperShape(
      "intersection dominates top-k cost, so the intersection winner "
      "(Roaring) is the right codec for top-k workloads (paper §7.1 item 1, "
      "App. A.1).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
