// Shared helpers for the per-figure/table bench binaries.

#ifndef INTCOMP_BENCH_BENCH_COMMON_H_
#define INTCOMP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/metrics_export.h"
#include "benchutil/report.h"
#include "benchutil/timer.h"
#include "common/fast_clock.h"
#include "common/simd_intersect.h"
#include "core/codec.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/set_ops.h"
#include "obs/metrics.h"

namespace intcomp {

// Applies the shared --kernel={scalar,simd,auto} flag (default auto) to the
// process-wide kernel mode and prints the resolved selection, so every
// figure/table in a bench run is labeled with the kernels it measured.
inline KernelMode ApplyKernelFlag(Flags& flags) {
  const std::string text = flags.GetString("kernel", "auto");
  KernelMode mode;
  if (!ParseKernelMode(text, &mode)) {
    std::fprintf(stderr, "bad --kernel=%s (want scalar|simd|auto)\n",
                 text.c_str());
    std::exit(2);
  }
  SetKernelMode(mode);
  std::printf("# kernel mode: %s (SIMD kernels %s)\n",
              std::string(KernelModeName(mode)).c_str(),
              SimdKernelsAvailable() ? "available" : "not compiled in");
  return mode;
}

inline double ToMb(size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

struct EncodedLists {
  std::vector<std::unique_ptr<CompressedSet>> sets;
  double space_mb = 0;

  std::vector<const CompressedSet*> Ptrs() const {
    std::vector<const CompressedSet*> p;
    p.reserve(sets.size());
    for (const auto& s : sets) p.push_back(s.get());
    return p;
  }
};

inline EncodedLists EncodeLists(const Codec& codec,
                                const std::vector<std::vector<uint32_t>>& lists,
                                uint64_t domain) {
  EncodedLists enc;
  size_t bytes = 0;
  for (const auto& l : lists) {
    enc.sets.push_back(codec.Encode(l, domain));
    bytes += enc.sets.back()->SizeInBytes();
  }
  enc.space_mb = ToMb(bytes);
  return enc;
}

// MeasureMs twin that additionally feeds the global metrics registry when a
// bench enabled it (--metrics-out): every repeat's latency lands in the
// (codec, op) histogram and the kernel counters executed by the measured
// body are attributed to the codec. Returns the minimum wall time in ms,
// exactly like MeasureMs, so figure output is unchanged by the export.
inline double MeasureOpMs(std::string_view codec, obs::OpKind op,
                          const std::function<void()>& fn, int repeats = 3) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.Enabled()) return MeasureMs(fn, repeats);
  obs::LatencyHistogram* hist = reg.OpLatency(codec, op);
  const KernelCounters kernels_before = ThreadKernelCounters();
  double best_ms = 0;
  for (int r = 0; r < repeats; ++r) {
    const uint64_t t0 = NowNs();
    fn();
    const uint64_t ns = NowNs() - t0;
    hist->Record(ns);
    const double ms = static_cast<double>(ns) / 1e6;
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  reg.RecordKernelCounters(codec, ThreadKernelCounters() - kernels_before);
  return best_ms;
}

// Benchmarks one query (lists + plan) across every codec and prints a
// paper-style figure block. Returns the result cardinality as a sanity
// checksum (identical across codecs by construction; verified here).
inline size_t RunQueryBench(const std::string& title,
                            const std::vector<std::vector<uint32_t>>& lists,
                            const QueryPlan& plan, uint64_t domain,
                            int repeats = 3) {
  std::vector<FigureRow> rows;
  size_t expected_card = 0;
  bool first = true;
  for (const Codec* codec : AllCodecs()) {
    EncodedLists enc = EncodeLists(*codec, lists, domain);
    auto ptrs = enc.Ptrs();
    std::vector<uint32_t> result;
    const double ms = MeasureOpMs(
        codec->Name(), obs::OpKind::kQuery,
        [&] { result = EvaluatePlan(*codec, plan, ptrs); }, repeats);
    if (first) {
      expected_card = result.size();
      first = false;
    } else if (result.size() != expected_card) {
      std::fprintf(stderr, "CHECKSUM MISMATCH for %s on %s: %zu vs %zu\n",
                   std::string(codec->Name()).c_str(), title.c_str(),
                   result.size(), expected_card);
    }
    rows.push_back({std::string(codec->Name()), enc.space_mb, ms});
  }
  PrintFigureBlock(title, rows);
  std::printf("# result cardinality: %zu\n", expected_card);
  return expected_card;
}

}  // namespace intcomp

#endif  // INTCOMP_BENCH_BENCH_COMMON_H_
