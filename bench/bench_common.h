// Shared helpers for the per-figure/table bench binaries.

#ifndef INTCOMP_BENCH_BENCH_COMMON_H_
#define INTCOMP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/report.h"
#include "benchutil/timer.h"
#include "common/simd_intersect.h"
#include "core/codec.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/set_ops.h"

namespace intcomp {

// Applies the shared --kernel={scalar,simd,auto} flag (default auto) to the
// process-wide kernel mode and prints the resolved selection, so every
// figure/table in a bench run is labeled with the kernels it measured.
inline KernelMode ApplyKernelFlag(Flags& flags) {
  const std::string text = flags.GetString("kernel", "auto");
  KernelMode mode;
  if (!ParseKernelMode(text, &mode)) {
    std::fprintf(stderr, "bad --kernel=%s (want scalar|simd|auto)\n",
                 text.c_str());
    std::exit(2);
  }
  SetKernelMode(mode);
  std::printf("# kernel mode: %s (SIMD kernels %s)\n",
              std::string(KernelModeName(mode)).c_str(),
              SimdKernelsAvailable() ? "available" : "not compiled in");
  return mode;
}

inline double ToMb(size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

struct EncodedLists {
  std::vector<std::unique_ptr<CompressedSet>> sets;
  double space_mb = 0;

  std::vector<const CompressedSet*> Ptrs() const {
    std::vector<const CompressedSet*> p;
    p.reserve(sets.size());
    for (const auto& s : sets) p.push_back(s.get());
    return p;
  }
};

inline EncodedLists EncodeLists(const Codec& codec,
                                const std::vector<std::vector<uint32_t>>& lists,
                                uint64_t domain) {
  EncodedLists enc;
  size_t bytes = 0;
  for (const auto& l : lists) {
    enc.sets.push_back(codec.Encode(l, domain));
    bytes += enc.sets.back()->SizeInBytes();
  }
  enc.space_mb = ToMb(bytes);
  return enc;
}

// Benchmarks one query (lists + plan) across every codec and prints a
// paper-style figure block. Returns the result cardinality as a sanity
// checksum (identical across codecs by construction; verified here).
inline size_t RunQueryBench(const std::string& title,
                            const std::vector<std::vector<uint32_t>>& lists,
                            const QueryPlan& plan, uint64_t domain,
                            int repeats = 3) {
  std::vector<FigureRow> rows;
  size_t expected_card = 0;
  bool first = true;
  for (const Codec* codec : AllCodecs()) {
    EncodedLists enc = EncodeLists(*codec, lists, domain);
    auto ptrs = enc.Ptrs();
    std::vector<uint32_t> result;
    const double ms = MeasureMs(
        [&] { result = EvaluatePlan(*codec, plan, ptrs); }, repeats);
    if (first) {
      expected_card = result.size();
      first = false;
    } else if (result.size() != expected_card) {
      std::fprintf(stderr, "CHECKSUM MISMATCH for %s on %s: %zu vs %zu\n",
                   std::string(codec->Name()).c_str(), title.c_str(),
                   result.size(), expected_card);
    }
    rows.push_back({std::string(codec->Name()), enc.space_mb, ms});
  }
  PrintFigureBlock(title, rows);
  std::printf("# result cardinality: %zu\n", expected_card);
  return expected_card;
}

}  // namespace intcomp

#endif  // INTCOMP_BENCH_BENCH_COMMON_H_
