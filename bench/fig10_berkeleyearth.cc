// Figure 10 (Appendix C.5): Berkeleyearth intersection queries Q1/Q2
// (61.2M rows).

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  intcomp::Flags flags(argc, argv);
  intcomp::BenchMetrics metrics("fig10_berkeleyearth", flags);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  for (const auto& q :
       intcomp::MakeBerkeleyearthQueries(flags.GetInt("seed", 49))) {
    intcomp::RunQueryBench("Fig 10: Berkeleyearth " + q.name, q.lists, q.plan,
                           q.domain, repeats);
  }
  intcomp::PrintPaperShape(
      "Q1 (dense): bitmap codecs win; Q2 (sparse short vs long): "
      "inverted-list codecs win except Roaring, which is fastest overall "
      "(paper Fig. 10).");
  return 0;
}
