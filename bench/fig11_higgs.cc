// Figure 11 (Appendix C.6): Higgs intersection queries Q1/Q2 (11M rows).

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  intcomp::Flags flags(argc, argv);
  intcomp::BenchMetrics metrics("fig11_higgs", flags);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  for (const auto& q : intcomp::MakeHiggsQueries(flags.GetInt("seed", 50))) {
    intcomp::RunQueryBench("Fig 11: Higgs " + q.name, q.lists, q.plan,
                           q.domain, repeats);
  }
  intcomp::PrintPaperShape(
      "Q1 (dense): Roaring best in space and time; Q2 (both lists sparse): "
      "SIMDBP128* and SIMDPforDelta* most competitive (paper Fig. 11).");
  return 0;
}
