// Figure 12 (Appendix C.7): Kegg intersection queries Q1/Q2 (53,414 rows).

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  intcomp::Flags flags(argc, argv);
  intcomp::BenchMetrics metrics("fig12_kegg", flags);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  for (const auto& q : intcomp::MakeKeggQueries(flags.GetInt("seed", 51))) {
    intcomp::RunQueryBench("Fig 12: Kegg " + q.name, q.lists, q.plan,
                           q.domain, repeats);
  }
  intcomp::PrintPaperShape(
      "Q1 (dense): Roaring and Bitset are the top two; Q2 (sparse): "
      "SIMDBP128* and SIMDPforDelta* are the top two (paper Fig. 12).");
  return 0;
}
