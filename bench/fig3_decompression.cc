// Figure 3: decompression time and space overhead with varying list sizes,
// under the uniform, zipf, and markov distributions (domain = INTMAX).
//
// The paper sweeps |L| in {1M, 10M, 100M, 1B}; the default here is {1M} to
// keep the whole bench suite laptop-friendly — pass
// --sizes=1000000,10000000,100000000 (or more) on a bigger machine.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

std::vector<size_t> ParseSizes(const std::string& csv) {
  std::vector<size_t> sizes;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    sizes.push_back(std::stoull(csv.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return sizes;
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("fig3_decompression", flags);
  const auto sizes = ParseSizes(flags.GetString("sizes", "1000000"));
  const uint64_t domain = flags.GetInt("domain", kPaperDomain);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 42);

  struct Dist {
    const char* name;
    std::vector<uint32_t> (*make)(size_t, uint64_t, uint64_t);
  };
  const Dist dists[] = {
      {"uniform",
       [](size_t n, uint64_t d, uint64_t s) { return GenerateUniform(n, d, s); }},
      {"zipf",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateZipf(n, d, kPaperZipfSkew, s);
       }},
      {"markov",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateMarkov(n, d, kPaperMarkovClustering, s);
       }},
  };

  std::printf("Figure 3: decompression time vs space (domain = %llu)\n",
              static_cast<unsigned long long>(domain));
  for (const Dist& dist : dists) {
    for (size_t n : sizes) {
      const auto list = dist.make(n, domain, seed);
      char title[128];
      std::snprintf(title, sizeof(title), "Fig 3: decompression, %s, |L| = %zu",
                    dist.name, list.size());
      std::vector<FigureRow> rows;
      for (const Codec* codec : AllCodecs()) {
        auto set = codec->Encode(list, domain);
        std::vector<uint32_t> decoded;
        const double ms =
            MeasureOpMs(codec->Name(), obs::OpKind::kDecode,
                        [&] { codec->Decode(*set, &decoded); }, repeats);
        if (decoded.size() != list.size()) {
          std::fprintf(stderr, "DECODE MISMATCH for %s\n",
                       std::string(codec->Name()).c_str());
        }
        rows.push_back(
            {std::string(codec->Name()), ToMb(set->SizeInBytes()), ms});
      }
      PrintFigureBlock(title, rows);
    }
  }
  PrintPaperShape(
      "inverted-list codecs decompress faster and smaller than RLE bitmaps "
      "at these densities; Roaring is the best bitmap; SIMDBP128* is the "
      "fastest list codec and SIMDPforDelta* the smallest (paper Fig. 3).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
