// Figure 4: SSB queries Q1.1, Q2.1, Q3.4, Q4.1 at scale factors 1/10/100
// (paper §6.1). Default --sf=1; pass --sf=1,10 or --sf=1,10,100 on machines
// with enough memory (SF 100 builds ~600M-row predicate lists).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("fig4_ssb", flags);
  const std::string sf_csv = flags.GetString("sf", "1");
  const uint64_t seed = flags.GetInt("seed", 42);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));

  size_t pos = 0;
  while (pos < sf_csv.size()) {
    size_t comma = sf_csv.find(',', pos);
    if (comma == std::string::npos) comma = sf_csv.size();
    const int sf = std::stoi(sf_csv.substr(pos, comma - pos));
    pos = comma + 1;

    auto queries = MakeSsbQueries(sf, seed);
    for (const auto& q : queries) {
      char title[96];
      std::snprintf(title, sizeof(title), "Fig 4: SSB %s (SF = %d)",
                    q.name.c_str(), sf);
      RunQueryBench(title, q.lists, q.plan, q.domain, repeats);
    }
  }
  PrintPaperShape(
      "Q1.1/Q2.1/Q4.1 (dense lists): Roaring and Bitset are the fastest via "
      "bit-wise kernels; Q3.4 (sparse lists): SIMDPforDelta*/SIMDBP128* win "
      "and lists take less space (paper Fig. 4).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
