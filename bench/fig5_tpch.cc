// Figure 5: TPCH Q6 and Q12 variants (paper §6.2, following [5]) at scale
// factors 1/10/100. Default --sf=1.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("fig5_tpch", flags);
  const std::string sf_csv = flags.GetString("sf", "1");
  const uint64_t seed = flags.GetInt("seed", 43);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));

  size_t pos = 0;
  while (pos < sf_csv.size()) {
    size_t comma = sf_csv.find(',', pos);
    if (comma == std::string::npos) comma = sf_csv.size();
    const int sf = std::stoi(sf_csv.substr(pos, comma - pos));
    pos = comma + 1;

    auto queries = MakeTpchQueries(sf, seed);
    for (const auto& q : queries) {
      char title[96];
      std::snprintf(title, sizeof(title), "Fig 5: TPCH %s (SF = %d)",
                    q.name.c_str(), sf);
      RunQueryBench(title, q.lists, q.plan, q.domain, repeats);
    }
  }
  PrintPaperShape(
      "Q6 (dense): Roaring is fastest, even beating the uncompressed list; "
      "Q12: Roaring still fastest but costs more space than list codecs, "
      "with SIMDPforDelta* the smallest (paper Fig. 5).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
