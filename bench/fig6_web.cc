// Figure 6: Web search workload — average intersection and union time over
// a batch of conjunctive queries against Zipf-skewed postings (paper §6.3).
//
// The paper uses 41M ClueWeb12 documents and 1000 TREC queries; defaults
// here are 500K documents and 100 queries (--docs / --queries to scale up).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("fig6_web", flags);
  const uint64_t docs = flags.GetInt("docs", 500000);
  const size_t nqueries = flags.GetInt("queries", 100);
  const uint64_t seed = flags.GetInt("seed", 44);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));

  std::printf("Figure 6: Web workload, %llu docs, %zu queries\n",
              static_cast<unsigned long long>(docs), nqueries);
  const WebWorkload web = MakeWebWorkload(docs, nqueries, seed);

  std::vector<FigureRow> inter_rows, union_rows;
  size_t expected_inter = static_cast<size_t>(-1);
  size_t expected_union = static_cast<size_t>(-1);
  for (const Codec* codec : AllCodecs()) {
    EncodedLists enc = EncodeLists(*codec, web.lists, docs);
    auto ptrs = enc.Ptrs();

    std::vector<uint32_t> out;
    size_t total_inter = 0;
    const double inter_ms = MeasureMs(
        [&] {
          total_inter = 0;
          for (const auto& q : web.queries) {
            std::vector<const CompressedSet*> qsets;
            for (size_t li : q) qsets.push_back(ptrs[li]);
            IntersectSets(*codec, qsets, &out);
            total_inter += out.size();
          }
        },
        repeats);

    size_t total_union = 0;
    const double union_ms = MeasureMs(
        [&] {
          total_union = 0;
          for (const auto& q : web.queries) {
            std::vector<const CompressedSet*> qsets;
            for (size_t li : q) qsets.push_back(ptrs[li]);
            UnionSets(*codec, qsets, &out);
            total_union += out.size();
          }
        },
        repeats);

    if (expected_inter == static_cast<size_t>(-1)) {
      expected_inter = total_inter;
      expected_union = total_union;
    } else if (total_inter != expected_inter ||
               total_union != expected_union) {
      std::fprintf(stderr, "CHECKSUM MISMATCH for %s\n",
                   std::string(codec->Name()).c_str());
    }

    const double per_query = 1.0 / static_cast<double>(web.queries.size());
    inter_rows.push_back(
        {std::string(codec->Name()), enc.space_mb, inter_ms * per_query});
    union_rows.push_back(
        {std::string(codec->Name()), enc.space_mb, union_ms * per_query});
  }
  PrintFigureBlock("Fig 6a: Web, avg intersection per query", inter_rows);
  PrintFigureBlock("Fig 6b: Web, avg union per query", union_rows);
  std::printf("# total intersection hits: %zu, union size: %zu\n",
              expected_inter, expected_union);
  PrintPaperShape(
      "intersection: Roaring beats every method including the uncompressed "
      "list; union: inverted-list codecs (SIMDPforDelta*/SIMDBP128*) beat "
      "all bitmaps; lists also take less space (paper Fig. 6).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
