// Figure 7 (Appendix C.1): impact of skip pointers on intersection, for the
// five list codecs the paper picks (VB, PforDelta, SIMDPforDelta,
// SIMDPforDelta*, GroupVB). |L2|/|L1| = 1000 (paper: |L2| = 10M; default here
// 2M), uniform and zipf.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "invlist/groupvb.h"
#include "invlist/pfordelta.h"
#include "invlist/simdpfordelta.h"
#include "invlist/vb.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

struct CodecPair {
  const char* name;
  std::unique_ptr<Codec> with_skips;
  std::unique_ptr<Codec> no_skips;
};

std::vector<CodecPair> MakePairs() {
  std::vector<CodecPair> pairs;
  pairs.push_back({"VB", std::make_unique<VbCodec>(true),
                   std::make_unique<VbCodec>(false)});
  pairs.push_back({"PforDelta", std::make_unique<PforDeltaCodec>(true),
                   std::make_unique<PforDeltaCodec>(false)});
  pairs.push_back({"SIMDPforDelta",
                   std::make_unique<SimdPforDeltaCodec>(true),
                   std::make_unique<SimdPforDeltaCodec>(false)});
  pairs.push_back({"SIMDPforDelta*",
                   std::make_unique<SimdPforDeltaStarCodec>(true),
                   std::make_unique<SimdPforDeltaStarCodec>(false)});
  pairs.push_back({"GroupVB", std::make_unique<GroupVbCodec>(true),
                   std::make_unique<GroupVbCodec>(false)});
  return pairs;
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("fig7_skip_pointers", flags);
  const size_t n2 = flags.GetInt("size", 2000000);
  const size_t ratio = flags.GetInt("ratio", 1000);
  const uint64_t domain = flags.GetInt("domain", kPaperDomain);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 45);
  ApplyKernelFlag(flags);

  auto pairs = MakePairs();
  for (const char* dist : {"uniform", "zipf"}) {
    const bool zipf = std::string(dist) == "zipf";
    const size_t n1 = std::max<size_t>(1, n2 / ratio);
    auto l1 = zipf ? GenerateZipf(n1, domain, kPaperZipfSkew, seed + 1)
                   : GenerateUniform(n1, domain, seed + 1);
    auto l2 = zipf ? GenerateZipf(n2, domain, kPaperZipfSkew, seed + 2)
                   : GenerateUniform(n2, domain, seed + 2);

    std::vector<std::string> cols = {"noskip_ms", "skip_ms", "noskip_MB",
                                     "skip_MB"};
    std::vector<std::string> row_names;
    std::vector<std::vector<double>> values;
    for (const CodecPair& pair : pairs) {
      auto s1n = pair.no_skips->Encode(l1, domain);
      auto s2n = pair.no_skips->Encode(l2, domain);
      auto s1s = pair.with_skips->Encode(l1, domain);
      auto s2s = pair.with_skips->Encode(l2, domain);
      std::vector<uint32_t> out;
      // Two metric keys per codec: the skip/no-skip variants are the very
      // thing this figure contrasts, so they get separate histograms.
      const std::string noskip_key = std::string(pair.name) + "(noskip)";
      const double no_ms = MeasureOpMs(
          noskip_key, obs::OpKind::kIntersect,
          [&] { pair.no_skips->Intersect(*s1n, *s2n, &out); }, repeats);
      const size_t n_no = out.size();
      const double yes_ms = MeasureOpMs(
          pair.name, obs::OpKind::kIntersect,
          [&] { pair.with_skips->Intersect(*s1s, *s2s, &out); }, repeats);
      if (out.size() != n_no) {
        std::fprintf(stderr, "CHECKSUM MISMATCH for %s\n", pair.name);
      }
      row_names.push_back(pair.name);
      values.push_back({no_ms, yes_ms,
                        ToMb(s1n->SizeInBytes() + s2n->SizeInBytes()),
                        ToMb(s1s->SizeInBytes() + s2s->SizeInBytes())});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Fig 7: skip pointers, %s, |L2| = %zu, ratio = %zu", dist,
                  n2, ratio);
    PrintMatrix(title, cols, row_names, values);
  }
  PrintPaperShape(
      "skip pointers add <5%% space but speed intersection up dramatically "
      "(paper: 8.3x on uniform, 124x on zipf) (paper Fig. 7 / lesson 8).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
