// Figure 8 (Appendix C.3): Graph (Twitter) intersection queries Q1/Q2 over
// 52.6M vertices with the paper's exact adjacency-list sizes.

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  intcomp::Flags flags(argc, argv);
  intcomp::BenchMetrics metrics("fig8_graph", flags);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  for (const auto& q : intcomp::MakeGraphQueries(flags.GetInt("seed", 47))) {
    intcomp::RunQueryBench("Fig 8: Graph " + q.name, q.lists, q.plan,
                           q.domain, repeats);
  }
  intcomp::PrintPaperShape(
      "sparse adjacency lists: inverted-list codecs beat bitmap codecs; "
      "SIMDBP128* and SIMDPforDelta* are the most competitive (paper Fig. 8).");
  return 0;
}
