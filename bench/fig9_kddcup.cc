// Figure 9 (Appendix C.4): KDDCup intersection queries Q1/Q2 (4.9M rows).

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  intcomp::Flags flags(argc, argv);
  intcomp::BenchMetrics metrics("fig9_kddcup", flags);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  for (const auto& q : intcomp::MakeKddcupQueries(flags.GetInt("seed", 48))) {
    intcomp::RunQueryBench("Fig 9: KDDCup " + q.name, q.lists, q.plan,
                           q.domain, repeats);
  }
  intcomp::PrintPaperShape(
      "dense lists (selectivities 0.58/0.86, 0.0002/0.76): bitmap codecs "
      "beat inverted lists on both queries; Roaring is best (paper Fig. 9).");
  return 0;
}
