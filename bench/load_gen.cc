// Open-loop load generator for the TCP query front end (DESIGN.md §5.14).
//
// Replays a zipf-popular stream of plan-text queries against a self-hosted
// QueryServer over loopback, with OPEN-LOOP arrivals: request send times
// are drawn from a Poisson process at the target qps and fixed BEFORE the
// run, so a slow server cannot slow the arrival rate down. Per-request
// latency is measured from the request's SCHEDULED arrival to its
// completion — a sender that falls behind schedule charges the backlog to
// the requests that suffered it. Closed-loop clients (send, wait, send)
// hide exactly this coordinated-omission tail, which is the knee the SLO
// table in EXPERIMENTS.md exists to show.
//
//   load_gen --codec=Roaring --wire-codec=VB --size=1000000 --lists=48
//     --queries=64 --popularity-skew=1.0 --conns=8 --ops=4000
//     --qps=2000,4000,8000,16000,32000 [--cache] [--deadline-ms=N]
//     [--metrics-out=PATH]
//
// Output: one row per qps step — target vs achieved qps, outcome counts
// (ok / overloaded / deadline), and client-observed p50/p90/p99/p999.
//
// The result cache is DISABLED by default (--cache opts back in): the CI
// perf gate diffs the exported metrics against tools/perf_baseline/
// load_gen.jsonl, and its exact-match gates (sample counts, kernel totals)
// need every request to take the full evaluation path regardless of plan
// popularity. The server records one net_request latency sample per
// admitted request, so the artifact carries the server-side tail next to
// the engine.* evaluation metrics; the gate config keeps qps below the
// shedding point so sample counts stay exact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/prng.h"
#include "engine/thread_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/histogram.h"
#include "service/plan_text.h"
#include "service/sharded_index.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

// Random predicate plans over list ids (Eq / IN / range / AND-of-ORs),
// rendered to the wire grammar — the same plan shapes service_scale sweeps.
std::vector<std::string> MakePlanTexts(size_t count, size_t lists, Prng* rng) {
  std::vector<std::string> plans;
  plans.reserve(count);
  const auto leaf = [&] { return QueryPlan::Leaf(rng->NextBounded(lists)); };
  const auto some_or = [&](size_t max_terms) {
    std::vector<QueryPlan> kids;
    const size_t terms = 1 + rng->NextBounded(max_terms);
    for (size_t i = 0; i < terms; ++i) kids.push_back(leaf());
    return kids.size() == 1 ? kids[0] : QueryPlan::Or(std::move(kids));
  };
  for (size_t q = 0; q < count; ++q) {
    QueryPlan plan;
    switch (rng->NextBounded(4)) {
      case 0:
        plan = leaf();
        break;
      case 1:
        plan = some_or(4);
        break;
      case 2: {
        const size_t lo = rng->NextBounded(lists);
        const size_t hi = std::min<size_t>(lists - 1, lo + rng->NextBounded(4));
        std::vector<QueryPlan> kids;
        for (size_t c = lo; c <= hi; ++c) kids.push_back(QueryPlan::Leaf(c));
        plan = kids.size() == 1 ? kids[0] : QueryPlan::Or(std::move(kids));
        break;
      }
      default:
        plan = QueryPlan::And({some_or(3), some_or(3)});
    }
    plans.push_back(PlanToText(plan));
  }
  return plans;
}

// Zipf sampler over plan ranks: P(rank r) ∝ 1/(r+1)^skew.
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double skew) : cdf_(n) {
    double total = 0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  size_t Pick(Prng* rng) const {
    const double u = rng->NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

struct StepResult {
  uint64_t ok = 0, overloaded = 0, deadline = 0, other = 0;
  double achieved_qps = 0;
  uint64_t p50 = 0, p90 = 0, p99 = 0, p999 = 0;
};

std::vector<uint64_t> ParseQpsList(const std::string& csv) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const uint64_t v =
        std::strtoull(csv.substr(pos, comma - pos).c_str(), nullptr, 10);
    if (v == 0) {
      std::fprintf(stderr, "bad --qps entry in '%s'\n", csv.c_str());
      std::exit(2);
    }
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

// One open-loop step: `ops` requests at Poisson arrivals averaging `qps`,
// spread over `conns` connections. The (request index -> plan, arrival
// time) schedule is fully precomputed from the seed, so two runs of the
// same flags issue byte-identical request streams in the same order.
StepResult RunStep(const std::string& host, uint16_t port, uint64_t qps,
                   size_t ops, size_t conns,
                   const std::vector<std::string>& plans,
                   const ZipfPicker& zipf, uint64_t deadline_ns,
                   uint64_t seed) {
  Prng rng(seed);
  std::vector<uint64_t> arrival_ns(ops);
  std::vector<uint32_t> plan_of(ops);
  double t = 0;
  for (size_t i = 0; i < ops; ++i) {
    // Exponential inter-arrival with mean 1/qps seconds.
    const double u = rng.NextDouble();
    t += -std::log(1.0 - u) / static_cast<double>(qps);
    arrival_ns[i] = static_cast<uint64_t>(t * 1e9);
    plan_of[i] = static_cast<uint32_t>(zipf.Pick(&rng));
  }

  obs::LatencyHistogram latency;
  StepResult result;
  std::atomic<size_t> next_op{0};
  std::atomic<uint64_t> ok{0}, overloaded{0}, deadline{0}, other{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t c = 0; c < conns; ++c) {
    workers.emplace_back([&] {
      net::QueryClient client;
      if (!client.Connect(host, port).ok()) {
        other.fetch_add(1);
        return;
      }
      std::vector<uint32_t> rows;
      while (true) {
        const size_t i = next_op.fetch_add(1, std::memory_order_relaxed);
        if (i >= ops) break;
        const auto scheduled =
            start + std::chrono::nanoseconds(arrival_ns[i]);
        std::this_thread::sleep_until(scheduled);  // no-op when behind
        const Status st =
            client.Query(plans[plan_of[i]], deadline_ns, &rows);
        const auto done = std::chrono::steady_clock::now();
        // Open-loop latency: completion minus SCHEDULED arrival. A late
        // send (all conns busy = backlog) counts against latency.
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                                 scheduled)
                .count());
        if (st.ok()) {
          ok.fetch_add(1);
          latency.Record(ns);
        } else if (st.code() == StatusCode::kOverloaded) {
          overloaded.fetch_add(1);
        } else if (st.code() == StatusCode::kDeadlineExceeded) {
          deadline.fetch_add(1);
        } else {
          other.fetch_add(1);
          if (!client.Connected() && !client.Connect(host, port).ok()) break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  result.ok = ok.load();
  result.overloaded = overloaded.load();
  result.deadline = deadline.load();
  result.other = other.load();
  result.achieved_qps =
      elapsed_s > 0 ? static_cast<double>(ops) / elapsed_s : 0;
  result.p50 = latency.P50();
  result.p90 = latency.P90();
  result.p99 = latency.P99();
  result.p999 = latency.P999();
  return result;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("load_gen", flags);
  ApplyKernelFlag(flags);

  const std::string codec_name = flags.GetString("codec", "Roaring");
  const Codec* codec = FindCodec(codec_name);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown --codec=%s\n", codec_name.c_str());
    return 2;
  }
  const uint64_t num_rows =
      static_cast<uint64_t>(flags.GetInt("size", 1000000));
  const size_t num_lists = static_cast<size_t>(flags.GetInt("lists", 48));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 64));
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 4));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  const size_t conns = static_cast<size_t>(flags.GetInt("conns", 8));
  const size_t ops = static_cast<size_t>(flags.GetInt("ops", 4000));
  const double skew = flags.GetDouble("popularity-skew", 1.0);
  const uint64_t deadline_ns =
      static_cast<uint64_t>(flags.GetInt("deadline-ms", 0)) * 1000000ull;
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 77));
  const bool cache = flags.GetBool("cache", false);
  const std::vector<uint64_t> qps_list =
      ParseQpsList(flags.GetString("qps", "2000,4000,8000,16000,32000"));

  // Index: zipf-drawn posting lists of mixed density over [0, num_rows).
  Prng rng(seed);
  std::vector<std::vector<uint32_t>> lists;
  lists.reserve(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    const size_t n =
        1 + static_cast<size_t>(
                static_cast<double>(num_rows) /
                (3.0 + static_cast<double>(rng.NextBounded(40))));
    switch (l % 3) {
      case 0:
        lists.push_back(GenerateUniform(n, num_rows, seed + 100 + l));
        break;
      case 1:
        lists.push_back(
            GenerateZipf(n, num_rows, kPaperZipfSkew, seed + 100 + l));
        break;
      default:
        lists.push_back(GenerateMarkov(n, num_rows, kPaperMarkovClustering,
                                       seed + 100 + l));
    }
  }

  ThreadPool pool(threads);
  const ShardedIndex index = ShardedIndex::Build(*codec, lists, num_rows, shards);
  IndexServiceOptions service_options;
  service_options.cache_enabled = cache;
  IndexService service(&index, &pool, service_options);

  net::ServerOptions server_options;
  server_options.wire_codec = flags.GetString("wire-codec", "VB");
  server_options.max_in_flight =
      static_cast<size_t>(flags.GetInt("max-in-flight", 256));
  net::QueryServer server(&service, server_options);
  {
    const Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const std::vector<std::string> plans =
      MakePlanTexts(num_queries, num_lists, &rng);
  const ZipfPicker zipf(num_queries, skew);

  std::printf(
      "# load_gen codec=%s wire=%s rows=%llu lists=%zu plans=%zu shards=%zu "
      "pool=%zu conns=%zu ops/step=%zu skew=%.2f cache=%s\n",
      codec_name.c_str(), server_options.wire_codec.c_str(),
      static_cast<unsigned long long>(num_rows), num_lists, plans.size(),
      shards, threads, conns, ops, skew, cache ? "on" : "off");
  std::printf("%10s %10s %8s %6s %6s %9s %9s %9s %9s\n", "qps_target",
              "qps_ach", "ok", "shed", "dl", "p50_us", "p90_us", "p99_us",
              "p999_us");

  // Warmup: touch every plan once so first-decode effects (page faults,
  // lazy materialization) don't land in the first step's tail.
  {
    net::QueryClient warm;
    if (warm.Connect("127.0.0.1", server.port()).ok()) {
      std::vector<uint32_t> rows;
      for (const std::string& p : plans) (void)warm.Query(p, 0, &rows);
    }
  }

  for (size_t s = 0; s < qps_list.size(); ++s) {
    const StepResult r =
        RunStep("127.0.0.1", server.port(), qps_list[s], ops, conns, plans,
                zipf, deadline_ns, seed + 1000 + s);
    std::printf(
        "%10llu %10.0f %8llu %6llu %6llu %9.1f %9.1f %9.1f %9.1f\n",
        static_cast<unsigned long long>(qps_list[s]), r.achieved_qps,
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.overloaded),
        static_cast<unsigned long long>(r.deadline),
        static_cast<double>(r.p50) / 1e3, static_cast<double>(r.p90) / 1e3,
        static_cast<double>(r.p99) / 1e3, static_cast<double>(r.p999) / 1e3);
    std::fflush(stdout);
  }

  server.Stop();
  return 0;
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) { return intcomp::Main(argc, argv); }
