// google-benchmark micro suite for the hot kernels: scalar vs SIMD bit
// packing, SIMD prefix sum, per-codec encode/decode throughput, and the
// Roaring container kernels. These are the ablation benches for the design
// choices in DESIGN.md §5.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/bitpack.h"
#include "common/bits.h"
#include "common/prng.h"
#include "common/simdpack.h"
#include "common/simdpack256.h"
#include "core/registry.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void FillRandom(uint32_t* out, size_t n, int bits, uint64_t seed) {
  Prng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>(rng.Next()) & LowMask32(bits);
  }
}

void BM_ScalarPack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128];
  FillRandom(in, 128, b, 1);
  for (auto _ : state) {
    PackBits(in, 128, b, packed);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ScalarPack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_ScalarUnpack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128], out[128];
  FillRandom(in, 128, b, 2);
  PackBits(in, 128, b, packed);
  for (auto _ : state) {
    UnpackBits(packed, 128, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ScalarUnpack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SimdPack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128];
  FillRandom(in, 128, b, 3);
  for (auto _ : state) {
    SimdPack128(in, b, packed);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimdPack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SimdUnpack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128], out[128];
  FillRandom(in, 128, b, 4);
  SimdPack128(in, b, packed);
  for (auto _ : state) {
    SimdUnpack128(packed, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimdUnpack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_Simd256Pack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[132];
  FillRandom(in, 128, b, 9);
  for (auto _ : state) {
    Simd256Pack128(in, b, packed);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Simd256Pack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_Simd256Unpack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[132], out[128];
  FillRandom(in, 128, b, 10);
  Simd256Pack128(in, b, packed);
  for (auto _ : state) {
    Simd256Unpack128(packed, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Simd256Unpack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SimdPrefixSum128(benchmark::State& state) {
  uint32_t buf[128];
  FillRandom(buf, 128, 8, 5);
  for (auto _ : state) {
    uint32_t tmp[128];
    std::copy(buf, buf + 128, tmp);
    SimdPrefixSum128(tmp, 0);
    benchmark::DoNotOptimize(tmp);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimdPrefixSum128);

void BM_ScalarPrefixSum128(benchmark::State& state) {
  uint32_t buf[128];
  FillRandom(buf, 128, 8, 6);
  for (auto _ : state) {
    uint32_t tmp[128];
    std::copy(buf, buf + 128, tmp);
    ScalarPrefixSum(tmp, 128, 0);
    benchmark::DoNotOptimize(tmp);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ScalarPrefixSum128);

// Per-codec encode/decode throughput on a 100K uniform list.
void BM_CodecEncode(benchmark::State& state) {
  const Codec* codec = AllCodecs()[state.range(0)];
  state.SetLabel(std::string(codec->Name()));
  const auto list = GenerateUniform(100000, 1 << 27, 7);
  for (auto _ : state) {
    auto set = codec->Encode(list, 1 << 27);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * list.size());
}
BENCHMARK(BM_CodecEncode)->DenseRange(0, 23);

void BM_CodecDecode(benchmark::State& state) {
  const Codec* codec = AllCodecs()[state.range(0)];
  state.SetLabel(std::string(codec->Name()));
  const auto list = GenerateUniform(100000, 1 << 27, 8);
  auto set = codec->Encode(list, 1 << 27);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    codec->Decode(*set, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * list.size());
}
BENCHMARK(BM_CodecDecode)->DenseRange(0, 23);

}  // namespace
}  // namespace intcomp

BENCHMARK_MAIN();
