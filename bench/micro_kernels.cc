// google-benchmark micro suite for the hot kernels: scalar vs SIMD bit
// packing, SIMD prefix sum, per-codec encode/decode throughput, and the
// Roaring container kernels. These are the ablation benches for the design
// choices in DESIGN.md §5.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/metrics_export.h"
#include "common/bitpack.h"
#include "common/bits.h"
#include "common/fast_clock.h"
#include "common/prng.h"
#include "common/simd_intersect.h"
#include "common/simdpack.h"
#include "common/simdpack256.h"
#include "core/registry.h"
#include "obs/metrics.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void FillRandom(uint32_t* out, size_t n, int bits, uint64_t seed) {
  Prng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>(rng.Next()) & LowMask32(bits);
  }
}

void BM_ScalarPack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128];
  FillRandom(in, 128, b, 1);
  for (auto _ : state) {
    PackBits(in, 128, b, packed);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ScalarPack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_ScalarUnpack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128], out[128];
  FillRandom(in, 128, b, 2);
  PackBits(in, 128, b, packed);
  for (auto _ : state) {
    UnpackBits(packed, 128, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ScalarUnpack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SimdPack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128];
  FillRandom(in, 128, b, 3);
  for (auto _ : state) {
    SimdPack128(in, b, packed);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimdPack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SimdUnpack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[128], out[128];
  FillRandom(in, 128, b, 4);
  SimdPack128(in, b, packed);
  for (auto _ : state) {
    SimdUnpack128(packed, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimdUnpack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_Simd256Pack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[132];
  FillRandom(in, 128, b, 9);
  for (auto _ : state) {
    Simd256Pack128(in, b, packed);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Simd256Pack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_Simd256Unpack128(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  uint32_t in[128], packed[132], out[128];
  FillRandom(in, 128, b, 10);
  Simd256Pack128(in, b, packed);
  for (auto _ : state) {
    Simd256Unpack128(packed, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Simd256Unpack128)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SimdPrefixSum128(benchmark::State& state) {
  uint32_t buf[128];
  FillRandom(buf, 128, 8, 5);
  for (auto _ : state) {
    uint32_t tmp[128];
    std::copy(buf, buf + 128, tmp);
    SimdPrefixSum128(tmp, 0);
    benchmark::DoNotOptimize(tmp);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SimdPrefixSum128);

void BM_ScalarPrefixSum128(benchmark::State& state) {
  uint32_t buf[128];
  FillRandom(buf, 128, 8, 6);
  for (auto _ : state) {
    uint32_t tmp[128];
    std::copy(buf, buf + 128, tmp);
    ScalarPrefixSum(tmp, 128, 0);
    benchmark::DoNotOptimize(tmp);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ScalarPrefixSum128);

// Per-codec encode/decode throughput on a 100K uniform list.
void BM_CodecEncode(benchmark::State& state) {
  const Codec* codec = AllCodecs()[state.range(0)];
  state.SetLabel(std::string(codec->Name()));
  const auto list = GenerateUniform(100000, 1 << 27, 7);
  for (auto _ : state) {
    auto set = codec->Encode(list, 1 << 27);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * list.size());
}
BENCHMARK(BM_CodecEncode)->DenseRange(0, 23);

void BM_CodecDecode(benchmark::State& state) {
  const Codec* codec = AllCodecs()[state.range(0)];
  state.SetLabel(std::string(codec->Name()));
  const auto list = GenerateUniform(100000, 1 << 27, 8);
  auto set = codec->Encode(list, 1 << 27);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    codec->Decode(*set, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * list.size());
}
BENCHMARK(BM_CodecDecode)->DenseRange(0, 23);

// Supplementary instrumented sweep for the metrics artifact: one
// intersect + decode measurement per codec on a fixed seeded workload,
// recorded into the global registry. Runs only under --metrics-out; the
// google-benchmark suite above stays byte-for-byte unaffected.
void RunMetricsSweep() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  constexpr size_t kN = 20000;
  constexpr uint64_t kDomain = 1 << 24;
  // Round-robin over the codecs instead of draining one codec at a time:
  // every codec's samples then span the whole sweep, so slow machine drift
  // (frequency scaling, noisy neighbours) shifts all keys together and the
  // calibrated gate in tools/perf_check.py can cancel it. Enough total
  // samples that p99 is a real order statistic, not the max.
  constexpr int kRounds = 250;
  constexpr int kPerRound = 4;
  const auto l1 = GenerateUniform(kN / 8, kDomain, 11);
  const auto l2 = GenerateUniform(kN, kDomain, 12);
  const auto& codecs = AllCodecs();
  struct SweepState {
    std::unique_ptr<CompressedSet> s1, s2;
    obs::LatencyHistogram* hi = nullptr;
    obs::LatencyHistogram* hd = nullptr;
    KernelCounters kernels;
  };
  std::vector<SweepState> states(codecs.size());
  for (size_t c = 0; c < codecs.size(); ++c) {
    states[c].s1 = codecs[c]->Encode(l1, kDomain);
    states[c].s2 = codecs[c]->Encode(l2, kDomain);
    states[c].hi = reg.OpLatency(codecs[c]->Name(), obs::OpKind::kIntersect);
    states[c].hd = reg.OpLatency(codecs[c]->Name(), obs::OpKind::kDecode);
  }
  std::vector<uint32_t> out;
  for (int round = 0; round < kRounds; ++round) {
    for (size_t c = 0; c < codecs.size(); ++c) {
      SweepState& st = states[c];
      const KernelCounters before = ThreadKernelCounters();
      for (int r = 0; r < kPerRound; ++r) {
        const uint64_t t0 = NowNs();
        codecs[c]->Intersect(*st.s1, *st.s2, &out);
        st.hi->Record(NowNs() - t0);
      }
      for (int r = 0; r < kPerRound; ++r) {
        const uint64_t t0 = NowNs();
        codecs[c]->Decode(*st.s2, &out);
        st.hd->Record(NowNs() - t0);
      }
      st.kernels += ThreadKernelCounters() - before;
    }
  }
  for (size_t c = 0; c < codecs.size(); ++c) {
    reg.RecordKernelCounters(codecs[c]->Name(), states[c].kernels);
  }
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  // google-benchmark aborts on flags it doesn't know, so split off the
  // shared metrics/trace flags before handing argv over.
  std::vector<char*> bench_argv;
  std::vector<char*> metrics_argv;
  bench_argv.push_back(argv[0]);
  metrics_argv.push_back(argv[0]);
  const char* kOurs[] = {"--metrics-out", "--metrics-format",
                         "--trace-sample", "--trace-seed"};
  for (int i = 1; i < argc; ++i) {
    bool ours = false;
    for (const char* prefix : kOurs) {
      const size_t len = std::strlen(prefix);
      if (std::strncmp(argv[i], prefix, len) == 0 &&
          (argv[i][len] == '\0' || argv[i][len] == '=')) {
        ours = true;
        break;
      }
    }
    (ours ? metrics_argv : bench_argv).push_back(argv[i]);
  }
  intcomp::Flags flags(static_cast<int>(metrics_argv.size()),
                       metrics_argv.data());
  intcomp::BenchMetrics metrics("micro_kernels", flags);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (metrics.enabled()) intcomp::RunMetricsSweep();
  return 0;
}
