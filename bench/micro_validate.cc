// Validation-overhead microbench: trusted Deserialize vs. checked
// DeserializeChecked, per codec, over many serialized lists. Reported as
// ns/list for both paths plus the checked/trusted ratio — the price of
// admitting untrusted byte images (EXPERIMENTS.md "validation overhead").
//
//   --lists=N     lists per codec           (default 200)
//   --size=N     values per list            (default 4000)
//   --domain=N   value domain               (default 2^20)
//   --repeats=N  timed repetitions, min-of  (default 3)
//   --dist=s     uniform | zipf | markov    (default uniform)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("micro_validate", flags);
  const size_t nlists = flags.GetInt("lists", 200);
  const size_t size = flags.GetInt("size", 4000);
  const uint64_t domain = flags.GetInt("domain", 1 << 20);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const std::string dist = flags.GetString("dist", "uniform");
  const uint64_t seed = flags.GetInt("seed", 77);
  if (dist != "uniform" && dist != "zipf" && dist != "markov") {
    std::fprintf(stderr, "--dist: unknown distribution '%s' (want uniform|zipf|markov)\n",
                 dist.c_str());
    std::exit(1);
  }

  std::vector<std::vector<uint32_t>> lists;
  lists.reserve(nlists);
  for (size_t i = 0; i < nlists; ++i) {
    if (dist == "zipf") {
      lists.push_back(GenerateZipf(size, domain, kPaperZipfSkew, seed + i));
    } else if (dist == "markov") {
      lists.push_back(
          GenerateMarkov(size, domain, kPaperMarkovClustering, seed + i));
    } else {
      lists.push_back(GenerateUniform(size, domain, seed + i));
    }
  }

  std::printf(
      "Validation overhead: Deserialize vs DeserializeChecked "
      "(%zu %s lists x %zu values, domain 2^%d)\n",
      nlists, dist.c_str(), size, [&] {
        int b = 0;
        while ((uint64_t{1} << b) < domain) ++b;
        return b;
      }());
  std::printf("%-16s %14s %14s %8s\n", "codec", "trusted ns/l", "checked ns/l",
              "ratio");

  std::vector<const Codec*> codecs(AllCodecs().begin(), AllCodecs().end());
  for (const Codec* c : ExtensionCodecs()) codecs.push_back(c);
  for (const Codec* codec : codecs) {
    std::vector<std::vector<uint8_t>> images;
    images.reserve(nlists);
    for (const auto& l : lists) {
      auto set = codec->Encode(l, domain);
      std::vector<uint8_t> image;
      codec->Serialize(*set, &image);
      images.push_back(std::move(image));
    }

    size_t sink = 0;  // defeat dead-code elimination across repeats
    const double trusted_ms = MeasureMs(
        [&] {
          for (const auto& image : images) {
            auto set = codec->Deserialize(image.data(), image.size());
            sink += set->Cardinality();
          }
        },
        repeats);
    const double checked_ms = MeasureMs(
        [&] {
          for (const auto& image : images) {
            auto r = codec->DeserializeChecked(image, domain);
            if (!r.ok()) {
              std::fprintf(stderr, "BUG: genuine image rejected for %s: %s\n",
                           std::string(codec->Name()).c_str(),
                           r.status().ToString().c_str());
              std::exit(1);
            }
            sink += (*r)->Cardinality();
          }
        },
        repeats);

    const double trusted_ns = trusted_ms * 1e6 / static_cast<double>(nlists);
    const double checked_ns = checked_ms * 1e6 / static_cast<double>(nlists);
    std::printf("%-16s %14.0f %14.0f %7.2fx%s\n",
                std::string(codec->Name()).c_str(), trusted_ns, checked_ns,
                trusted_ns > 0 ? checked_ns / trusted_ns : 0.0,
                sink == 0 ? " " : "");  // sink keeps the loops live
  }
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
