// Observability overhead microbench (the PR's acceptance gate).
//
// Table 1: per-codec intersection latency under four observability
// configurations — off, tracing sampled at 1/64, tracing at 1/1, metrics
// registry on — interleaved round-robin so drift hits every config equally,
// median over rounds, with relative overhead vs. the off column.
//
// Table 2: whole-service query latency with the EXPLAIN capture off vs. on
// (obs/explain.h): the off column is the production path — its only cost is
// one relaxed load per instrumentation site — while the on column pays a
// mutex-protected event append per decision for the one query that asked.
//
// Table 3: the disabled-path primitive costs measured directly (ns per
// TRACE_SPAN with tracing off, ns per ScopedOpTimer with metrics off),
// i.e. the per-callsite price of having the subsystem compiled in.
//
// --max-unsampled-overhead=PCT turns the "trace on, unsampled" column into a
// self-gate: exit 1 when its mean overhead exceeds PCT percent. CI runs this
// to pin the cost of leaving tracing enabled in production without sampling
// anything.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "common/fast_clock.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/sharded_index.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

struct ObsConfig {
  const char* name;
  uint32_t trace_period;
  bool metrics;
};

void Apply(const ObsConfig& cfg) {
  obs::MetricsRegistry::Global().SetEnabled(cfg.metrics);
  obs::SetTraceSampling(cfg.trace_period);
}

double MedianMs(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("obs_overhead", flags);
  const size_t n2 = static_cast<size_t>(flags.GetInt("size", 100000));
  const size_t ratio = static_cast<size_t>(flags.GetInt("ratio", 100));
  const int rounds = static_cast<int>(flags.GetInt("repeats", 7));
  const uint64_t domain = flags.GetInt("domain", 1 << 24);
  const uint64_t seed = flags.GetInt("seed", 7);
  ApplyKernelFlag(flags);
  obs::SetTraceSeed(42);

  const ObsConfig configs[] = {
      {"off", 0, false},
      // Tracing enabled but the period is so long nothing ever samples:
      // every root pays the sampling check and nothing else. This is the
      // "leave it on in production" configuration the CI gate pins.
      {"unsampled", 1u << 20, false},
      {"trace 1/64", 64, false},
      {"trace 1/1", 1, false},
      {"metrics on", 0, true},
  };
  constexpr int kNumConfigs = 5;
  constexpr int kUnsampled = 1;

  const auto l1 = GenerateUniform(std::max<size_t>(1, n2 / ratio), domain,
                                  seed + 1);
  const auto l2 = GenerateUniform(n2, domain, seed + 2);

  std::printf(
      "obs_overhead: intersection latency vs observability config\n"
      "|L2| = %zu, |L2|/|L1| = %zu, median of %d interleaved rounds\n\n",
      n2, ratio, rounds);
  std::printf("%-16s %12s", "codec", "off(ms)");
  for (int k = 1; k < kNumConfigs; ++k) {
    std::printf(" %12s %8s", configs[k].name, "ovh");
  }
  std::printf("\n");

  // One encoded pair per codec, reused across configs and rounds.
  struct PerCodec {
    const Codec* codec;
    std::unique_ptr<CompressedSet> s1, s2;
    std::vector<double> ms[kNumConfigs];
  };
  std::vector<PerCodec> rows;
  for (const Codec* codec : AllCodecs()) {
    PerCodec pc;
    pc.codec = codec;
    pc.s1 = codec->Encode(l1, domain);
    pc.s2 = codec->Encode(l2, domain);
    rows.push_back(std::move(pc));
  }

  std::vector<uint32_t> out;
  // Round -1 is an unrecorded warmup (first sampled span allocates the
  // thread's ring; decode buffers warm up).
  for (int r = -1; r < rounds; ++r) {
    for (PerCodec& pc : rows) {
      // Unmeasured warm-up touch: whichever config runs first would
      // otherwise pay the cache-cold cost of switching to this codec's
      // data. Rotating the starting config per round spreads whatever
      // first-position penalty remains evenly across all four configs.
      pc.codec->Intersect(*pc.s1, *pc.s2, &out);
      for (int j = 0; j < kNumConfigs; ++j) {
        const int k = (j + (r < 0 ? 0 : r)) % kNumConfigs;
        Apply(configs[k]);
        const uint64_t t0 = NowNs();
        pc.codec->Intersect(*pc.s1, *pc.s2, &out);
        const uint64_t ns = NowNs() - t0;
        if (r >= 0) pc.ms[k].push_back(static_cast<double>(ns) / 1e6);
      }
    }
  }
  Apply(configs[0]);

  std::vector<double> ovhs[kNumConfigs];
  for (PerCodec& pc : rows) {
    const double base = MedianMs(pc.ms[0]);
    std::printf("%-16s %12.3f", std::string(pc.codec->Name()).c_str(), base);
    for (int k = 1; k < kNumConfigs; ++k) {
      const double m = MedianMs(pc.ms[k]);
      const double ovh = base > 0 ? (m / base - 1.0) * 100.0 : 0.0;
      ovhs[k].push_back(ovh);
      std::printf(" %12.3f %+7.2f%%", m, ovh);
    }
    std::printf("\n");
  }
  // Median across codecs, not mean: one codec catching a frequency ramp or a
  // cold page can swing its own ratio by tens of percent, which would move a
  // mean by several points against a 2% gate budget.
  std::printf("%-16s %12s", "median overhead", "");
  double ovh_med[kNumConfigs] = {};
  for (int k = 1; k < kNumConfigs; ++k) {
    std::vector<double> sorted = ovhs[k];
    std::sort(sorted.begin(), sorted.end());
    ovh_med[k] = sorted[sorted.size() / 2];
    std::printf(" %12s %+7.2f%%", "", ovh_med[k]);
  }
  std::printf("\n\n");

  // EXPLAIN capture off vs. on across a whole service query (cache off so
  // every run evaluates; fan-out over 2 shards on 2 workers).
  std::vector<double> q_off_ms, q_on_ms;
  {
    const Codec* planner = FindCodec("Planner");
    std::vector<std::vector<uint32_t>> lists;
    lists.push_back(GenerateUniform(domain / 3 > 20000 ? 20000 : domain / 3,
                                    1 << 16, seed + 11));
    lists.push_back(GenerateUniform(200, 1 << 16, seed + 12));
    lists.push_back(GenerateMarkov(8000, 1 << 16, 64.0, seed + 13));
    const ShardedIndex index =
        ShardedIndex::Build(*planner, lists, 1 << 16, 2);
    ThreadPool pool(2);
    IndexServiceOptions opts;
    opts.cache_enabled = false;
    IndexService service(&index, &pool, opts);
    const QueryPlan plan =
        QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1),
                        QueryPlan::Leaf(2)});
    std::vector<uint32_t> qout;
    obs::QueryExplain explain;
    for (int r = -1; r < rounds; ++r) {
      service.Query(plan, &qout);  // warm-up touch, unmeasured
      uint64_t t0 = NowNs();
      service.Query(plan, &qout);
      const uint64_t off_ns = NowNs() - t0;
      t0 = NowNs();
      service.Query(plan, &qout, &explain);
      const uint64_t on_ns = NowNs() - t0;
      if (r >= 0) {
        q_off_ms.push_back(static_cast<double>(off_ns) / 1e6);
        q_on_ms.push_back(static_cast<double>(on_ns) / 1e6);
      }
    }
    size_t nodes = 0;
    if (explain.ok) {
      const auto count = [](const auto& self,
                            const obs::ExplainNode& n) -> size_t {
        size_t total = 1;
        for (const obs::ExplainNode& c : n.children) total += self(self, c);
        return total;
      };
      nodes = count(count, explain.root);
    }
    const double off_med = MedianMs(q_off_ms);
    const double on_med = MedianMs(q_on_ms);
    std::printf(
        "service query (Planner, 3-leaf AND, 2 shards): explain off %.3f ms, "
        "explain on %.3f ms (%+.2f%%, %zu explain nodes)\n\n",
        off_med, on_med,
        off_med > 0 ? (on_med / off_med - 1.0) * 100.0 : 0.0, nodes);
  }

  // Disabled-path primitive costs: what every instrumented callsite pays
  // when the subsystem is compiled in but turned off.
  {
    obs::SetTraceSampling(0);
    obs::MetricsRegistry::Global().SetEnabled(false);
    constexpr int kIters = 20000000;
    uint64_t t0 = NowNs();
    for (int i = 0; i < kIters; ++i) {
      TRACE_SPAN("obs_overhead_probe");
    }
    const double span_ns = static_cast<double>(NowNs() - t0) / kIters;
    t0 = NowNs();
    for (int i = 0; i < kIters; ++i) {
      obs::ScopedOpTimer timer("obs_overhead_probe", obs::OpKind::kIntersect);
    }
    const double timer_ns = static_cast<double>(NowNs() - t0) / kIters;
    std::printf(
        "disabled-path primitives: TRACE_SPAN %.2f ns/site, "
        "ScopedOpTimer %.2f ns/site\n",
        span_ns, timer_ns);
  }

  if (metrics.enabled()) {
    // This bench drives the registry's enabled flag itself, so nothing
    // accumulated during the rounds; publish the off-config samples as the
    // artifact so run_benches.sh --metrics-dir gets a validating file.
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.SetEnabled(true);
    for (const PerCodec& pc : rows) {
      for (double ms : pc.ms[0]) {
        reg.RecordOpLatency(pc.codec->Name(), obs::OpKind::kIntersect,
                            static_cast<uint64_t>(ms * 1e6));
      }
    }
    for (double ms : q_off_ms) {
      reg.RecordOpLatency("Planner", obs::OpKind::kServiceQuery,
                          static_cast<uint64_t>(ms * 1e6));
    }
  }

  // Self-gate: fail loudly when leaving tracing enabled-but-unsampled costs
  // more than the budget. Median across codecs — per-codec ratios wobble a
  // few percent on shared runners and a single outlier can move a mean by
  // several points; the cross-codec median does not.
  const double max_unsampled = flags.GetDouble("max-unsampled-overhead", 0.0);
  if (max_unsampled > 0.0) {
    if (ovh_med[kUnsampled] > max_unsampled) {
      std::fprintf(stderr,
                   "FAIL: enabled-but-unsampled tracing overhead %.2f%% "
                   "exceeds --max-unsampled-overhead=%.2f%%\n",
                   ovh_med[kUnsampled], max_unsampled);
      std::exit(1);
    }
    std::printf("unsampled-overhead gate: %.2f%% <= %.2f%% budget\n",
                ovh_med[kUnsampled], max_unsampled);
  }
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
