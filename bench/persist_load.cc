// Cold-load strategies for a persisted sharded index: rebuild the index
// from its raw postings vs. mmap a container file (src/storage) with eager
// or lazy validation. Reports, per codec: container size, each strategy's
// load time, and the time-to-first-result (load + one AND query), plus the
// zero-copy share of materialized payloads.
//
//   persist_load --codecs=WAH,Roaring,List --size=1000000 --lists=12 \
//     --shards=8 --repeats=3 [--metrics-out=PATH]
//
// The open timings land in the (codec, storage_open) histograms and the
// first-query timings in (codec, service_query), so the CI perf gate can
// hold the cold-load latency profile against tools/perf_baseline/.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "engine/thread_pool.h"
#include "service/sharded_index.h"
#include "storage/index_writer.h"
#include "storage/mapped_index.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

using storage::MappedIndex;
using storage::MappedIndexOptions;
using storage::ValidateMode;

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

double OpenMs(const std::string& path, ValidateMode mode,
              std::string_view codec, int repeats) {
  MappedIndexOptions options;
  options.validate = mode;
  return MeasureOpMs(codec, obs::OpKind::kStorageOpen,
                     [&] {
                       auto mapped = MappedIndex::Open(path, options);
                       if (!mapped.ok()) {
                         std::fprintf(stderr, "open failed: %s\n",
                                      mapped.status().ToString().c_str());
                         std::exit(1);
                       }
                     },
                     repeats);
}

// Load (or rebuild) + one AND query: the cold-start metric a serving
// process restart actually pays.
double TimeToFirstResultMs(const std::function<const IndexSnapshot*()>& load,
                           const QueryPlan& plan, std::string_view codec,
                           ThreadPool* pool, int repeats) {
  return MeasureOpMs(codec, obs::OpKind::kServiceQuery,
                     [&] {
                       const IndexSnapshot* snapshot = load();
                       IndexServiceOptions options;
                       options.cache_enabled = false;
                       IndexService service(snapshot, pool, options);
                       std::vector<uint32_t> rows;
                       const Status st = service.Query(plan, &rows);
                       if (!st.ok()) {
                         std::fprintf(stderr, "query failed: %s\n",
                                      st.ToString().c_str());
                         std::exit(1);
                       }
                     },
                     repeats);
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("persist_load", flags);
  ApplyKernelFlag(flags);
  const size_t rows = flags.GetInt("size", 1000000);
  const size_t num_lists = flags.GetInt("lists", 12);
  const size_t shards = flags.GetInt("shards", 8);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 17);
  std::string path = flags.GetString("path", "");
  if (path.empty()) path = "/tmp/intcomp_persist_load.bin";
  const std::vector<std::string> codec_names =
      SplitCsv(flags.GetString("codecs", "WAH,EWAH,Roaring,List,VB,SIMDBP128"));

  // Postings: a size ramp from rows/50 to ~rows/5 so the container mixes
  // sparse and dense lists.
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < num_lists; ++i) {
    const size_t n =
        std::max<size_t>(16, rows / 50 + i * (rows / 5 - rows / 50) /
                                     std::max<size_t>(1, num_lists - 1));
    lists.push_back(GenerateUniform(n, rows, seed + i));
  }
  const QueryPlan first_query =
      QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(num_lists - 1)});
  ThreadPool pool(flags.GetInt("threads", 4));

  std::printf("== persist_load: rows=%zu lists=%zu shards=%zu repeats=%d ==\n",
              rows, num_lists, shards, repeats);
  std::printf("%-14s %9s %10s %10s %10s %10s %10s %10s %6s\n", "codec",
              "file(MB)", "rebuild", "open-eag", "open-lazy", "tfr-reb",
              "tfr-eag", "tfr-lazy", "0copy");

  for (const std::string& name : codec_names) {
    const Codec* codec = FindCodec(name);
    if (codec == nullptr) {
      std::fprintf(stderr, "unknown codec: %s\n", name.c_str());
      std::exit(2);
    }
    const ShardedIndex index =
        ShardedIndex::Build(*codec, lists, rows, shards);
    if (!storage::WriteIndexFile(path, index).ok()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    double file_mb = 0, zero_copy_pct = 0;
    {
      // Probe pass: size + zero-copy share; unmapped before the timed opens.
      auto probe = MappedIndex::Open(path);
      if (!probe.ok()) {
        std::fprintf(stderr, "container unreadable: %s\n",
                     probe.status().ToString().c_str());
        std::exit(1);
      }
      file_mb = ToMb((*probe)->FileBytes());
      zero_copy_pct =
          100.0 * static_cast<double>((*probe)->ZeroCopyPayloads()) /
          static_cast<double>((*probe)->MaterializedPayloads());
    }

    const double rebuild_ms = MeasureMs(
        [&] { ShardedIndex::Build(*codec, lists, rows, shards); }, repeats);
    const double eager_ms =
        OpenMs(path, ValidateMode::kEager, codec->Name(), repeats);
    const double lazy_ms =
        OpenMs(path, ValidateMode::kLazy, codec->Name(), repeats);

    // Time-to-first-result per strategy; each repeat loads from scratch so
    // lazy materialization cost is paid inside the measurement.
    std::unique_ptr<ShardedIndex> rebuilt;
    const double tfr_rebuild = TimeToFirstResultMs(
        [&]() -> const IndexSnapshot* {
          rebuilt = std::make_unique<ShardedIndex>(
              ShardedIndex::Build(*codec, lists, rows, shards));
          return rebuilt.get();
        },
        first_query, codec->Name(), &pool, repeats);
    std::unique_ptr<MappedIndex> mapped;
    const auto mmap_loader = [&](ValidateMode mode) {
      return [&, mode]() -> const IndexSnapshot* {
        MappedIndexOptions options;
        options.validate = mode;
        auto opened = MappedIndex::Open(path, options);
        if (!opened.ok()) {
          std::fprintf(stderr, "open failed: %s\n",
                       opened.status().ToString().c_str());
          std::exit(1);
        }
        mapped = std::move(opened.value());
        return mapped.get();
      };
    };
    const double tfr_eager = TimeToFirstResultMs(
        mmap_loader(ValidateMode::kEager), first_query, codec->Name(), &pool,
        repeats);
    const double tfr_lazy = TimeToFirstResultMs(
        mmap_loader(ValidateMode::kLazy), first_query, codec->Name(), &pool,
        repeats);

    std::printf("%-14s %9.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %5.0f%%\n",
                name.c_str(), file_mb, rebuild_ms, eager_ms, lazy_ms,
                tfr_rebuild, tfr_eager, tfr_lazy, zero_copy_pct);
  }
  std::remove(path.c_str());
  PrintPaperShape(
      "mmap'ed cold loads skip the encode entirely; lazy validation makes "
      "time-to-first-result nearly independent of container size (only the "
      "touched lists are CRC-checked and parsed), while eager pays the full "
      "scan once and serves with zero corruption risk afterwards");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
