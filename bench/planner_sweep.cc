// Planner sweep (DESIGN.md §5.12): per-list codec choice vs. every single
// whole-index pool codec on the paper's three synthetic workloads, and the
// query-time strategy chooser vs. each fixed execution strategy.
//
//   planner_sweep --size=65536 --lists=8 --repeats=3 \
//     [--strategy=auto|compressed|merge|gallop] [--metrics-out=PATH]
//
// Space: the planner's total index size against each pool candidate run
// whole-index — the acceptance bound is best_single + one tag byte per
// list. Time: the same pairwise+k-way intersection workload under each
// strategy; `auto/best` is the chooser's overhead over the best fixed
// strategy for that workload (target <= 1.10).
//
// Metrics export: build encodes land in (Planner, planner_build) and every
// PlannedIntersectSets call in (Planner, planner_query) through the
// planner's own op timers. Deliberately no MeasureOpMs here: the auto
// strategy's kernel mix follows the host-calibrated cost model, so
// attributing kernel counters would make the perf baseline host-dependent.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/registry.h"
#include "core/scratch.h"
#include "core/set_ops.h"
#include "planner/planner_codec.h"
#include "planner/strategy.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

using planner::CostModel;
using planner::PlannerCodec;
using planner::SetOpStrategy;

struct Workload {
  const char* name;
  std::vector<std::vector<uint32_t>> lists;
};

// A density ramp per workload so each one mixes lists both codec families
// win: sparse lists for the list codecs, dense/clustered for the bitmaps.
std::vector<Workload> MakeWorkloads(uint64_t domain, size_t num_lists,
                                    uint64_t seed) {
  std::vector<Workload> workloads(3);
  workloads[0].name = "uniform";
  workloads[1].name = "zipf";
  workloads[2].name = "markov";
  for (size_t i = 0; i < num_lists; ++i) {
    const size_t lo = static_cast<size_t>(domain / 200);
    const size_t hi = static_cast<size_t>(domain / 3);
    const size_t n = std::max<size_t>(
        16, lo + i * (hi - lo) / std::max<size_t>(1, num_lists - 1));
    workloads[0].lists.push_back(GenerateUniform(n, domain, seed + i));
    workloads[1].lists.push_back(GenerateZipf(
        std::min<size_t>(n, static_cast<size_t>(domain / 4)), domain, 1.0,
        seed + 100 + i));
    workloads[2].lists.push_back(
        GenerateMarkov(n, domain, 32.0, seed + 200 + i));
  }
  return workloads;
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("planner_sweep", flags);
  ApplyKernelFlag(flags);
  const uint64_t domain = flags.GetInt("size", 65536);
  const size_t num_lists = flags.GetInt("lists", 8);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 23);
  const std::string strategy_flag = flags.GetString("strategy", "");

  std::vector<SetOpStrategy> strategies = {
      SetOpStrategy::kAuto, SetOpStrategy::kCompressed,
      SetOpStrategy::kDecodeMerge, SetOpStrategy::kGallopProbe};
  if (!strategy_flag.empty()) {
    SetOpStrategy only;
    if (!planner::ParseSetOpStrategy(strategy_flag, &only)) {
      std::fprintf(stderr, "unknown --strategy: %s\n", strategy_flag.c_str());
      std::exit(2);
    }
    strategies = {only};
  }

  const auto& codec = static_cast<const PlannerCodec&>(*FindCodec("Planner"));
  const CostModel& model = CostModel::Default();
  ScratchArena arena;

  std::printf("== planner_sweep: domain=%llu lists=%zu repeats=%d ==\n",
              static_cast<unsigned long long>(domain), num_lists, repeats);

  for (const Workload& w : MakeWorkloads(domain, num_lists, seed)) {
    // ----- space: planner vs. each whole-index pool codec -----
    std::vector<std::unique_ptr<CompressedSet>> planner_sets;
    size_t planner_bytes = 0;
    const double build_ms = MeasureMs(
        [&] {
          planner_sets.clear();
          planner_bytes = 0;
          for (const auto& list : w.lists) {
            planner_sets.push_back(codec.Encode(list, domain));
            planner_bytes += planner_sets.back()->SizeInBytes();
          }
        },
        repeats);

    std::printf("-- %s --\n", w.name);
    size_t best_single = SIZE_MAX;
    std::string best_name;
    for (const Codec* candidate : codec.pool()) {
      size_t total = 0;
      for (const auto& list : w.lists) {
        total += candidate->Encode(list, domain)->SizeInBytes();
      }
      if (total < best_single) {
        best_single = total;
        best_name = std::string(candidate->Name());
      }
      std::printf("  size %-16s %10.1f KB\n",
                  std::string(candidate->Name()).c_str(), total / 1024.0);
    }
    std::map<std::string, size_t> choices;
    for (const auto& set : planner_sets) {
      ++choices[std::string(codec.SetCodecName(*set))];
    }
    std::printf("  size %-16s %10.1f KB  (best single: %s; bound %s; "
                "build %.2f ms)\n",
                "Planner", planner_bytes / 1024.0, best_name.c_str(),
                planner_bytes <= best_single + planner_sets.size() ? "OK"
                                                                   : "MISS",
                build_ms);
    std::printf("  choices:");
    for (const auto& [name, count] : choices) {
      std::printf(" %s=%zu", name.c_str(), count);
    }
    std::printf("\n");

    // ----- time: the strategy chooser vs. each fixed strategy -----
    // The measured workload: every adjacent pair plus one k-way SvS over
    // all lists, through the inner (per-list chosen) codecs — the mixed-
    // codec boundary the planner creates inside one index.
    std::vector<TaggedSet> tagged;
    for (const auto& set : planner_sets) {
      const auto& ps = static_cast<const PlannerCodec::Set&>(*set);
      tagged.push_back({ps.codec, ps.inner.get()});
    }
    double auto_ms = 0, best_fixed_ms = 0;
    std::string best_fixed_name;
    for (SetOpStrategy strategy : strategies) {
      std::vector<uint32_t> out;
      const double ms = MeasureMs(
          [&] {
            for (size_t i = 0; i + 1 < tagged.size(); ++i) {
              const std::vector<TaggedSet> pair = {tagged[i], tagged[i + 1]};
              planner::PlannedIntersectSets(pair, strategy, model, &arena,
                                            &out);
            }
            planner::PlannedIntersectSets(tagged, strategy, model, &arena,
                                          &out);
          },
          repeats);
      std::printf("  time %-16s %10.2f ms\n",
                  std::string(planner::SetOpStrategyName(strategy)).c_str(),
                  ms);
      if (strategy == SetOpStrategy::kAuto) {
        auto_ms = ms;
      } else if (best_fixed_name.empty() || ms < best_fixed_ms) {
        best_fixed_ms = ms;
        best_fixed_name = std::string(planner::SetOpStrategyName(strategy));
      }
    }
    if (auto_ms > 0 && !best_fixed_name.empty()) {
      std::printf("  auto_vs_best=%.3f vs %s (target <= 1.10)\n",
                  auto_ms / best_fixed_ms, best_fixed_name.c_str());
    }
  }

  PrintPaperShape(
      "per-list codec choice tracks the best single codec per workload "
      "(never worse than best-single + one tag byte per list) while no "
      "fixed codec wins all three; the cost-model chooser stays within a "
      "few percent of the best fixed execution strategy on each workload "
      "without knowing it in advance");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
