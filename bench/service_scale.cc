// Sharded index service at scale: a shard-count × thread-count sweep over a
// zipf-popular query stream, reporting throughput, p50/p99 latency, and
// result-cache hit rate per configuration.
//
// The workload models a serving column: `--size` rows of a low-cardinality
// column, `--queries` distinct predicate plans (Eq / IN / range-of-values /
// AND-of-ORs), and `--ops` service calls whose plan popularity is zipf —
// hot plans repeat, which is what gives the result cache its hit rate.
// Every configuration re-runs the same plan stream and cross-checks result
// cardinalities against the 1-shard/1-thread baseline (the service's
// determinism guarantee); any divergence aborts the run.
//
//   service_scale --codec=Roaring --size=2000000 --card=16 \
//     --shards=1,2,4,8 --threads=1,2,4,8 --queries=64 --ops=2000 \
//     --popularity-skew=1.0 [--no-cache] [--metrics-out=PATH]
//
// A second section sweeps the read/write mix: the same plan stream is run
// against a durable LiveIndex (WAL + delta overlay + inline compaction,
// DESIGN.md §5.11) with --update-pct percent of the ops replaced by
// insert/remove batches. The 0%-update row doubles as an equivalence check:
// its per-plan result cardinalities must match the in-RAM sweep above
// (mmap-served overlay == RAM-served base). Knobs:
//
//   --update-pct=0,1,10,50   mix sweep (percent of ops that are updates)
//   --update-rows=64         rows per update batch
//   --compact-every=200      inline Compact() after every Nth update (0=off)
//   --sync-every=1           WAL fsync cadence (0 = only on Close)
//   --dir=/tmp/...           scratch directory for the durable index
//
// NOTE: speedup is relative to the 1-shard/1-thread configuration of the
// same run; on a single-core host the sweep measures overhead, not scaling
// (see EXPERIMENTS.md).

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/timer.h"
#include "common/prng.h"
#include "engine/thread_pool.h"
#include "obs/histogram.h"
#include "service/sharded_index.h"
#include "storage/live_index.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

std::vector<size_t> ParseCsvSizes(const std::string& csv, const char* flag) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    size_t v = 0;
    for (size_t i = pos; i < comma; ++i) {
      if (csv[i] < '0' || csv[i] > '9') { v = 0; break; }
      v = v * 10 + static_cast<size_t>(csv[i] - '0');
    }
    if (v == 0) {
      std::fprintf(stderr, "bad %s entry in '%s' (want counts >= 1)\n", flag,
                   csv.c_str());
      std::exit(2);
    }
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

// Random predicate plans over value codes: Eq, IN-list, value range
// (contiguous OR), and (OR ...) AND (OR ...) conjunctions.
std::vector<QueryPlan> MakePlans(size_t count, uint32_t card, Prng* rng) {
  std::vector<QueryPlan> plans;
  plans.reserve(count);
  const auto leaf = [&] {
    return QueryPlan::Leaf(rng->NextBounded(card));
  };
  const auto some_or = [&](size_t max_terms) {
    std::vector<QueryPlan> kids;
    const size_t terms = 1 + rng->NextBounded(max_terms);
    for (size_t i = 0; i < terms; ++i) kids.push_back(leaf());
    return kids.size() == 1 ? kids[0] : QueryPlan::Or(std::move(kids));
  };
  for (size_t q = 0; q < count; ++q) {
    switch (rng->NextBounded(4)) {
      case 0:  // Eq
        plans.push_back(leaf());
        break;
      case 1:  // IN-list
        plans.push_back(some_or(4));
        break;
      case 2: {  // value range [lo, hi]
        const uint32_t lo = static_cast<uint32_t>(rng->NextBounded(card));
        const uint32_t hi = static_cast<uint32_t>(
            std::min<uint64_t>(card - 1, lo + rng->NextBounded(4)));
        std::vector<QueryPlan> kids;
        for (uint32_t c = lo; c <= hi; ++c) kids.push_back(QueryPlan::Leaf(c));
        plans.push_back(kids.size() == 1 ? kids[0]
                                         : QueryPlan::Or(std::move(kids)));
        break;
      }
      default:  // conjunction of disjunctions (SSB-style)
        plans.push_back(QueryPlan::And({some_or(3), some_or(3)}));
    }
  }
  return plans;
}

// Like ParseCsvSizes but for percentages: 0 is a legal entry (pure reads).
std::vector<size_t> ParseCsvPcts(const std::string& csv) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    bool ok = comma > pos;
    size_t v = 0;
    for (size_t i = pos; i < comma; ++i) {
      if (csv[i] < '0' || csv[i] > '9') { ok = false; break; }
      v = v * 10 + static_cast<size_t>(csv[i] - '0');
    }
    if (!ok || v > 100) {
      std::fprintf(stderr, "bad --update-pct entry in '%s' (want 0..100)\n",
                   csv.c_str());
      std::exit(2);
    }
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

// Zipf popularity over plan indices: index k is drawn with weight
// 1/(k+1)^skew, so a handful of plans dominate the stream.
struct ZipfPicker {
  std::vector<double> cdf;
  ZipfPicker(size_t n, double skew) {
    cdf.reserve(n);
    double total = 0;
    for (size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
      cdf.push_back(total);
    }
    for (double& c : cdf) c /= total;
  }
  size_t Pick(Prng* rng) const {
    const double u = rng->NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
};

// One op of the read/write mix: a query (plan index) or an update batch.
struct MixStep {
  size_t plan = 0;
  bool update = false;
  bool insert = false;          // vs. remove
  uint32_t list = 0;
  std::vector<uint32_t> rows;   // update batch (unsorted; dupes allowed)
};

// Replaces `pct` percent of the fixed plan stream with update batches.
// Seeded per mix, so every configuration of one mix replays byte-identical
// ops and the WAL/compaction counters are deterministic across runs.
std::vector<MixStep> MakeMixStream(const std::vector<size_t>& plan_stream,
                                   size_t pct, size_t batch, uint32_t card,
                                   uint64_t num_rows, uint64_t seed) {
  Prng rng(seed);
  std::vector<MixStep> steps(plan_stream.size());
  for (size_t i = 0; i < plan_stream.size(); ++i) {
    MixStep& s = steps[i];
    s.plan = plan_stream[i];
    if (pct > 0 && rng.NextBounded(100) < pct) {
      s.update = true;
      s.insert = rng.NextBounded(2) == 0;
      s.list = static_cast<uint32_t>(rng.NextBounded(card));
      s.rows.reserve(batch);
      for (size_t r = 0; r < batch; ++r) {
        s.rows.push_back(static_cast<uint32_t>(rng.NextBounded(num_rows)));
      }
    }
  }
  return steps;
}

// Fresh scratch directory for one durable-index configuration.
void ResetIndexDir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
  for (const char* f :
       {storage::LiveIndex::kIndexFile, storage::LiveIndex::kWalFile,
        storage::LiveIndex::kIndexTmpFile, storage::LiveIndex::kWalTmpFile}) {
    ::unlink((dir + "/" + f).c_str());
  }
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("service_scale", flags);
  ApplyKernelFlag(flags);
  const std::string codec_name = flags.GetString("codec", "Roaring");
  const Codec* codec = FindCodec(codec_name);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec: %s\n", codec_name.c_str());
    std::exit(2);
  }
  const size_t rows = flags.GetInt("size", 2000000);
  const uint32_t card = static_cast<uint32_t>(flags.GetInt("card", 16));
  const size_t num_plans = flags.GetInt("queries", 64);
  const size_t ops = flags.GetInt("ops", 2000);
  const double skew = flags.GetDouble("popularity-skew", 1.0);
  const uint64_t seed = flags.GetInt("seed", 7);
  const bool cache_on = !flags.GetBool("no-cache", false);
  const std::vector<size_t> shard_counts =
      ParseCsvSizes(flags.GetString("shards", "1,2,4,8"), "--shards");
  const std::vector<size_t> thread_counts =
      ParseCsvSizes(flags.GetString("threads", "1,2,4,8"), "--threads");
  const std::vector<size_t> update_pcts =
      ParseCsvPcts(flags.GetString("update-pct", "0,1,10,50"));
  const size_t update_rows = flags.GetInt("update-rows", 64);
  const size_t compact_every = flags.GetInt("compact-every", 200);
  const size_t sync_every = flags.GetInt("sync-every", 1);
  const std::string dir =
      flags.GetString("dir", "/tmp/intcomp_service_scale");

  // The serving column: skewed value popularity (min of two uniforms).
  Prng rng(seed);
  std::vector<uint32_t> codes;
  codes.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    codes.push_back(static_cast<uint32_t>(
        std::min(rng.NextBounded(card), rng.NextBounded(card))));
  }
  const std::vector<QueryPlan> plans = MakePlans(num_plans, card, &rng);
  const ZipfPicker picker(num_plans, skew);
  // One fixed plan stream shared by every configuration, so hit rates and
  // checksums are comparable across the sweep.
  std::vector<size_t> stream;
  stream.reserve(ops);
  for (size_t i = 0; i < ops; ++i) stream.push_back(picker.Pick(&rng));

  std::printf(
      "== service_scale: %s, rows=%zu card=%u plans=%zu ops=%zu skew=%.2f "
      "cache=%s ==\n",
      codec_name.c_str(), rows, card, num_plans, ops, skew,
      cache_on ? "on" : "off");
  std::printf("%7s %8s %10s %10s %10s %10s %8s %8s\n", "shards", "threads",
              "time(ms)", "qps", "p50(us)", "p99(us)", "hit%", "speedup");

  std::vector<size_t> checksums;  // per-plan result sizes, from the baseline
  double baseline_ms = 0;
  for (size_t shards : shard_counts) {
    const ShardedIndex index =
        ShardedIndex::BuildFromColumn(*codec, codes, card, shards);
    for (size_t threads : thread_counts) {
      ThreadPool pool(threads);
      IndexServiceOptions options;
      options.cache_enabled = cache_on;
      IndexService service(&index, &pool, options);

      obs::LatencyHistogram lat;
      std::vector<uint32_t> result;
      const uint64_t t0 = NowNs();
      for (const size_t q : stream) {
        const uint64_t q0 = NowNs();
        const Status st = service.Query(plans[q], &result);
        lat.Record(NowNs() - q0);
        if (!st.ok()) {
          std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
          std::exit(1);
        }
        // Determinism cross-check against the baseline configuration.
        if (checksums.size() < plans.size()) {
          checksums.resize(plans.size(), SIZE_MAX);
        }
        if (checksums[q] == SIZE_MAX) {
          checksums[q] = result.size();
        } else if (checksums[q] != result.size()) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: plan %zu returned %zu rows at "
                       "%zu shards / %zu threads, baseline %zu\n",
                       q, result.size(), shards, threads, checksums[q]);
          std::exit(1);
        }
      }
      const double total_ms = static_cast<double>(NowNs() - t0) / 1e6;
      if (baseline_ms == 0) baseline_ms = total_ms;

      const ServiceStats stats = service.Stats();
      const double probes =
          static_cast<double>(stats.cache.hits + stats.cache.misses);
      const double hit_pct =
          probes > 0 ? 100.0 * static_cast<double>(stats.cache.hits) / probes
                     : 0.0;
      std::printf("%7zu %8zu %10.2f %10.0f %10.1f %10.1f %8.1f %8.2f\n",
                  shards, threads, total_ms,
                  1000.0 * static_cast<double>(ops) / total_ms,
                  static_cast<double>(lat.P50()) / 1e3,
                  static_cast<double>(lat.P99()) / 1e3, hit_pct,
                  baseline_ms / total_ms);
    }
  }
  // ---- Read/write mix sweep: the durable LiveIndex under update load ----
  //
  // Fixed at the largest shard/thread configuration; the x-axis is the
  // update fraction. Every row rebuilds the index from scratch (fresh
  // container + empty WAL), so rows are independent and deterministic.
  const size_t mix_shards = shard_counts.back();
  const size_t mix_threads = thread_counts.back();
  const ShardedIndex mix_base =
      ShardedIndex::BuildFromColumn(*codec, codes, card, mix_shards);

  std::printf(
      "\n== read/write mix: shards=%zu threads=%zu batch=%zu "
      "compact-every=%zu sync-every=%zu dir=%s ==\n",
      mix_shards, mix_threads, update_rows, compact_every, sync_every,
      dir.c_str());
  std::printf("%5s %8s %10s %10s %10s %10s %8s %9s %10s %7s %7s\n", "upd%",
              "updates", "time(ms)", "qps", "p50(us)", "p99(us)", "hit%",
              "upd/s", "updp99(us)", "fsyncs", "cmpact");

  for (size_t pct : update_pcts) {
    const std::vector<MixStep> steps =
        MakeMixStream(stream, pct, update_rows, card, rows,
                      seed ^ (0x9e3779b97f4a7c15ull * (pct + 1)));
    ResetIndexDir(dir);
    storage::LiveIndexOptions live_options;
    live_options.wal.sync_every_records = sync_every;
    auto live = storage::LiveIndex::Create(dir, mix_base, live_options);
    if (!live.ok()) {
      std::fprintf(stderr, "LiveIndex::Create failed: %s\n",
                   live.status().ToString().c_str());
      std::exit(1);
    }
    ThreadPool pool(mix_threads);
    IndexServiceOptions options;
    options.cache_enabled = cache_on;
    IndexService service((*live)->Snapshot(), &pool, options);
    (*live)->AttachService(&service);

    obs::LatencyHistogram lat_q, lat_u;
    std::vector<uint32_t> result;
    size_t updates = 0, updates_since_compact = 0, queries = 0;
    const uint64_t t0 = NowNs();
    for (const MixStep& step : steps) {
      const uint64_t q0 = NowNs();
      if (step.update) {
        const Status st =
            step.insert ? (*live)->Insert(step.list, step.rows)
                        : (*live)->Remove(step.list, step.rows);
        lat_u.Record(NowNs() - q0);
        if (!st.ok()) {
          std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
          std::exit(1);
        }
        ++updates;
        if (compact_every > 0 && ++updates_since_compact == compact_every) {
          updates_since_compact = 0;
          const Status cs = (*live)->Compact();
          if (!cs.ok()) {
            std::fprintf(stderr, "compaction failed: %s\n",
                         cs.ToString().c_str());
            std::exit(1);
          }
        }
      } else {
        const Status st = service.Query(plans[step.plan], &result);
        lat_q.Record(NowNs() - q0);
        if (!st.ok()) {
          std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
          std::exit(1);
        }
        ++queries;
        // With zero updates in flight the mmap-served overlay must agree
        // with the in-RAM sweep above, plan for plan.
        if (pct == 0 && checksums[step.plan] != result.size()) {
          std::fprintf(stderr,
                       "EQUIVALENCE VIOLATION: plan %zu returned %zu rows "
                       "from the durable index, in-RAM baseline %zu\n",
                       step.plan, result.size(), checksums[step.plan]);
          std::exit(1);
        }
      }
    }
    const double total_ms = static_cast<double>(NowNs() - t0) / 1e6;

    const ServiceStats sstats = service.Stats();
    const double probes =
        static_cast<double>(sstats.cache.hits + sstats.cache.misses);
    const double hit_pct =
        probes > 0 ? 100.0 * static_cast<double>(sstats.cache.hits) / probes
                   : 0.0;
    const storage::LiveIndexStats lstats = (*live)->Stats();
    (*live)->AttachService(nullptr);
    const Status close = (*live)->Close();
    if (!close.ok()) {
      std::fprintf(stderr, "close failed: %s\n", close.ToString().c_str());
      std::exit(1);
    }
    std::printf(
        "%5zu %8zu %10.2f %10.0f %10.1f %10.1f %8.1f %9.0f %10.1f %7llu "
        "%7llu\n",
        pct, updates, total_ms,
        1000.0 * static_cast<double>(queries) / total_ms,
        static_cast<double>(lat_q.P50()) / 1e3,
        static_cast<double>(lat_q.P99()) / 1e3, hit_pct,
        updates > 0 ? 1000.0 * static_cast<double>(updates) / total_ms : 0.0,
        updates > 0 ? static_cast<double>(lat_u.P99()) / 1e3 : 0.0,
        static_cast<unsigned long long>(lstats.wal_syncs),
        static_cast<unsigned long long>(lstats.compactions));
  }

  PrintPaperShape(
      "query fan-out over shards scales with pool threads until the "
      "per-shard slice is too small to amortize dispatch; the result cache "
      "converts zipf plan popularity into hits that bypass evaluation "
      "entirely; under a write mix every update invalidates the cache and "
      "pays the WAL fsync, so hit rate and update tails, not query medians, "
      "are what degrade first");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
