// Sharded index service at scale: a shard-count × thread-count sweep over a
// zipf-popular query stream, reporting throughput, p50/p99 latency, and
// result-cache hit rate per configuration.
//
// The workload models a serving column: `--size` rows of a low-cardinality
// column, `--queries` distinct predicate plans (Eq / IN / range-of-values /
// AND-of-ORs), and `--ops` service calls whose plan popularity is zipf —
// hot plans repeat, which is what gives the result cache its hit rate.
// Every configuration re-runs the same plan stream and cross-checks result
// cardinalities against the 1-shard/1-thread baseline (the service's
// determinism guarantee); any divergence aborts the run.
//
//   service_scale --codec=Roaring --size=2000000 --card=16 \
//     --shards=1,2,4,8 --threads=1,2,4,8 --queries=64 --ops=2000 \
//     --popularity-skew=1.0 [--no-cache] [--metrics-out=PATH]
//
// NOTE: speedup is relative to the 1-shard/1-thread configuration of the
// same run; on a single-core host the sweep measures overhead, not scaling
// (see EXPERIMENTS.md).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/timer.h"
#include "common/prng.h"
#include "engine/thread_pool.h"
#include "obs/histogram.h"
#include "service/sharded_index.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

std::vector<size_t> ParseCsvSizes(const std::string& csv, const char* flag) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    size_t v = 0;
    for (size_t i = pos; i < comma; ++i) {
      if (csv[i] < '0' || csv[i] > '9') { v = 0; break; }
      v = v * 10 + static_cast<size_t>(csv[i] - '0');
    }
    if (v == 0) {
      std::fprintf(stderr, "bad %s entry in '%s' (want counts >= 1)\n", flag,
                   csv.c_str());
      std::exit(2);
    }
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

// Random predicate plans over value codes: Eq, IN-list, value range
// (contiguous OR), and (OR ...) AND (OR ...) conjunctions.
std::vector<QueryPlan> MakePlans(size_t count, uint32_t card, Prng* rng) {
  std::vector<QueryPlan> plans;
  plans.reserve(count);
  const auto leaf = [&] {
    return QueryPlan::Leaf(rng->NextBounded(card));
  };
  const auto some_or = [&](size_t max_terms) {
    std::vector<QueryPlan> kids;
    const size_t terms = 1 + rng->NextBounded(max_terms);
    for (size_t i = 0; i < terms; ++i) kids.push_back(leaf());
    return kids.size() == 1 ? kids[0] : QueryPlan::Or(std::move(kids));
  };
  for (size_t q = 0; q < count; ++q) {
    switch (rng->NextBounded(4)) {
      case 0:  // Eq
        plans.push_back(leaf());
        break;
      case 1:  // IN-list
        plans.push_back(some_or(4));
        break;
      case 2: {  // value range [lo, hi]
        const uint32_t lo = static_cast<uint32_t>(rng->NextBounded(card));
        const uint32_t hi = static_cast<uint32_t>(
            std::min<uint64_t>(card - 1, lo + rng->NextBounded(4)));
        std::vector<QueryPlan> kids;
        for (uint32_t c = lo; c <= hi; ++c) kids.push_back(QueryPlan::Leaf(c));
        plans.push_back(kids.size() == 1 ? kids[0]
                                         : QueryPlan::Or(std::move(kids)));
        break;
      }
      default:  // conjunction of disjunctions (SSB-style)
        plans.push_back(QueryPlan::And({some_or(3), some_or(3)}));
    }
  }
  return plans;
}

// Zipf popularity over plan indices: index k is drawn with weight
// 1/(k+1)^skew, so a handful of plans dominate the stream.
struct ZipfPicker {
  std::vector<double> cdf;
  ZipfPicker(size_t n, double skew) {
    cdf.reserve(n);
    double total = 0;
    for (size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
      cdf.push_back(total);
    }
    for (double& c : cdf) c /= total;
  }
  size_t Pick(Prng* rng) const {
    const double u = rng->NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
};

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("service_scale", flags);
  ApplyKernelFlag(flags);
  const std::string codec_name = flags.GetString("codec", "Roaring");
  const Codec* codec = FindCodec(codec_name);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec: %s\n", codec_name.c_str());
    std::exit(2);
  }
  const size_t rows = flags.GetInt("size", 2000000);
  const uint32_t card = static_cast<uint32_t>(flags.GetInt("card", 16));
  const size_t num_plans = flags.GetInt("queries", 64);
  const size_t ops = flags.GetInt("ops", 2000);
  const double skew = flags.GetDouble("popularity-skew", 1.0);
  const uint64_t seed = flags.GetInt("seed", 7);
  const bool cache_on = !flags.GetBool("no-cache", false);
  const std::vector<size_t> shard_counts =
      ParseCsvSizes(flags.GetString("shards", "1,2,4,8"), "--shards");
  const std::vector<size_t> thread_counts =
      ParseCsvSizes(flags.GetString("threads", "1,2,4,8"), "--threads");

  // The serving column: skewed value popularity (min of two uniforms).
  Prng rng(seed);
  std::vector<uint32_t> codes;
  codes.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    codes.push_back(static_cast<uint32_t>(
        std::min(rng.NextBounded(card), rng.NextBounded(card))));
  }
  const std::vector<QueryPlan> plans = MakePlans(num_plans, card, &rng);
  const ZipfPicker picker(num_plans, skew);
  // One fixed plan stream shared by every configuration, so hit rates and
  // checksums are comparable across the sweep.
  std::vector<size_t> stream;
  stream.reserve(ops);
  for (size_t i = 0; i < ops; ++i) stream.push_back(picker.Pick(&rng));

  std::printf(
      "== service_scale: %s, rows=%zu card=%u plans=%zu ops=%zu skew=%.2f "
      "cache=%s ==\n",
      codec_name.c_str(), rows, card, num_plans, ops, skew,
      cache_on ? "on" : "off");
  std::printf("%7s %8s %10s %10s %10s %10s %8s %8s\n", "shards", "threads",
              "time(ms)", "qps", "p50(us)", "p99(us)", "hit%", "speedup");

  std::vector<size_t> checksums;  // per-plan result sizes, from the baseline
  double baseline_ms = 0;
  for (size_t shards : shard_counts) {
    const ShardedIndex index =
        ShardedIndex::BuildFromColumn(*codec, codes, card, shards);
    for (size_t threads : thread_counts) {
      ThreadPool pool(threads);
      IndexServiceOptions options;
      options.cache_enabled = cache_on;
      IndexService service(&index, &pool, options);

      obs::LatencyHistogram lat;
      std::vector<uint32_t> result;
      const uint64_t t0 = NowNs();
      for (const size_t q : stream) {
        const uint64_t q0 = NowNs();
        const Status st = service.Query(plans[q], &result);
        lat.Record(NowNs() - q0);
        if (!st.ok()) {
          std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
          std::exit(1);
        }
        // Determinism cross-check against the baseline configuration.
        if (checksums.size() < plans.size()) {
          checksums.resize(plans.size(), SIZE_MAX);
        }
        if (checksums[q] == SIZE_MAX) {
          checksums[q] = result.size();
        } else if (checksums[q] != result.size()) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: plan %zu returned %zu rows at "
                       "%zu shards / %zu threads, baseline %zu\n",
                       q, result.size(), shards, threads, checksums[q]);
          std::exit(1);
        }
      }
      const double total_ms = static_cast<double>(NowNs() - t0) / 1e6;
      if (baseline_ms == 0) baseline_ms = total_ms;

      const ServiceStats stats = service.Stats();
      const double probes =
          static_cast<double>(stats.cache.hits + stats.cache.misses);
      const double hit_pct =
          probes > 0 ? 100.0 * static_cast<double>(stats.cache.hits) / probes
                     : 0.0;
      std::printf("%7zu %8zu %10.2f %10.0f %10.1f %10.1f %8.1f %8.2f\n",
                  shards, threads, total_ms,
                  1000.0 * static_cast<double>(ops) / total_ms,
                  static_cast<double>(lat.P50()) / 1e3,
                  static_cast<double>(lat.P99()) / 1e3, hit_pct,
                  baseline_ms / total_ms);
    }
  }
  PrintPaperShape(
      "query fan-out over shards scales with pool threads until the "
      "per-shard slice is too small to amortize dispatch; the result cache "
      "converts zipf plan popularity into hits that bypass evaluation "
      "entirely");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
