// Table 1: intersection time (ms) of two lists with |L2|/|L1| = 1000,
// varying |L2|, under uniform / zipf / markov distributions.
//
// Paper sweeps |L2| in {1M, 10M, 100M, 1B}; default here is {1M}
// (--sizes to extend).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("tab1_intersection", flags);
  std::vector<size_t> sizes;
  {
    const std::string csv = flags.GetString("sizes", "1000000");
    size_t pos = 0;
    while (pos < csv.size()) {
      size_t comma = csv.find(',', pos);
      if (comma == std::string::npos) comma = csv.size();
      sizes.push_back(std::stoull(csv.substr(pos, comma - pos)));
      pos = comma + 1;
    }
  }
  const uint64_t domain = flags.GetInt("domain", kPaperDomain);
  const size_t ratio = flags.GetInt("ratio", 1000);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 7);
  ApplyKernelFlag(flags);

  struct Dist {
    const char* name;
    std::vector<uint32_t> (*make)(size_t, uint64_t, uint64_t);
  };
  const Dist dists[] = {
      {"uniform",
       [](size_t n, uint64_t d, uint64_t s) { return GenerateUniform(n, d, s); }},
      {"zipf",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateZipf(n, d, kPaperZipfSkew, s);
       }},
      {"markov",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateMarkov(n, d, kPaperMarkovClustering, s);
       }},
  };

  std::printf("Table 1: intersection time (ms), |L2|/|L1| = %zu\n", ratio);
  std::vector<std::string> cols;
  std::vector<std::vector<double>> values(AllCodecs().size());
  std::vector<std::string> row_names;
  for (const Codec* codec : AllCodecs()) {
    row_names.emplace_back(codec->Name());
  }
  for (const Dist& dist : dists) {
    for (size_t n2 : sizes) {
      const size_t n1 = std::max<size_t>(1, n2 / ratio);
      const auto l1 = dist.make(n1, domain, seed + 1);
      const auto l2 = dist.make(n2, domain, seed + 2);
      cols.push_back(std::string(dist.name) + "/" + std::to_string(n2));
      // Encode every codec up front, then interleave the repeats round-robin
      // across codecs: each codec's latency samples span the whole cell's
      // runtime instead of one narrow window, so slow machine drift shifts
      // all histogram keys together and the calibrated perf gate
      // (tools/perf_check.py diff --calibrate) can cancel it.
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      struct CellState {
        std::unique_ptr<CompressedSet> s1, s2;
        obs::LatencyHistogram* hist = nullptr;
        KernelCounters kernels;
        uint64_t best_ns = ~uint64_t{0};
        std::vector<uint32_t> out;
      };
      std::vector<CellState> cell(AllCodecs().size());
      for (size_t ci = 0; ci < AllCodecs().size(); ++ci) {
        const Codec* codec = AllCodecs()[ci];
        cell[ci].s1 = codec->Encode(l1, domain);
        cell[ci].s2 = codec->Encode(l2, domain);
        if (reg.Enabled()) {
          cell[ci].hist =
              reg.OpLatency(codec->Name(), obs::OpKind::kIntersect);
        }
      }
      for (int r = 0; r < repeats; ++r) {
        for (size_t ci = 0; ci < AllCodecs().size(); ++ci) {
          CellState& st = cell[ci];
          const KernelCounters before = ThreadKernelCounters();
          const uint64_t t0 = NowNs();
          AllCodecs()[ci]->Intersect(*st.s1, *st.s2, &st.out);
          const uint64_t ns = NowNs() - t0;
          if (st.hist != nullptr) st.hist->Record(ns);
          st.kernels += ThreadKernelCounters() - before;
          st.best_ns = std::min(st.best_ns, ns);
        }
      }
      size_t expected = static_cast<size_t>(-1);
      for (size_t ci = 0; ci < AllCodecs().size(); ++ci) {
        CellState& st = cell[ci];
        if (reg.Enabled()) {
          reg.RecordKernelCounters(AllCodecs()[ci]->Name(), st.kernels);
        }
        if (expected == static_cast<size_t>(-1)) {
          expected = st.out.size();
        } else if (st.out.size() != expected) {
          std::fprintf(stderr, "CHECKSUM MISMATCH: %s %s/%zu: %zu vs %zu\n",
                       row_names[ci].c_str(), dist.name, n2, st.out.size(),
                       expected);
        }
        values[ci].push_back(static_cast<double>(st.best_ns) / 1e6);
      }
    }
  }
  PrintMatrix("Table 1: intersection time (ms)", cols, row_names, values);
  PrintPaperShape(
      "Roaring achieves the fastest intersection overall; PEF and SIMDBP128* "
      "lead the inverted-list codecs; VALWAH is much slower than WAH; SBH is "
      "slower than BBC (paper Table 1).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
