// Parallel variant of Table 1: a batch of two-list intersections with
// |L2|/|L1| = 1000, swept over 1..N pool threads through the batch engine.
// Prints per-codec scaling blocks (time, speedup vs 1 thread, steal count,
// busy fraction) so per-core scaling is visible at a glance.
//
// Defaults keep a laptop run short: uniform distribution, |L2| = 1M,
// 16 query pairs, the paper's headline codecs. Sweep further with
//   tab1_parallel --threads=1,2,4,8 --codecs=all --dists=uniform,zipf,markov
//
// Each (L1, L2) pair is generated with its own seeds, so the batch holds
// `queries` distinct intersections — a miniature of the concurrent-traffic
// serving scenario the engine exists for. Results are cross-checked across
// thread counts: any divergence from the 1-thread batch is a bug (the
// engine's determinism guarantee) and aborts the run.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "engine/batch_executor.h"
#include "engine/thread_pool.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

std::vector<uint32_t> MakeList(const std::string& dist, size_t n,
                               uint64_t domain, uint64_t seed) {
  if (dist == "zipf") return GenerateZipf(n, domain, kPaperZipfSkew, seed);
  if (dist == "markov") {
    return GenerateMarkov(n, domain, kPaperMarkovClustering, seed);
  }
  return GenerateUniform(n, domain, seed);
}

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("tab1_parallel", flags);
  const size_t n2 = flags.GetInt("size", 1000000);
  const size_t ratio = flags.GetInt("ratio", 1000);
  const size_t queries = flags.GetInt("queries", 16);
  const uint64_t domain = flags.GetInt("domain", kPaperDomain);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 7);

  std::vector<size_t> threads;
  for (const auto& t : SplitCsv(flags.GetString("threads", "1,2,4"))) {
    size_t v = 0;
    for (char c : t) {
      if (c < '0' || c > '9') { v = 0; break; }
      v = v * 10 + static_cast<size_t>(c - '0');
    }
    if (v == 0) {
      std::fprintf(stderr, "bad --threads entry: '%s' (want a count >= 1)\n",
                   t.c_str());
      std::exit(1);
    }
    threads.push_back(v);
  }
  const std::vector<std::string> dists =
      SplitCsv(flags.GetString("dists", "uniform"));
  for (const auto& d : dists) {
    if (d != "uniform" && d != "zipf" && d != "markov") {
      std::fprintf(stderr, "unknown distribution: %s\n", d.c_str());
      std::exit(1);
    }
  }

  std::vector<const Codec*> codecs;
  const std::string codecs_flag =
      flags.GetString("codecs", "Roaring,SIMDBP128,WAH");
  if (codecs_flag == "all") {
    codecs.assign(AllCodecs().begin(), AllCodecs().end());
  } else {
    for (const auto& name : SplitCsv(codecs_flag)) {
      const Codec* c = FindCodec(name);
      if (c == nullptr) {
        std::fprintf(stderr, "unknown codec: %s\n", name.c_str());
        std::exit(1);
      }
      codecs.push_back(c);
    }
  }

  std::printf("tab1_parallel: batch of %zu intersections, |L2|/|L1| = %zu\n",
              queries, ratio);
  for (const std::string& dist : dists) {
    // One shared immutable index per distribution: `queries` pairs of
    // (L1, L2), each with distinct seeds.
    const size_t n1 = std::max<size_t>(1, n2 / ratio);
    std::vector<std::vector<uint32_t>> lists;
    std::vector<QueryPlan> plans;
    for (size_t q = 0; q < queries; ++q) {
      lists.push_back(MakeList(dist, n1, domain, seed + 2 * q + 1));
      lists.push_back(MakeList(dist, n2, domain, seed + 2 * q + 2));
      plans.push_back(QueryPlan::And(
          {QueryPlan::Leaf(2 * q), QueryPlan::Leaf(2 * q + 1)}));
    }

    for (const Codec* codec : codecs) {
      EncodedLists enc = EncodeLists(*codec, lists, domain);
      const auto ptrs = enc.Ptrs();
      const QueryBatch batch{.codec = codec, .plans = plans, .sets = ptrs};

      std::vector<ScalingRow> rows;
      std::vector<std::vector<uint32_t>> reference;
      double base_ms = 0;
      for (size_t t : threads) {
        ThreadPool pool(t);
        BatchExecutor exec(&pool);
        exec.Execute(batch);  // warm-up: grows arenas, faults in the index
        BatchReport report;
        std::vector<std::vector<uint32_t>> results;
        double best_ms = -1;
        for (int r = 0; r < repeats; ++r) {
          BatchReport attempt;
          auto out = exec.Execute(batch, &attempt);
          if (best_ms < 0 || attempt.wall_ms < best_ms) {
            best_ms = attempt.wall_ms;
            report = attempt;
            results = std::move(out);
          }
        }
        if (reference.empty()) {
          reference = std::move(results);
          base_ms = best_ms;
        } else if (results != reference) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: %s %s differs at %zu threads\n",
                       std::string(codec->Name()).c_str(), dist.c_str(), t);
          std::exit(1);
        }
        rows.push_back({t, best_ms, base_ms / best_ms,
                        1000.0 * static_cast<double>(queries) / best_ms,
                        report.Totals().steals, report.BusyFraction()});
      }
      PrintScalingBlock("tab1_parallel: " + std::string(codec->Name()) + ", " +
                            dist + "/" + std::to_string(n2),
                        rows);
    }
  }
  PrintPaperShape(
      "Per-query parallelism scales near-linearly until memory bandwidth "
      "saturates: ~Nx throughput at N threads for the compute-bound codecs "
      "(WAH, SIMDBP128), somewhat less for the most bandwidth-lean ones "
      "(Roaring), mirroring the multicore results in the Roaring and SIMD "
      "intersection papers rather than the single-core Table 1.");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
