// Table 2: union time (ms) of two lists with |L2|/|L1| = 1000, varying
// |L2|, under uniform / zipf / markov distributions. Default {1M}.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("tab2_union", flags);
  std::vector<size_t> sizes;
  {
    const std::string csv = flags.GetString("sizes", "1000000");
    size_t pos = 0;
    while (pos < csv.size()) {
      size_t comma = csv.find(',', pos);
      if (comma == std::string::npos) comma = csv.size();
      sizes.push_back(std::stoull(csv.substr(pos, comma - pos)));
      pos = comma + 1;
    }
  }
  const uint64_t domain = flags.GetInt("domain", kPaperDomain);
  const size_t ratio = flags.GetInt("ratio", 1000);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 8);
  ApplyKernelFlag(flags);

  struct Dist {
    const char* name;
    std::vector<uint32_t> (*make)(size_t, uint64_t, uint64_t);
  };
  const Dist dists[] = {
      {"uniform",
       [](size_t n, uint64_t d, uint64_t s) { return GenerateUniform(n, d, s); }},
      {"zipf",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateZipf(n, d, kPaperZipfSkew, s);
       }},
      {"markov",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateMarkov(n, d, kPaperMarkovClustering, s);
       }},
  };

  std::printf("Table 2: union time (ms), |L2|/|L1| = %zu\n", ratio);
  std::vector<std::string> cols;
  std::vector<std::vector<double>> values(AllCodecs().size());
  std::vector<std::string> row_names;
  for (const Codec* codec : AllCodecs()) {
    row_names.emplace_back(codec->Name());
  }
  for (const Dist& dist : dists) {
    for (size_t n2 : sizes) {
      const size_t n1 = std::max<size_t>(1, n2 / ratio);
      const auto l1 = dist.make(n1, domain, seed + 1);
      const auto l2 = dist.make(n2, domain, seed + 2);
      cols.push_back(std::string(dist.name) + "/" + std::to_string(n2));
      size_t expected = static_cast<size_t>(-1);
      for (size_t ci = 0; ci < AllCodecs().size(); ++ci) {
        const Codec* codec = AllCodecs()[ci];
        auto s1 = codec->Encode(l1, domain);
        auto s2 = codec->Encode(l2, domain);
        std::vector<uint32_t> out;
        const double ms =
            MeasureOpMs(codec->Name(), obs::OpKind::kUnion,
                        [&] { codec->Union(*s1, *s2, &out); }, repeats);
        if (expected == static_cast<size_t>(-1)) {
          expected = out.size();
        } else if (out.size() != expected) {
          std::fprintf(stderr, "CHECKSUM MISMATCH: %s %s/%zu: %zu vs %zu\n",
                       row_names[ci].c_str(), dist.name, n2, out.size(),
                       expected);
        }
        values[ci].push_back(ms);
      }
    }
  }
  PrintMatrix("Table 2: union time (ms)", cols, row_names, values);
  PrintPaperShape(
      "inverted-list codecs union faster than bitmap codecs (union output is "
      "dense, so bitmaps pay bit-extraction); SIMDBP128* and SIMDPforDelta* "
      "are fastest; Roaring is the best bitmap (paper Table 2).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
