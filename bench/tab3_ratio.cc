// Table 3 (Appendix C.2): intersection time with list-size ratio
// theta in {1, 10}, |L2| = 100M in the paper (default 2M here; --size to
// scale), under uniform / zipf / markov.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchutil/flags.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

void Run(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchMetrics metrics("tab3_ratio", flags);
  const size_t n2 = flags.GetInt("size", 2000000);
  // Density is the controlling variable of this experiment (the paper runs
  // |L2| = 100M over INTMAX, ~4.7%), so the scaled-down default keeps the
  // paper's density rather than the paper's domain. Pass --domain (and
  // --size=100000000) to run the paper's exact configuration.
  const uint64_t default_domain = static_cast<uint64_t>(
      static_cast<double>(n2) * (static_cast<double>(kPaperDomain) / 1e8));
  const uint64_t domain = flags.GetInt("domain", default_domain);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = flags.GetInt("seed", 46);

  struct Dist {
    const char* name;
    std::vector<uint32_t> (*make)(size_t, uint64_t, uint64_t);
  };
  const Dist dists[] = {
      {"uniform",
       [](size_t n, uint64_t d, uint64_t s) { return GenerateUniform(n, d, s); }},
      {"zipf",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateZipf(n, d, kPaperZipfSkew, s);
       }},
      {"markov",
       [](size_t n, uint64_t d, uint64_t s) {
         return GenerateMarkov(n, d, kPaperMarkovClustering, s);
       }},
  };

  std::printf("Table 3: intersection time (ms) vs list-size ratio, |L2| = %zu\n",
              n2);
  std::vector<std::string> cols;
  std::vector<std::string> row_names;
  for (const Codec* codec : AllCodecs()) row_names.emplace_back(codec->Name());
  std::vector<std::vector<double>> values(row_names.size());

  for (const Dist& dist : dists) {
    const auto l2 = dist.make(n2, domain, seed + 2);
    for (size_t theta : {size_t{1}, size_t{10}}) {
      const auto l1 = dist.make(n2 / theta, domain, seed + 1);
      cols.push_back(std::string(dist.name) + "/theta=" + std::to_string(theta));
      size_t expected = static_cast<size_t>(-1);
      for (size_t ci = 0; ci < AllCodecs().size(); ++ci) {
        const Codec* codec = AllCodecs()[ci];
        auto s1 = codec->Encode(l1, domain);
        auto s2 = codec->Encode(l2, domain);
        std::vector<uint32_t> out;
        const double ms = MeasureOpMs(
            codec->Name(), obs::OpKind::kIntersect,
            [&] { codec->Intersect(*s1, *s2, &out); }, repeats);
        if (expected == static_cast<size_t>(-1)) {
          expected = out.size();
        } else if (out.size() != expected) {
          std::fprintf(stderr, "CHECKSUM MISMATCH: %s\n",
                       row_names[ci].c_str());
        }
        values[ci].push_back(ms);
      }
    }
  }
  PrintMatrix("Table 3: intersection time (ms)", cols, row_names, values);
  PrintPaperShape(
      "at theta = 1/10 intersections are merge-based, so bitmap codecs "
      "(bit-wise AND) beat inverted lists; Roaring is the fastest bitmap; "
      "PEF becomes the slowest list codec (paper Table 3).");
}

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  intcomp::Run(argc, argv);
  return 0;
}
