file(REMOVE_RECURSE
  "CMakeFiles/appendix_topk.dir/appendix_topk.cc.o"
  "CMakeFiles/appendix_topk.dir/appendix_topk.cc.o.d"
  "appendix_topk"
  "appendix_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
