# Empty compiler generated dependencies file for appendix_topk.
# This may be replaced when dependencies are built.
