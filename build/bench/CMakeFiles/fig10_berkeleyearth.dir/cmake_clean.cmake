file(REMOVE_RECURSE
  "CMakeFiles/fig10_berkeleyearth.dir/fig10_berkeleyearth.cc.o"
  "CMakeFiles/fig10_berkeleyearth.dir/fig10_berkeleyearth.cc.o.d"
  "fig10_berkeleyearth"
  "fig10_berkeleyearth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_berkeleyearth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
