# Empty compiler generated dependencies file for fig10_berkeleyearth.
# This may be replaced when dependencies are built.
