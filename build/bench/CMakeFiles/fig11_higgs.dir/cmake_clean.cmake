file(REMOVE_RECURSE
  "CMakeFiles/fig11_higgs.dir/fig11_higgs.cc.o"
  "CMakeFiles/fig11_higgs.dir/fig11_higgs.cc.o.d"
  "fig11_higgs"
  "fig11_higgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_higgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
