# Empty dependencies file for fig11_higgs.
# This may be replaced when dependencies are built.
