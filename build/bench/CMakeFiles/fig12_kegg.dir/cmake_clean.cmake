file(REMOVE_RECURSE
  "CMakeFiles/fig12_kegg.dir/fig12_kegg.cc.o"
  "CMakeFiles/fig12_kegg.dir/fig12_kegg.cc.o.d"
  "fig12_kegg"
  "fig12_kegg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_kegg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
