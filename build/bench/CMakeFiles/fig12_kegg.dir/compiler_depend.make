# Empty compiler generated dependencies file for fig12_kegg.
# This may be replaced when dependencies are built.
