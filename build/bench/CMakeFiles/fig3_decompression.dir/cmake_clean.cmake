file(REMOVE_RECURSE
  "CMakeFiles/fig3_decompression.dir/fig3_decompression.cc.o"
  "CMakeFiles/fig3_decompression.dir/fig3_decompression.cc.o.d"
  "fig3_decompression"
  "fig3_decompression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_decompression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
