# Empty compiler generated dependencies file for fig3_decompression.
# This may be replaced when dependencies are built.
