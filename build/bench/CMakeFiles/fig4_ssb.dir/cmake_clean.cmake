file(REMOVE_RECURSE
  "CMakeFiles/fig4_ssb.dir/fig4_ssb.cc.o"
  "CMakeFiles/fig4_ssb.dir/fig4_ssb.cc.o.d"
  "fig4_ssb"
  "fig4_ssb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ssb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
