# Empty dependencies file for fig4_ssb.
# This may be replaced when dependencies are built.
