file(REMOVE_RECURSE
  "CMakeFiles/fig5_tpch.dir/fig5_tpch.cc.o"
  "CMakeFiles/fig5_tpch.dir/fig5_tpch.cc.o.d"
  "fig5_tpch"
  "fig5_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
