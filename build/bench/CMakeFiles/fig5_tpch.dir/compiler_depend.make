# Empty compiler generated dependencies file for fig5_tpch.
# This may be replaced when dependencies are built.
