file(REMOVE_RECURSE
  "CMakeFiles/fig6_web.dir/fig6_web.cc.o"
  "CMakeFiles/fig6_web.dir/fig6_web.cc.o.d"
  "fig6_web"
  "fig6_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
