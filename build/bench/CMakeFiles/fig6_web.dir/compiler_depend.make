# Empty compiler generated dependencies file for fig6_web.
# This may be replaced when dependencies are built.
