file(REMOVE_RECURSE
  "CMakeFiles/fig7_skip_pointers.dir/fig7_skip_pointers.cc.o"
  "CMakeFiles/fig7_skip_pointers.dir/fig7_skip_pointers.cc.o.d"
  "fig7_skip_pointers"
  "fig7_skip_pointers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_skip_pointers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
