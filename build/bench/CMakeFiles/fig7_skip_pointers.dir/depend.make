# Empty dependencies file for fig7_skip_pointers.
# This may be replaced when dependencies are built.
