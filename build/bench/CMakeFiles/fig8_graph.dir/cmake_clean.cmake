file(REMOVE_RECURSE
  "CMakeFiles/fig8_graph.dir/fig8_graph.cc.o"
  "CMakeFiles/fig8_graph.dir/fig8_graph.cc.o.d"
  "fig8_graph"
  "fig8_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
