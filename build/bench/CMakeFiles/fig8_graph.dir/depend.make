# Empty dependencies file for fig8_graph.
# This may be replaced when dependencies are built.
