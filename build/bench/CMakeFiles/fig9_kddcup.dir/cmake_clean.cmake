file(REMOVE_RECURSE
  "CMakeFiles/fig9_kddcup.dir/fig9_kddcup.cc.o"
  "CMakeFiles/fig9_kddcup.dir/fig9_kddcup.cc.o.d"
  "fig9_kddcup"
  "fig9_kddcup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_kddcup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
