# Empty dependencies file for fig9_kddcup.
# This may be replaced when dependencies are built.
