file(REMOVE_RECURSE
  "CMakeFiles/tab1_intersection.dir/tab1_intersection.cc.o"
  "CMakeFiles/tab1_intersection.dir/tab1_intersection.cc.o.d"
  "tab1_intersection"
  "tab1_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
