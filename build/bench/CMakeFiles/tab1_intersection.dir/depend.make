# Empty dependencies file for tab1_intersection.
# This may be replaced when dependencies are built.
