file(REMOVE_RECURSE
  "CMakeFiles/tab2_union.dir/tab2_union.cc.o"
  "CMakeFiles/tab2_union.dir/tab2_union.cc.o.d"
  "tab2_union"
  "tab2_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
