# Empty compiler generated dependencies file for tab2_union.
# This may be replaced when dependencies are built.
