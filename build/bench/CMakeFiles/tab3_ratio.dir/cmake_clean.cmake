file(REMOVE_RECURSE
  "CMakeFiles/tab3_ratio.dir/tab3_ratio.cc.o"
  "CMakeFiles/tab3_ratio.dir/tab3_ratio.cc.o.d"
  "tab3_ratio"
  "tab3_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
