# Empty compiler generated dependencies file for tab3_ratio.
# This may be replaced when dependencies are built.
