file(REMOVE_RECURSE
  "CMakeFiles/analytics_db.dir/analytics_db.cpp.o"
  "CMakeFiles/analytics_db.dir/analytics_db.cpp.o.d"
  "analytics_db"
  "analytics_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
