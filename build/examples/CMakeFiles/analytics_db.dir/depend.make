# Empty dependencies file for analytics_db.
# This may be replaced when dependencies are built.
