file(REMOVE_RECURSE
  "CMakeFiles/codec_advisor.dir/codec_advisor.cpp.o"
  "CMakeFiles/codec_advisor.dir/codec_advisor.cpp.o.d"
  "codec_advisor"
  "codec_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
