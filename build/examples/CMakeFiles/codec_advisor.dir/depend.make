# Empty dependencies file for codec_advisor.
# This may be replaced when dependencies are built.
