file(REMOVE_RECURSE
  "CMakeFiles/intcomp_cli.dir/intcomp_cli.cpp.o"
  "CMakeFiles/intcomp_cli.dir/intcomp_cli.cpp.o.d"
  "intcomp_cli"
  "intcomp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intcomp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
