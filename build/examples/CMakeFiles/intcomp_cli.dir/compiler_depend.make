# Empty compiler generated dependencies file for intcomp_cli.
# This may be replaced when dependencies are built.
