
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchutil/flags.cc" "src/CMakeFiles/intcomp.dir/benchutil/flags.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/benchutil/flags.cc.o.d"
  "/root/repo/src/benchutil/report.cc" "src/CMakeFiles/intcomp.dir/benchutil/report.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/benchutil/report.cc.o.d"
  "/root/repo/src/benchutil/timer.cc" "src/CMakeFiles/intcomp.dir/benchutil/timer.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/benchutil/timer.cc.o.d"
  "/root/repo/src/bitmap/bbc.cc" "src/CMakeFiles/intcomp.dir/bitmap/bbc.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/bbc.cc.o.d"
  "/root/repo/src/bitmap/bitset.cc" "src/CMakeFiles/intcomp.dir/bitmap/bitset.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/bitset.cc.o.d"
  "/root/repo/src/bitmap/concise.cc" "src/CMakeFiles/intcomp.dir/bitmap/concise.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/concise.cc.o.d"
  "/root/repo/src/bitmap/ewah.cc" "src/CMakeFiles/intcomp.dir/bitmap/ewah.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/ewah.cc.o.d"
  "/root/repo/src/bitmap/plwah.cc" "src/CMakeFiles/intcomp.dir/bitmap/plwah.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/plwah.cc.o.d"
  "/root/repo/src/bitmap/roaring.cc" "src/CMakeFiles/intcomp.dir/bitmap/roaring.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/roaring.cc.o.d"
  "/root/repo/src/bitmap/runstream.cc" "src/CMakeFiles/intcomp.dir/bitmap/runstream.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/runstream.cc.o.d"
  "/root/repo/src/bitmap/sbh.cc" "src/CMakeFiles/intcomp.dir/bitmap/sbh.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/sbh.cc.o.d"
  "/root/repo/src/bitmap/valwah.cc" "src/CMakeFiles/intcomp.dir/bitmap/valwah.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/valwah.cc.o.d"
  "/root/repo/src/bitmap/wah.cc" "src/CMakeFiles/intcomp.dir/bitmap/wah.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/bitmap/wah.cc.o.d"
  "/root/repo/src/common/bitpack.cc" "src/CMakeFiles/intcomp.dir/common/bitpack.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/common/bitpack.cc.o.d"
  "/root/repo/src/common/simdpack.cc" "src/CMakeFiles/intcomp.dir/common/simdpack.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/common/simdpack.cc.o.d"
  "/root/repo/src/common/simdpack256.cc" "src/CMakeFiles/intcomp.dir/common/simdpack256.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/common/simdpack256.cc.o.d"
  "/root/repo/src/core/codec.cc" "src/CMakeFiles/intcomp.dir/core/codec.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/core/codec.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/CMakeFiles/intcomp.dir/core/hybrid.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/core/hybrid.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/intcomp.dir/core/query.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/core/query.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/intcomp.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/core/registry.cc.o.d"
  "/root/repo/src/core/set_ops.cc" "src/CMakeFiles/intcomp.dir/core/set_ops.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/core/set_ops.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/CMakeFiles/intcomp.dir/core/topk.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/core/topk.cc.o.d"
  "/root/repo/src/index/bitmap_index.cc" "src/CMakeFiles/intcomp.dir/index/bitmap_index.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/index/bitmap_index.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/intcomp.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/invlist/blocked_list.cc" "src/CMakeFiles/intcomp.dir/invlist/blocked_list.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/blocked_list.cc.o.d"
  "/root/repo/src/invlist/groupvb.cc" "src/CMakeFiles/intcomp.dir/invlist/groupvb.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/groupvb.cc.o.d"
  "/root/repo/src/invlist/newpfordelta.cc" "src/CMakeFiles/intcomp.dir/invlist/newpfordelta.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/newpfordelta.cc.o.d"
  "/root/repo/src/invlist/optpfordelta.cc" "src/CMakeFiles/intcomp.dir/invlist/optpfordelta.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/optpfordelta.cc.o.d"
  "/root/repo/src/invlist/pef.cc" "src/CMakeFiles/intcomp.dir/invlist/pef.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/pef.cc.o.d"
  "/root/repo/src/invlist/pfordelta.cc" "src/CMakeFiles/intcomp.dir/invlist/pfordelta.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/pfordelta.cc.o.d"
  "/root/repo/src/invlist/plain_list.cc" "src/CMakeFiles/intcomp.dir/invlist/plain_list.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/plain_list.cc.o.d"
  "/root/repo/src/invlist/simdbp128.cc" "src/CMakeFiles/intcomp.dir/invlist/simdbp128.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/simdbp128.cc.o.d"
  "/root/repo/src/invlist/simdpfordelta.cc" "src/CMakeFiles/intcomp.dir/invlist/simdpfordelta.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/simdpfordelta.cc.o.d"
  "/root/repo/src/invlist/simple16.cc" "src/CMakeFiles/intcomp.dir/invlist/simple16.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/simple16.cc.o.d"
  "/root/repo/src/invlist/simple8b.cc" "src/CMakeFiles/intcomp.dir/invlist/simple8b.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/simple8b.cc.o.d"
  "/root/repo/src/invlist/simple9.cc" "src/CMakeFiles/intcomp.dir/invlist/simple9.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/simple9.cc.o.d"
  "/root/repo/src/invlist/vb.cc" "src/CMakeFiles/intcomp.dir/invlist/vb.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/invlist/vb.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/CMakeFiles/intcomp.dir/workload/datasets.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/workload/datasets.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/intcomp.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/intcomp.dir/workload/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
