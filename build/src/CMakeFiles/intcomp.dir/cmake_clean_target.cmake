file(REMOVE_RECURSE
  "libintcomp.a"
)
