# Empty dependencies file for intcomp.
# This may be replaced when dependencies are built.
