file(REMOVE_RECURSE
  "CMakeFiles/invlist_codec_test.dir/invlist_codec_test.cc.o"
  "CMakeFiles/invlist_codec_test.dir/invlist_codec_test.cc.o.d"
  "invlist_codec_test"
  "invlist_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invlist_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
