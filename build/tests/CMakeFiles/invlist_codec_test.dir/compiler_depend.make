# Empty compiler generated dependencies file for invlist_codec_test.
# This may be replaced when dependencies are built.
