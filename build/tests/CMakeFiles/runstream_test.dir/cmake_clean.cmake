file(REMOVE_RECURSE
  "CMakeFiles/runstream_test.dir/runstream_test.cc.o"
  "CMakeFiles/runstream_test.dir/runstream_test.cc.o.d"
  "runstream_test"
  "runstream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
