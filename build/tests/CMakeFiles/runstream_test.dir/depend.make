# Empty dependencies file for runstream_test.
# This may be replaced when dependencies are built.
