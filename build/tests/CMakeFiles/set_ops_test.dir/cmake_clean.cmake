file(REMOVE_RECURSE
  "CMakeFiles/set_ops_test.dir/set_ops_test.cc.o"
  "CMakeFiles/set_ops_test.dir/set_ops_test.cc.o.d"
  "set_ops_test"
  "set_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
