# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runstream_test "/root/repo/build/tests/runstream_test")
set_tests_properties(runstream_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bitmap_codec_test "/root/repo/build/tests/bitmap_codec_test")
set_tests_properties(bitmap_codec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(invlist_codec_test "/root/repo/build/tests/invlist_codec_test")
set_tests_properties(invlist_codec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codec_property_test "/root/repo/build/tests/codec_property_test")
set_tests_properties(codec_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(set_ops_test "/root/repo/build/tests/set_ops_test")
set_tests_properties(set_ops_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(features_test "/root/repo/build/tests/features_test")
set_tests_properties(features_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_differential_test "/root/repo/build/tests/fuzz_differential_test")
set_tests_properties(fuzz_differential_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;intcomp_add_test;/root/repo/tests/CMakeLists.txt;0;")
