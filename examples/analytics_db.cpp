// A miniature bitmap-indexed analytics table — the paper's database
// scenario (§1 and App. A.2).
//
// Builds a smartphone-sales fact table with low-cardinality columns, one
// compressed set per distinct value (a bitmap index), and answers:
//   - conjunctive queries  (model = 'iPhone' AND state = 'California')
//   - disjunctive queries  (carrier = 'ATT' OR carrier = 'TMobile')
//   - range queries        (age BETWEEN 25 AND 26 -> union of two sets)
//   - a star-join-style query (three predicates ANDed)
//
// Usage: ./build/examples/analytics_db [--rows=1000000] [--codec=Roaring]

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/timer.h"
#include "common/prng.h"
#include "core/registry.h"
#include "core/set_ops.h"
#include "index/bitmap_index.h"

namespace {

using namespace intcomp;

struct Column {
  std::string name;
  std::vector<std::string> values;   // dictionary
  std::vector<uint32_t> codes;       // row -> dictionary code
};

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& dict, uint32_t rows,
                  Prng& rng) {
  Column col;
  col.name = name;
  col.values = dict;
  col.codes.resize(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    // Skewed value popularity, like real categorical data.
    size_t v = 0;
    while (v + 1 < dict.size() && rng.NextDouble() > 0.4) ++v;
    col.codes[r] = static_cast<uint32_t>(v);
  }
  return col;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 1000000));
  const std::string codec_name = flags.GetString("codec", "Roaring");
  const Codec* codec = FindCodec(codec_name);
  if (codec == nullptr) {
    std::printf("unknown codec '%s'\n", codec_name.c_str());
    return 1;
  }

  std::printf("building bitmap index over %u rows with %s...\n", rows,
              codec_name.c_str());
  Prng rng(14);
  std::vector<Column> columns;
  columns.push_back(MakeColumn(
      "model", {"iPhone", "Galaxy", "Pixel", "Xperia"}, rows, rng));
  columns.push_back(MakeColumn(
      "state", {"California", "Texas", "NewYork", "Washington"}, rows, rng));
  columns.push_back(
      MakeColumn("carrier", {"ATT", "Verizon", "TMobile"}, rows, rng));
  columns.push_back(MakeColumn(
      "age", {"24", "25", "26", "27", "28"}, rows, rng));

  // One BitmapIndex per column (the library's database-side index layer).
  std::map<std::string, BitmapIndex> indexes;
  auto code_of = [&](const Column& col, const std::string& value) {
    for (size_t v = 0; v < col.values.size(); ++v) {
      if (col.values[v] == value) return static_cast<uint32_t>(v);
    }
    return ~0u;
  };
  size_t total_bytes = 0;
  for (const Column& col : columns) {
    auto index = BitmapIndex::Build(
        *codec, col.codes, static_cast<uint32_t>(col.values.size()));
    total_bytes += index.SizeInBytes();
    indexes.emplace(col.name, std::move(index));
  }
  std::printf("indexes: %zu columns, %.2f MB total (raw codes: %.2f MB per "
              "column)\n\n",
              indexes.size(), total_bytes / 1048576.0, rows * 4 / 1048576.0);

  const Column* model = &columns[0];
  const Column* state = &columns[1];
  const Column* carrier = &columns[2];

  auto report = [](const char* label, size_t n, double ms) {
    std::printf("%-52s -> %8zu rows (%.3f ms)\n", label, n, ms);
  };

  // The paper's §1 example: iPhone buyers from California. Conjunction =
  // decode one predicate, probe the other column's compressed set.
  {
    WallTimer timer;
    std::vector<uint32_t> iphone, result;
    indexes.at("model").Eq(code_of(*model, "iPhone"), &iphone);
    indexes.at("state").EqAndFilter(code_of(*state, "California"), iphone,
                                    &result);
    report("SELECT * WHERE model=iPhone AND state=California", result.size(),
           timer.ElapsedMs());
  }
  // Disjunction (App. A.2): IN-list over carrier.
  {
    WallTimer timer;
    std::vector<uint32_t> result;
    const uint32_t codes[] = {code_of(*carrier, "ATT"),
                              code_of(*carrier, "TMobile")};
    indexes.at("carrier").In(codes, &result);
    report("SELECT * WHERE carrier IN (ATT, TMobile)", result.size(),
           timer.ElapsedMs());
  }
  // Range query as union of per-value sets (App. A.2, [38]).
  {
    WallTimer timer;
    std::vector<uint32_t> result;
    const Column* age = &columns[3];
    indexes.at("age").Range(code_of(*age, "25"), code_of(*age, "26"), &result);
    report("SELECT * WHERE age BETWEEN 25 AND 26", result.size(),
           timer.ElapsedMs());
  }
  // Star-join-style conjunctive query over three dimensions.
  {
    WallTimer timer;
    std::vector<uint32_t> galaxy, tx, result;
    indexes.at("model").Eq(code_of(*model, "Galaxy"), &galaxy);
    indexes.at("state").EqAndFilter(code_of(*state, "Texas"), galaxy, &tx);
    indexes.at("carrier").EqAndFilter(code_of(*carrier, "Verizon"), tx,
                                      &result);
    report("SELECT * WHERE model=Galaxy AND state=Texas AND carrier=Verizon",
           result.size(), timer.ElapsedMs());
  }
  return 0;
}
