// Codec advisor: measures every compression method on data shaped like
// *your* workload and prints a recommendation, applying the paper's
// decision rules (§7.1):
//   - intersection-heavy   -> Roaring
//   - union-heavy          -> SIMDBP128*
//   - space-constrained    -> SIMDPforDelta* (unless the lists are ultra
//                             dense, where Roaring/Bitset win)
//
// Usage: ./build/examples/codec_advisor --n=1000000 --domain=100000000
//          [--dist=uniform|zipf|markov] [--op=and|or|decode]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/timer.h"
#include "core/registry.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using namespace intcomp;
  Flags flags(argc, argv);
  const size_t n = flags.GetInt("n", 1000000);
  const uint64_t domain = flags.GetInt("domain", 100000000);
  const std::string dist = flags.GetString("dist", "uniform");
  const std::string op = flags.GetString("op", "and");

  auto gen = [&](uint64_t seed) {
    if (dist == "zipf") return GenerateZipf(n, domain, kPaperZipfSkew, seed);
    if (dist == "markov") {
      return GenerateMarkov(n, domain, kPaperMarkovClustering, seed);
    }
    return GenerateUniform(n, domain, seed);
  };
  const auto l1 = gen(1);
  const auto l2 = gen(2);
  std::printf("workload: %s, |L| = %zu, domain = %llu (density %.4f%%), op = %s\n\n",
              dist.c_str(), l1.size(), static_cast<unsigned long long>(domain),
              100.0 * static_cast<double>(n) / static_cast<double>(domain),
              op.c_str());

  struct Entry {
    std::string name;
    double mb;
    double ms;
  };
  std::vector<Entry> entries;
  for (const Codec* codec : AllCodecs()) {
    auto s1 = codec->Encode(l1, domain);
    auto s2 = codec->Encode(l2, domain);
    std::vector<uint32_t> out;
    double ms;
    if (op == "or") {
      ms = MeasureMs([&] { codec->Union(*s1, *s2, &out); });
    } else if (op == "decode") {
      ms = MeasureMs([&] { codec->Decode(*s1, &out); });
    } else {
      ms = MeasureMs([&] { codec->Intersect(*s1, *s2, &out); });
    }
    entries.push_back({std::string(codec->Name()),
                       (s1->SizeInBytes() + s2->SizeInBytes()) / 1048576.0,
                       ms});
  }

  std::printf("%-18s %10s %10s\n", "codec", "MB", "ms");
  for (const auto& e : entries) {
    std::printf("%-18s %10.2f %10.3f\n", e.name.c_str(), e.mb, e.ms);
  }

  auto fastest =
      std::min_element(entries.begin(), entries.end(),
                       [](const Entry& a, const Entry& b) { return a.ms < b.ms; });
  auto smallest =
      std::min_element(entries.begin(), entries.end(),
                       [](const Entry& a, const Entry& b) { return a.mb < b.mb; });
  std::printf("\nfastest for this workload : %s (%.3f ms)\n",
              fastest->name.c_str(), fastest->ms);
  std::printf("smallest for this workload: %s (%.2f MB)\n",
              smallest->name.c_str(), smallest->mb);
  std::printf(
      "\npaper guideline (§7.1): intersections -> Roaring; unions/decode -> "
      "SIMDBP128*; tightest space -> SIMDPforDelta* (or Roaring/Bitset when "
      "density > ~20%%).\n");
  return 0;
}
