// intcomp_cli — a command-line tool over the library, demonstrating codec
// selection, persistence (Serialize/Deserialize), and compressed querying.
//
//   intcomp_cli stats    --in=ids.txt                 # try every codec
//   intcomp_cli compress --in=ids.txt --out=a.icmp --codec=Roaring
//   intcomp_cli inspect  --in=a.icmp
//   intcomp_cli query    --a=a.icmp --b=b.icmp --op=and|or|diff
//
// Input text files contain one non-negative integer per line (need not be
// sorted; duplicates are removed). Compressed files are a small envelope
// (magic + codec name) around the codec's Serialize image.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "core/registry.h"
#include "core/set_ops.h"

namespace {

using namespace intcomp;

constexpr char kMagic[] = "ICMP1";

std::vector<uint32_t> ReadIdFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::vector<uint32_t> v;
  unsigned long long x;
  while (in >> x) v.push_back(static_cast<uint32_t>(x));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

bool WriteCompressed(const std::string& path, const Codec& codec,
                     const CompressedSet& set) {
  std::vector<uint8_t> buf;
  buf.insert(buf.end(), kMagic, kMagic + 5);
  buf.push_back(static_cast<uint8_t>(codec.Name().size()));
  buf.insert(buf.end(), codec.Name().begin(), codec.Name().end());
  codec.Serialize(set, &buf);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out);
}

// Returns the codec and set loaded from `path`, or {nullptr, nullptr}.
std::pair<const Codec*, std::unique_ptr<CompressedSet>> LoadCompressed(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {nullptr, nullptr};
  std::vector<uint8_t> buf((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  if (buf.size() < 6 || std::memcmp(buf.data(), kMagic, 5) != 0) {
    return {nullptr, nullptr};
  }
  const size_t name_len = buf[5];
  if (buf.size() < 6 + name_len) return {nullptr, nullptr};
  const std::string name(reinterpret_cast<const char*>(buf.data() + 6),
                         name_len);
  const Codec* codec = FindCodec(name);
  if (codec == nullptr) return {nullptr, nullptr};
  auto set = codec->Deserialize(buf.data() + 6 + name_len,
                                buf.size() - 6 - name_len);
  return {codec, std::move(set)};
}

int Stats(const Flags& flags) {
  bool ok;
  const auto values = ReadIdFile(flags.GetString("in", ""), &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read --in file\n");
    return 1;
  }
  const uint64_t domain =
      values.empty() ? 1 : static_cast<uint64_t>(values.back()) + 1;
  std::printf("%zu ids, max %u, raw %zu bytes\n\n", values.size(),
              values.empty() ? 0 : values.back(), values.size() * 4);
  std::printf("%-18s %12s %10s\n", "codec", "bytes", "ratio");
  for (const Codec* codec : AllCodecs()) {
    auto set = codec->Encode(values, domain);
    std::printf("%-18s %12zu %9.2fx\n", std::string(codec->Name()).c_str(),
                set->SizeInBytes(),
                set->SizeInBytes() > 0
                    ? static_cast<double>(values.size() * 4) /
                          static_cast<double>(set->SizeInBytes())
                    : 0.0);
  }
  for (const Codec* codec : ExtensionCodecs()) {
    auto set = codec->Encode(values, domain);
    std::printf("%-18s %12zu %9.2fx\n", std::string(codec->Name()).c_str(),
                set->SizeInBytes(),
                static_cast<double>(values.size() * 4) /
                    static_cast<double>(std::max<size_t>(1, set->SizeInBytes())));
  }
  return 0;
}

int Compress(const Flags& flags) {
  bool ok;
  const auto values = ReadIdFile(flags.GetString("in", ""), &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read --in file\n");
    return 1;
  }
  const std::string name = flags.GetString("codec", "Hybrid");
  const Codec* codec = FindCodec(name);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec '%s'\n", name.c_str());
    return 1;
  }
  const uint64_t domain =
      values.empty() ? 1 : static_cast<uint64_t>(values.back()) + 1;
  auto set = codec->Encode(values, domain);
  if (!WriteCompressed(flags.GetString("out", "out.icmp"), *codec, *set)) {
    std::fprintf(stderr, "cannot write --out file\n");
    return 1;
  }
  std::printf("%zu ids -> %zu bytes with %s (%.2fx)\n", values.size(),
              set->SizeInBytes(), name.c_str(),
              static_cast<double>(values.size() * 4) /
                  static_cast<double>(std::max<size_t>(1, set->SizeInBytes())));
  return 0;
}

int Inspect(const Flags& flags) {
  auto [codec, set] = LoadCompressed(flags.GetString("in", ""));
  if (codec == nullptr || set == nullptr) {
    std::fprintf(stderr, "not a valid .icmp file\n");
    return 1;
  }
  std::vector<uint32_t> values;
  codec->Decode(*set, &values);
  std::printf("codec: %s\ncardinality: %zu\ncompressed bytes: %zu\n",
              std::string(codec->Name()).c_str(), set->Cardinality(),
              set->SizeInBytes());
  if (!values.empty()) {
    std::printf("min: %u\nmax: %u\n", values.front(), values.back());
  }
  return 0;
}

int Query(const Flags& flags) {
  auto [ca, sa] = LoadCompressed(flags.GetString("a", ""));
  auto [cb, sb] = LoadCompressed(flags.GetString("b", ""));
  if (ca == nullptr || cb == nullptr || sa == nullptr || sb == nullptr) {
    std::fprintf(stderr, "cannot load --a / --b\n");
    return 1;
  }
  const std::string op = flags.GetString("op", "and");
  std::vector<uint32_t> result;
  if (ca == cb) {  // same codec: operate on the compressed form
    if (op == "or") {
      ca->Union(*sa, *sb, &result);
    } else if (op == "diff") {
      DifferenceSets(*ca, *sa, *sb, &result);
    } else {
      ca->Intersect(*sa, *sb, &result);
    }
  } else {  // cross-codec: decode one side and probe the other
    std::vector<uint32_t> db;
    cb->Decode(*sb, &db);
    if (op == "or") {
      std::vector<uint32_t> da;
      ca->Decode(*sa, &da);
      UnionLists(da, db, &result);
    } else if (op == "diff") {
      std::vector<uint32_t> da, common;
      ca->Decode(*sa, &da);
      IntersectLists(da, db, &common);
      DifferenceLists(da, common, &result);
    } else {
      ca->IntersectWithList(*sa, db, &result);
    }
  }
  std::printf("%zu ids\n", result.size());
  for (size_t i = 0; i < result.size() && i < 20; ++i) {
    std::printf("%u\n", result[i]);
  }
  if (result.size() > 20) std::printf("... (%zu more)\n", result.size() - 20);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: intcomp_cli stats|compress|inspect|query [--flags]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  Flags flags(argc, argv);
  if (cmd == "stats") return Stats(flags);
  if (cmd == "compress") return Compress(flags);
  if (cmd == "inspect") return Inspect(flags);
  if (cmd == "query") return Query(flags);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
