// Quickstart: compress a sorted integer set, decompress it, and intersect
// two compressed sets — the three operations every codec in the library
// supports through the same interface.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/codec.h"
#include "core/registry.h"

int main() {
  using namespace intcomp;

  // The paper's running example (§1): "iPhone" appears at records 2, 5, 10.
  // A bitmap 01001000010... and the inverted list {2, 5, 10} are the same
  // set — every codec here stores exactly such a set.
  std::vector<uint32_t> iphone = {2, 5, 10};
  std::vector<uint32_t> california = {1, 2, 7, 10, 13};
  const uint64_t num_records = 20;

  std::printf("%-14s %14s %18s\n", "codec", "bytes(iPhone)", "AND(result size)");
  for (const Codec* codec : AllCodecs()) {
    auto a = codec->Encode(iphone, num_records);
    auto b = codec->Encode(california, num_records);

    // Decompression gives back the original list.
    std::vector<uint32_t> decoded;
    codec->Decode(*a, &decoded);
    if (decoded != iphone) {
      std::printf("%s: decode mismatch!\n", std::string(codec->Name()).c_str());
      return 1;
    }

    // "Customers who bought an iPhone from California" = AND of the two
    // compressed sets; the result is an uncompressed id list.
    std::vector<uint32_t> both;
    codec->Intersect(*a, *b, &both);

    std::printf("%-14s %14zu %18zu\n", std::string(codec->Name()).c_str(),
                a->SizeInBytes(), both.size());
  }

  // Typical usage pins one codec by name:
  const Codec* roaring = FindCodec("Roaring");
  auto set = roaring->Encode(california, num_records);
  std::printf("\nRoaring stores %zu values in %zu bytes\n", set->Cardinality(),
              set->SizeInBytes());
  return 0;
}
