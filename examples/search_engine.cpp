// A miniature search engine on compressed inverted lists — the paper's
// information-retrieval scenario (App. A.1).
//
// Builds an inverted index over synthetic documents, then answers
// conjunctive (AND) and disjunctive (OR) keyword queries. Following the
// paper's recommendations (§7.1): Roaring for intersection-heavy queries,
// SIMDBP128* for union-heavy ones.
//
// Usage: ./build/examples/search_engine [--codec=Roaring] [--docs=200000]

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/timer.h"
#include "common/prng.h"
#include "core/registry.h"
#include "index/inverted_index.h"

namespace {

using namespace intcomp;

// A toy vocabulary with Zipf-ish popularity: term 0 is the most common.
constexpr const char* kVocabulary[] = {
    "database",  "index",   "compression", "bitmap",   "inverted",
    "list",      "query",   "intersection", "union",   "roaring",
    "simd",      "engine",  "posting",     "document", "retrieval",
};
constexpr size_t kVocabSize = std::size(kVocabulary);

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string codec_name = flags.GetString("codec", "Roaring");
  const uint32_t num_docs =
      static_cast<uint32_t>(flags.GetInt("docs", 200000));

  const Codec* codec = FindCodec(codec_name);
  if (codec == nullptr) {
    std::printf("unknown codec '%s'; available:\n", codec_name.c_str());
    for (const Codec* c : AllCodecs()) {
      std::printf("  %s\n", std::string(c->Name()).c_str());
    }
    return 1;
  }

  // Index build: term t appears in a document with probability ~ 1/(t+2),
  // so postings lengths are skewed like real text.
  std::printf("indexing %u documents with %zu terms using %s...\n", num_docs,
              kVocabSize, codec_name.c_str());
  Prng rng(2017);
  InvertedIndex index(*codec);
  size_t raw_postings = 0;
  std::vector<std::string_view> doc_terms;
  for (uint32_t doc = 0; doc < num_docs; ++doc) {
    doc_terms.clear();
    for (size_t t = 0; t < kVocabSize; ++t) {
      if (rng.NextDouble() < 1.0 / static_cast<double>(t + 2)) {
        doc_terms.push_back(kVocabulary[t]);
      }
    }
    index.AddDocument(doc, doc_terms);
    raw_postings += doc_terms.size();
  }
  index.Finalize();
  std::printf("index size: %.2f MB raw -> %.2f MB compressed (%.1f%%)\n",
              raw_postings * 4 / 1048576.0, index.SizeInBytes() / 1048576.0,
              100.0 * index.SizeInBytes() / (raw_postings * 4));

  // Query processing.
  struct Query {
    const char* kind;
    std::vector<std::string_view> terms;
  };
  const Query queries[] = {
      {"AND", {"database", "compression"}},
      {"AND", {"bitmap", "inverted", "list"}},
      {"AND", {"roaring", "simd", "query", "index"}},
      {"OR", {"union", "intersection"}},
      {"OR", {"engine", "retrieval", "posting"}},
  };
  for (const Query& q : queries) {
    std::string text;
    for (const auto& term : q.terms) {
      text += (text.empty() ? "" : (std::string(" ") + q.kind + " ")) +
              std::string(term);
    }
    std::vector<uint32_t> result;
    WallTimer timer;
    if (std::string(q.kind) == "AND") {
      index.Conjunctive(q.terms, &result);  // SvS with skip pointers
    } else {
      index.Disjunctive(q.terms, &result);
    }
    const double ms = timer.ElapsedMs();
    std::printf("  [%s]  %-55s -> %7zu docs  (%.3f ms)\n", q.kind,
                text.c_str(), result.size(), ms);
    if (!result.empty()) {
      std::printf("        first hits:");
      for (size_t i = 0; i < result.size() && i < 5; ++i) {
        std::printf(" doc%u", result[i]);
      }
      std::printf("\n");
    }
  }

  // Top-k retrieval (paper App. A.1): find the 5 "most relevant" documents
  // containing both terms, with a toy recency score.
  const std::string_view topk_terms[] = {"database", "index"};
  WallTimer timer;
  auto top = index.TopKQuery(topk_terms, 5,
                             [](uint32_t doc) { return double(doc); });
  std::printf("  [TOP5] database AND index, score = recency  (%.3f ms)\n",
              timer.ElapsedMs());
  for (const auto& hit : top) {
    std::printf("        doc%u (score %.0f)\n", hit.doc, hit.score);
  }
  return 0;
}
