#!/bin/sh
# Runs every benchmark binary with default (laptop-scale) settings and
# captures the output the EXPERIMENTS.md results refer to.
#
#   ./run_benches.sh            full laptop-scale run
#   ./run_benches.sh --smoke    1 iteration of every binary at toy sizes —
#                               a CI bit-rot check (seconds, not minutes):
#                               every bench must still build, parse its
#                               flags, and run to completion
#   BUILD_DIR=build-asan ./run_benches.sh --smoke   run against another tree
#   BENCH_JSON=BENCH_pr.json ./run_benches.sh --smoke
#                               additionally append one JSON record per
#                               figure/table panel to BENCH_pr.json (the CI
#                               perf-smoke artifact)
#   ./run_benches.sh --smoke --metrics-dir=DIR
#                               pass --metrics-out=DIR/<bench>.jsonl to every
#                               binary; fails loudly if any binary runs
#                               without producing its metrics artifact
set -e
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
SMOKE=0
METRICS_DIR=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --metrics-dir=*) METRICS_DIR="${arg#--metrics-dir=}" ;;
    *) echo "error: unknown argument $arg" >&2; exit 2 ;;
  esac
done
[ -n "$METRICS_DIR" ] && mkdir -p "$METRICS_DIR"

if [ -n "${BENCH_JSON:-}" ]; then
  rm -f "$BENCH_JSON"
  INTCOMP_BENCH_JSON="$BENCH_JSON"
  export INTCOMP_BENCH_JSON
fi

# The bench flag parser ignores flags a binary doesn't read, so one shared
# set of shrink-everything flags covers all binaries.
SMOKE_FLAGS="--repeats=1 --sizes=20000 --size=20000 --queries=4 --docs=20000 --threads=1,2 --sf=1 --domain=1048576 --kernel=auto"

RAN=0
for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  RAN=$((RAN + 1))
  NAME="$(basename "$b")"
  echo "===== $b ====="
  METRICS_FLAG=""
  if [ -n "$METRICS_DIR" ]; then
    METRICS_FLAG="--metrics-out=$METRICS_DIR/$NAME.jsonl"
  fi
  case "$NAME" in
    micro_kernels)
      # google-benchmark binary: smoke = verify registration and run the
      # lightest kernel once, not the full timed sweep (but still produce
      # the metrics artifact via the instrumented sweep when asked to).
      if [ "$SMOKE" = 1 ]; then
        if [ -n "$METRICS_DIR" ]; then
          "$b" --benchmark_filter=none $METRICS_FLAG > /dev/null
        else
          "$b" --benchmark_list_tests=true > /dev/null
        fi
        echo "(smoke: kernel registration OK)"
      else
        "$b" $METRICS_FLAG
      fi
      ;;
    *)
      if [ "$SMOKE" = 1 ]; then
        # shellcheck disable=SC2086
        "$b" $SMOKE_FLAGS $METRICS_FLAG > /dev/null
        echo "(smoke: OK)"
      else
        "$b" $METRICS_FLAG
      fi
      ;;
  esac
  if [ -n "$METRICS_DIR" ] && [ ! -s "$METRICS_DIR/$NAME.jsonl" ]; then
    echo "error: $NAME ignored --metrics-out ($METRICS_DIR/$NAME.jsonl missing or empty)" >&2
    exit 1
  fi
  echo
done

if [ "$RAN" = 0 ]; then
  echo "error: no bench binaries found under $BUILD_DIR/bench — build first" >&2
  exit 1
fi
