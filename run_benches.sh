#!/bin/sh
# Runs every benchmark binary with default (laptop-scale) settings and
# captures the output the EXPERIMENTS.md results refer to.
set -e
cd "$(dirname "$0")"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b ====="
  "$b"
  echo
done
