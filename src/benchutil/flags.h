// Minimal --key=value / --key value flag parsing for the bench binaries.

#ifndef INTCOMP_BENCHUTIL_FLAGS_H_
#define INTCOMP_BENCHUTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace intcomp {

class Flags {
 public:
  Flags(int argc, char** argv);

  // Returns the flag's value or `def` when absent.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace intcomp

#endif  // INTCOMP_BENCHUTIL_FLAGS_H_
