#include "benchutil/metrics_export.h"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace intcomp {

BenchMetrics::BenchMetrics(std::string bench_name, const Flags& flags)
    : bench_name_(std::move(bench_name)),
      out_path_(flags.GetString("metrics-out", "")),
      format_(flags.GetString("metrics-format", "jsonl")),
      trace_out_path_(flags.GetString("trace-out", "")) {
  const uint32_t sample =
      static_cast<uint32_t>(flags.GetInt("trace-sample", 0));
  if (sample != 0) {
    obs::SetTraceSeed(
        static_cast<uint64_t>(flags.GetInt("trace-seed", 42)));
    obs::SetTraceSampling(sample);
  } else if (!trace_out_path_.empty()) {
    std::fprintf(stderr, "--trace-out requires --trace-sample=N (N > 0)\n");
    std::exit(2);
  }
  if (!enabled()) return;
  if (format_ != "jsonl" && format_ != "prom") {
    std::fprintf(stderr, "bad --metrics-format=%s (want jsonl|prom)\n",
                 format_.c_str());
    std::exit(2);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.SetEnabled(true);
}

BenchMetrics::~BenchMetrics() {
  obs::SetTraceSampling(0);
  if (!trace_out_path_.empty()) {
    // Sampling is off and the bench body has joined its workers, so the ring
    // is quiescent — SnapshotSpans' reader contract holds.
    if (!obs::WriteChromeTrace(trace_out_path_, obs::SnapshotSpans())) {
      std::fprintf(stderr, "error: failed to write trace to %s\n",
                   trace_out_path_.c_str());
      std::exit(1);
    }
    std::printf("# trace written to %s (chrome trace-event)\n",
                trace_out_path_.c_str());
  }
  if (!enabled()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.SetEnabled(false);
  if (!reg.ExportToFile(out_path_, format_, bench_name_)) {
    std::fprintf(stderr, "error: failed to write metrics to %s\n",
                 out_path_.c_str());
    std::exit(1);
  }
  std::printf("# metrics written to %s (%s)\n", out_path_.c_str(),
              format_.c_str());
}

}  // namespace intcomp
