// Shared --metrics-out plumbing for the bench binaries.
//
// Every bench constructs one BenchMetrics right after parsing flags:
//
//   Flags flags(argc, argv);
//   BenchMetrics metrics("tab1_intersection", flags);
//
// Flags it consumes (all optional):
//   --metrics-out=PATH     enable the global MetricsRegistry and write the
//                          collected metrics to PATH on exit
//   --metrics-format=FMT   "jsonl" (default) or "prom"
//   --trace-sample=N       enable tracing at 1/N root sampling (0 = off)
//   --trace-seed=S         sampling PRNG seed (default 42, deterministic)
//   --trace-out=PATH       write the sampled spans as a Chrome trace-event
//                          JSON file on exit (load in chrome://tracing or
//                          Perfetto); requires --trace-sample
//
// The export happens in the destructor, after the bench body ran; a failed
// write is loud (non-zero exit), so run_benches.sh --metrics-dir can trust
// that a missing artifact means the binary never constructed BenchMetrics.

#ifndef INTCOMP_BENCHUTIL_METRICS_EXPORT_H_
#define INTCOMP_BENCHUTIL_METRICS_EXPORT_H_

#include <string>

#include "benchutil/flags.h"

namespace intcomp {

class BenchMetrics {
 public:
  BenchMetrics(std::string bench_name, const Flags& flags);
  ~BenchMetrics();

  BenchMetrics(const BenchMetrics&) = delete;
  BenchMetrics& operator=(const BenchMetrics&) = delete;

  bool enabled() const { return !out_path_.empty(); }

 private:
  std::string bench_name_;
  std::string out_path_;
  std::string format_;
  std::string trace_out_path_;
};

}  // namespace intcomp

#endif  // INTCOMP_BENCHUTIL_METRICS_EXPORT_H_
