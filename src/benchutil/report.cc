#include "benchutil/report.h"

#include <cstdio>

namespace intcomp {

void PrintFigureBlock(const std::string& title,
                      const std::vector<FigureRow>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-18s %12s %12s\n", "codec", "space(MB)", "time(ms)");
  for (const FigureRow& r : rows) {
    std::printf("%-18s %12.3f %12.3f\n", r.codec.c_str(), r.space_mb,
                r.time_ms);
  }
  std::fflush(stdout);
}

void PrintMatrix(const std::string& title,
                 const std::vector<std::string>& col_names,
                 const std::vector<std::string>& row_names,
                 const std::vector<std::vector<double>>& values) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-18s", "codec");
  for (const auto& c : col_names) std::printf(" %12s", c.c_str());
  std::printf("\n");
  for (size_t r = 0; r < row_names.size(); ++r) {
    std::printf("%-18s", row_names[r].c_str());
    for (double v : values[r]) std::printf(" %12.3f", v);
    std::printf("\n");
  }
  std::fflush(stdout);
}

void PrintScalingBlock(const std::string& title,
                       const std::vector<ScalingRow>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-8s %12s %9s %12s %8s %6s\n", "threads", "time(ms)", "speedup",
              "qps", "steals", "busy");
  for (const ScalingRow& r : rows) {
    std::printf("%-8zu %12.3f %8.2fx %12.0f %8llu %6.2f\n", r.threads,
                r.time_ms, r.speedup, r.qps,
                static_cast<unsigned long long>(r.steals), r.busy_fraction);
  }
  std::fflush(stdout);
}

void PrintPaperShape(const std::string& claim) {
  std::printf("# paper-shape: %s\n", claim.c_str());
  std::fflush(stdout);
}

}  // namespace intcomp
