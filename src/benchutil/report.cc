#include "benchutil/report.h"

#include <cstdio>
#include <cstdlib>

#include "common/simd_intersect.h"

namespace intcomp {
namespace {

// Lazily opened JSONL sink shared by all panels of one bench process;
// nullptr (the common case) disables the artifact entirely.
FILE* JsonSink() {
  static FILE* sink = [] {
    const char* path = std::getenv("INTCOMP_BENCH_JSON");
    return (path != nullptr && *path != '\0') ? std::fopen(path, "a")
                                              : nullptr;
  }();
  return sink;
}

void JsonString(FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

void JsonRecordHead(FILE* f, const char* type, const std::string& title) {
  std::fprintf(f, "{\"type\":\"%s\",\"title\":", type);
  JsonString(f, title);
  std::fprintf(f, ",\"kernel\":\"%s\"",
               std::string(KernelModeName(GetKernelMode())).c_str());
}

}  // namespace

void PrintFigureBlock(const std::string& title,
                      const std::vector<FigureRow>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-18s %12s %12s\n", "codec", "space(MB)", "time(ms)");
  for (const FigureRow& r : rows) {
    std::printf("%-18s %12.3f %12.3f\n", r.codec.c_str(), r.space_mb,
                r.time_ms);
  }
  std::fflush(stdout);
  if (FILE* f = JsonSink()) {
    JsonRecordHead(f, "figure", title);
    std::fprintf(f, ",\"rows\":[");
    for (size_t r = 0; r < rows.size(); ++r) {
      std::fprintf(f, "%s{\"codec\":", r == 0 ? "" : ",");
      JsonString(f, rows[r].codec);
      std::fprintf(f, ",\"space_mb\":%.6f,\"time_ms\":%.6f}", rows[r].space_mb,
                   rows[r].time_ms);
    }
    std::fprintf(f, "]}\n");
    std::fflush(f);
  }
}

void PrintMatrix(const std::string& title,
                 const std::vector<std::string>& col_names,
                 const std::vector<std::string>& row_names,
                 const std::vector<std::vector<double>>& values) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-18s", "codec");
  for (const auto& c : col_names) std::printf(" %12s", c.c_str());
  std::printf("\n");
  for (size_t r = 0; r < row_names.size(); ++r) {
    std::printf("%-18s", row_names[r].c_str());
    for (double v : values[r]) std::printf(" %12.3f", v);
    std::printf("\n");
  }
  std::fflush(stdout);
  if (FILE* f = JsonSink()) {
    JsonRecordHead(f, "matrix", title);
    std::fprintf(f, ",\"cols\":[");
    for (size_t c = 0; c < col_names.size(); ++c) {
      if (c != 0) std::fputc(',', f);
      JsonString(f, col_names[c]);
    }
    std::fprintf(f, "],\"rows\":[");
    for (size_t r = 0; r < row_names.size(); ++r) {
      std::fprintf(f, "%s{\"name\":", r == 0 ? "" : ",");
      JsonString(f, row_names[r]);
      std::fprintf(f, ",\"values\":[");
      for (size_t c = 0; c < values[r].size(); ++c) {
        std::fprintf(f, "%s%.6f", c == 0 ? "" : ",", values[r][c]);
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "]}\n");
    std::fflush(f);
  }
}

void PrintScalingBlock(const std::string& title,
                       const std::vector<ScalingRow>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-8s %12s %9s %12s %8s %6s\n", "threads", "time(ms)", "speedup",
              "qps", "steals", "busy");
  for (const ScalingRow& r : rows) {
    std::printf("%-8zu %12.3f %8.2fx %12.0f %8llu %6.2f\n", r.threads,
                r.time_ms, r.speedup, r.qps,
                static_cast<unsigned long long>(r.steals), r.busy_fraction);
  }
  std::fflush(stdout);
  if (FILE* f = JsonSink()) {
    JsonRecordHead(f, "scaling", title);
    std::fprintf(f, ",\"rows\":[");
    for (size_t r = 0; r < rows.size(); ++r) {
      std::fprintf(f,
                   "%s{\"threads\":%zu,\"time_ms\":%.6f,\"speedup\":%.4f,"
                   "\"qps\":%.1f,\"steals\":%llu,\"busy_fraction\":%.4f}",
                   r == 0 ? "" : ",", rows[r].threads, rows[r].time_ms,
                   rows[r].speedup, rows[r].qps,
                   static_cast<unsigned long long>(rows[r].steals),
                   rows[r].busy_fraction);
    }
    std::fprintf(f, "]}\n");
    std::fflush(f);
  }
}

void PrintPaperShape(const std::string& claim) {
  std::printf("# paper-shape: %s\n", claim.c_str());
  std::fflush(stdout);
}

}  // namespace intcomp
