// Paper-style result printing: one block per figure panel (rows of
// codec / space / time) or one matrix per table.

#ifndef INTCOMP_BENCHUTIL_REPORT_H_
#define INTCOMP_BENCHUTIL_REPORT_H_

#include <string>
#include <vector>

namespace intcomp {

struct FigureRow {
  std::string codec;
  double space_mb = 0;
  double time_ms = 0;
};

// Prints a figure panel, e.g.
//   == Fig 3a: decompression, uniform, |L| = 1M ==
//   codec            space(MB)   time(ms)
//   Bitset             256.00       41.48 ...
void PrintFigureBlock(const std::string& title,
                      const std::vector<FigureRow>& rows);

// Prints a table with one row per codec and one column per configuration
// (e.g. Table 1's list sizes), like the paper's Tables 1-3.
void PrintMatrix(const std::string& title,
                 const std::vector<std::string>& col_names,
                 const std::vector<std::string>& row_names,
                 const std::vector<std::vector<double>>& values);

// Prints a "# paper-shape: ..." footer restating the qualitative result the
// panel is expected to reproduce.
void PrintPaperShape(const std::string& claim);

// All Print* functions additionally append one JSON record per panel to the
// file named by the INTCOMP_BENCH_JSON environment variable (JSONL, opened
// in append mode so several bench binaries can share one artifact). Each
// record carries the active kernel mode, making scalar-vs-SIMD ablation runs
// diffable by machines (the CI perf-smoke job archives this file).

// One thread-count sample of a parallel scaling sweep (tab1_parallel).
struct ScalingRow {
  size_t threads = 0;
  double time_ms = 0;
  double speedup = 0;        // vs the 1-thread row of the same sweep
  double qps = 0;            // queries per second
  uint64_t steals = 0;       // work-stealing events during the batch
  double busy_fraction = 0;  // worker time inside tasks, in [0, 1]
};

// Prints a per-codec scaling block: one row per thread count with speedup
// relative to single-threaded, e.g.
//   == tab1_parallel: Roaring, uniform/1000000 ==
//   threads     time(ms)   speedup         qps   steals  busy
void PrintScalingBlock(const std::string& title,
                       const std::vector<ScalingRow>& rows);

}  // namespace intcomp

#endif  // INTCOMP_BENCHUTIL_REPORT_H_
