// Paper-style result printing: one block per figure panel (rows of
// codec / space / time) or one matrix per table.

#ifndef INTCOMP_BENCHUTIL_REPORT_H_
#define INTCOMP_BENCHUTIL_REPORT_H_

#include <string>
#include <vector>

namespace intcomp {

struct FigureRow {
  std::string codec;
  double space_mb = 0;
  double time_ms = 0;
};

// Prints a figure panel, e.g.
//   == Fig 3a: decompression, uniform, |L| = 1M ==
//   codec            space(MB)   time(ms)
//   Bitset             256.00       41.48 ...
void PrintFigureBlock(const std::string& title,
                      const std::vector<FigureRow>& rows);

// Prints a table with one row per codec and one column per configuration
// (e.g. Table 1's list sizes), like the paper's Tables 1-3.
void PrintMatrix(const std::string& title,
                 const std::vector<std::string>& col_names,
                 const std::vector<std::string>& row_names,
                 const std::vector<std::vector<double>>& values);

// Prints a "# paper-shape: ..." footer restating the qualitative result the
// panel is expected to reproduce.
void PrintPaperShape(const std::string& claim);

}  // namespace intcomp

#endif  // INTCOMP_BENCHUTIL_REPORT_H_
