#include "benchutil/timer.h"

#include <algorithm>

namespace intcomp {

double MeasureMs(const std::function<void()>& fn, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedMs());
  }
  return best;
}

}  // namespace intcomp
