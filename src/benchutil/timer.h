// Wall-clock measurement helpers for the benchmark harness.

#ifndef INTCOMP_BENCHUTIL_TIMER_H_
#define INTCOMP_BENCHUTIL_TIMER_H_

#include <chrono>
#include <functional>

namespace intcomp {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Runs `fn` `repeats` times and returns the minimum wall time in ms (the
// standard way to suppress scheduler noise for in-memory microbenchmarks).
double MeasureMs(const std::function<void()>& fn, int repeats = 3);

}  // namespace intcomp

#endif  // INTCOMP_BENCHUTIL_TIMER_H_
