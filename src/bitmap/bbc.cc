#include "bitmap/bbc.h"

#include <algorithm>

#include "bitmap/group_builder.h"
#include "common/bits.h"

// Bit-order note: the paper's Fig. 2 draws bitmaps left-to-right and numbers
// the odd-bit position from the right of each displayed byte. Internally we
// map bitmap position p to byte p/8, bit p%8 (LSB first), which mirrors the
// illustration but is self-consistent across all codecs in this library.

namespace intcomp {
namespace {

class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* bytes) : bytes_(bytes) {}

  void AddFill(bool bit, uint64_t n) {
    if (n == 0) return;
    if (!literals_.empty() || (fill_count_ > 0 && fill_bit_ != bit)) Emit();
    fill_bit_ = bit;
    fill_count_ += n;
  }

  void AddLiteral(uint32_t payload) {
    if (payload == 0) {
      AddFill(false, 1);
    } else if (payload == 0xffu) {
      AddFill(true, 1);
    } else {
      literals_.push_back(static_cast<uint8_t>(payload));
    }
  }

  void Finish() { Emit(); }

 private:
  void Emit() {
    uint64_t k = fill_count_;
    bool t = fill_bit_;
    fill_count_ = 0;
    if (literals_.empty() && k == 0) return;

    // Odd-byte special case: exactly one literal differing from the fill
    // byte in a single bit (patterns 2 and 4).
    if (literals_.size() == 1) {
      uint8_t lit = literals_[0];
      bool odd_type = t;
      bool is_odd = false;
      if (k > 0) {
        is_odd = PopCount32(lit ^ (t ? 0xffu : 0x00u)) == 1;
      } else if (PopCount32(lit) == 1) {
        is_odd = true;
        odd_type = false;
      } else if (PopCount32(lit) == 7) {
        is_odd = true;
        odd_type = true;
      }
      if (is_odd) {
        uint32_t pos = static_cast<uint32_t>(
            CountTrailingZeros32(lit ^ (odd_type ? 0xffu : 0x00u)));
        if (k <= 3) {
          bytes_->push_back(static_cast<uint8_t>(
              0x40 | (odd_type ? 0x20 : 0) | (k << 3) | pos));
        } else {
          bytes_->push_back(
              static_cast<uint8_t>(0x10 | (odd_type ? 0x08 : 0) | pos));
          VByteEncode(static_cast<uint32_t>(k), bytes_);
        }
        literals_.clear();
        return;
      }
    }

    // General case: header + literal tail, split into chunks of 15.
    size_t emitted = 0;
    bool first = true;
    do {
      size_t q = std::min<size_t>(15, literals_.size() - emitted);
      uint64_t header_fills = first ? k : 0;
      if (header_fills <= 3) {
        bytes_->push_back(static_cast<uint8_t>(
            0x80 | (t ? 0x40 : 0) | (header_fills << 4) | q));
      } else {
        bytes_->push_back(static_cast<uint8_t>(0x20 | (t ? 0x10 : 0) | q));
        VByteEncode(static_cast<uint32_t>(header_fills), bytes_);
      }
      bytes_->insert(bytes_->end(), literals_.begin() + emitted,
                     literals_.begin() + emitted + q);
      emitted += q;
      first = false;
    } while (emitted < literals_.size());
    literals_.clear();
  }

  std::vector<uint8_t>* bytes_;
  std::vector<uint8_t> literals_;
  uint64_t fill_count_ = 0;
  bool fill_bit_ = false;
};

}  // namespace

namespace {

// Bounds-checked mirror of VByteDecode: consumes the same bytes on success,
// fails on truncation or counters that do not fit in 32 bits (6+ bytes, or a
// 5th byte with payload above bit 31). Genuine BBC fill counters are at most
// 2^29 (domain 2^32 over 8-bit groups), well inside both limits.
bool CheckedVByte(const uint8_t* data, size_t size, size_t* pos) {
  int shift = 0;
  while (true) {
    if (*pos >= size) return false;
    const uint8_t byte = data[(*pos)++];
    if (shift == 28 && (byte & 0x70) != 0) return false;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift > 28) return false;
  }
}

}  // namespace

bool BbcTraits::CheckStream(std::span<const uint8_t> bytes) {
  const uint8_t* data = bytes.data();
  const size_t size = bytes.size();
  size_t pos = 0;
  while (pos < size) {
    const uint8_t h = data[pos++];
    uint32_t lits = 0;
    if (h & 0x80) {  // P1: fills and literal count inside the header
      lits = h & 0x0f;
    } else if (h & 0x40) {  // P2: fully self-contained
    } else if (h & 0x20) {  // P3: VByte fill counter + literals
      lits = h & 0x0f;
      if (!CheckedVByte(data, size, &pos)) return false;
    } else {  // P4: VByte fill counter + odd byte (synthesized, no read)
      if (!CheckedVByte(data, size, &pos)) return false;
    }
    if (lits > size - pos) return false;
    pos += lits;
  }
  return true;
}

void BbcTraits::EncodeWords(std::span<const uint32_t> sorted,
                            std::vector<uint8_t>* bytes) {
  bytes->clear();
  Encoder enc(bytes);
  ForEachGroup(sorted, Decoder::kGroupBits,
               [&enc](uint64_t zero_gap, uint32_t payload) {
                 enc.AddFill(false, zero_gap);
                 enc.AddLiteral(payload);
               });
  enc.Finish();
}

}  // namespace intcomp
