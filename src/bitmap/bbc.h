// BBC (Byte-aligned Bitmap Code) — paper §2.8 and Fig. 2, [4, 22].
//
// 8-bit groups. Four header patterns:
//   P1 (1 t kk qqqq): up to 3 fill bytes + up to 15 literal bytes (verbatim).
//   P2 (01 t kk ppp): up to 3 fill bytes + one "odd" byte differing from the
//       fill in exactly bit p — all in one header byte.
//   P3 (001 t qqqq):  >= 4 fill bytes (VByte counter follows) + literals.
//   P4 (0001 t ppp):  >= 4 fill bytes (VByte counter) + one odd byte.
// Bit positions are numbered from the least-significant bit (the mirror
// image of the paper's left-to-right illustration; see bbc.cc).

#ifndef INTCOMP_BITMAP_BBC_H_
#define INTCOMP_BITMAP_BBC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/rle_codec.h"
#include "bitmap/runstream.h"
#include "common/vbyte_raw.h"

namespace intcomp {

struct BbcTraits {
  static constexpr char kName[] = "BBC";
  using Word = uint8_t;

  class Decoder {
   public:
    static constexpr int kGroupBits = 8;

    explicit Decoder(std::span<const uint8_t> bytes)
        : data_(bytes.data()), size_(bytes.size()) {}

    bool Next(RunSegment* seg) {
      if (literals_left_ > 0) {
        --literals_left_;
        seg->is_fill = false;
        seg->literal = data_[pos_++];
        return true;
      }
      if (has_odd_) {
        has_odd_ = false;
        seg->is_fill = false;
        seg->literal = odd_;
        return true;
      }
      while (pos_ < size_) {
        uint8_t h = data_[pos_++];
        bool t;
        uint32_t fills;
        if (h & 0x80) {  // P1
          t = (h & 0x40) != 0;
          fills = (h >> 4) & 3u;
          literals_left_ = h & 0x0f;
        } else if (h & 0x40) {  // P2
          t = (h & 0x20) != 0;
          fills = (h >> 3) & 3u;
          SetOdd(t, h & 7u);
        } else if (h & 0x20) {  // P3
          t = (h & 0x10) != 0;
          literals_left_ = h & 0x0f;
          fills = VByteDecode(data_, &pos_);
        } else {  // P4
          t = (h & 0x08) != 0;
          uint32_t p = h & 7u;
          fills = VByteDecode(data_, &pos_);
          SetOdd(t, p);
        }
        if (fills > 0) {
          seg->is_fill = true;
          seg->fill_bit = t;
          seg->count = fills;
          return true;
        }
        if (literals_left_ > 0) {
          --literals_left_;
          seg->is_fill = false;
          seg->literal = data_[pos_++];
          return true;
        }
        if (has_odd_) {
          has_odd_ = false;
          seg->is_fill = false;
          seg->literal = odd_;
          return true;
        }
      }
      return false;
    }

   private:
    void SetOdd(bool t, uint32_t p) {
      odd_ = (t ? 0xffu : 0x00u) ^ (1u << p);
      has_odd_ = true;
    }

    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
    uint32_t literals_left_ = 0;
    uint32_t odd_ = 0;
    bool has_odd_ = false;
  };

  static void EncodeWords(std::span<const uint32_t> sorted,
                          std::vector<uint8_t>* bytes);

  // Walks the header structure with bounds checks (the Decoder's literal
  // reads and VByte fill counters trust the headers). Required before
  // running a Decoder over an untrusted stream.
  static bool CheckStream(std::span<const uint8_t> bytes);
};

using BbcCodec = RleBitmapCodec<BbcTraits>;

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_BBC_H_
