#include "bitmap/bitset.h"

#include <algorithm>

#include "common/bits.h"
#include "common/serialize_util.h"
#include "common/status.h"

namespace intcomp {

std::unique_ptr<CompressedSet> BitsetCodec::Encode(
    std::span<const uint32_t> sorted, uint64_t /*domain*/) const {
  auto set = std::make_unique<Set>();
  set->cardinality = sorted.size();
  if (!sorted.empty()) {
    // Size tracks the maximal element: trailing zero words are not stored.
    std::vector<uint64_t> words(static_cast<size_t>(sorted.back()) / 64 + 1, 0);
    for (uint32_t v : sorted) words[v >> 6] |= uint64_t{1} << (v & 63);
    set->words = VArray<uint64_t>(std::move(words));
  }
  return set;
}

void BitsetCodec::Decode(const CompressedSet& set,
                         std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  out->resize(s.cardinality);  // every slot is overwritten below
  uint32_t* p = out->data();
  for (size_t w = 0; w < s.words.size(); ++w) {
    p = EmitSetBits64(s.words[w], static_cast<uint32_t>(w * 64), p);
  }
}

void BitsetCodec::Intersect(const CompressedSet& a, const CompressedSet& b,
                            std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  out->clear();
  size_t n = std::min(sa.words.size(), sb.words.size());
  for (size_t w = 0; w < n; ++w) {
    uint64_t x = sa.words[w] & sb.words[w];
    while (x != 0) {
      out->push_back(static_cast<uint32_t>(w * 64) +
                     static_cast<uint32_t>(CountTrailingZeros64(x)));
      x = ClearLowestBit64(x);
    }
  }
}

void BitsetCodec::Union(const CompressedSet& a, const CompressedSet& b,
                        std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  out->clear();
  out->reserve(sa.cardinality + sb.cardinality);
  size_t n = std::max(sa.words.size(), sb.words.size());
  for (size_t w = 0; w < n; ++w) {
    uint64_t x = (w < sa.words.size() ? sa.words[w] : 0) |
                 (w < sb.words.size() ? sb.words[w] : 0);
    while (x != 0) {
      out->push_back(static_cast<uint32_t>(w * 64) +
                     static_cast<uint32_t>(CountTrailingZeros64(x)));
      x = ClearLowestBit64(x);
    }
  }
}

void BitsetCodec::IntersectWithList(const CompressedSet& a,
                                    std::span<const uint32_t> probe,
                                    std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  out->clear();
  const uint64_t limit = sa.words.size() * 64;
  for (uint32_t v : probe) {
    if (v >= limit) break;  // probe is sorted; nothing further can match
    if ((sa.words[v >> 6] >> (v & 63)) & 1u) out->push_back(v);
  }
}

void BitsetCodec::Serialize(const CompressedSet& set,
                            std::vector<uint8_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  ByteWriter(out).PutU64(s.cardinality);
  WriteSpan<uint64_t>(s.words, out);
}

std::unique_ptr<CompressedSet> BitsetCodec::Deserialize(const uint8_t* data,
                                                        size_t size) const {
  ByteReader reader(data, size);
  if (reader.Remaining() < 8) return nullptr;
  auto set = std::make_unique<Set>();
  set->cardinality = reader.GetU64();
  std::vector<uint64_t> words;
  if (!ReadVector(&reader, &words)) return nullptr;
  set->words = VArray<uint64_t>(std::move(words));
  return set;
}

std::unique_ptr<CompressedSet> BitsetCodec::DeserializeView(
    std::span<const uint8_t> image) const {
  // [u64 cardinality][u64 nwords][words...] — words start 16 bytes in, so an
  // 8-byte-aligned image borrows in place; misaligned images fall back.
  CheckedByteReader reader(image.data(), image.size());
  uint64_t cardinality = 0;
  uint64_t n = 0;
  if (!reader.GetU64(&cardinality) || !reader.GetU64(&n)) return nullptr;
  if (n > reader.Remaining() / sizeof(uint64_t)) return nullptr;
  const uint8_t* p = image.data() + reader.Position();
  if (reinterpret_cast<uintptr_t>(p) % alignof(uint64_t) != 0) {
    return Deserialize(image.data(), image.size());
  }
  auto set = std::make_unique<Set>();
  set->cardinality = cardinality;
  set->words = VArray<uint64_t>::View(
      {reinterpret_cast<const uint64_t*>(p), static_cast<size_t>(n)});
  return set;
}

Status BitsetCodec::ValidateSet(const CompressedSet& set,
                                uint64_t domain) const {
  const auto& s = static_cast<const Set&>(set);
  const uint64_t dmax = std::min<uint64_t>(domain, uint64_t{1} << 32);
  // Decode sizes its output from `cardinality` and writes one slot per set
  // bit, so a popcount mismatch is an out-of-bounds write, not just a wrong
  // answer. The word count bound also keeps Decode's w*64 base in uint32.
  if (s.words.size() > (dmax + 63) / 64) {
    return Status::Corrupt("bitmap wider than domain");
  }
  uint64_t bits = 0;
  for (uint64_t w : s.words) bits += PopCount64(w);
  if (bits != s.cardinality) {
    return Status::Corrupt("cardinality mismatch");
  }
  if (!s.words.empty() && s.words.back() != 0) {
    const uint64_t high =
        (s.words.size() - 1) * 64 + (BitWidth64(s.words.back()) - 1);
    if (high >= dmax) {
      return Status::Corrupt("set bit past domain");
    }
  }
  return Status::Ok();
}

}  // namespace intcomp
