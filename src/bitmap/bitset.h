// Bitset — the uncompressed bitmap baseline ("Bitset" in the paper's
// legends). Space and performance depend on the maximal element, not the
// list size (paper §5.1(5)).

#ifndef INTCOMP_BITMAP_BITSET_H_
#define INTCOMP_BITMAP_BITSET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/varray.h"
#include "core/codec.h"

namespace intcomp {

class BitsetCodec final : public Codec {
 public:
  struct Set final : CompressedSet {
    // bit i of word w = value 64*w + i; a borrowed view when mmap-backed.
    VArray<uint64_t> words;
    size_t cardinality = 0;

    size_t SizeInBytes() const override { return words.size() * 8; }
    size_t Cardinality() const override { return cardinality; }
  };

  BitsetCodec() = default;

  std::string_view Name() const override { return "Bitset"; }
  CodecFamily Family() const override { return CodecFamily::kBitmap; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t domain) const override;
  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override;
  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override;
  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override;
  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override;
  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override;
  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override;
  std::unique_ptr<CompressedSet> DeserializeView(
      std::span<const uint8_t> image) const override;
  bool SupportsViewDeserialize() const override { return true; }
  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override;
};

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_BITSET_H_
