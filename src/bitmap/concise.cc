#include "bitmap/concise.h"

#include <algorithm>

#include "bitmap/group_builder.h"

namespace intcomp {
namespace {

// Streaming encoder. Invariant: at most one of (held literal, pending fill)
// is active — a literal flushes any pending fill, and a fill first tries to
// absorb the held literal as its mixed first group.
class Encoder {
 public:
  explicit Encoder(std::vector<uint32_t>* words) : words_(words) {}

  void AddFill(bool bit, uint64_t n) {
    if (n == 0) return;
    if (has_held_) {
      uint32_t fill_pattern = bit ? ConciseTraits::kPayloadOnes : 0u;
      uint32_t diff = held_ ^ fill_pattern;
      if (PopCount32(diff) == 1) {
        // Merge the held near-fill literal as the run's mixed first group.
        uint32_t pos = static_cast<uint32_t>(CountTrailingZeros32(diff)) + 1;
        EmitRun(bit, pos, n + 1);
        has_held_ = false;
        return;
      }
      words_->push_back(ConciseTraits::kLiteralFlag | held_);
      has_held_ = false;
    }
    if (fill_count_ > 0 && fill_bit_ != bit) FlushFill();
    fill_bit_ = bit;
    fill_count_ += n;
  }

  void AddLiteral(uint32_t payload) {
    if (payload == 0) {
      AddFill(false, 1);
      return;
    }
    if (payload == ConciseTraits::kPayloadOnes) {
      AddFill(true, 1);
      return;
    }
    FlushFill();
    if (has_held_) words_->push_back(ConciseTraits::kLiteralFlag | held_);
    held_ = payload;
    has_held_ = true;
  }

  void Finish() {
    FlushFill();
    if (has_held_) {
      words_->push_back(ConciseTraits::kLiteralFlag | held_);
      has_held_ = false;
    }
  }

 private:
  void FlushFill() {
    if (fill_count_ > 0) EmitRun(fill_bit_, 0, fill_count_);
    fill_count_ = 0;
  }

  void EmitRun(bool bit, uint32_t position, uint64_t groups) {
    // Only the first word of a split run carries the odd-bit position.
    uint64_t n = std::min(groups, ConciseTraits::kMaxRunGroups);
    words_->push_back(ConciseTraits::MakeSequence(bit, position, n));
    groups -= n;
    while (groups > 0) {
      n = std::min(groups, ConciseTraits::kMaxRunGroups);
      words_->push_back(ConciseTraits::MakeSequence(bit, 0, n));
      groups -= n;
    }
  }

  std::vector<uint32_t>* words_;
  uint64_t fill_count_ = 0;
  bool fill_bit_ = false;
  uint32_t held_ = 0;
  bool has_held_ = false;
};

}  // namespace

void ConciseTraits::EncodeWords(std::span<const uint32_t> sorted,
                                std::vector<uint32_t>* words) {
  words->clear();
  Encoder enc(words);
  ForEachGroup(sorted, Decoder::kGroupBits,
               [&enc](uint64_t zero_gap, uint32_t payload) {
                 enc.AddFill(false, zero_gap);
                 enc.AddLiteral(payload);
               });
  enc.Finish();
}

}  // namespace intcomp
