// CONCISE (Compressed 'n' Composable Integer Set) — paper §2.3, [13].
//
// 31-bit groups. A literal word has MSB = 1 and the group payload in the low
// 31 bits. A sequence (fill) word has MSB = 0, bit 30 = fill value, bits
// 29..25 = odd-bit position, bits 24..0 = number of groups in the run minus
// one. A non-zero position p means the *first* group of the run is not a
// pure fill: its bit p-1 is flipped relative to the fill value ("mixed fill
// group" — the limitation of WAH that CONCISE addresses).

#ifndef INTCOMP_BITMAP_CONCISE_H_
#define INTCOMP_BITMAP_CONCISE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/rle_codec.h"
#include "bitmap/runstream.h"
#include "common/bits.h"

namespace intcomp {

struct ConciseTraits {
  static constexpr char kName[] = "CONCISE";
  using Word = uint32_t;

  static constexpr uint32_t kLiteralFlag = 0x80000000u;
  static constexpr uint32_t kFillBit = 0x40000000u;
  static constexpr uint32_t kCountMask = 0x01ffffffu;  // 25 bits
  static constexpr uint64_t kMaxRunGroups = uint64_t{1} << 25;
  static constexpr uint32_t kPayloadOnes = (1u << 31) - 1;

  static uint32_t MakeSequence(bool fill_bit, uint32_t position,
                               uint64_t groups) {
    return (fill_bit ? kFillBit : 0u) | (position << 25) |
           static_cast<uint32_t>(groups - 1);
  }

  class Decoder {
   public:
    static constexpr int kGroupBits = 31;

    explicit Decoder(std::span<const uint32_t> words)
        : p_(words.data()), end_(words.data() + words.size()) {}

    bool Next(RunSegment* seg) {
      if (pending_groups_ > 0) {
        seg->is_fill = true;
        seg->fill_bit = pending_bit_;
        seg->count = pending_groups_;
        pending_groups_ = 0;
        return true;
      }
      if (p_ == end_) return false;
      uint32_t w = *p_++;
      if (w & kLiteralFlag) {
        seg->is_fill = false;
        seg->literal = w & kPayloadOnes;
        return true;
      }
      bool bit = (w & kFillBit) != 0;
      uint32_t pos = (w >> 25) & 31u;
      uint64_t groups = (w & kCountMask) + uint64_t{1};
      if (pos == 0) {
        seg->is_fill = true;
        seg->fill_bit = bit;
        seg->count = groups;
        return true;
      }
      // Mixed first group: a near-fill literal, then the rest of the run.
      seg->is_fill = false;
      seg->literal = (bit ? kPayloadOnes : 0u) ^ (1u << (pos - 1));
      if (groups > 1) {
        pending_bit_ = bit;
        pending_groups_ = groups - 1;
      }
      return true;
    }

   private:
    const uint32_t* p_;
    const uint32_t* end_;
    uint64_t pending_groups_ = 0;
    bool pending_bit_ = false;
  };

  static void EncodeWords(std::span<const uint32_t> sorted,
                          std::vector<uint32_t>* words);
};

using ConciseCodec = RleBitmapCodec<ConciseTraits>;

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_CONCISE_H_
