#include "bitmap/ewah.h"

#include <algorithm>

#include "bitmap/group_builder.h"

namespace intcomp {
namespace {

class Encoder {
 public:
  explicit Encoder(std::vector<uint32_t>* words) : words_(words) {}

  void AddFill(bool bit, uint64_t n) {
    if (n == 0) return;
    // Literals must be flushed before a new fill run starts, and a marker
    // carries only one fill value, so differing runs also force a flush.
    if (!literals_.empty() || (fill_count_ > 0 && fill_bit_ != bit)) Flush();
    fill_bit_ = bit;
    fill_count_ += n;
  }

  void AddLiteral(uint32_t payload) {
    if (payload == 0) {
      AddFill(false, 1);
    } else if (payload == ~uint32_t{0}) {
      AddFill(true, 1);
    } else {
      literals_.push_back(payload);
      if (literals_.size() == EwahTraits::kMaxLiterals) Flush();
    }
  }

  void Finish() { Flush(); }

 private:
  void Flush() {
    while (fill_count_ > EwahTraits::kMaxFill) {
      words_->push_back(EwahTraits::MakeMarker(fill_bit_, EwahTraits::kMaxFill, 0));
      fill_count_ -= EwahTraits::kMaxFill;
    }
    if (fill_count_ == 0 && literals_.empty()) return;
    words_->push_back(EwahTraits::MakeMarker(
        fill_bit_, static_cast<uint32_t>(fill_count_),
        static_cast<uint32_t>(literals_.size())));
    words_->insert(words_->end(), literals_.begin(), literals_.end());
    fill_count_ = 0;
    literals_.clear();
  }

  std::vector<uint32_t>* words_;
  std::vector<uint32_t> literals_;
  uint64_t fill_count_ = 0;
  bool fill_bit_ = false;
};

}  // namespace

void EwahTraits::EncodeWords(std::span<const uint32_t> sorted,
                             std::vector<uint32_t>* words) {
  words->clear();
  Encoder enc(words);
  ForEachGroup(sorted, Decoder::kGroupBits,
               [&enc](uint64_t zero_gap, uint32_t payload) {
                 enc.AddFill(false, zero_gap);
                 enc.AddLiteral(payload);
               });
  enc.Finish();
}

}  // namespace intcomp
