// EWAH (Enhanced Word-Aligned Hybrid) — paper §2.2, [26].
//
// The bitmap is split into 32-bit groups. A *marker* word encodes a run of
// p fill groups (p <= 65535, one fill value) followed by q literal groups
// (q <= 32767) stored verbatim after the marker. Marker layout (from MSB):
// bit 31 = fill value, bits 30..15 = p, bits 14..0 = q. The stream always
// starts with a marker.

#ifndef INTCOMP_BITMAP_EWAH_H_
#define INTCOMP_BITMAP_EWAH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/rle_codec.h"
#include "bitmap/runstream.h"

namespace intcomp {

struct EwahTraits {
  static constexpr char kName[] = "EWAH";
  using Word = uint32_t;

  static constexpr uint32_t kMaxFill = 65535;
  static constexpr uint32_t kMaxLiterals = 32767;

  static uint32_t MakeMarker(bool fill_bit, uint32_t p, uint32_t q) {
    return (fill_bit ? 0x80000000u : 0u) | (p << 15) | q;
  }

  class Decoder {
   public:
    static constexpr int kGroupBits = 32;

    explicit Decoder(std::span<const uint32_t> words)
        : p_(words.data()), end_(words.data() + words.size()) {}

    bool Next(RunSegment* seg) {
      if (literals_left_ > 0) {
        --literals_left_;
        seg->is_fill = false;
        seg->literal = *p_++;
        return true;
      }
      while (p_ != end_) {
        uint32_t marker = *p_++;
        uint32_t fills = (marker >> 15) & kMaxFill;
        literals_left_ = marker & kMaxLiterals;
        if (fills > 0) {
          seg->is_fill = true;
          seg->fill_bit = (marker & 0x80000000u) != 0;
          seg->count = fills;
          return true;
        }
        if (literals_left_ > 0) {
          --literals_left_;
          seg->is_fill = false;
          seg->literal = *p_++;
          return true;
        }
        // Empty marker (p == 0, q == 0); keep scanning.
      }
      return false;
    }

   private:
    const uint32_t* p_;
    const uint32_t* end_;
    uint32_t literals_left_ = 0;
  };

  static void EncodeWords(std::span<const uint32_t> sorted,
                          std::vector<uint32_t>* words);

  // Verifies that every marker's literal count stays inside the stream —
  // the one read the Decoder cannot bound by itself (`seg->literal = *p_++`
  // trusts the marker's q field). Required before running a Decoder over an
  // untrusted stream.
  static bool CheckStream(std::span<const uint32_t> words) {
    size_t i = 0;
    while (i < words.size()) {
      const uint32_t q = words[i++] & kMaxLiterals;
      if (q > words.size() - i) return false;
      i += q;
    }
    return true;
  }
};

using EwahCodec = RleBitmapCodec<EwahTraits>;

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_EWAH_H_
