// Helper for bitmap-codec encoders: walks a sorted value list as a sequence
// of fixed-width bitmap groups, reporting each non-empty group's payload and
// the number of all-zero groups preceding it.

#ifndef INTCOMP_BITMAP_GROUP_BUILDER_H_
#define INTCOMP_BITMAP_GROUP_BUILDER_H_

#include <cstdint>
#include <span>

namespace intcomp {

// Invokes `fn(zero_gap, payload)` for each non-empty group of width `w`
// (w <= 32) in order, where `zero_gap` is the count of all-zero groups since
// the previous non-empty group (or since position 0). Trailing zero groups
// are not reported; RLE bitmaps need not store them.
template <typename Fn>
void ForEachGroup(std::span<const uint32_t> values, int w, Fn fn) {
  size_t i = 0;
  uint64_t prev_group = 0;
  bool first = true;
  const uint64_t width = static_cast<uint64_t>(w);
  while (i < values.size()) {
    uint64_t g = values[i] / width;
    uint64_t base = g * width;
    uint32_t payload = 0;
    while (i < values.size() && values[i] < base + width) {
      payload |= uint32_t{1} << (values[i] - base);
      ++i;
    }
    uint64_t gap = first ? g : g - prev_group - 1;
    first = false;
    prev_group = g;
    fn(gap, payload);
  }
}

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_GROUP_BUILDER_H_
