#include "bitmap/plwah.h"

#include <algorithm>

#include "bitmap/group_builder.h"
#include "common/bits.h"

namespace intcomp {
namespace {

class Encoder {
 public:
  explicit Encoder(std::vector<uint32_t>* words) : words_(words) {}

  void AddFill(bool bit, uint64_t n) {
    if (n == 0) return;
    if (fill_count_ > 0 && fill_bit_ != bit) FlushFill(0);
    fill_bit_ = bit;
    fill_count_ += n;
  }

  void AddLiteral(uint32_t payload) {
    if (payload == 0) {
      AddFill(false, 1);
      return;
    }
    if (payload == PlwahTraits::kPayloadOnes) {
      AddFill(true, 1);
      return;
    }
    if (fill_count_ > 0) {
      uint32_t fill_pattern = fill_bit_ ? PlwahTraits::kPayloadOnes : 0u;
      uint32_t diff = payload ^ fill_pattern;
      if (PopCount32(diff) == 1) {
        // Absorb the near-fill literal into the fill word's position list.
        FlushFill(static_cast<uint32_t>(CountTrailingZeros32(diff)) + 1);
        return;
      }
      FlushFill(0);
    }
    words_->push_back(payload);
  }

  void Finish() { FlushFill(0); }

 private:
  // Emits pending fill words; only the last one may carry the absorbed
  // literal's position (the literal follows the whole run).
  void FlushFill(uint32_t position) {
    while (fill_count_ > PlwahTraits::kCountMask) {
      words_->push_back(
          PlwahTraits::MakeFill(fill_bit_, 0, PlwahTraits::kCountMask));
      fill_count_ -= PlwahTraits::kCountMask;
    }
    if (fill_count_ > 0 || position != 0) {
      words_->push_back(PlwahTraits::MakeFill(fill_bit_, position, fill_count_));
    }
    fill_count_ = 0;
  }

  std::vector<uint32_t>* words_;
  uint64_t fill_count_ = 0;
  bool fill_bit_ = false;
};

}  // namespace

void PlwahTraits::EncodeWords(std::span<const uint32_t> sorted,
                              std::vector<uint32_t>* words) {
  words->clear();
  Encoder enc(words);
  ForEachGroup(sorted, Decoder::kGroupBits,
               [&enc](uint64_t zero_gap, uint32_t payload) {
                 enc.AddFill(false, zero_gap);
                 enc.AddLiteral(payload);
               });
  enc.Finish();
}

}  // namespace intcomp
