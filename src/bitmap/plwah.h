// PLWAH (Position List Word Aligned Hybrid) — paper §2.4, [17].
//
// 31-bit groups. Literal words are as in WAH (MSB = 0, 31 payload bits).
// A fill word has MSB = 1, bit 30 = fill value, bits 29..25 = position list,
// bits 24..0 = fill-group count. A non-zero position p means the literal
// group *following* the run differs from the fill value in exactly bit p-1
// and has been absorbed into the fill word.

#ifndef INTCOMP_BITMAP_PLWAH_H_
#define INTCOMP_BITMAP_PLWAH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/rle_codec.h"
#include "bitmap/runstream.h"

namespace intcomp {

struct PlwahTraits {
  static constexpr char kName[] = "PLWAH";
  using Word = uint32_t;

  static constexpr uint32_t kFillFlag = 0x80000000u;
  static constexpr uint32_t kFillBit = 0x40000000u;
  static constexpr uint32_t kCountMask = 0x01ffffffu;  // 25 bits
  static constexpr uint32_t kPayloadOnes = (1u << 31) - 1;

  static uint32_t MakeFill(bool fill_bit, uint32_t position, uint64_t count) {
    return kFillFlag | (fill_bit ? kFillBit : 0u) | (position << 25) |
           static_cast<uint32_t>(count);
  }

  class Decoder {
   public:
    static constexpr int kGroupBits = 31;

    explicit Decoder(std::span<const uint32_t> words)
        : p_(words.data()), end_(words.data() + words.size()) {}

    bool Next(RunSegment* seg) {
      if (has_pending_literal_) {
        has_pending_literal_ = false;
        seg->is_fill = false;
        seg->literal = pending_literal_;
        return true;
      }
      if (p_ == end_) return false;
      uint32_t w = *p_++;
      if ((w & kFillFlag) == 0) {
        seg->is_fill = false;
        seg->literal = w;
        return true;
      }
      bool bit = (w & kFillBit) != 0;
      uint32_t pos = (w >> 25) & 31u;
      uint32_t count = w & kCountMask;
      if (pos != 0) {
        pending_literal_ = (bit ? kPayloadOnes : 0u) ^ (1u << (pos - 1));
        if (count == 0) {  // degenerate: absorbed literal with no fill run
          seg->is_fill = false;
          seg->literal = pending_literal_;
          return true;
        }
        has_pending_literal_ = true;
      }
      seg->is_fill = true;
      seg->fill_bit = bit;
      seg->count = count;
      return true;
    }

   private:
    const uint32_t* p_;
    const uint32_t* end_;
    uint32_t pending_literal_ = 0;
    bool has_pending_literal_ = false;
  };

  static void EncodeWords(std::span<const uint32_t> sorted,
                          std::vector<uint32_t>* words);
};

using PlwahCodec = RleBitmapCodec<PlwahTraits>;

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_PLWAH_H_
