// Generic Codec adapter for run-length-encoded bitmap methods.
//
// A codec supplies a Traits type:
//
//   struct FooTraits {
//     static constexpr char kName[] = "Foo";
//     using Word = uint32_t;                       // storage unit
//     struct Decoder {                             // segment decoder
//       static constexpr int kGroupBits = ...;
//       explicit Decoder(std::span<const Word> words);
//       bool Next(RunSegment* seg);
//     };
//     static void EncodeWords(std::span<const uint32_t> sorted,
//                             std::vector<Word>* words);
//   };
//
// and RleBitmapCodec<FooTraits> provides the full Codec interface by running
// the shared run-stream engine over the decoder — i.e. intersection and
// union operate directly on the compressed words, as all WAH-family methods
// do (paper §2.1).

#ifndef INTCOMP_BITMAP_RLE_CODEC_H_
#define INTCOMP_BITMAP_RLE_CODEC_H_

#include <memory>
#include <span>
#include <vector>

#include "bitmap/runstream.h"
#include "common/serialize_util.h"
#include "core/codec.h"

namespace intcomp {

template <typename Traits>
class RleBitmapCodec final : public Codec {
 public:
  using Word = typename Traits::Word;
  using Decoder = typename Traits::Decoder;

  struct Set final : CompressedSet {
    std::vector<Word> words;
    size_t cardinality = 0;

    size_t SizeInBytes() const override { return words.size() * sizeof(Word); }
    size_t Cardinality() const override { return cardinality; }
  };

  RleBitmapCodec() = default;

  std::string_view Name() const override { return Traits::kName; }
  CodecFamily Family() const override { return CodecFamily::kBitmap; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t /*domain*/) const override {
    auto set = std::make_unique<Set>();
    set->cardinality = sorted.size();
    Traits::EncodeWords(sorted, &set->words);
    return set;
  }

  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& s = static_cast<const Set&>(set);
    out->reserve(s.cardinality);
    SegmentDecode(Decoder(s.words), out);
  }

  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& sa = static_cast<const Set&>(a);
    const auto& sb = static_cast<const Set&>(b);
    SegmentIntersect(Decoder(sa.words), Decoder(sb.words), out);
  }

  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& sa = static_cast<const Set&>(a);
    const auto& sb = static_cast<const Set&>(b);
    out->reserve(sa.cardinality + sb.cardinality);
    SegmentUnion(Decoder(sa.words), Decoder(sb.words), out);
  }

  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& sa = static_cast<const Set&>(a);
    SegmentIntersectWithList(Decoder(sa.words), probe, out);
  }

  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override {
    const auto& s = static_cast<const Set&>(set);
    ByteWriter(out).PutU64(s.cardinality);
    WriteVector(s.words, out);
  }

  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override {
    ByteReader reader(data, size);
    if (reader.Remaining() < 8) return nullptr;
    auto set = std::make_unique<Set>();
    set->cardinality = reader.GetU64();
    if (!ReadVector(&reader, &set->words)) return nullptr;
    return set;
  }
};

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_RLE_CODEC_H_
