// Generic Codec adapter for run-length-encoded bitmap methods.
//
// A codec supplies a Traits type:
//
//   struct FooTraits {
//     static constexpr char kName[] = "Foo";
//     using Word = uint32_t;                       // storage unit
//     struct Decoder {                             // segment decoder
//       static constexpr int kGroupBits = ...;
//       explicit Decoder(std::span<const Word> words);
//       bool Next(RunSegment* seg);
//     };
//     static void EncodeWords(std::span<const uint32_t> sorted,
//                             std::vector<Word>* words);
//   };
//
// and RleBitmapCodec<FooTraits> provides the full Codec interface by running
// the shared run-stream engine over the decoder — i.e. intersection and
// union operate directly on the compressed words, as all WAH-family methods
// do (paper §2.1).

#ifndef INTCOMP_BITMAP_RLE_CODEC_H_
#define INTCOMP_BITMAP_RLE_CODEC_H_

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "bitmap/runstream.h"
#include "common/bits.h"
#include "common/serialize_util.h"
#include "common/status.h"
#include "common/varray.h"
#include "core/codec.h"

namespace intcomp {

template <typename Traits>
class RleBitmapCodec final : public Codec {
 public:
  using Word = typename Traits::Word;
  using Decoder = typename Traits::Decoder;

  struct Set final : CompressedSet {
    // Owned when built by Encode/Deserialize; a borrowed view of the mapped
    // file when built by DeserializeView (common/varray.h).
    VArray<Word> words;
    size_t cardinality = 0;

    size_t SizeInBytes() const override { return words.size() * sizeof(Word); }
    size_t Cardinality() const override { return cardinality; }
  };

  RleBitmapCodec() = default;

  std::string_view Name() const override { return Traits::kName; }
  CodecFamily Family() const override { return CodecFamily::kBitmap; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t /*domain*/) const override {
    auto set = std::make_unique<Set>();
    set->cardinality = sorted.size();
    std::vector<Word> words;
    Traits::EncodeWords(sorted, &words);
    set->words = VArray<Word>(std::move(words));
    return set;
  }

  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& s = static_cast<const Set&>(set);
    out->reserve(s.cardinality);
    SegmentDecode(Decoder(s.words), out);
  }

  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& sa = static_cast<const Set&>(a);
    const auto& sb = static_cast<const Set&>(b);
    SegmentIntersect(Decoder(sa.words), Decoder(sb.words), out);
  }

  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& sa = static_cast<const Set&>(a);
    const auto& sb = static_cast<const Set&>(b);
    out->reserve(sa.cardinality + sb.cardinality);
    SegmentUnion(Decoder(sa.words), Decoder(sb.words), out);
  }

  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override {
    out->clear();
    const auto& sa = static_cast<const Set&>(a);
    SegmentIntersectWithList(Decoder(sa.words), probe, out);
  }

  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override {
    const auto& s = static_cast<const Set&>(set);
    ByteWriter(out).PutU64(s.cardinality);
    WriteSpan<Word>(s.words, out);
  }

  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override {
    ByteReader reader(data, size);
    if (reader.Remaining() < 8) return nullptr;
    auto set = std::make_unique<Set>();
    set->cardinality = reader.GetU64();
    std::vector<Word> words;
    if (!ReadVector(&reader, &words)) return nullptr;
    set->words = VArray<Word>(std::move(words));
    return set;
  }

  // Wire layout is [u64 cardinality][u64 nwords][words...]: the word array
  // begins 16 bytes in, so any 8-byte-aligned image (the container format
  // aligns every payload) yields an aligned borrow. Misaligned images fall
  // back to the copying parse rather than fault.
  std::unique_ptr<CompressedSet> DeserializeView(
      std::span<const uint8_t> image) const override {
    CheckedByteReader reader(image.data(), image.size());
    uint64_t cardinality = 0;
    uint64_t n = 0;
    if (!reader.GetU64(&cardinality) || !reader.GetU64(&n)) return nullptr;
    if (n > reader.Remaining() / sizeof(Word)) return nullptr;
    const uint8_t* p = image.data() + reader.Position();
    if (reinterpret_cast<uintptr_t>(p) % alignof(Word) != 0) {
      return Deserialize(image.data(), image.size());
    }
    auto set = std::make_unique<Set>();
    set->cardinality = cardinality;
    set->words = VArray<Word>::View(
        {reinterpret_cast<const Word*>(p), static_cast<size_t>(n)});
    return set;
  }

  bool SupportsViewDeserialize() const override { return true; }

  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override {
    const auto& s = static_cast<const Set&>(set);
    constexpr uint64_t kW = Decoder::kGroupBits;
    const uint64_t dmax = std::min<uint64_t>(domain, uint64_t{1} << 32);
    const std::span<const Word> words = s.words;
    if constexpr (requires { Traits::CheckStream(words); }) {
      // Codecs whose decoders take data-dependent strides (EWAH marker
      // literal counts, BBC variable-length headers) must prove the word
      // walk stays in bounds before a decoder may run over the stream.
      if (!Traits::CheckStream(words)) {
        return Status::Corrupt("malformed word stream");
      }
    }
    // Replay the segment stream, bounding every group position by the domain
    // and recounting set bits. This is exactly the coverage Decode/Intersect/
    // Union rely on: EmitRange/EmitBits truncate positions to uint32, so any
    // group beyond ceil(dmax / kW) would silently wrap.
    const uint64_t max_groups = (dmax + kW - 1) / kW;
    Decoder dec(words);
    RunSegment seg;
    uint64_t pos = 0;   // current group index
    uint64_t bits = 0;  // set bits seen so far
    while (dec.Next(&seg)) {
      if (seg.is_fill) {
        if (seg.count > max_groups - pos) {
          return Status::Corrupt("fill run extends past domain");
        }
        if (seg.fill_bit) {
          if ((pos + seg.count) * kW > dmax) {
            return Status::Corrupt("1-fill covers bits past domain");
          }
          bits += seg.count * kW;
        }
        pos += seg.count;
      } else {
        if (pos >= max_groups) {
          return Status::Corrupt("literal group past domain");
        }
        if (seg.literal != 0) {
          const uint64_t high = BitWidth32(seg.literal) - 1;
          if (pos * kW + high >= dmax) {
            return Status::Corrupt("literal sets bit past domain");
          }
          bits += PopCount32(seg.literal);
        }
        ++pos;
      }
    }
    if (bits != s.cardinality) {
      return Status::Corrupt("cardinality mismatch");
    }
    return Status::Ok();
  }
};

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_RLE_CODEC_H_
