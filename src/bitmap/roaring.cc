#include "bitmap/roaring.h"

#include <algorithm>

#include "common/bits.h"
#include "common/serialize_util.h"

namespace intcomp {
namespace {

using Set = RoaringCodec::Set;
using Container = RoaringCodec::Container;

// Appends all values of container `c`, rebased to its chunk, to `out`.
void EmitContainer(const Set& s, const Container& c,
                   std::vector<uint32_t>* out) {
  const uint32_t base = static_cast<uint32_t>(c.key) << 16;
  if (c.is_bitmap) {
    const uint64_t* words = s.bitmap_data.data() + c.offset;
    for (size_t w = 0; w < RoaringCodec::kBitmapWords; ++w) {
      uint64_t x = words[w];
      while (x != 0) {
        out->push_back(base + static_cast<uint32_t>(w * 64) +
                       static_cast<uint32_t>(CountTrailingZeros64(x)));
        x = ClearLowestBit64(x);
      }
    }
  } else {
    const uint16_t* vals = s.array_data.data() + c.offset;
    for (uint32_t i = 0; i < c.cardinality; ++i) {
      out->push_back(base + vals[i]);
    }
  }
}

inline bool BitmapTest(const uint64_t* words, uint16_t v) {
  return (words[v >> 6] >> (v & 63)) & 1u;
}

void IntersectArrayArray(const uint16_t* a, uint32_t na, const uint16_t* b,
                         uint32_t nb, uint32_t base,
                         std::vector<uint32_t>* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (nb >= 64u * na) {
    // In-bucket binary search for heavily skewed sizes (paper §5.2(1)).
    const uint16_t* lo = b;
    const uint16_t* bend = b + nb;
    for (uint32_t i = 0; i < na; ++i) {
      lo = std::lower_bound(lo, bend, a[i]);
      if (lo == bend) return;
      if (*lo == a[i]) out->push_back(base + a[i]);
    }
    return;
  }
  uint32_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out->push_back(base + a[i]);
      ++i;
      ++j;
    }
  }
}

void IntersectContainers(const Set& sa, const Container& ca, const Set& sb,
                         const Container& cb, std::vector<uint32_t>* out) {
  const uint32_t base = static_cast<uint32_t>(ca.key) << 16;
  if (ca.is_bitmap && cb.is_bitmap) {
    const uint64_t* wa = sa.bitmap_data.data() + ca.offset;
    const uint64_t* wb = sb.bitmap_data.data() + cb.offset;
    for (size_t w = 0; w < RoaringCodec::kBitmapWords; ++w) {
      uint64_t x = wa[w] & wb[w];
      while (x != 0) {
        out->push_back(base + static_cast<uint32_t>(w * 64) +
                       static_cast<uint32_t>(CountTrailingZeros64(x)));
        x = ClearLowestBit64(x);
      }
    }
  } else if (!ca.is_bitmap && !cb.is_bitmap) {
    IntersectArrayArray(sa.array_data.data() + ca.offset, ca.cardinality,
                        sb.array_data.data() + cb.offset, cb.cardinality, base,
                        out);
  } else {
    const auto& arr_set = ca.is_bitmap ? sb : sa;
    const auto& arr_c = ca.is_bitmap ? cb : ca;
    const auto& bm_set = ca.is_bitmap ? sa : sb;
    const auto& bm_c = ca.is_bitmap ? ca : cb;
    const uint16_t* vals = arr_set.array_data.data() + arr_c.offset;
    const uint64_t* words = bm_set.bitmap_data.data() + bm_c.offset;
    for (uint32_t i = 0; i < arr_c.cardinality; ++i) {
      if (BitmapTest(words, vals[i])) out->push_back(base + vals[i]);
    }
  }
}

void UnionContainers(const Set& sa, const Container& ca, const Set& sb,
                     const Container& cb, std::vector<uint32_t>* out) {
  const uint32_t base = static_cast<uint32_t>(ca.key) << 16;
  if (ca.is_bitmap || cb.is_bitmap) {
    // Materialize the OR in a 8KB scratch bitmap, then emit.
    uint64_t scratch[RoaringCodec::kBitmapWords] = {};
    auto add = [&scratch](const Set& s, const Container& c) {
      if (c.is_bitmap) {
        const uint64_t* words = s.bitmap_data.data() + c.offset;
        for (size_t w = 0; w < RoaringCodec::kBitmapWords; ++w) {
          scratch[w] |= words[w];
        }
      } else {
        const uint16_t* vals = s.array_data.data() + c.offset;
        for (uint32_t i = 0; i < c.cardinality; ++i) {
          scratch[vals[i] >> 6] |= uint64_t{1} << (vals[i] & 63);
        }
      }
    };
    add(sa, ca);
    add(sb, cb);
    for (size_t w = 0; w < RoaringCodec::kBitmapWords; ++w) {
      uint64_t x = scratch[w];
      while (x != 0) {
        out->push_back(base + static_cast<uint32_t>(w * 64) +
                       static_cast<uint32_t>(CountTrailingZeros64(x)));
        x = ClearLowestBit64(x);
      }
    }
  } else {
    const uint16_t* a = sa.array_data.data() + ca.offset;
    const uint16_t* b = sb.array_data.data() + cb.offset;
    uint32_t i = 0, j = 0;
    while (i < ca.cardinality && j < cb.cardinality) {
      if (a[i] < b[j]) {
        out->push_back(base + a[i++]);
      } else if (b[j] < a[i]) {
        out->push_back(base + b[j++]);
      } else {
        out->push_back(base + a[i]);
        ++i;
        ++j;
      }
    }
    for (; i < ca.cardinality; ++i) out->push_back(base + a[i]);
    for (; j < cb.cardinality; ++j) out->push_back(base + b[j]);
  }
}

}  // namespace

std::unique_ptr<CompressedSet> RoaringCodec::Encode(
    std::span<const uint32_t> sorted, uint64_t /*domain*/) const {
  auto set = std::make_unique<Set>();
  set->cardinality = sorted.size();
  size_t i = 0;
  while (i < sorted.size()) {
    const uint16_t key = static_cast<uint16_t>(sorted[i] >> 16);
    size_t j = i;
    while (j < sorted.size() && (sorted[j] >> 16) == key) ++j;
    const uint32_t n = static_cast<uint32_t>(j - i);
    Container c;
    c.key = key;
    c.cardinality = n;
    if (n > kArrayMax) {
      c.is_bitmap = true;
      c.offset = set->bitmap_data.size();
      set->bitmap_data.resize(c.offset + kBitmapWords, 0);
      uint64_t* words = set->bitmap_data.data() + c.offset;
      for (size_t k = i; k < j; ++k) {
        uint16_t v = static_cast<uint16_t>(sorted[k]);
        words[v >> 6] |= uint64_t{1} << (v & 63);
      }
    } else {
      c.is_bitmap = false;
      c.offset = set->array_data.size();
      for (size_t k = i; k < j; ++k) {
        set->array_data.push_back(static_cast<uint16_t>(sorted[k]));
      }
    }
    set->containers.push_back(c);
    i = j;
  }
  return set;
}

void RoaringCodec::Decode(const CompressedSet& set,
                          std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  out->clear();
  out->reserve(s.cardinality);
  for (const auto& c : s.containers) EmitContainer(s, c, out);
}

void RoaringCodec::Intersect(const CompressedSet& a, const CompressedSet& b,
                             std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  out->clear();
  size_t i = 0, j = 0;
  while (i < sa.containers.size() && j < sb.containers.size()) {
    const auto& ca = sa.containers[i];
    const auto& cb = sb.containers[j];
    if (ca.key < cb.key) {
      ++i;
    } else if (cb.key < ca.key) {
      ++j;
    } else {
      IntersectContainers(sa, ca, sb, cb, out);
      ++i;
      ++j;
    }
  }
}

void RoaringCodec::Union(const CompressedSet& a, const CompressedSet& b,
                         std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  out->clear();
  out->reserve(sa.cardinality + sb.cardinality);
  size_t i = 0, j = 0;
  while (i < sa.containers.size() && j < sb.containers.size()) {
    const auto& ca = sa.containers[i];
    const auto& cb = sb.containers[j];
    if (ca.key < cb.key) {
      EmitContainer(sa, ca, out);
      ++i;
    } else if (cb.key < ca.key) {
      EmitContainer(sb, cb, out);
      ++j;
    } else {
      UnionContainers(sa, ca, sb, cb, out);
      ++i;
      ++j;
    }
  }
  for (; i < sa.containers.size(); ++i) EmitContainer(sa, sa.containers[i], out);
  for (; j < sb.containers.size(); ++j) EmitContainer(sb, sb.containers[j], out);
}

void RoaringCodec::IntersectWithList(const CompressedSet& a,
                                     std::span<const uint32_t> probe,
                                     std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  out->clear();
  size_t ci = 0;
  size_t pi = 0;
  while (pi < probe.size() && ci < sa.containers.size()) {
    const auto& c = sa.containers[ci];
    const uint32_t key = probe[pi] >> 16;
    if (c.key < key) {
      ++ci;
      continue;
    }
    if (c.key > key) {
      // Skip probe values belonging to absent chunks.
      const uint32_t next_base = static_cast<uint32_t>(c.key) << 16;
      pi = std::lower_bound(probe.begin() + pi, probe.end(), next_base) -
           probe.begin();
      continue;
    }
    const uint16_t low = static_cast<uint16_t>(probe[pi]);
    if (c.is_bitmap) {
      if (BitmapTest(sa.bitmap_data.data() + c.offset, low)) {
        out->push_back(probe[pi]);
      }
    } else {
      const uint16_t* vals = sa.array_data.data() + c.offset;
      const uint16_t* end = vals + c.cardinality;
      const uint16_t* it = std::lower_bound(vals, end, low);
      if (it != end && *it == low) out->push_back(probe[pi]);
    }
    ++pi;
  }
}

void RoaringCodec::Serialize(const CompressedSet& set,
                             std::vector<uint8_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  ByteWriter writer(out);
  writer.PutU64(s.cardinality);
  writer.PutU32(static_cast<uint32_t>(s.containers.size()));
  for (const Container& c : s.containers) {
    writer.PutU16(c.key);
    writer.PutU8(c.is_bitmap ? 1 : 0);
    writer.PutU32(c.cardinality);
    // Offsets are recomputed on load from the container order.
  }
  WriteVector(s.array_data, out);
  WriteVector(s.bitmap_data, out);
}

std::unique_ptr<CompressedSet> RoaringCodec::Deserialize(const uint8_t* data,
                                                         size_t size) const {
  ByteReader reader(data, size);
  if (reader.Remaining() < 12) return nullptr;
  auto set = std::make_unique<Set>();
  set->cardinality = reader.GetU64();
  const uint32_t n = reader.GetU32();
  if (reader.Remaining() < static_cast<size_t>(n) * 7) return nullptr;
  size_t array_offset = 0;
  size_t bitmap_offset = 0;
  set->containers.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Container c;
    c.key = reader.GetU16();
    c.is_bitmap = reader.GetU8() != 0;
    c.cardinality = reader.GetU32();
    if (c.is_bitmap) {
      c.offset = bitmap_offset;
      bitmap_offset += kBitmapWords;
    } else {
      c.offset = array_offset;
      array_offset += c.cardinality;
    }
    set->containers.push_back(c);
  }
  if (!ReadVector(&reader, &set->array_data) ||
      !ReadVector(&reader, &set->bitmap_data)) {
    return nullptr;
  }
  if (set->array_data.size() != array_offset ||
      set->bitmap_data.size() != bitmap_offset) {
    return nullptr;
  }
  return set;
}

Status RoaringCodec::ValidateSet(const CompressedSet& set,
                                 uint64_t domain) const {
  const auto& s = static_cast<const Set&>(set);
  const uint64_t dmax = std::min<uint64_t>(domain, uint64_t{1} << 32);
  uint64_t sum = 0;
  int prev_key = -1;
  for (const Container& c : s.containers) {
    if (static_cast<int>(c.key) <= prev_key) {
      return Status::Corrupt("container keys not strictly increasing");
    }
    prev_key = c.key;
    const uint64_t base = static_cast<uint64_t>(c.key) << 16;
    if (c.is_bitmap) {
      // The container-type invariant (bitmap iff > 4096 elements) is what
      // the intersection kernels' size heuristics assume, and the recounted
      // popcount is what Decode's reserve relies on.
      if (c.cardinality <= kArrayMax || c.cardinality > 65536) {
        return Status::Corrupt("bitmap container cardinality out of range");
      }
      const uint64_t* words = s.bitmap_data.data() + c.offset;
      uint64_t bits = 0;
      for (size_t w = 0; w < kBitmapWords; ++w) bits += PopCount64(words[w]);
      if (bits != c.cardinality) {
        return Status::Corrupt("bitmap container popcount mismatch");
      }
      size_t w = kBitmapWords;
      while (w > 0 && words[w - 1] == 0) --w;
      // bits > 0 here, so some word is non-zero.
      const uint64_t high =
          base + (w - 1) * 64 + (BitWidth64(words[w - 1]) - 1);
      if (high >= dmax) {
        return Status::Corrupt("container value past domain");
      }
    } else {
      if (c.cardinality == 0 || c.cardinality > kArrayMax) {
        return Status::Corrupt("array container cardinality out of range");
      }
      const uint16_t* vals = s.array_data.data() + c.offset;
      for (uint32_t i = 1; i < c.cardinality; ++i) {
        if (vals[i] <= vals[i - 1]) {
          return Status::Corrupt("array container not strictly increasing");
        }
      }
      if (base + vals[c.cardinality - 1] >= dmax) {
        return Status::Corrupt("container value past domain");
      }
    }
    sum += c.cardinality;
  }
  if (sum != s.cardinality) {
    return Status::Corrupt("cardinality mismatch");
  }
  return Status::Ok();
}

}  // namespace intcomp
