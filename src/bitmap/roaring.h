// Roaring bitmaps — paper §2.7, [10].
//
// The domain is split into 2^16-wide chunks sharing their 16 most
// significant bits. A chunk with more than 4096 elements is stored as an
// uncompressed 65536-bit bitmap (1024 uint64 words); otherwise as a sorted
// array of 16-bit low parts. 4096 is the break-even point at which the
// bitmap form costs <= 16 bits per element. Intersection and union walk the
// two container lists by key (bucket-level skipping) and dispatch to
// array×array / array×bitmap / bitmap×bitmap kernels.

#ifndef INTCOMP_BITMAP_ROARING_H_
#define INTCOMP_BITMAP_ROARING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/codec.h"

namespace intcomp {

class RoaringCodec final : public Codec {
 public:
  static constexpr uint32_t kArrayMax = 4096;   // container type threshold
  static constexpr size_t kBitmapWords = 1024;  // 65536 bits

  struct Container {
    uint16_t key;        // high 16 bits of the values in this chunk
    bool is_bitmap;      // bitmap vs sorted-array container
    uint32_t cardinality;
    size_t offset;       // index into array_data (uint16) or bitmap_data
                         // (uint64), depending on is_bitmap
  };

  struct Set final : CompressedSet {
    std::vector<Container> containers;
    std::vector<uint16_t> array_data;
    std::vector<uint64_t> bitmap_data;
    size_t cardinality = 0;

    size_t SizeInBytes() const override {
      // 4 descriptor bytes per container (key + cardinality), as in the
      // Roaring format, plus container payloads.
      return containers.size() * 4 + array_data.size() * 2 +
             bitmap_data.size() * 8;
    }
    size_t Cardinality() const override { return cardinality; }
  };

  RoaringCodec() = default;

  std::string_view Name() const override { return "Roaring"; }
  CodecFamily Family() const override { return CodecFamily::kBitmap; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t domain) const override;
  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override;
  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override;
  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override;
  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override;
  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override;
  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override;
  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override;
};

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_ROARING_H_
