#include "bitmap/runstream.h"

namespace intcomp {

void EmitRange(uint64_t start, uint64_t count, std::vector<uint32_t>* out) {
  size_t old = out->size();
  out->resize(old + count);
  uint32_t* p = out->data() + old;
  uint32_t v = static_cast<uint32_t>(start);
  for (uint64_t i = 0; i < count; ++i) p[i] = v++;
}

}  // namespace intcomp
