// Shared engine for run-length-encoded bitmap codecs.
//
// Every RLE bitmap method in the paper (BBC, WAH, EWAH, PLWAH, CONCISE,
// VALWAH, SBH) compresses a bitmap into a sequence of *segments*: fill runs
// (all-0 or all-1 groups) and literal groups, at the codec's group width
// (31 bits for WAH/CONCISE/PLWAH, 32 for EWAH, 8 for BBC, 7 for SBH, ...).
// The paper notes (§2.1) that all of them use the same merge-style
// intersection/union over "active words" and differ only in how those words
// are interpreted. We factor exactly that: each codec provides a segment
// decoder, and the templated algorithms below perform decode / AND / OR /
// list-probe directly on the compressed stream, without materializing the
// bitmap.
//
// For VALWAH, whose two operands may use *different* segment widths, the
// bit-granular ChunkedBitStream engine at the bottom performs the
// alignment-paying intersection the paper describes (§2.5, §5.2(3)).

#ifndef INTCOMP_BITMAP_RUNSTREAM_H_
#define INTCOMP_BITMAP_RUNSTREAM_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace intcomp {

// One decoded segment of an RLE-compressed bitmap.
struct RunSegment {
  bool is_fill;       // fill run vs literal group
  bool fill_bit;      // 0-fill or 1-fill (valid when is_fill)
  uint64_t count;     // number of groups in the fill run (valid when is_fill)
  uint32_t literal;   // group payload in the low kGroupBits (when !is_fill)
};

// Appends values start .. start+count-1 to out.
void EmitRange(uint64_t start, uint64_t count, std::vector<uint32_t>* out);

// Appends the positions of set bits of `word`, offset by `base`.
inline void EmitBits(uint32_t word, uint64_t base, std::vector<uint32_t>* out) {
  while (word != 0) {
    out->push_back(static_cast<uint32_t>(base) +
                   static_cast<uint32_t>(CountTrailingZeros32(word)));
    word = ClearLowestBit32(word);
  }
}

// ---------------------------------------------------------------------------
// Word-aligned algorithms (both operands share the same group width).
// A decoder `Dec` provides:
//   static constexpr int kGroupBits;
//   bool Next(RunSegment* seg);   // false when the stream ends
// ---------------------------------------------------------------------------

template <typename Dec>
void SegmentDecode(Dec dec, std::vector<uint32_t>* out) {
  constexpr int kW = Dec::kGroupBits;
  uint64_t pos = 0;  // current group index
  RunSegment s;
  while (dec.Next(&s)) {
    if (s.is_fill) {
      if (s.fill_bit) EmitRange(pos * kW, s.count * kW, out);
      pos += s.count;
    } else {
      EmitBits(s.literal, pos * kW, out);
      ++pos;
    }
  }
}

// Internal cursor pairing a decoder with the remaining group count of its
// current segment, so fills can be consumed piecewise.
template <typename Dec>
struct SegmentCursor {
  explicit SegmentCursor(Dec d) : dec(std::move(d)) { Refill(); }

  void Refill() {
    // Skip degenerate zero-length fill segments defensively.
    do {
      active = dec.Next(&seg);
      remaining = active ? (seg.is_fill ? seg.count : 1) : 0;
    } while (active && remaining == 0);
  }

  void Consume(uint64_t n) {
    remaining -= n;
    if (remaining == 0) Refill();
  }

  Dec dec;
  RunSegment seg;
  uint64_t remaining = 0;
  bool active = false;
};

template <typename DecA, typename DecB>
void SegmentIntersect(DecA da, DecB db, std::vector<uint32_t>* out) {
  constexpr int kW = DecA::kGroupBits;
  static_assert(kW == DecB::kGroupBits,
                "word-aligned intersection requires equal group widths");
  SegmentCursor<DecA> a(std::move(da));
  SegmentCursor<DecB> b(std::move(db));
  uint64_t pos = 0;
  while (a.active && b.active) {
    if (a.seg.is_fill && b.seg.is_fill) {
      uint64_t n = std::min(a.remaining, b.remaining);
      if (a.seg.fill_bit && b.seg.fill_bit) {
        EmitRange(pos * kW, n * kW, out);
      }
      pos += n;
      a.Consume(n);
      b.Consume(n);
    } else {
      uint32_t wa = a.seg.is_fill ? (a.seg.fill_bit ? LowMask32(kW) : 0)
                                  : a.seg.literal;
      uint32_t wb = b.seg.is_fill ? (b.seg.fill_bit ? LowMask32(kW) : 0)
                                  : b.seg.literal;
      EmitBits(wa & wb, pos * kW, out);
      ++pos;
      a.Consume(1);
      b.Consume(1);
    }
  }
}

// Emits the remainder of a cursor's stream (used by union once the other
// operand ends).
template <typename Dec>
void DrainCursor(SegmentCursor<Dec>& c, uint64_t pos, int group_bits,
                 std::vector<uint32_t>* out) {
  while (c.active) {
    if (c.seg.is_fill) {
      if (c.seg.fill_bit) {
        EmitRange(pos * group_bits, c.remaining * group_bits, out);
      }
    } else {
      EmitBits(c.seg.literal, pos * group_bits, out);
    }
    pos += c.remaining;
    c.Consume(c.remaining);
  }
}

template <typename DecA, typename DecB>
void SegmentUnion(DecA da, DecB db, std::vector<uint32_t>* out) {
  constexpr int kW = DecA::kGroupBits;
  static_assert(kW == DecB::kGroupBits,
                "word-aligned union requires equal group widths");
  SegmentCursor<DecA> a(std::move(da));
  SegmentCursor<DecB> b(std::move(db));
  uint64_t pos = 0;
  while (a.active && b.active) {
    if (a.seg.is_fill && b.seg.is_fill) {
      uint64_t n = std::min(a.remaining, b.remaining);
      if (a.seg.fill_bit || b.seg.fill_bit) {
        EmitRange(pos * kW, n * kW, out);
      }
      pos += n;
      a.Consume(n);
      b.Consume(n);
    } else {
      uint32_t wa = a.seg.is_fill ? (a.seg.fill_bit ? LowMask32(kW) : 0)
                                  : a.seg.literal;
      uint32_t wb = b.seg.is_fill ? (b.seg.fill_bit ? LowMask32(kW) : 0)
                                  : b.seg.literal;
      EmitBits(wa | wb, pos * kW, out);
      ++pos;
      a.Consume(1);
      b.Consume(1);
    }
  }
  DrainCursor(a, pos, kW, out);
  DrainCursor(b, pos, kW, out);
}

// Bitmap-vs-list intersection (paper App. B.1): probes an uncompressed sorted
// list against the compressed stream, skipping whole fill runs.
template <typename Dec>
void SegmentIntersectWithList(Dec dec, std::span<const uint32_t> probe,
                              std::vector<uint32_t>* out) {
  constexpr int kW = Dec::kGroupBits;
  uint64_t pos = 0;
  size_t pi = 0;
  RunSegment s;
  while (pi < probe.size() && dec.Next(&s)) {
    if (s.is_fill) {
      uint64_t end = (pos + s.count) * kW;
      if (s.fill_bit) {
        while (pi < probe.size() && probe[pi] < end) out->push_back(probe[pi++]);
      } else {
        pi = std::lower_bound(probe.begin() + pi, probe.end(),
                              static_cast<uint32_t>(
                                  std::min<uint64_t>(end, UINT32_MAX))) -
             probe.begin();
        // lower_bound handles end > UINT32_MAX by clamping; in that case all
        // remaining probe values are below `end`, so finish the skip here.
        if (end > UINT32_MAX) pi = probe.size();
      }
      pos += s.count;
    } else {
      uint64_t base = pos * kW;
      uint64_t end = base + kW;
      while (pi < probe.size() && probe[pi] < end) {
        uint32_t off = probe[pi] - static_cast<uint32_t>(base);
        if ((s.literal >> off) & 1u) out->push_back(probe[pi]);
        ++pi;
      }
      ++pos;
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-granular engine: operands with different group widths (VALWAH).
// ---------------------------------------------------------------------------

// Adapts a segment decoder (with runtime group width) into a stream of bits
// consumable in arbitrary-sized chunks.
template <typename Dec>
class ChunkedBitStream {
 public:
  ChunkedBitStream(Dec dec, int width) : dec_(std::move(dec)), width_(width) {
    Advance();
  }

  bool exhausted() const { return !has_; }

  // If the stream is positioned inside a fill run, returns the bits left in
  // it and sets *bit; returns 0 otherwise.
  uint64_t FillBitsLeft(bool* bit) const {
    if (!has_ || !seg_.is_fill) return 0;
    *bit = seg_.fill_bit;
    return bits_left_;
  }

  // Returns the next 32 bits of the logical bitmap (LSB = earliest
  // position), zero-padded past the end of the stream.
  uint32_t Next32() {
    uint32_t w = 0;
    int got = 0;
    while (got < 32 && has_) {
      int take = static_cast<int>(
          std::min<uint64_t>(static_cast<uint64_t>(32 - got), bits_left_));
      if (seg_.is_fill) {
        if (seg_.fill_bit) w |= LowMask32(take) << got;
      } else {
        w |= (literal_ & LowMask32(take)) << got;
        literal_ >>= take;
      }
      got += take;
      bits_left_ -= take;
      if (bits_left_ == 0) Advance();
    }
    return w;
  }

  void Skip(uint64_t nbits) {
    while (nbits > 0 && has_) {
      uint64_t take = std::min(nbits, bits_left_);
      if (!seg_.is_fill) literal_ >>= take;
      bits_left_ -= take;
      nbits -= take;
      if (bits_left_ == 0) Advance();
    }
  }

 private:
  void Advance() {
    has_ = dec_.Next(&seg_);
    if (!has_) {
      bits_left_ = 0;
      return;
    }
    if (seg_.is_fill) {
      bits_left_ = seg_.count * static_cast<uint64_t>(width_);
    } else {
      bits_left_ = static_cast<uint64_t>(width_);
      literal_ = seg_.literal;
    }
  }

  Dec dec_;
  int width_;
  RunSegment seg_;
  bool has_ = false;
  uint64_t bits_left_ = 0;
  uint32_t literal_ = 0;
};

template <typename A, typename B>
void BitStreamIntersect(A a, B b, std::vector<uint32_t>* out) {
  uint64_t pos = 0;
  while (!a.exhausted() && !b.exhausted()) {
    bool bit_a = false, bit_b = false;
    uint64_t fa = a.FillBitsLeft(&bit_a);
    uint64_t fb = b.FillBitsLeft(&bit_b);
    if (fa > 0 && !bit_a) {
      a.Skip(fa);
      b.Skip(fa);
      pos += fa;
    } else if (fb > 0 && !bit_b) {
      a.Skip(fb);
      b.Skip(fb);
      pos += fb;
    } else if (fa > 0 && fb > 0) {  // both 1-fills
      uint64_t n = std::min(fa, fb);
      EmitRange(pos, n, out);
      a.Skip(n);
      b.Skip(n);
      pos += n;
    } else {
      uint32_t w = a.Next32() & b.Next32();
      EmitBits(w, pos, out);
      pos += 32;
    }
  }
}

template <typename A, typename B>
void BitStreamUnion(A a, B b, std::vector<uint32_t>* out) {
  uint64_t pos = 0;
  while (!a.exhausted() && !b.exhausted()) {
    bool bit_a = false, bit_b = false;
    uint64_t fa = a.FillBitsLeft(&bit_a);
    uint64_t fb = b.FillBitsLeft(&bit_b);
    if (fa > 0 && bit_a) {
      EmitRange(pos, fa, out);
      a.Skip(fa);
      b.Skip(fa);
      pos += fa;
    } else if (fb > 0 && bit_b) {
      EmitRange(pos, fb, out);
      a.Skip(fb);
      b.Skip(fb);
      pos += fb;
    } else if (fa > 0 && fb > 0) {  // both 0-fills
      uint64_t n = std::min(fa, fb);
      a.Skip(n);
      b.Skip(n);
      pos += n;
    } else {
      uint32_t w = a.Next32() | b.Next32();
      EmitBits(w, pos, out);
      pos += 32;
    }
  }
  // Drain whichever side is still active.
  auto drain = [&pos, out](auto& s) {
    while (!s.exhausted()) {
      bool bit = false;
      uint64_t f = s.FillBitsLeft(&bit);
      if (f > 0) {
        if (bit) EmitRange(pos, f, out);
        s.Skip(f);
        pos += f;
      } else {
        EmitBits(s.Next32(), pos, out);
        pos += 32;
      }
    }
  };
  drain(a);
  drain(b);
}

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_RUNSTREAM_H_
