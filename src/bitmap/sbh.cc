#include "bitmap/sbh.h"

#include <algorithm>

#include "bitmap/group_builder.h"

namespace intcomp {
namespace {

constexpr uint32_t kLiteralOnes = 0x7f;

class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* bytes) : bytes_(bytes) {}

  void AddFill(bool bit, uint64_t n) {
    if (n == 0) return;
    if (pending_ > 0 && fill_bit_ != bit) FlushFill();
    fill_bit_ = bit;
    pending_ += n;
  }

  void AddLiteral(uint32_t payload) {
    if (payload == 0) {
      AddFill(false, 1);
    } else if (payload == kLiteralOnes) {
      AddFill(true, 1);
    } else {
      FlushFill();
      bytes_->push_back(static_cast<uint8_t>(payload));
    }
  }

  void Finish() { FlushFill(); }

 private:
  void FlushFill() {
    uint8_t flags = static_cast<uint8_t>(0x80 | (fill_bit_ ? 0x40 : 0));
    if (pending_ > 0 && pending_ <= 63) {
      // Short run: single byte. Safe because the next byte is never a fill
      // token of the same type (adjacent same-type runs are merged).
      bytes_->push_back(static_cast<uint8_t>(flags | pending_));
      pending_ = 0;
      return;
    }
    // Long runs always use the two-byte form, even for a short final chunk:
    // a one-byte token directly followed by a same-type fill byte would be
    // misparsed as a two-byte token.
    while (pending_ > 0) {
      uint64_t n = std::min(pending_, SbhTraits::kMaxRun);
      bytes_->push_back(static_cast<uint8_t>(flags | (n & 0x3f)));
      bytes_->push_back(static_cast<uint8_t>(flags | (n >> 6)));
      pending_ -= n;
    }
  }

  std::vector<uint8_t>* bytes_;
  uint64_t pending_ = 0;
  bool fill_bit_ = false;
};

}  // namespace

void SbhTraits::EncodeWords(std::span<const uint32_t> sorted,
                            std::vector<uint8_t>* bytes) {
  bytes->clear();
  Encoder enc(bytes);
  ForEachGroup(sorted, Decoder::kGroupBits,
               [&enc](uint64_t zero_gap, uint32_t payload) {
                 enc.AddFill(false, zero_gap);
                 enc.AddLiteral(payload);
               });
  enc.Finish();
}

}  // namespace intcomp
