// SBH (Super Byte-aligned Hybrid) — paper §2.6, [23].
//
// 7-bit groups stored in bytes. A literal byte has MSB = 0 and the 7-bit
// payload. A fill token has MSB = 1, bit 6 = fill value and a 6-bit count;
// runs of 64..4093 groups use a two-byte token whose second byte repeats the
// two flag bits and holds the high 6 count bits. Distinguishing the one- and
// two-byte forms requires peeking at the next byte's two flag bits — the
// extra work the paper identifies as the reason SBH decodes slower than BBC
// (§5.1(7)).

#ifndef INTCOMP_BITMAP_SBH_H_
#define INTCOMP_BITMAP_SBH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/rle_codec.h"
#include "bitmap/runstream.h"

namespace intcomp {

struct SbhTraits {
  static constexpr char kName[] = "SBH";
  using Word = uint8_t;

  static constexpr uint64_t kMaxRun = 4093;

  class Decoder {
   public:
    static constexpr int kGroupBits = 7;

    explicit Decoder(std::span<const uint8_t> bytes)
        : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

    bool Next(RunSegment* seg) {
      if (p_ == end_) return false;
      uint8_t b = *p_++;
      if ((b & 0x80) == 0) {
        seg->is_fill = false;
        seg->literal = b;
        return true;
      }
      uint32_t count = b & 0x3f;
      // Two-byte form: the following byte repeats both flag bits.
      if (p_ != end_ && (*p_ & 0xc0) == (b & 0xc0)) {
        count |= static_cast<uint32_t>(*p_++ & 0x3f) << 6;
      }
      seg->is_fill = true;
      seg->fill_bit = (b & 0x40) != 0;
      seg->count = count;
      return true;
    }

   private:
    const uint8_t* p_;
    const uint8_t* end_;
  };

  static void EncodeWords(std::span<const uint32_t> sorted,
                          std::vector<uint8_t>* bytes);
};

using SbhCodec = RleBitmapCodec<SbhTraits>;

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_SBH_H_
