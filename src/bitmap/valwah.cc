#include "bitmap/valwah.h"

#include <algorithm>

#include "bitmap/group_builder.h"
#include "common/bits.h"
#include "common/serialize_util.h"

namespace intcomp {
namespace {

// WAH-style encoder at a runtime unit size (1/2/4 bytes).
class Encoder {
 public:
  Encoder(std::vector<uint8_t>* out, int unit_bytes)
      : out_(out),
        unit_bytes_(unit_bytes),
        s_(unit_bytes * 8 - 1),
        ones_((uint64_t{1} << s_) - 1),
        max_count_((uint32_t{1} << (s_ - 1)) - 1) {}

  int group_bits() const { return s_; }

  void AddFill(bool bit, uint64_t n) {
    if (n == 0) return;
    if (pending_ > 0 && fill_bit_ != bit) FlushFill();
    fill_bit_ = bit;
    pending_ += n;
  }

  void AddLiteral(uint32_t payload) {
    if (payload == 0) {
      AddFill(false, 1);
    } else if (payload == ones_) {
      AddFill(true, 1);
    } else {
      FlushFill();
      WriteUnit(payload);
    }
  }

  void Finish() { FlushFill(); }

 private:
  void FlushFill() {
    const uint32_t fill_flag = 1u << s_;
    const uint32_t bit_flag = fill_bit_ ? (1u << (s_ - 1)) : 0;
    while (pending_ > 0) {
      uint32_t n =
          static_cast<uint32_t>(std::min<uint64_t>(pending_, max_count_));
      WriteUnit(fill_flag | bit_flag | n);
      pending_ -= n;
    }
  }

  void WriteUnit(uint32_t u) {
    for (int i = 0; i < unit_bytes_; ++i) {
      out_->push_back(static_cast<uint8_t>(u >> (8 * i)));
    }
  }

  std::vector<uint8_t>* out_;
  int unit_bytes_;
  int s_;
  uint32_t ones_;
  uint32_t max_count_;
  uint64_t pending_ = 0;
  bool fill_bit_ = false;
};

void EncodeWithUnit(std::span<const uint32_t> sorted, int unit_bytes,
                    std::vector<uint8_t>* out) {
  out->clear();
  Encoder enc(out, unit_bytes);
  ForEachGroup(sorted, enc.group_bits(),
               [&enc](uint64_t zero_gap, uint32_t payload) {
                 enc.AddFill(false, zero_gap);
                 enc.AddLiteral(payload);
               });
  enc.Finish();
}

ChunkedBitStream<ValwahDecoder> MakeStream(const ValwahCodec::Set& s) {
  ValwahDecoder dec(s.data.data(), s.data.size(), s.unit_bytes);
  return ChunkedBitStream<ValwahDecoder>(dec, dec.group_bits());
}

}  // namespace

std::unique_ptr<CompressedSet> ValwahCodec::Encode(
    std::span<const uint32_t> sorted, uint64_t /*domain*/) const {
  auto set = std::make_unique<Set>();
  set->cardinality = sorted.size();
  // Try each segment length and keep the smallest encoding (VAL's
  // space-minimizing tuning).
  EncodeWithUnit(sorted, 4, &set->data);
  set->unit_bytes = 4;
  std::vector<uint8_t> candidate;
  for (int unit : {2, 1}) {
    EncodeWithUnit(sorted, unit, &candidate);
    if (candidate.size() < set->data.size()) {
      set->data.swap(candidate);
      set->unit_bytes = unit;
    }
  }
  set->data.shrink_to_fit();
  return set;
}

void ValwahCodec::Decode(const CompressedSet& set,
                         std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  out->clear();
  out->reserve(s.cardinality);
  ValwahDecoder dec(s.data.data(), s.data.size(), s.unit_bytes);
  const int w = dec.group_bits();
  uint64_t pos = 0;
  RunSegment seg;
  while (dec.Next(&seg)) {
    if (seg.is_fill) {
      if (seg.fill_bit) EmitRange(pos * w, seg.count * w, out);
      pos += seg.count;
    } else {
      EmitBits(seg.literal, pos * w, out);
      ++pos;
    }
  }
}

void ValwahCodec::Intersect(const CompressedSet& a, const CompressedSet& b,
                            std::vector<uint32_t>* out) const {
  out->clear();
  BitStreamIntersect(MakeStream(static_cast<const Set&>(a)),
                     MakeStream(static_cast<const Set&>(b)), out);
}

void ValwahCodec::Union(const CompressedSet& a, const CompressedSet& b,
                        std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  out->clear();
  out->reserve(sa.cardinality + sb.cardinality);
  BitStreamUnion(MakeStream(sa), MakeStream(sb), out);
}

void ValwahCodec::IntersectWithList(const CompressedSet& a,
                                    std::span<const uint32_t> probe,
                                    std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(a);
  out->clear();
  ValwahDecoder dec(s.data.data(), s.data.size(), s.unit_bytes);
  const int w = dec.group_bits();
  uint64_t pos = 0;
  size_t pi = 0;
  RunSegment seg;
  while (pi < probe.size() && dec.Next(&seg)) {
    if (seg.is_fill) {
      uint64_t end = (pos + seg.count) * w;
      if (seg.fill_bit) {
        while (pi < probe.size() && probe[pi] < end) out->push_back(probe[pi++]);
      } else {
        while (pi < probe.size() && probe[pi] < end) ++pi;
      }
      pos += seg.count;
    } else {
      uint64_t base = pos * w;
      uint64_t end = base + w;
      while (pi < probe.size() && probe[pi] < end) {
        uint32_t off = static_cast<uint32_t>(probe[pi] - base);
        if ((seg.literal >> off) & 1u) out->push_back(probe[pi]);
        ++pi;
      }
      ++pos;
    }
  }
}

void ValwahCodec::Serialize(const CompressedSet& set,
                            std::vector<uint8_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  ByteWriter writer(out);
  writer.PutU64(s.cardinality);
  writer.PutU8(static_cast<uint8_t>(s.unit_bytes));
  WriteVector(s.data, out);
}

std::unique_ptr<CompressedSet> ValwahCodec::Deserialize(const uint8_t* data,
                                                        size_t size) const {
  ByteReader reader(data, size);
  if (reader.Remaining() < 9) return nullptr;
  auto set = std::make_unique<Set>();
  set->cardinality = reader.GetU64();
  set->unit_bytes = reader.GetU8();
  if (set->unit_bytes != 1 && set->unit_bytes != 2 && set->unit_bytes != 4) {
    return nullptr;
  }
  if (!ReadVector(&reader, &set->data)) return nullptr;
  if (set->data.size() % set->unit_bytes != 0) return nullptr;
  return set;
}

Status ValwahCodec::ValidateSet(const CompressedSet& set,
                                uint64_t domain) const {
  // Same segment replay as RleBitmapCodec::ValidateSet, at the set's runtime
  // group width. The decoder itself is bounds-safe (Deserialize pins
  // unit_bytes and the unit alignment), so only group positions, bit bounds,
  // and the cardinality need verification.
  const auto& s = static_cast<const Set&>(set);
  const uint64_t dmax = std::min<uint64_t>(domain, uint64_t{1} << 32);
  ValwahDecoder dec(s.data.data(), s.data.size(), s.unit_bytes);
  const uint64_t kW = dec.group_bits();
  const uint64_t max_groups = (dmax + kW - 1) / kW;
  RunSegment seg;
  uint64_t pos = 0;
  uint64_t bits = 0;
  while (dec.Next(&seg)) {
    if (seg.is_fill) {
      if (seg.count > max_groups - pos) {
        return Status::Corrupt("fill run extends past domain");
      }
      if (seg.fill_bit) {
        if ((pos + seg.count) * kW > dmax) {
          return Status::Corrupt("1-fill covers bits past domain");
        }
        bits += seg.count * kW;
      }
      pos += seg.count;
    } else {
      if (pos >= max_groups) {
        return Status::Corrupt("literal group past domain");
      }
      if (seg.literal != 0) {
        const uint64_t high = BitWidth32(seg.literal) - 1;
        if (pos * kW + high >= dmax) {
          return Status::Corrupt("literal sets bit past domain");
        }
        bits += PopCount32(seg.literal);
      }
      ++pos;
    }
  }
  if (bits != s.cardinality) {
    return Status::Corrupt("cardinality mismatch");
  }
  return Status::Ok();
}

}  // namespace intcomp
