// VALWAH (Variable-Aligned Length WAH) — paper §2.5, [20].
//
// The VAL framework encodes each bitmap with a tunable segment length
// s = 2^i * (b-1) (b = 8, w = 32 => s ∈ {7, 15, 31}), trading space for
// alignment cost. We realize it as WAH generalized to 8-, 16- or 32-bit
// units (1 flag bit + s payload bits; fill units carry a fill bit and an
// (s-1)-bit run count), choosing per bitmap the segment length that
// minimizes the encoding — the paper's space-minimizing instantiation.
//
// Because two operands may use different segment lengths, queries run
// through the bit-granular ChunkedBitStream engine, paying the segment
// alignment penalty the paper measures (§5.2(3): 1.3x–6.7x slower than WAH).

#ifndef INTCOMP_BITMAP_VALWAH_H_
#define INTCOMP_BITMAP_VALWAH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bitmap/runstream.h"
#include "core/codec.h"

namespace intcomp {

// Segment decoder over VALWAH units; group width is runtime (7/15/31 bits).
class ValwahDecoder {
 public:
  ValwahDecoder(const uint8_t* data, size_t size, int unit_bytes)
      : data_(data), size_(size), unit_bytes_(unit_bytes) {}

  int group_bits() const { return unit_bytes_ * 8 - 1; }

  bool Next(RunSegment* seg) {
    if (pos_ >= size_) return false;
    uint32_t unit = ReadUnit();
    const int s = group_bits();
    const uint32_t fill_flag = 1u << s;
    if (unit & fill_flag) {
      seg->is_fill = true;
      seg->fill_bit = (unit >> (s - 1)) & 1u;
      seg->count = unit & ((1u << (s - 1)) - 1);
    } else {
      seg->is_fill = false;
      seg->literal = unit;
    }
    return true;
  }

 private:
  uint32_t ReadUnit() {
    uint32_t u = 0;
    for (int i = 0; i < unit_bytes_; ++i) {
      u |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += unit_bytes_;
    return u;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  int unit_bytes_;
};

class ValwahCodec final : public Codec {
 public:
  struct Set final : CompressedSet {
    std::vector<uint8_t> data;
    int unit_bytes = 4;  // 1, 2, or 4 (segment lengths 7, 15, 31)
    size_t cardinality = 0;

    size_t SizeInBytes() const override { return data.size(); }
    size_t Cardinality() const override { return cardinality; }
  };

  ValwahCodec() = default;

  std::string_view Name() const override { return "VALWAH"; }
  CodecFamily Family() const override { return CodecFamily::kBitmap; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t domain) const override;
  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override;
  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override;
  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override;
  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override;
  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override;
  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override;
  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override;
};

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_VALWAH_H_
