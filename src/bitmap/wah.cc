#include "bitmap/wah.h"

#include "bitmap/group_builder.h"
#include "common/bits.h"

namespace intcomp {
namespace {

constexpr uint32_t kLiteralOnes = (1u << 31) - 1;  // 31 set payload bits

class Encoder {
 public:
  explicit Encoder(std::vector<uint32_t>* words) : words_(words) {}

  void AddFill(bool bit, uint64_t n) {
    if (n == 0) return;
    if (pending_ > 0 && fill_bit_ != bit) FlushFill();
    fill_bit_ = bit;
    pending_ += n;
  }

  void AddLiteral(uint32_t payload) {
    if (payload == 0) {
      AddFill(false, 1);
    } else if (payload == kLiteralOnes) {
      AddFill(true, 1);
    } else {
      FlushFill();
      words_->push_back(payload);
    }
  }

  void Finish() { FlushFill(); }

 private:
  void FlushFill() {
    while (pending_ > 0) {
      uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(pending_, WahTraits::kMaxFillCount));
      words_->push_back(WahTraits::kFillFlag |
                        (fill_bit_ ? WahTraits::kFillBit : 0) | n);
      pending_ -= n;
    }
  }

  std::vector<uint32_t>* words_;
  uint64_t pending_ = 0;
  bool fill_bit_ = false;
};

}  // namespace

void WahTraits::EncodeWords(std::span<const uint32_t> sorted,
                            std::vector<uint32_t>* words) {
  words->clear();
  Encoder enc(words);
  ForEachGroup(sorted, Decoder::kGroupBits,
               [&enc](uint64_t zero_gap, uint32_t payload) {
                 enc.AddFill(false, zero_gap);
                 enc.AddLiteral(payload);
               });
  enc.Finish();
}

}  // namespace intcomp
