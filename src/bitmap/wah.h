// WAH (Word-Aligned Hybrid) bitmap compression — paper §2.1, [22].
//
// The bitmap is split into 31-bit groups. A literal word stores one group
// (MSB = 0, low 31 bits = payload). A fill word (MSB = 1) stores bit 30 =
// fill value and a 30-bit count of consecutive identical fill groups.

#ifndef INTCOMP_BITMAP_WAH_H_
#define INTCOMP_BITMAP_WAH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/rle_codec.h"
#include "bitmap/runstream.h"

namespace intcomp {

struct WahTraits {
  static constexpr char kName[] = "WAH";
  using Word = uint32_t;

  static constexpr uint32_t kFillFlag = 0x80000000u;
  static constexpr uint32_t kFillBit = 0x40000000u;
  static constexpr uint32_t kMaxFillCount = 0x3fffffffu;

  class Decoder {
   public:
    static constexpr int kGroupBits = 31;

    explicit Decoder(std::span<const uint32_t> words)
        : p_(words.data()), end_(words.data() + words.size()) {}

    bool Next(RunSegment* seg) {
      if (p_ == end_) return false;
      uint32_t w = *p_++;
      if (w & kFillFlag) {
        seg->is_fill = true;
        seg->fill_bit = (w & kFillBit) != 0;
        seg->count = w & kMaxFillCount;
      } else {
        seg->is_fill = false;
        seg->literal = w;
      }
      return true;
    }

   private:
    const uint32_t* p_;
    const uint32_t* end_;
  };

  static void EncodeWords(std::span<const uint32_t> sorted,
                          std::vector<uint32_t>* words);
};

using WahCodec = RleBitmapCodec<WahTraits>;

}  // namespace intcomp

#endif  // INTCOMP_BITMAP_WAH_H_
