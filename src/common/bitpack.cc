#include "common/bitpack.h"

#include "common/bits.h"

namespace intcomp {

void PackBits(const uint32_t* in, size_t n, int b, uint32_t* out) {
  if (b == 0) return;
  if (b == 32) {
    for (size_t i = 0; i < n; ++i) out[i] = in[i];
    return;
  }
  uint64_t acc = 0;
  int filled = 0;
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    acc |= static_cast<uint64_t>(in[i]) << filled;
    filled += b;
    if (filled >= 32) {
      out[w++] = static_cast<uint32_t>(acc);
      acc >>= 32;
      filled -= 32;
    }
  }
  if (filled > 0) out[w++] = static_cast<uint32_t>(acc);
}

void UnpackBits(const uint32_t* in, size_t n, int b, uint32_t* out) {
  if (b == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  if (b == 32) {
    for (size_t i = 0; i < n; ++i) out[i] = in[i];
    return;
  }
  const uint32_t mask = LowMask32(b);
  uint64_t acc = 0;
  int avail = 0;
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (avail < b) {
      acc |= static_cast<uint64_t>(in[w++]) << avail;
      avail += 32;
    }
    out[i] = static_cast<uint32_t>(acc) & mask;
    acc >>= b;
    avail -= b;
  }
}

}  // namespace intcomp
