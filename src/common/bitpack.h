// Scalar (horizontal) bit packing: n values of b bits each, packed
// contiguously into 32-bit words. Used by the scalar PforDelta family and
// PEF's low-bit array.

#ifndef INTCOMP_COMMON_BITPACK_H_
#define INTCOMP_COMMON_BITPACK_H_

#include <cstddef>
#include <cstdint>

namespace intcomp {

// Number of 32-bit words needed to hold n values of b bits.
inline size_t PackedWords32(size_t n, int b) {
  return (n * static_cast<size_t>(b) + 31) / 32;
}

// Packs in[0..n) (each < 2^b) into out[0..PackedWords32(n,b)).
// b in [0, 32]. out must be zeroed or fully overwritten; this function fully
// overwrites the words it touches.
void PackBits(const uint32_t* in, size_t n, int b, uint32_t* out);

// Unpacks n values of b bits from `in` into `out`.
void UnpackBits(const uint32_t* in, size_t n, int b, uint32_t* out);

// Reads the i-th b-bit slot from a packed array (random access).
inline uint32_t GetPacked(const uint32_t* in, size_t i, int b) {
  if (b == 0) return 0;
  size_t bitpos = i * static_cast<size_t>(b);
  size_t word = bitpos >> 5;
  int offset = static_cast<int>(bitpos & 31);
  uint64_t window = in[word];
  if (offset + b > 32) window |= static_cast<uint64_t>(in[word + 1]) << 32;
  return static_cast<uint32_t>(window >> offset) &
         ((b >= 32) ? ~uint32_t{0} : (uint32_t{1} << b) - 1);
}

// Writes the i-th b-bit slot of a packed array (random access). The slot's
// previous contents must be zero (as after zero-initialization).
inline void SetPacked(uint32_t* out, size_t i, int b, uint32_t value) {
  if (b == 0) return;
  size_t bitpos = i * static_cast<size_t>(b);
  size_t word = bitpos >> 5;
  int offset = static_cast<int>(bitpos & 31);
  out[word] |= value << offset;
  if (offset + b > 32) out[word + 1] |= value >> (32 - offset);
}

}  // namespace intcomp

#endif  // INTCOMP_COMMON_BITPACK_H_
