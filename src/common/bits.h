// Bit-manipulation primitives shared by every codec.
//
// The paper (§4.3) implements codecs with the CPU's popcnt and ctz
// instructions; these wrappers are the single place that maps onto them.

#ifndef INTCOMP_COMMON_BITS_H_
#define INTCOMP_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace intcomp {

// Number of set bits in `x` (popcnt).
inline int PopCount32(uint32_t x) { return std::popcount(x); }
inline int PopCount64(uint64_t x) { return std::popcount(x); }

// Index of the lowest set bit (ctz). Undefined for x == 0.
inline int CountTrailingZeros32(uint32_t x) { return std::countr_zero(x); }
inline int CountTrailingZeros64(uint64_t x) { return std::countr_zero(x); }

// Number of bits needed to represent `x` (0 for x == 0).
inline int BitWidth32(uint32_t x) { return 32 - std::countl_zero(x); }
inline int BitWidth64(uint64_t x) { return 64 - std::countl_zero(x); }

// Clears the lowest set bit of `x`.
inline uint32_t ClearLowestBit32(uint32_t x) { return x & (x - 1); }
inline uint64_t ClearLowestBit64(uint64_t x) { return x & (x - 1); }

// Mask with the low `n` bits set; n in [0, 32] / [0, 64].
inline uint32_t LowMask32(int n) {
  return n >= 32 ? ~uint32_t{0} : (uint32_t{1} << n) - 1;
}
inline uint64_t LowMask64(int n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

// Appends the positions of all set bits of `word`, offset by `base`, to
// `out` (which must have room for PopCount set bits). Returns the number of
// positions written. This is the ctz extraction loop the paper describes for
// turning literal words into uncompressed integers.
inline uint32_t* EmitSetBits32(uint32_t word, uint32_t base, uint32_t* out) {
  while (word != 0) {
    *out++ = base + static_cast<uint32_t>(CountTrailingZeros32(word));
    word = ClearLowestBit32(word);
  }
  return out;
}
inline uint32_t* EmitSetBits64(uint64_t word, uint32_t base, uint32_t* out) {
  while (word != 0) {
    *out++ = base + static_cast<uint32_t>(CountTrailingZeros64(word));
    word = ClearLowestBit64(word);
  }
  return out;
}

}  // namespace intcomp

#endif  // INTCOMP_COMMON_BITS_H_
