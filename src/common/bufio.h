// Little-endian byte buffer writer/reader used by the byte-oriented codecs
// (VB, GroupVB, BBC, SBH) and by variable-length block headers.

#ifndef INTCOMP_COMMON_BUFIO_H_
#define INTCOMP_COMMON_BUFIO_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace intcomp {

// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) {
    out_->push_back(static_cast<uint8_t>(v));
    out_->push_back(static_cast<uint8_t>(v >> 8));
  }
  void PutU32(uint32_t v) {
    size_t pos = out_->size();
    out_->resize(pos + 4);
    std::memcpy(out_->data() + pos, &v, 4);
  }
  void PutU64(uint64_t v) {
    size_t pos = out_->size();
    out_->resize(pos + 8);
    std::memcpy(out_->data() + pos, &v, 8);
  }
  void PutBytes(const uint8_t* data, size_t n) {
    out_->insert(out_->end(), data, data + n);
  }

  size_t size() const { return out_->size(); }

 private:
  std::vector<uint8_t>* out_;
};

// Sequential reader over a byte buffer.
//
// TRUSTED-CALLER CONTRACT: reads are unchecked for speed; the caller must
// guarantee `Remaining()` covers each read before issuing it (every in-tree
// caller checks sizes up front or via ReadVector). Debug builds assert the
// contract. Untrusted byte images must instead go through CheckedByteReader
// (common/status.h) / Codec::DeserializeChecked, which never read past the
// end of the buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}

  uint8_t GetU8() {
    assert(Remaining() >= 1 && "ByteReader::GetU8 past end");
    return data_[pos_++];
  }
  uint8_t PeekU8() const {
    assert(Remaining() >= 1 && "ByteReader::PeekU8 past end");
    return data_[pos_];
  }
  uint16_t GetU16() {
    assert(Remaining() >= 2 && "ByteReader::GetU16 past end");
    uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  uint32_t GetU32() {
    assert(Remaining() >= 4 && "ByteReader::GetU32 past end");
    uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return v;
  }
  uint64_t GetU64() {
    assert(Remaining() >= 8 && "ByteReader::GetU64 past end");
    uint64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }

  void GetBytes(uint8_t* dst, size_t n) {
    assert(Remaining() >= n && "ByteReader::GetBytes past end");
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  bool AtEnd() const { return pos_ >= size_; }
  size_t Remaining() const { return size_ - pos_; }
  size_t Position() const { return pos_; }
  void Seek(size_t pos) { pos_ = pos; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace intcomp

#endif  // INTCOMP_COMMON_BUFIO_H_
