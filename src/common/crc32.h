// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// checksum of the on-disk container format (src/storage).
//
// The container stores one CRC per section and one per payload, so a reader
// can localize corruption ("offset table damaged" vs "payload 17 damaged")
// instead of reporting a single whole-file mismatch. Software table lookup
// only: the checksum sits on the cold open/materialize path, never on the
// per-query hot path, so portability beats hardware CRC instructions here.

#ifndef INTCOMP_COMMON_CRC32_H_
#define INTCOMP_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace intcomp {

namespace crc32_internal {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

// Incremental CRC-32 over a byte stream; Value() may be read at any point
// (it finalizes a copy, so Update may continue afterwards). The streaming
// form is what lets IndexWriter checksum a section while writing it, without
// buffering the section in memory.
class Crc32 {
 public:
  void Update(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    uint32_t c = state_;
    for (size_t i = 0; i < n; ++i) {
      c = crc32_internal::kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    state_ = c;
  }
  uint32_t Value() const { return state_ ^ 0xffffffffu; }
  void Reset() { state_ = 0xffffffffu; }

 private:
  uint32_t state_ = 0xffffffffu;
};

// One-shot form.
inline uint32_t Crc32Of(std::span<const uint8_t> bytes) {
  Crc32 crc;
  crc.Update(bytes.data(), bytes.size());
  return crc.Value();
}

}  // namespace intcomp

#endif  // INTCOMP_COMMON_CRC32_H_
