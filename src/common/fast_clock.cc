#include "common/fast_clock.h"

#include <mutex>

namespace intcomp {
namespace {

double Calibrate() {
#if defined(__x86_64__) || defined(_M_X64)
  // Measure the TSC against steady_clock over ~1 ms. Modern x86 has
  // constant_tsc, so one measurement holds for the process lifetime; 1 ms is
  // long enough that the two clock reads' own latency is noise.
  const uint64_t ns0 = NowNs();
  const uint64_t t0 = CycleTicks();
  while (NowNs() - ns0 < 1000000) {
  }
  const uint64_t t1 = CycleTicks();
  const uint64_t ns1 = NowNs();
  const uint64_t dns = ns1 - ns0;
  if (dns == 0 || t1 <= t0) return 1.0;  // broken TSC: treat ticks as ns
  return static_cast<double>(t1 - t0) / static_cast<double>(dns);
#else
  return 1.0;
#endif
}

std::once_flag g_calibrate_once;
double g_ticks_per_ns = 1.0;

}  // namespace

double TicksPerNs() {
  std::call_once(g_calibrate_once, [] { g_ticks_per_ns = Calibrate(); });
  return g_ticks_per_ns;
}

uint64_t TicksToNs(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) / TicksPerNs());
}

}  // namespace intcomp
