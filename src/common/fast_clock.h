// Low-overhead timestamp sources for the observability layer.
//
// Two tiers:
//   - NowNs(): steady_clock nanoseconds (vDSO clock_gettime, ~20 ns). The
//     unit every histogram and exported metric uses.
//   - CycleTicks(): raw TSC on x86-64 (~7 ns, no serialization), falling
//     back to NowNs() elsewhere. Trace spans record ticks on the hot path
//     and convert to nanoseconds lazily at snapshot time via TicksToNs(),
//     which calibrates the tick rate against steady_clock exactly once.

#ifndef INTCOMP_COMMON_FAST_CLOCK_H_
#define INTCOMP_COMMON_FAST_CLOCK_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace intcomp {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t CycleTicks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return NowNs();
#endif
}

// Calibrated ticks-per-nanosecond ratio (1.0 on non-x86, where CycleTicks is
// already nanoseconds). The first call spins for ~1 ms to measure the TSC
// against steady_clock; subsequent calls are a load. Never call on a latency-
// critical path — record ticks there and convert when reporting.
double TicksPerNs();

// Converts a tick *interval* (or a tick timestamp whose epoch does not
// matter) to nanoseconds using the calibrated ratio.
uint64_t TicksToNs(uint64_t ticks);

}  // namespace intcomp

#endif  // INTCOMP_COMMON_FAST_CLOCK_H_
