// Deterministic fault injection for the storage and write paths, plus the
// corruption operators shared by the fuzz suites (promoted from
// tests/fault_inject.h so production-adjacent code and every test layer use
// one registry).
//
// Two halves:
//
//  1. FaultInjector — a process-global registry of named injection sites
//     (file append/flush, WAL append/sync, rename, mmap open, allocation,
//     compaction steps). Sites are disarmed by default and cost one relaxed
//     atomic load, so shipping the hooks in production code is free. Tests
//     arm a *schedule*: crash-at-op-K (the K-th injectable op lands a short
//     write and every later op fails permanently — a process death), or
//     seeded per-op fault rates (transient/permanent/short-write drawn from
//     a Prng). All randomness is seeded — by the test, or via the
//     INTCOMP_FAULT_SEED environment variable — so a failing schedule
//     replays from its seed alone.
//
//  2. Corruption operators (TruncateAt/FlipBits/InflateLength/Splice/
//     Scramble) — pure functions over byte images, used by the codec- and
//     container-level corruption fuzzers.
//
// Thread safety: FaultInjector state sits behind a mutex; injection sites
// are cold-path I/O boundaries, never per-value hot loops.

#ifndef INTCOMP_COMMON_FAULT_H_
#define INTCOMP_COMMON_FAULT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/prng.h"

namespace intcomp {
namespace fault {

// Injection sites. A site names the I/O boundary consulting the registry;
// schedules may restrict themselves to a subset via a bitmask.
enum class Site : uint8_t {
  kFileCreate = 0,   // FileSink::Create
  kFileAppend,       // FileSink::Append
  kFileWriteAt,      // FileSink::WriteAt (the header patch)
  kFileFlush,        // FileSink::Flush (fflush + fsync)
  kWalAppend,        // WalWriter record append
  kWalSync,          // WalWriter fsync
  kRename,           // atomic commit rename
  kMapOpen,          // MappedIndex::Open file mapping
  kAlloc,            // large allocation checkpoints (replay/compaction)
  kCompactionStep,   // compaction phase boundaries
};
inline constexpr size_t kNumSites = 10;

inline constexpr uint32_t SiteBit(Site s) {
  return uint32_t{1} << static_cast<uint8_t>(s);
}
inline constexpr uint32_t kAllSites = (uint32_t{1} << kNumSites) - 1;

// What an armed injector tells a site to do.
enum class Kind : uint8_t {
  kNone = 0,     // proceed normally
  kTransient,    // fail with Status::Unavailable (retryable)
  kPermanent,    // fail with a permanent error
  kShortWrite,   // write only `short_bytes` of the payload, then fail
};

struct Action {
  Kind kind = Kind::kNone;
  size_t short_bytes = 0;  // kShortWrite: bytes that land before the failure
};

// Per-op fault rates for the probabilistic schedule.
struct Rates {
  double transient = 0.0;
  double permanent = 0.0;
  double short_write = 0.0;
};

// Base seed for fault schedules: `default_seed` unless INTCOMP_FAULT_SEED
// overrides it (replaying a reported campaign failure).
inline uint64_t EnvSeed(uint64_t default_seed) {
  static const char* env = std::getenv("INTCOMP_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return default_seed;
}

class FaultInjector {
 public:
  static FaultInjector& Global() {
    static FaultInjector* g = new FaultInjector();  // intentionally leaked
    return *g;
  }

  // Removes every schedule; sites see kNone again. Also clears the crashed
  // latch and op counter.
  void Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kOff;
    crashed_ = false;
    ops_ = 0;
    armed_.store(false, std::memory_order_relaxed);
  }

  // Crash-at-op-K: the K-th (1-based) op hitting `sites` lands a seeded
  // short write and latches the crash; every subsequent op at any armed
  // site fails permanently, modeling a dead process whose file descriptors
  // went with it. Recovery code must Disarm() before "restarting".
  void ArmCrashAtOp(uint64_t k, uint64_t seed, uint32_t sites = kAllSites) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kCrashAtOp;
    crash_op_ = k;
    sites_ = sites;
    rng_ = Prng(seed);
    crashed_ = false;
    ops_ = 0;
    armed_.store(true, std::memory_order_relaxed);
  }

  // Seeded per-op fault rates at `sites` (transient first, then permanent,
  // then short-write, from one uniform draw per op).
  void ArmRates(const Rates& rates, uint64_t seed, uint32_t sites = kAllSites) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kRates;
    rates_ = rates;
    sites_ = sites;
    rng_ = Prng(seed);
    crashed_ = false;
    ops_ = 0;
    armed_.store(true, std::memory_order_relaxed);
  }

  // Fail the first `k` ops at `sites` transiently (then heal) — the
  // schedule the bounded-retry paths are tested with.
  void ArmTransientFirst(uint64_t k, uint32_t sites = kAllSites) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kTransientFirst;
    crash_op_ = k;
    sites_ = sites;
    crashed_ = false;
    ops_ = 0;
    armed_.store(true, std::memory_order_relaxed);
  }

  bool Armed() const { return armed_.load(std::memory_order_relaxed); }

  // True once a crash-at-op-K schedule has tripped.
  bool Crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }

  // Ops seen at armed sites since the schedule was armed.
  uint64_t OpsSeen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_;
  }

  // Consulted by an injection site about to perform an op that would write
  // `bytes` bytes (0 for non-write ops). Disarmed cost: one relaxed load.
  Action OnOp(Site site, size_t bytes = 0) {
    if (!armed_.load(std::memory_order_relaxed)) return {};
    std::lock_guard<std::mutex> lock(mu_);
    if (mode_ == Mode::kOff) return {};
    if ((sites_ & SiteBit(site)) == 0 && !crashed_) return {};
    switch (mode_) {
      case Mode::kOff:
        return {};
      case Mode::kCrashAtOp: {
        if (crashed_) return {Kind::kPermanent, 0};
        if ((sites_ & SiteBit(site)) == 0) return {};
        if (++ops_ < crash_op_) return {};
        crashed_ = true;
        if (bytes > 0) {
          return {Kind::kShortWrite,
                  static_cast<size_t>(rng_.NextBounded(bytes))};
        }
        return {Kind::kPermanent, 0};
      }
      case Mode::kTransientFirst: {
        if ((sites_ & SiteBit(site)) == 0) return {};
        if (++ops_ <= crash_op_) return {Kind::kTransient, 0};
        return {};
      }
      case Mode::kRates: {
        if ((sites_ & SiteBit(site)) == 0) return {};
        ++ops_;
        const double u = rng_.NextDouble();
        if (u < rates_.transient) return {Kind::kTransient, 0};
        if (u < rates_.transient + rates_.permanent) {
          return {Kind::kPermanent, 0};
        }
        if (bytes > 0 &&
            u < rates_.transient + rates_.permanent + rates_.short_write) {
          return {Kind::kShortWrite,
                  static_cast<size_t>(rng_.NextBounded(bytes))};
        }
        return {};
      }
    }
    return {};
  }

 private:
  enum class Mode : uint8_t { kOff, kCrashAtOp, kTransientFirst, kRates };

  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  Mode mode_ = Mode::kOff;       // guarded by mu_
  uint64_t crash_op_ = 0;        // guarded by mu_
  uint32_t sites_ = kAllSites;   // guarded by mu_
  Rates rates_;                  // guarded by mu_
  Prng rng_{0};                  // guarded by mu_
  bool crashed_ = false;         // guarded by mu_
  uint64_t ops_ = 0;             // guarded by mu_
};

// RAII disarm for tests: guarantees a panicking assertion never leaves the
// global injector armed for the next test.
class ScopedDisarm {
 public:
  ScopedDisarm() = default;
  ~ScopedDisarm() { FaultInjector::Global().Disarm(); }
  ScopedDisarm(const ScopedDisarm&) = delete;
  ScopedDisarm& operator=(const ScopedDisarm&) = delete;
};

}  // namespace fault

// ---------------------------------------------------------------------------
// Corruption operators for serialized images (formerly tests/fault_inject.h).
// Each takes a genuine image and produces a hostile variant a decoder must
// survive: truncations model torn reads, bit flips model media corruption,
// length inflation models attacker-controlled size fields, and splices model
// images whose halves come from different writers. All randomness flows
// through the caller's Prng, so a failing fuzz iteration reproduces from its
// seed alone.

// The first `n` bytes of `image` (n may be anything up to image.size()).
inline std::vector<uint8_t> TruncateAt(const std::vector<uint8_t>& image,
                                       size_t n) {
  return std::vector<uint8_t>(image.begin(),
                              image.begin() + std::min(n, image.size()));
}

// Flips `flips` random bits in place.
inline void FlipBits(std::vector<uint8_t>* image, size_t flips, Prng* rng) {
  if (image->empty()) return;
  for (size_t i = 0; i < flips; ++i) {
    const size_t bit = rng->NextBounded(image->size() * 8);
    (*image)[bit / 8] ^= uint8_t{1} << (bit % 8);
  }
}

// Overwrites a random aligned-size window with an attacker-chosen "huge
// length" pattern: all-ones, a value just past the buffer size, or a value
// whose byte count overflows 64-bit arithmetic (2^61 8-byte elements).
inline void InflateLength(std::vector<uint8_t>* image, Prng* rng) {
  if (image->size() < 4) return;
  const size_t off = rng->NextBounded(image->size() - 3);
  const uint64_t patterns[] = {
      ~uint64_t{0},
      uint64_t{0xffffffff},
      static_cast<uint64_t>(image->size()) + 1 + rng->NextBounded(1024),
      uint64_t{1} << 61,  // * 8 bytes/element wraps a 64-bit size_t
  };
  const uint64_t v = patterns[rng->NextBounded(4)];
  const size_t n = std::min<size_t>(8, image->size() - off);
  std::memcpy(image->data() + off, &v, n);
}

// Head of `a` glued to the tail of `b` at independent random cuts — the
// shape of an image whose inner payload was swapped out from under its
// header (or that mixes two codecs' framings).
inline std::vector<uint8_t> Splice(const std::vector<uint8_t>& a,
                                   const std::vector<uint8_t>& b, Prng* rng) {
  const size_t cut_a = a.empty() ? 0 : rng->NextBounded(a.size() + 1);
  const size_t cut_b = b.empty() ? 0 : rng->NextBounded(b.size() + 1);
  std::vector<uint8_t> out(a.begin(), a.begin() + cut_a);
  out.insert(out.end(), b.begin() + cut_b, b.end());
  return out;
}

// Replaces a random window with uniformly random bytes.
inline void Scramble(std::vector<uint8_t>* image, Prng* rng) {
  if (image->empty()) return;
  const size_t off = rng->NextBounded(image->size());
  const size_t len =
      1 + rng->NextBounded(std::min<size_t>(image->size() - off, 16));
  for (size_t i = 0; i < len; ++i) {
    (*image)[off + i] = static_cast<uint8_t>(rng->Next());
  }
}

}  // namespace intcomp

#endif  // INTCOMP_COMMON_FAULT_H_
