// Deterministic PRNG for workload generation.
//
// xoshiro256** — fast, high-quality, and reproducible across platforms, so
// every benchmark run sees identical lists for a given seed.

#ifndef INTCOMP_COMMON_PRNG_H_
#define INTCOMP_COMMON_PRNG_H_

#include <cstdint>

namespace intcomp {

class Prng {
 public:
  explicit Prng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace intcomp

#endif  // INTCOMP_COMMON_PRNG_H_
