// Bounded retry with deterministic jittered backoff for the storage I/O
// paths (MappedIndex::Open, FileSink, WAL sync).
//
// Status now distinguishes transient failures (kUnavailable: EINTR-class
// errno, injected transient faults, resource pressure) from permanent ones
// (kCorruptData, kInvalidArgument, kInternal). RetryTransient re-runs an
// operation while it reports transient failure, sleeping an exponentially
// growing, jittered interval between attempts. The jitter is drawn from a
// seeded Prng — by default the INTCOMP_FAULT_SEED-overridable base seed —
// so a test's retry schedule is byte-for-byte reproducible.

#ifndef INTCOMP_COMMON_RETRY_H_
#define INTCOMP_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/fault.h"
#include "common/prng.h"
#include "common/status.h"

namespace intcomp {

inline bool IsTransient(const Status& s) {
  return s.code() == StatusCode::kUnavailable;
}

struct RetryOptions {
  // Total attempts including the first (1 = no retry).
  int max_attempts = 4;
  // First backoff interval; doubles each retry, capped at max_backoff_us.
  uint64_t base_backoff_us = 50;
  uint64_t max_backoff_us = 5000;
  // Seed for the jitter Prng; 0 means "derive from INTCOMP_FAULT_SEED or a
  // fixed default", keeping schedules deterministic unless overridden.
  uint64_t jitter_seed = 0;
};

// Runs `fn` (returning Status) up to options.max_attempts times, retrying
// only transient failures. Sleeps backoff * U[0.5, 1.0) between attempts
// (full-jitter halves the thundering-herd alignment while keeping the
// deterministic schedule). Returns the last Status; `attempts`, when
// non-null, receives the number of invocations.
template <typename Fn>
Status RetryTransient(const RetryOptions& options, Fn&& fn,
                      int* attempts = nullptr) {
  Prng rng(options.jitter_seed != 0 ? options.jitter_seed
                                    : fault::EnvSeed(0x7e77'a110'c4ed'5eedULL));
  uint64_t backoff_us = options.base_backoff_us;
  Status st = Status::Ok();
  const int max_attempts = std::max(options.max_attempts, 1);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempts != nullptr) *attempts = attempt;
    st = fn();
    if (!IsTransient(st) || attempt == max_attempts) return st;
    const uint64_t jittered =
        backoff_us / 2 + rng.NextBounded(backoff_us / 2 + 1);
    std::this_thread::sleep_for(std::chrono::microseconds(jittered));
    backoff_us = std::min(backoff_us * 2, options.max_backoff_us);
  }
  return st;
}

}  // namespace intcomp

#endif  // INTCOMP_COMMON_RETRY_H_
