// Length-prefixed little-endian (de)serialization of trivially copyable
// vectors — the building block of every codec's Serialize/Deserialize.

#ifndef INTCOMP_COMMON_SERIALIZE_UTIL_H_
#define INTCOMP_COMMON_SERIALIZE_UTIL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/bufio.h"

namespace intcomp {

// Span form: the writer for sets whose storage may be a borrowed view
// (common/varray.h) rather than a vector.
template <typename T>
void WriteSpan(std::span<const T> v, std::vector<uint8_t>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  ByteWriter writer(out);
  writer.PutU64(v.size());
  if (!v.empty()) {
    writer.PutBytes(reinterpret_cast<const uint8_t*>(v.data()),
                    v.size() * sizeof(T));
  }
}

template <typename T>
void WriteVector(const std::vector<T>& v, std::vector<uint8_t>* out) {
  WriteSpan(std::span<const T>(v), out);
}

// Returns false (leaving *v unspecified) if the buffer is truncated.
template <typename T>
bool ReadVector(ByteReader* reader, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (reader->Remaining() < 8) return false;
  const uint64_t n = reader->GetU64();
  // Divide instead of multiplying: `n * sizeof(T)` wraps for hostile lengths
  // (a 16-byte buffer claiming 2^61 8-byte elements), which would both pass
  // the bounds check and request a multi-exabyte resize. The quotient form
  // also caps n by Remaining(), so resize(n) is bounded by the buffer size.
  if (n > reader->Remaining() / sizeof(T)) return false;
  v->resize(n);
  if (n > 0) {
    reader->GetBytes(reinterpret_cast<uint8_t*>(v->data()), n * sizeof(T));
  }
  return true;
}

}  // namespace intcomp

#endif  // INTCOMP_COMMON_SERIALIZE_UTIL_H_
