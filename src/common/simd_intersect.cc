#include "common/simd_intersect.h"

#include <atomic>
#include <bit>
#include <cassert>

#include "common/fast_clock.h"

#include "obs/trace.h"

#if defined(__SSE4_1__)
#include <immintrin.h>
#define INTCOMP_SIMD_SETOPS 1
#else
#define INTCOMP_SIMD_SETOPS 0
#endif

namespace intcomp {
namespace {

std::atomic<KernelMode> g_kernel_mode{KernelMode::kAuto};

#if INTCOMP_SIMD_SETOPS
// Shuffle control bytes that compact the 32-bit lanes selected by a 4-bit
// mask to the front of the register (unset lanes become zero and are cut by
// the output-length bump). Built once at compile time.
struct ShuffleTable {
  alignas(16) uint8_t entries[16][16];
  constexpr ShuffleTable() : entries() {
    for (int mask = 0; mask < 16; ++mask) {
      int out = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) {
          for (int byte = 0; byte < 4; ++byte) {
            entries[mask][out * 4 + byte] =
                static_cast<uint8_t>(lane * 4 + byte);
          }
          ++out;
        }
      }
      for (int rest = out * 4; rest < 16; ++rest) {
        entries[mask][rest] = 0xFF;
      }
    }
  }
};
constexpr ShuffleTable kShuffle;

// Sorts a bitonic 4-sequence ascending (two compare-exchange stages).
inline __m128i BitonicSort4(__m128i v) {
  __m128i t = _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
  __m128i mn = _mm_min_epu32(v, t);
  __m128i mx = _mm_max_epu32(v, t);
  v = _mm_blend_epi16(mn, mx, 0xF0);  // exchange (0,2) (1,3)
  t = _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
  mn = _mm_min_epu32(v, t);
  mx = _mm_max_epu32(v, t);
  return _mm_blend_epi16(mn, mx, 0xCC);  // exchange (0,1) (2,3)
}

// Merges two sorted 4-vectors: afterwards `a` holds the 4 smallest and `b`
// the 4 largest of the union, each sorted ascending (Inoue-style bitonic
// merge network).
inline void BitonicMerge4x4(__m128i& a, __m128i& b) {
  b = _mm_shuffle_epi32(b, _MM_SHUFFLE(0, 1, 2, 3));  // reverse: a|b bitonic
  __m128i lo = _mm_min_epu32(a, b);
  __m128i hi = _mm_max_epu32(a, b);
  a = BitonicSort4(lo);
  b = BitonicSort4(hi);
}

// Appends `lo` (sorted) to dst, dropping lanes equal to their predecessor;
// `prev` carries the previously emitted vector (its top lane is the last
// value written). Returns the number of lanes kept. dst must have 4 lanes
// of slack.
inline size_t EmitDedup4(__m128i lo, __m128i* prev, uint32_t* dst) {
  const __m128i shifted = _mm_alignr_epi8(lo, *prev, 12);
  const int dup =
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, shifted)));
  const int keep = ~dup & 0xF;
  const __m128i packed = _mm_shuffle_epi8(
      lo, _mm_load_si128(
              reinterpret_cast<const __m128i*>(kShuffle.entries[keep])));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), packed);
  *prev = lo;
  return static_cast<size_t>(std::popcount(static_cast<unsigned>(keep)));
}
#endif  // INTCOMP_SIMD_SETOPS

// Shared scalar core for the merge-intersection twins (counted by caller).
void MergeIntersectScalarCore(std::span<const uint32_t> a,
                              std::span<const uint32_t> b, size_t i, size_t j,
                              std::vector<uint32_t>* out) {
  while (i < a.size() && j < b.size()) {
    const uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      out->push_back(va);
      ++i;
      ++j;
    }
  }
}

// Narrows to the window (lo, hi] with large[lo] < v <= large[hi] by
// exponential probing from `from` then bisection down to <= 8 candidates.
// Preconditions: large[from] < v and large[n-1] >= v. Returns lo.
size_t GallopWindow(std::span<const uint32_t> large, size_t from, uint32_t v) {
  size_t lo = from;
  size_t step = 8;
  size_t hi = lo + step;
  while (hi < large.size() && large[hi] < v) {
    lo = hi;
    step *= 2;
    hi = lo + step;
  }
  if (hi >= large.size()) hi = large.size() - 1;  // large[n-1] >= v
  while (hi - lo > 8) {
    const size_t mid = lo + (hi - lo) / 2;
    if (large[mid] < v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void SetKernelMode(KernelMode mode) {
  g_kernel_mode.store(mode, std::memory_order_relaxed);
}

KernelMode GetKernelMode() {
  return g_kernel_mode.load(std::memory_order_relaxed);
}

bool SimdKernelsAvailable() { return INTCOMP_SIMD_SETOPS != 0; }

bool ParseKernelMode(std::string_view text, KernelMode* mode) {
  if (text == "scalar") {
    *mode = KernelMode::kScalar;
  } else if (text == "simd") {
    *mode = KernelMode::kSimd;
  } else if (text == "auto") {
    *mode = KernelMode::kAuto;
  } else {
    return false;
  }
  return true;
}

std::string_view KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar: return "scalar";
    case KernelMode::kSimd: return "simd";
    case KernelMode::kAuto: return "auto";
  }
  return "?";
}

KernelCounters& KernelCounters::operator+=(const KernelCounters& o) {
  scalar_merge += o.scalar_merge;
  simd_merge += o.simd_merge;
  scalar_gallop += o.scalar_gallop;
  simd_gallop += o.simd_gallop;
  scalar_union += o.scalar_union;
  simd_union += o.simd_union;
  block_probes += o.block_probes;
  return *this;
}

KernelCounters KernelCounters::operator-(const KernelCounters& o) const {
  KernelCounters d;
  d.scalar_merge = scalar_merge - o.scalar_merge;
  d.simd_merge = simd_merge - o.simd_merge;
  d.scalar_gallop = scalar_gallop - o.scalar_gallop;
  d.simd_gallop = simd_gallop - o.simd_gallop;
  d.scalar_union = scalar_union - o.scalar_union;
  d.simd_union = simd_union - o.simd_union;
  d.block_probes = block_probes - o.block_probes;
  return d;
}

uint64_t KernelCounters::Total() const {
  return scalar_merge + simd_merge + scalar_gallop + simd_gallop +
         scalar_union + simd_union + block_probes;
}

std::string_view KernelCounters::Dominant() const {
  std::string_view name = "none";
  uint64_t best = 0;
  const struct {
    std::string_view name;
    uint64_t n;
  } rows[] = {
      {"scalar-merge", scalar_merge}, {"simd-merge", simd_merge},
      {"scalar-gallop", scalar_gallop}, {"simd-gallop", simd_gallop},
      {"scalar-union", scalar_union}, {"simd-union", simd_union},
      {"block-probe", block_probes},
  };
  for (const auto& r : rows) {
    if (r.n > best) {
      best = r.n;
      name = r.name;
    }
  }
  return name;
}

KernelCounters& ThreadKernelCounters() {
  thread_local KernelCounters counters;
  return counters;
}

// ------------------------------------------------------------- kernels

void ScalarMergeIntersectInto(std::span<const uint32_t> a,
                              std::span<const uint32_t> b,
                              std::vector<uint32_t>* out) {
  ThreadKernelCounters().scalar_merge += 1;
  MergeIntersectScalarCore(a, b, 0, 0, out);
}

void SimdMergeIntersectInto(std::span<const uint32_t> a,
                            std::span<const uint32_t> b,
                            std::vector<uint32_t>* out) {
#if INTCOMP_SIMD_SETOPS
  ThreadKernelCounters().simd_merge += 1;
  const size_t na4 = a.size() & ~size_t{3};
  const size_t nb4 = b.size() & ~size_t{3};
  size_t i = 0, j = 0;
  if (na4 != 0 && nb4 != 0) {
    const size_t base = out->size();
    out->resize(base + std::min(a.size(), b.size()) + 4);
    uint32_t* dst = out->data() + base;
    size_t k = 0;
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data()));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data()));
    while (true) {
      // Compare va against all four rotations of vb: each value matches at
      // most one lane (inputs are strictly increasing).
      __m128i cmp = _mm_cmpeq_epi32(va, vb);
      cmp = _mm_or_si128(
          cmp, _mm_cmpeq_epi32(
                   va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
      cmp = _mm_or_si128(
          cmp, _mm_cmpeq_epi32(
                   va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
      cmp = _mm_or_si128(
          cmp, _mm_cmpeq_epi32(
                   va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
      const int mask = _mm_movemask_ps(_mm_castsi128_ps(cmp));
      const __m128i packed = _mm_shuffle_epi8(
          va, _mm_load_si128(
                  reinterpret_cast<const __m128i*>(kShuffle.entries[mask])));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + k), packed);
      k += static_cast<size_t>(std::popcount(static_cast<unsigned>(mask)));
      const uint32_t amax = a[i + 3];
      const uint32_t bmax = b[j + 3];
      if (amax <= bmax) {
        i += 4;
        if (i == na4) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
      }
      if (bmax <= amax) {
        j += 4;
        if (j == nb4) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
      }
    }
    out->resize(base + k);
  }
  MergeIntersectScalarCore(a, b, i, j, out);
#else
  ScalarMergeIntersectInto(a, b, out);
#endif
}

void ScalarGallopIntersectInto(std::span<const uint32_t> small,
                               std::span<const uint32_t> large,
                               std::vector<uint32_t>* out) {
  ThreadKernelCounters().scalar_gallop += 1;
  const size_t n = large.size();
  if (n == 0) return;
  size_t j = 0;
  for (const uint32_t v : small) {
    if (j >= n || large[n - 1] < v) break;
    if (large[j] < v) {
      const size_t lo = GallopWindow(large, j, v);
      j = lo + 1;
      while (large[j] < v) ++j;  // <= 8 steps; large[hi] >= v bounds the scan
    }
    if (large[j] == v) {
      out->push_back(v);
      ++j;
    }
  }
}

void SimdGallopIntersectInto(std::span<const uint32_t> small,
                             std::span<const uint32_t> large,
                             std::vector<uint32_t>* out) {
#if defined(__AVX2__)
  ThreadKernelCounters().simd_gallop += 1;
  const size_t n = large.size();
  if (n == 0) return;
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  size_t j = 0;
  for (const uint32_t v : small) {
    if (j >= n || large[n - 1] < v) break;
    if (large[j] < v) {
      const size_t w = GallopWindow(large, j, v) + 1;
      if (w + 8 <= n) {
        // Rank v within the 8-candidate window in one compare instead of
        // the last three bisection levels.
        const __m256i win = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(large.data() + w)),
            bias);
        const __m256i vv =
            _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(v)), bias);
        const int lt = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(vv, win)));
        j = w + static_cast<size_t>(std::popcount(static_cast<unsigned>(lt)));
      } else {
        j = w;
        while (large[j] < v) ++j;
      }
    }
    if (large[j] == v) {
      out->push_back(v);
      ++j;
    }
  }
#else
  ScalarGallopIntersectInto(small, large, out);
#endif
}

void ScalarMergeUnionInto(std::span<const uint32_t> a,
                          std::span<const uint32_t> b,
                          std::vector<uint32_t>* out) {
  ThreadKernelCounters().scalar_union += 1;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      out->push_back(va);
      ++i;
    } else if (vb < va) {
      out->push_back(vb);
      ++j;
    } else {
      out->push_back(va);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
  out->insert(out->end(), b.begin() + j, b.end());
}

void SimdMergeUnionInto(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>* out) {
#if INTCOMP_SIMD_SETOPS
  const size_t na4 = a.size() & ~size_t{3};
  const size_t nb4 = b.size() & ~size_t{3};
  if (na4 == 0 || nb4 == 0) {
    ScalarMergeUnionInto(a, b, out);
    return;
  }
  ThreadKernelCounters().simd_union += 1;
  const size_t base = out->size();
  out->resize(base + a.size() + b.size() + 4);
  uint32_t* dst = out->data() + base;
  size_t k = 0;

  __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data()));
  __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data()));
  size_t i = 4, j = 4;
  // Seed the dedup carry with a value that cannot equal the first output
  // (x != ~x for every uint32).
  __m128i prev = _mm_set1_epi32(static_cast<int>(~std::min(a[0], b[0])));
  BitonicMerge4x4(va, vb);
  k += EmitDedup4(va, &prev, dst + k);
  __m128i pending = vb;
  while (true) {
    __m128i next;
    // Pull from the list with the smaller head — the FULL-list head, so a
    // short scalar tail participates in the choice — and stop as soon as
    // that list cannot supply a whole vector. Choosing by the smaller head
    // keeps every loaded value below both unloaded heads (loaded values of
    // each list precede its own head; the chosen head is <= the other), so
    // the emitted stream stays globally sorted and everything left for the
    // scalar flush is >= the last emitted value.
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      if (i + 4 > a.size()) break;
      next = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
      i += 4;
    } else {
      if (j + 4 > b.size()) break;
      next = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
      j += 4;
    }
    BitonicMerge4x4(pending, next);
    k += EmitDedup4(pending, &prev, dst + k);
    pending = next;
  }

  // Flush: the pending high vector plus both scalar tails, three-way merged
  // with deduplication against the last emitted value.
  alignas(16) uint32_t tmp[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(tmp), pending);
  const uint32_t* heads[3] = {tmp, a.data() + i, b.data() + j};
  const uint32_t* ends[3] = {tmp + 4, a.data() + a.size(),
                             b.data() + b.size()};
  uint32_t last = dst[k - 1];  // k >= 1: the first emit always keeps lane 0
  while (true) {
    bool any = false;
    uint32_t m = 0;
    for (int s = 0; s < 3; ++s) {
      if (heads[s] < ends[s] && (!any || *heads[s] < m)) {
        m = *heads[s];
        any = true;
      }
    }
    if (!any) break;
    for (int s = 0; s < 3; ++s) {
      if (heads[s] < ends[s] && *heads[s] == m) ++heads[s];
    }
    if (m != last) {
      dst[k++] = m;
      last = m;
    }
  }
  out->resize(base + k);
#else
  ScalarMergeUnionInto(a, b, out);
#endif
}

// ------------------------------------------------------------- planner

void IntersectKernelInto(std::span<const uint32_t> a,
                         std::span<const uint32_t> b,
                         std::vector<uint32_t>* out) {
  TRACE_SPAN("kernel_dispatch");
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return;
  const bool simd = UseSimdKernels(GetKernelMode());
  if (ChooseIntersectStrategy(a.size(), b.size()) ==
      IntersectStrategy::kGallop) {
    if (simd) {
      SimdGallopIntersectInto(a, b, out);
    } else {
      ScalarGallopIntersectInto(a, b, out);
    }
  } else {
    if (simd) {
      SimdMergeIntersectInto(a, b, out);
    } else {
      ScalarMergeIntersectInto(a, b, out);
    }
  }
}

void UnionKernelInto(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>* out) {
  TRACE_SPAN("kernel_dispatch");
  if (UseSimdKernels(GetKernelMode())) {
    SimdMergeUnionInto(a, b, out);
  } else {
    ScalarMergeUnionInto(a, b, out);
  }
}

void IntersectSliceWithBlockInto(std::span<const uint32_t> probe,
                                 std::span<const uint32_t> block,
                                 std::vector<uint32_t>* out) {
  if (probe.empty() || block.empty()) return;
  ThreadKernelCounters().block_probes += 1;
  if (probe.size() * kBlockMergeRatio < block.size()) {
    // Sparse probes: bisect the block per probe, advancing the left bound
    // (probes ascend, so each search shrinks the remaining range).
    const uint32_t* lo = block.data();
    const uint32_t* const end = block.data() + block.size();
    for (const uint32_t v : probe) {
      lo = std::lower_bound(lo, end, v);
      if (lo == end) break;
      if (*lo == v) {
        out->push_back(v);
        ++lo;
      }
    }
    return;
  }
  if (UseSimdKernels(GetKernelMode())) {
    SimdMergeIntersectInto(probe, block, out);
  } else {
    ScalarMergeIntersectInto(probe, block, out);
  }
}

KernelCostProfile MeasureKernelCosts(size_t sample_size) {
  KernelCostProfile profile;
  const size_t n = std::max<size_t>(sample_size, 1024);
  // Deterministic synthetic inputs: two interleaved ascending lists with
  // ~50% overlap (merge/union regime) and one 64x-skewed pair (gallop
  // regime). An LCG keeps the gaps irregular without <random>.
  std::vector<uint32_t> a, b, small;
  a.reserve(n);
  b.reserve(n);
  uint64_t state = 0x9E3779B97F4A7C15ull;
  uint32_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v += 1 + static_cast<uint32_t>((state >> 33) & 7);
    a.push_back(v);
    if ((state >> 62) != 0) b.push_back(v);  // ~75% shared
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    if (((state >> 33) & 1) != 0) b.push_back(v + 1);
  }
  for (size_t i = 0; i < a.size(); i += 64) small.push_back(a[i]);

  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  // One warm pass per kernel (page in the buffers), then a timed pass.
  auto time_ns = [&out](auto&& fn) -> double {
    out.clear();
    fn();
    const uint64_t start = NowNs();
    out.clear();
    fn();
    return static_cast<double>(NowNs() - start);
  };

  const double merge_ns = time_ns([&] {
    if (UseSimdKernels(GetKernelMode())) {
      SimdMergeIntersectInto(a, b, &out);
    } else {
      ScalarMergeIntersectInto(a, b, &out);
    }
  });
  profile.merge_ns_per_elem =
      merge_ns / static_cast<double>(a.size() + b.size());

  const double gallop_ns = time_ns([&] {
    if (UseSimdKernels(GetKernelMode())) {
      SimdGallopIntersectInto(small, b, &out);
    } else {
      ScalarGallopIntersectInto(small, b, &out);
    }
  });
  profile.gallop_ns_per_probe =
      gallop_ns / static_cast<double>(std::max<size_t>(small.size(), 1));

  const double union_ns = time_ns([&] {
    if (UseSimdKernels(GetKernelMode())) {
      SimdMergeUnionInto(a, b, &out);
    } else {
      ScalarMergeUnionInto(a, b, &out);
    }
  });
  profile.union_ns_per_elem =
      union_ns / static_cast<double>(a.size() + b.size());
  return profile;
}

}  // namespace intcomp
