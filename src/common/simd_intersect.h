// SIMD set-operation kernels over uncompressed sorted uint32 lists, plus the
// adaptive planner policy that picks between them.
//
// Three kernel families, each with a scalar twin selected by the process-wide
// KernelMode (and at compile time when the build lacks SSE/AVX2):
//
//   - merge intersection: shuffle-based 4x4 block comparison (Schlegel et al.;
//     Lemire, Boytsov, Kurz, "SIMD Compression and the Intersection of Sorted
//     Integers"). Best when the two lists have similar sizes.
//   - galloping intersection: exponential search over the larger list per
//     probe, finished with one 8-wide SIMD equality test instead of the last
//     levels of the binary search. Best for heavily skewed pairs.
//   - union merge: Inoue-style bitonic 4+4 merge network with shuffle-table
//     deduplication on output.
//
// The planner threshold below replaces the hard-coded "footnote 8" ratios
// that used to be duplicated in core/hybrid.cc and invlist/blocked_list.h:
// every caller now routes through ChooseIntersectStrategy so the policy can
// be changed (or ablated) in exactly one place.
//
// All kernels are deterministic and mode-independent in their output: for any
// input, scalar / SIMD / auto produce bit-identical results (pinned by the
// kernel differential fuzzer).

#ifndef INTCOMP_COMMON_SIMD_INTERSECT_H_
#define INTCOMP_COMMON_SIMD_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace intcomp {

// ---------------------------------------------------------------- mode

// Process-wide kernel selection, settable by benches (--kernel=...) and
// tests. kAuto uses SIMD when compiled in, scalar otherwise.
enum class KernelMode : uint8_t { kScalar = 0, kSimd = 1, kAuto = 2 };

void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

// True when this binary carries the SIMD kernels (compiled with SSE4.1+).
bool SimdKernelsAvailable();

// Parses "scalar" / "simd" / "auto"; returns false on anything else.
bool ParseKernelMode(std::string_view text, KernelMode* mode);
std::string_view KernelModeName(KernelMode mode);

// Resolves the current mode to "use the SIMD kernels?" (kSimd forces them
// even when only the scalar twins exist, which then silently degrades to
// scalar — useful for portability testing).
inline bool UseSimdKernels(KernelMode mode) {
  return mode == KernelMode::kSimd ||
         (mode == KernelMode::kAuto && SimdKernelsAvailable());
}

// ---------------------------------------------------------------- policy

// Similar-size threshold below which intersection merges instead of
// galloping / skip-probing (paper footnote 8). Single source of truth for
// the planner, HybridCodec's mixed-family path, and the blocked-list codecs.
inline constexpr size_t kMergeIntersectRatio = 8;

// Probe-slice : block-size ratio above which a bulk block probe merges the
// slice with the decoded block instead of binary-searching per probe.
inline constexpr size_t kBlockMergeRatio = 16;

enum class IntersectStrategy : uint8_t { kMerge, kGallop };

// Adaptive strategy for intersecting lists of the given cardinalities.
inline IntersectStrategy ChooseIntersectStrategy(size_t smaller,
                                                 size_t larger) {
  return larger < kMergeIntersectRatio * std::max<size_t>(1, smaller)
             ? IntersectStrategy::kMerge
             : IntersectStrategy::kGallop;
}

// ------------------------------------------------------------- counters

// Per-thread tallies of which kernel actually executed; the batch engine
// samples deltas around each query to attribute kernels per query.
struct KernelCounters {
  uint64_t scalar_merge = 0;   // scalar merge intersections
  uint64_t simd_merge = 0;     // shuffle-based merge intersections
  uint64_t scalar_gallop = 0;  // scalar galloping intersections
  uint64_t simd_gallop = 0;    // SIMD-finished galloping intersections
  uint64_t scalar_union = 0;   // scalar union merges
  uint64_t simd_union = 0;     // bitonic-network union merges
  uint64_t block_probes = 0;   // bulk block probes through a cursor

  KernelCounters& operator+=(const KernelCounters& o);
  KernelCounters operator-(const KernelCounters& o) const;
  uint64_t Total() const;
  // Name of the dominant kernel ("simd-merge", "gallop", ...; "none" when
  // every counter is zero) — the per-query label the engine reports.
  std::string_view Dominant() const;
};

// Mutable reference to the calling thread's tallies.
KernelCounters& ThreadKernelCounters();

// ------------------------------------------------------------- kernels
//
// All *Into kernels append to `out` without clearing it. Inputs must be
// strictly increasing. The Scalar/Simd pairs are exact behavioral twins.

void ScalarMergeIntersectInto(std::span<const uint32_t> a,
                              std::span<const uint32_t> b,
                              std::vector<uint32_t>* out);
void SimdMergeIntersectInto(std::span<const uint32_t> a,
                            std::span<const uint32_t> b,
                            std::vector<uint32_t>* out);

// `small` should be the shorter list; both orders are correct.
void ScalarGallopIntersectInto(std::span<const uint32_t> small,
                               std::span<const uint32_t> large,
                               std::vector<uint32_t>* out);
void SimdGallopIntersectInto(std::span<const uint32_t> small,
                             std::span<const uint32_t> large,
                             std::vector<uint32_t>* out);

void ScalarMergeUnionInto(std::span<const uint32_t> a,
                          std::span<const uint32_t> b,
                          std::vector<uint32_t>* out);
void SimdMergeUnionInto(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>* out);

// ------------------------------------------------------------- planner

// Adaptive intersection of two uncompressed sorted lists: orders the pair,
// picks merge vs gallop by ChooseIntersectStrategy, scalar vs SIMD by the
// current KernelMode. Appends to `out`.
void IntersectKernelInto(std::span<const uint32_t> a,
                         std::span<const uint32_t> b,
                         std::vector<uint32_t>* out);

// Union of two uncompressed sorted lists through the mode-selected merge
// kernel. Appends to `out`.
void UnionKernelInto(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>* out);

// Bulk block-probe step: intersects a slice of ascending probe values with
// one decoded block (<= a few hundred values, e.g. a 128-element list block
// or PEF partition), appending matches. Binary-searches per probe when the
// slice is tiny relative to the block (kBlockMergeRatio), merges otherwise.
void IntersectSliceWithBlockInto(std::span<const uint32_t> probe,
                                 std::span<const uint32_t> block,
                                 std::vector<uint32_t>* out);

// --------------------------------------------------------- calibration

// Measured unit costs of the kernels above on this host under the current
// KernelMode — the calibrated inputs to the query planner's cost model
// (planner/strategy.h). All figures are nanoseconds.
struct KernelCostProfile {
  double merge_ns_per_elem = 0.5;    // merge intersect, per element scanned
  double gallop_ns_per_probe = 8.0;  // gallop intersect, per small-side probe
  double union_ns_per_elem = 0.7;    // union merge, per element scanned
};

// Times the merge, gallop, and union kernels over synthetic sorted lists of
// ~`sample_size` elements (deterministic contents) and returns per-unit
// costs. Costs a few hundred microseconds; callers cache the profile
// (planner/strategy.h's DefaultCostModel does, once per process).
KernelCostProfile MeasureKernelCosts(size_t sample_size = size_t{1} << 14);

}  // namespace intcomp

#endif  // INTCOMP_COMMON_SIMD_INTERSECT_H_
