#include "common/simdpack.h"

#include <immintrin.h>

#include <array>
#include <cstring>
#include <utility>

namespace intcomp {
namespace {

template <int B>
void Pack128(const uint32_t* in, uint32_t* out32) {
  __m128i* out = reinterpret_cast<__m128i*>(out32);
  if constexpr (B == 0) {
    return;
  } else if constexpr (B == 32) {
    std::memcpy(out32, in, 128 * sizeof(uint32_t));
    return;
  } else {
    __m128i acc = _mm_setzero_si128();
    int filled = 0;
    for (int j = 0; j < 32; ++j) {
      __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * j));
      acc = _mm_or_si128(acc, _mm_slli_epi32(v, filled));
      filled += B;
      if (filled >= 32) {
        _mm_storeu_si128(out++, acc);
        filled -= 32;
        acc = filled > 0 ? _mm_srli_epi32(v, B - filled) : _mm_setzero_si128();
      }
    }
  }
}

template <int B>
void Unpack128(const uint32_t* in32, uint32_t* out) {
  const __m128i* in = reinterpret_cast<const __m128i*>(in32);
  if constexpr (B == 0) {
    std::memset(out, 0, 128 * sizeof(uint32_t));
    return;
  } else if constexpr (B == 32) {
    std::memcpy(out, in32, 128 * sizeof(uint32_t));
    return;
  } else {
    const __m128i mask = _mm_set1_epi32(static_cast<int>((1u << B) - 1));
    __m128i cur = _mm_loadu_si128(in++);
    int consumed = 0;
    for (int j = 0; j < 32; ++j) {
      __m128i v = _mm_srli_epi32(cur, consumed);
      consumed += B;
      if (consumed >= 32) {
        consumed -= 32;
        if (j != 31) {
          cur = _mm_loadu_si128(in++);
          if (consumed > 0) {
            v = _mm_or_si128(v, _mm_slli_epi32(cur, B - consumed));
          }
        }
      }
      v = _mm_and_si128(v, mask);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * j), v);
    }
  }
}

using PackFn = void (*)(const uint32_t*, uint32_t*);
using UnpackFn = void (*)(const uint32_t*, uint32_t*);

template <int... Bs>
constexpr auto MakePackTable(std::integer_sequence<int, Bs...>) {
  return std::array<PackFn, sizeof...(Bs)>{&Pack128<Bs>...};
}
template <int... Bs>
constexpr auto MakeUnpackTable(std::integer_sequence<int, Bs...>) {
  return std::array<UnpackFn, sizeof...(Bs)>{&Unpack128<Bs>...};
}

constexpr auto kPackTable = MakePackTable(std::make_integer_sequence<int, 33>{});
constexpr auto kUnpackTable =
    MakeUnpackTable(std::make_integer_sequence<int, 33>{});

}  // namespace

void SimdPack128(const uint32_t* in, int b, uint32_t* out) {
  kPackTable[b](in, out);
}

void SimdUnpack128(const uint32_t* in, int b, uint32_t* out) {
  kUnpackTable[b](in, out);
}

void SimdPrefixSum128(uint32_t* values, uint32_t base) {
  __m128i running = _mm_set1_epi32(static_cast<int>(base));
  for (int j = 0; j < 32; ++j) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + 4 * j));
    // In-register inclusive scan of the 4 lanes.
    v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
    v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
    v = _mm_add_epi32(v, _mm_shuffle_epi32(running, _MM_SHUFFLE(3, 3, 3, 3)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(values + 4 * j), v);
    running = v;
  }
}

void SimdDelta128(uint32_t* values, uint32_t base) {
  // Walk backwards so each value still sees its original predecessor.
  for (int i = 127; i > 0; --i) values[i] -= values[i - 1];
  values[0] -= base;
}

void ScalarPrefixSum(uint32_t* values, size_t n, uint32_t base) {
  uint32_t acc = base;
  for (size_t i = 0; i < n; ++i) {
    acc += values[i];
    values[i] = acc;
  }
}

void ScalarDelta(uint32_t* values, size_t n, uint32_t base) {
  for (size_t i = n; i > 1; --i) values[i - 1] -= values[i - 2];
  if (n > 0) values[0] -= base;
}

}  // namespace intcomp
