// 128-bit SIMD vertical bit packing and delta kernels (paper §3.10, §3.11).
//
// Layout ("interleaving manner" per §3.10): the 128 input integers are viewed
// as 32 SIMD vectors v_j = in[4j .. 4j+3]. Each 32-bit lane accumulates 32
// b-bit values, so a packed block occupies exactly b __m128i words. A single
// SIMD instruction therefore processes four elements at once, which is what
// gives SIMDPforDelta/SIMDBP128 their speed.

#ifndef INTCOMP_COMMON_SIMDPACK_H_
#define INTCOMP_COMMON_SIMDPACK_H_

#include <cstddef>
#include <cstdint>

namespace intcomp {

inline constexpr int kSimdBlockSize = 128;

// Number of uint32 words a SIMD-packed 128-value block occupies (4 per
// __m128i times b vectors).
inline size_t SimdPackedWords(int b) { return static_cast<size_t>(b) * 4; }

// Packs exactly 128 values (each < 2^b) from `in` into `out`
// (SimdPackedWords(b) words). b in [0, 32]. `in`/`out` need no alignment.
void SimdPack128(const uint32_t* in, int b, uint32_t* out);

// Unpacks exactly 128 values of b bits from `in` into `out`.
void SimdUnpack128(const uint32_t* in, int b, uint32_t* out);

// In-place inclusive prefix sum over 128 values starting from `base`:
// out[i] = base + sum(in[0..i]). Uses SIMD shift-add (the "extra time to
// compute prefix sums" the paper charges to the delta-based SIMD codecs).
void SimdPrefixSum128(uint32_t* values, uint32_t base);

// Computes d-gaps in place for exactly 128 values: values[i] -= prev where
// prev is values[i-1] (values[-1] := base).
void SimdDelta128(uint32_t* values, uint32_t base);

// Scalar helpers for partial (tail) blocks.
void ScalarPrefixSum(uint32_t* values, size_t n, uint32_t base);
void ScalarDelta(uint32_t* values, size_t n, uint32_t base);

}  // namespace intcomp

#endif  // INTCOMP_COMMON_SIMDPACK_H_
