#include "common/simdpack256.h"

#include <immintrin.h>

#include <array>
#include <cstring>
#include <utility>

namespace intcomp {
namespace {

template <int B>
void Pack128(const uint32_t* in, uint32_t* out32) {
  __m256i* out = reinterpret_cast<__m256i*>(out32);
  if constexpr (B == 0) {
    return;
  } else if constexpr (B == 32) {
    std::memcpy(out32, in, 128 * sizeof(uint32_t));
    return;
  } else {
    __m256i acc = _mm256_setzero_si256();
    int filled = 0;
    for (int j = 0; j < 16; ++j) {
      __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 8 * j));
      acc = _mm256_or_si256(acc, _mm256_slli_epi32(v, filled));
      filled += B;
      if (filled >= 32) {
        _mm256_storeu_si256(out++, acc);
        filled -= 32;
        acc = filled > 0 ? _mm256_srli_epi32(v, B - filled)
                         : _mm256_setzero_si256();
      }
    }
    if (filled > 0) _mm256_storeu_si256(out++, acc);
  }
}

template <int B>
void Unpack128(const uint32_t* in32, uint32_t* out) {
  const __m256i* in = reinterpret_cast<const __m256i*>(in32);
  if constexpr (B == 0) {
    std::memset(out, 0, 128 * sizeof(uint32_t));
    return;
  } else if constexpr (B == 32) {
    std::memcpy(out, in32, 128 * sizeof(uint32_t));
    return;
  } else {
    const __m256i mask = _mm256_set1_epi32(static_cast<int>((1u << B) - 1));
    // For odd B each lane holds 16B bits, which is not a multiple of 32, so
    // the final vector is half-used; bound reads by the true vector count.
    const __m256i* const end = in + (16 * B + 31) / 32;
    __m256i cur = _mm256_loadu_si256(in++);
    int consumed = 0;
    for (int j = 0; j < 16; ++j) {
      __m256i v = _mm256_srli_epi32(cur, consumed);
      consumed += B;
      if (consumed >= 32) {
        consumed -= 32;
        if (in != end) {
          cur = _mm256_loadu_si256(in++);
          if (consumed > 0) {
            v = _mm256_or_si256(v, _mm256_slli_epi32(cur, B - consumed));
          }
        }
      }
      v = _mm256_and_si256(v, mask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * j), v);
    }
  }
}

using Fn = void (*)(const uint32_t*, uint32_t*);

template <int... Bs>
constexpr auto MakePackTable(std::integer_sequence<int, Bs...>) {
  return std::array<Fn, sizeof...(Bs)>{&Pack128<Bs>...};
}
template <int... Bs>
constexpr auto MakeUnpackTable(std::integer_sequence<int, Bs...>) {
  return std::array<Fn, sizeof...(Bs)>{&Unpack128<Bs>...};
}

constexpr auto kPackTable = MakePackTable(std::make_integer_sequence<int, 33>{});
constexpr auto kUnpackTable =
    MakeUnpackTable(std::make_integer_sequence<int, 33>{});

}  // namespace

void Simd256Pack128(const uint32_t* in, int b, uint32_t* out) {
  kPackTable[b](in, out);
}

void Simd256Unpack128(const uint32_t* in, int b, uint32_t* out) {
  kUnpackTable[b](in, out);
}

}  // namespace intcomp
