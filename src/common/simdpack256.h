// 256-bit AVX2 vertical bit packing — the "more recent processors also
// support 256-bit SIMD operation" extension the paper notes in §3.10.
//
// Same vertical idea as the 128-bit kernels, with 8 lanes of 16 values: a
// packed 128-value block occupies b __m256i vectors, and one instruction
// touches eight elements.

#ifndef INTCOMP_COMMON_SIMDPACK256_H_
#define INTCOMP_COMMON_SIMDPACK256_H_

#include <cstddef>
#include <cstdint>

namespace intcomp {

// Number of uint32 words a 256-bit-packed 128-value block occupies: each of
// the 8 lanes holds 16 b-bit values = ceil(b/2) words, so odd widths carry
// half a word of padding per lane (the 256-bit layout's space tax).
inline size_t Simd256PackedWords(int b) {
  return static_cast<size_t>((b + 1) / 2) * 8;
}

// Packs exactly 128 values (each < 2^b) into out (Simd256PackedWords(b)
// words). b in [0, 32]. No alignment requirements.
void Simd256Pack128(const uint32_t* in, int b, uint32_t* out);

// Unpacks exactly 128 values of b bits.
void Simd256Unpack128(const uint32_t* in, int b, uint32_t* out);

}  // namespace intcomp

#endif  // INTCOMP_COMMON_SIMDPACK256_H_
