// Lightweight error propagation for the untrusted-input boundary.
//
// The decode/query hot paths stay exception-free: fallible entry points
// (Codec::DeserializeChecked, EvaluatePlanChecked, BatchExecutor) return a
// Status or StatusOr<T> instead of throwing. Status is cheap to pass around —
// the OK value carries no allocation; error values carry a code plus a short
// human-readable message for reports and logs.

#ifndef INTCOMP_COMMON_STATUS_H_
#define INTCOMP_COMMON_STATUS_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

namespace intcomp {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,    // caller error: bad plan, missing input set
  kCorruptData,        // untrusted byte image failed structural validation
  kDeadlineExceeded,   // per-query deadline elapsed
  kCancelled,          // cancellation token tripped
  kInternal,           // invariant violation; indicates a bug
  kUnavailable,        // transient I/O or resource failure; retry may succeed
  kOverloaded,         // admission control shed the request; retry later
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCorruptData: return "CORRUPT_DATA";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view m) {
    return Status(StatusCode::kInvalidArgument, m);
  }
  static Status Corrupt(std::string_view m) {
    return Status(StatusCode::kCorruptData, m);
  }
  static Status DeadlineExceeded(std::string_view m) {
    return Status(StatusCode::kDeadlineExceeded, m);
  }
  static Status Cancelled(std::string_view m) {
    return Status(StatusCode::kCancelled, m);
  }
  static Status Internal(std::string_view m) {
    return Status(StatusCode::kInternal, m);
  }
  static Status Unavailable(std::string_view m) {
    return Status(StatusCode::kUnavailable, m);
  }
  static Status Overloaded(std::string_view m) {
    return Status(StatusCode::kOverloaded, m);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value or a non-OK Status. Minimal by design: exactly what the
// DeserializeChecked boundary needs, no monadic extras.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
    if (status_.ok()) status_ = Status::Internal("OK StatusOr without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // REQUIRES: ok().
  T& value() {
    assert(ok());
    return value_;
  }
  const T& value() const {
    assert(ok());
    return value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  T value_{};
};

// Bounds-checked little-endian reader for untrusted byte images. Every read
// reports success instead of walking off the buffer; on failure the output is
// poisoned with zero and the cursor does not advance, so a caller that forgets
// to check cannot be steered by out-of-bounds memory.
class CheckedByteReader {
 public:
  CheckedByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}

  bool GetU8(uint8_t* v) {
    if (size_ - pos_ < 1) return Fail(v);
    *v = data_[pos_++];
    return true;
  }
  bool GetU16(uint16_t* v) {
    if (size_ - pos_ < 2) return Fail(v);
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (size_ - pos_ < 4) return Fail(v);
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (size_ - pos_ < 8) return Fail(v);
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool GetBytes(uint8_t* dst, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool Skip(size_t n) {
    if (size_ - pos_ < n) return false;
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ >= size_; }
  size_t Remaining() const { return size_ - pos_; }
  size_t Position() const { return pos_; }

 private:
  template <typename T>
  static bool Fail(T* v) {
    *v = 0;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace intcomp

#endif  // INTCOMP_COMMON_STATUS_H_
