// VArray<T> — a read-only contiguous array that either owns its elements
// (std::vector) or borrows them from memory someone else keeps alive.
//
// This is the ownership boundary of the persistent index path: a codec Set
// parsed from a heap buffer owns its words, while the same Set parsed from
// an mmap'ed container file (storage/mapped_index.h) only *views* the file
// bytes — zero copy, zero allocation proportional to payload size. All read
// accessors are identical in both states, so codec operator code (decode /
// intersect / union / validate) cannot tell the difference; only the
// construction site chooses.
//
// Lifetime contract for views: the borrowed memory must stay mapped and
// unmodified for the VArray's lifetime. MappedIndex guarantees this by
// owning both the mapping and every Set parsed from it.

#ifndef INTCOMP_COMMON_VARRAY_H_
#define INTCOMP_COMMON_VARRAY_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace intcomp {

template <typename T>
class VArray {
 public:
  VArray() = default;

  // Owning: adopts the vector's buffer.
  VArray(std::vector<T>&& owned)  // NOLINT: implicit from the encode path
      : owned_(std::move(owned)), data_(owned_.data()), size_(owned_.size()) {}

  // Borrowing: references `view` without copying.
  static VArray View(std::span<const T> view) {
    VArray a;
    a.data_ = view.data();
    a.size_ = view.size();
    return a;
  }

  // Moves rebind the pointer when owning (vector moves keep the heap buffer,
  // but the vector object itself relocates). Copies are deliberately absent:
  // copying a view would silently extend a lifetime contract.
  VArray(VArray&& other) noexcept { *this = std::move(other); }
  VArray& operator=(VArray&& other) noexcept {
    const bool owned = other.IsOwned();
    owned_ = std::move(other.owned_);
    data_ = owned ? owned_.data() : other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
    return *this;
  }
  VArray(const VArray&) = delete;
  VArray& operator=(const VArray&) = delete;

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }
  operator std::span<const T>() const { return {data_, size_}; }  // NOLINT

  // True when this array owns its storage (false for mmap-backed views).
  bool IsOwned() const { return data_ == owned_.data() && data_ != nullptr; }

 private:
  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace intcomp

#endif  // INTCOMP_COMMON_VARRAY_H_
