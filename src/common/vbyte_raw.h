// Raw VByte (a.k.a. Varint / VB, §3.1 of the paper) primitive.
//
// This is the building block used both by the VB inverted-list codec and by
// BBC's multi-byte fill counters (§2.8: "The counter is compressed using VB
// compression"). Layout per the paper: 7 data bits per byte, least-significant
// group first, MSB set when another byte follows. Example from §3.1:
// 16385 -> 10000001 10000000 00000001.

#ifndef INTCOMP_COMMON_VBYTE_RAW_H_
#define INTCOMP_COMMON_VBYTE_RAW_H_

#include <cstdint>
#include <vector>

namespace intcomp {

// Appends the VByte encoding of `value` to `out`.
inline void VByteEncode(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

// Decodes one VByte value starting at data[*pos]; advances *pos.
inline uint32_t VByteDecode(const uint8_t* data, size_t* pos) {
  uint32_t value = 0;
  int shift = 0;
  uint8_t byte;
  do {
    byte = data[(*pos)++];
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    shift += 7;
  } while (byte & 0x80);
  return value;
}

// Number of bytes VByteEncode(value) produces.
inline int VByteLength(uint32_t value) {
  if (value < (1u << 7)) return 1;
  if (value < (1u << 14)) return 2;
  if (value < (1u << 21)) return 3;
  if (value < (1u << 28)) return 4;
  return 5;
}

}  // namespace intcomp

#endif  // INTCOMP_COMMON_VBYTE_RAW_H_
