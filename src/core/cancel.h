// Cooperative cancellation for query evaluation.
//
// A CancellationToken combines an explicit cancel flag with an optional
// deadline and an optional parent token (the batch executor chains a
// per-query deadline token onto the caller's batch-wide token). Evaluation
// polls Check() at plan-node boundaries — between decode / intersect /
// union steps, not inside them — so cancellation latency is bounded by the
// cost of one node, which keeps the hot loops branch-free.
//
// Thread-safety: Cancel() may be called from any thread at any time.
// SetDeadline / ChainParent are setup-phase calls and must happen before
// the token is shared with running evaluations.

#ifndef INTCOMP_CORE_CANCEL_H_
#define INTCOMP_CORE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace intcomp {

class CancellationToken {
 public:
  CancellationToken() = default;

  // Non-copyable: identity is the point of a token.
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // Trips the token; every subsequent Check() returns kCancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->IsCancelled());
  }

  // Sets an absolute deadline; Check() returns kDeadlineExceeded once the
  // steady clock passes it. Call before sharing the token.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  // Convenience: deadline `ns` nanoseconds from now (0 = no deadline).
  void SetDeadlineAfterNs(uint64_t ns) {
    if (ns == 0) return;
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(ns));
  }

  // Chains `parent`: this token also reports cancelled / past-deadline when
  // the parent does. The parent must outlive this token.
  void ChainParent(const CancellationToken* parent) { parent_ = parent; }

  // Ok, or the reason evaluation must stop. Deadline wins over an untripped
  // parent; an explicit Cancel() wins over everything.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed))
      return Status::Cancelled("cancellation requested");
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_)
      return Status::DeadlineExceeded("query deadline elapsed");
    if (parent_ != nullptr) return parent_->Check();
    return Status::Ok();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancellationToken* parent_ = nullptr;
};

}  // namespace intcomp

#endif  // INTCOMP_CORE_CANCEL_H_
