#include "core/codec.h"

#include "common/simd_intersect.h"
#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/trace.h"

namespace intcomp {

StatusOr<std::unique_ptr<CompressedSet>> Codec::DeserializeChecked(
    std::span<const uint8_t> image, uint64_t domain) const {
  TRACE_SPAN("deserialize_checked");
  obs::ScopedOpTimer timer(Name(), obs::OpKind::kDeserializeChecked);
  std::unique_ptr<CompressedSet> set = Deserialize(image.data(), image.size());
  if (set == nullptr) {
    return Status::Corrupt("unparseable image (truncated or bad lengths)");
  }
  Status valid = ValidateSet(*set, domain);
  if (!valid.ok()) return valid;
  return StatusOr<std::unique_ptr<CompressedSet>>(std::move(set));
}

StatusOr<std::unique_ptr<CompressedSet>> Codec::DeserializeCheckedView(
    std::span<const uint8_t> image, uint64_t domain) const {
  TRACE_SPAN("deserialize_checked_view");
  obs::ScopedOpTimer timer(Name(), obs::OpKind::kDeserializeChecked);
  std::unique_ptr<CompressedSet> set = DeserializeView(image);
  if (set == nullptr) {
    return Status::Corrupt("unparseable image (truncated or bad lengths)");
  }
  Status valid = ValidateSet(*set, domain);
  if (!valid.ok()) return valid;
  return StatusOr<std::unique_ptr<CompressedSet>>(std::move(set));
}

void Codec::IntersectWithList(const CompressedSet& a,
                              std::span<const uint32_t> probe,
                              std::vector<uint32_t>* out) const {
  std::vector<uint32_t> decoded;
  obs::ThreadOpCounters().bytes_decoded += a.SizeInBytes();
  Decode(a, &decoded);
  IntersectLists(decoded, probe, out);
}

void IntersectLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    std::vector<uint32_t>* out) {
  out->clear();
  IntersectKernelInto(a, b, out);
}

void UnionLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  UnionKernelInto(a, b, out);
}

}  // namespace intcomp
