#include "core/codec.h"

namespace intcomp {

StatusOr<std::unique_ptr<CompressedSet>> Codec::DeserializeChecked(
    std::span<const uint8_t> image, uint64_t domain) const {
  std::unique_ptr<CompressedSet> set = Deserialize(image.data(), image.size());
  if (set == nullptr) {
    return Status::Corrupt("unparseable image (truncated or bad lengths)");
  }
  Status valid = ValidateSet(*set, domain);
  if (!valid.ok()) return valid;
  return StatusOr<std::unique_ptr<CompressedSet>>(std::move(set));
}

void Codec::IntersectWithList(const CompressedSet& a,
                              std::span<const uint32_t> probe,
                              std::vector<uint32_t>* out) const {
  std::vector<uint32_t> decoded;
  Decode(a, &decoded);
  IntersectLists(decoded, probe, out);
}

void IntersectLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    std::vector<uint32_t>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      out->push_back(va);
      ++i;
      ++j;
    }
  }
}

void UnionLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      out->push_back(va);
      ++i;
    } else if (vb < va) {
      out->push_back(vb);
      ++j;
    } else {
      out->push_back(va);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
  out->insert(out->end(), b.begin() + j, b.end());
}

}  // namespace intcomp
