// The uniform interface every compression method in the study implements.
//
// A codec turns a sorted, duplicate-free list of uint32 values (equivalently,
// a bitmap whose set-bit positions are those values — paper §1) into a
// compressed representation, and supports the four operations the paper
// measures: space, decompression, intersection, and union (§4.2). Results of
// intersection/union are uncompressed integer lists (paper App. B.1) so they
// can be returned to users or fed into further operations.

#ifndef INTCOMP_CORE_CODEC_H_
#define INTCOMP_CORE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace intcomp {

// Which research lineage a codec belongs to (paper §2 vs §3).
enum class CodecFamily {
  kBitmap,
  kInvertedList,
};

// A compressed sorted-integer set. Concrete subtypes are private to their
// codec; callers interact through the owning Codec.
class CompressedSet {
 public:
  virtual ~CompressedSet() = default;

  // Full compressed footprint in bytes, including per-block metadata and
  // skip pointers (the paper's space-overhead metric).
  virtual size_t SizeInBytes() const = 0;

  // Number of values in the set.
  virtual size_t Cardinality() const = 0;
};

// A compression method. Implementations are stateless and thread-compatible;
// one shared instance per method lives in the registry (core/registry.h).
class Codec {
 public:
  virtual ~Codec() = default;

  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  // Display name matching the paper's figure legends (e.g. "WAH",
  // "SIMDPforDelta*").
  virtual std::string_view Name() const = 0;

  virtual CodecFamily Family() const = 0;

  // Family of `set`'s actual representation. Equal to Family() for every
  // fixed-representation codec; adaptive wrappers (Hybrid, Planner) override
  // it to report the family of the side a given set landed on, so kernel
  // stats and the query planner classify a list-backed hybrid set as
  // kInvertedList instead of trusting the wrapper's static family.
  virtual CodecFamily EffectiveFamily(const CompressedSet& set) const {
    (void)set;
    return Family();
  }

  // Name of the codec that actually encodes `set` — Name() for fixed codecs,
  // the chosen inner codec's name for adaptive wrappers. This is the per-set
  // codec tag the storage layer persists and the service folds into plan
  // cache keys.
  virtual std::string_view SetCodecName(const CompressedSet& set) const {
    (void)set;
    return Name();
  }

  // Compresses `sorted` (strictly increasing values, all < domain).
  // `domain` is the number of rows / documents (paper: "domain size").
  virtual std::unique_ptr<CompressedSet> Encode(
      std::span<const uint32_t> sorted, uint64_t domain) const = 0;

  // Decompresses `set` into `out` (cleared first).
  virtual void Decode(const CompressedSet& set,
                      std::vector<uint32_t>* out) const = 0;

  // out = a AND b, as an uncompressed sorted list. Operates on the
  // compressed form directly where the method supports it (all bitmap
  // codecs; skip-pointer probing for inverted lists).
  virtual void Intersect(const CompressedSet& a, const CompressedSet& b,
                         std::vector<uint32_t>* out) const = 0;

  // out = a OR b, as an uncompressed sorted list.
  virtual void Union(const CompressedSet& a, const CompressedSet& b,
                     std::vector<uint32_t>* out) const = 0;

  // out = a AND probe, where `probe` is an uncompressed sorted list — the
  // SvS step that intersects the running (uncompressed) result with the next
  // compressed list (paper §4.3, App. B.1). The default implementation
  // decodes `a` and merges; codecs with skip pointers or bucket indexes
  // override it with sub-linear probing.
  virtual void IntersectWithList(const CompressedSet& a,
                                 std::span<const uint32_t> probe,
                                 std::vector<uint32_t>* out) const;

  // Appends a self-contained, position-independent byte image of `set` to
  // `out`. The image can be persisted and later restored by the same codec
  // with Deserialize (byte order: little-endian).
  virtual void Serialize(const CompressedSet& set,
                         std::vector<uint8_t>* out) const = 0;

  // Reconstructs a set from a Serialize image. Returns nullptr if the
  // buffer is malformed (truncated or inconsistent lengths).
  //
  // TRUST BOUNDARY: this is the trusted fast path. It is parse-bounds-safe
  // (never reads outside [data, data+size) and never makes an allocation
  // larger than `size`), but it does NOT validate structural invariants of
  // the payload — decoding a set built from a hostile image may still read
  // or write out of bounds. Images from disk/network/cache must go through
  // DeserializeChecked instead.
  virtual std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                                     size_t size) const = 0;

  // Zero-copy twin of Deserialize: the returned set may reference `image`'s
  // bytes directly instead of copying them into owned buffers. The caller
  // must keep `image` alive, mapped, and unmodified for the set's lifetime
  // (the mmap-backed index reader, storage/mapped_index.h, owns both). Codecs
  // whose in-memory representation is a flat word array opt in by overriding
  // this (and SupportsViewDeserialize); the default falls back to the owning
  // Deserialize, which is always correct, just not zero-copy. Carries the
  // same trust contract as Deserialize — untrusted images go through
  // DeserializeCheckedView.
  virtual std::unique_ptr<CompressedSet> DeserializeView(
      std::span<const uint8_t> image) const {
    return Deserialize(image.data(), image.size());
  }

  // True when DeserializeView borrows from the image (false = it copies).
  virtual bool SupportsViewDeserialize() const { return false; }

  // Checked ingestion path for untrusted byte images: parses like Deserialize
  // and then deep-validates every structural invariant Decode/Intersect/Union
  // rely on (word-stream shape, block headers and selector legality, skip
  // pointers, partition bounds, container cardinalities, monotonicity, and
  // value < domain). On success the returned set is safe to pass to any
  // operation of this codec; on failure returns kCorruptData. `domain` is the
  // same domain the set was encoded with (values must be < domain).
  virtual StatusOr<std::unique_ptr<CompressedSet>> DeserializeChecked(
      std::span<const uint8_t> image, uint64_t domain) const;

  // DeserializeChecked over the zero-copy parse: DeserializeView + the same
  // deep ValidateSet. On success the returned set is safe for every
  // operation of this codec but may borrow from `image` — the caller owns
  // the lifetime contract of DeserializeView.
  StatusOr<std::unique_ptr<CompressedSet>> DeserializeCheckedView(
      std::span<const uint8_t> image, uint64_t domain) const;

  // Deep structural validation of an already-parsed set (the second half of
  // DeserializeChecked). Public so wrapper codecs (Hybrid) can delegate to
  // the inner codec's validator. Returns OK iff every operation on `set` is
  // memory-safe and yields a strictly increasing list of values < domain
  // consistent with Cardinality().
  virtual Status ValidateSet(const CompressedSet& set, uint64_t domain)
      const = 0;

 protected:
  Codec() = default;
};

// Intersects two uncompressed sorted lists through the adaptive kernel
// planner (common/simd_intersect.h): merge-based for similar sizes,
// galloping for skewed pairs, SIMD or scalar per the process KernelMode.
void IntersectLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    std::vector<uint32_t>* out);

// Unions two uncompressed sorted lists through the mode-selected merge
// kernel (vectorized bitonic merge network under SIMD modes).
void UnionLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                std::vector<uint32_t>* out);

}  // namespace intcomp

#endif  // INTCOMP_CORE_CODEC_H_
