#include "core/hybrid.h"

#include <algorithm>

#include "common/bufio.h"
#include "common/simd_intersect.h"

namespace intcomp {

std::unique_ptr<CompressedSet> HybridCodec::Encode(
    std::span<const uint32_t> sorted, uint64_t domain) const {
  auto set = std::make_unique<Set>();
  // Effective universe: the declared domain, or the value range when the
  // caller passes a loose bound. domain == 0 means "unknown", never "tiny":
  // clamping it to 1 would make every non-empty list look fully dense and
  // silently route arbitrarily sparse sets to the bitmap family.
  uint64_t universe = domain;
  if (!sorted.empty()) {
    const uint64_t value_range = uint64_t{sorted.back()} + 1;
    universe = domain == 0 ? value_range : std::min(domain, value_range);
  }
  const double density =
      universe == 0 ? 0.0
                    : static_cast<double>(sorted.size()) /
                          static_cast<double>(universe);
  set->is_bitmap = density >= threshold_;
  set->inner = (set->is_bitmap ? bitmap_ : list_)->Encode(sorted, domain);
  return set;
}

void HybridCodec::Decode(const CompressedSet& set,
                         std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  InnerOf(s).Decode(*s.inner, out);
}

void HybridCodec::Intersect(const CompressedSet& a, const CompressedSet& b,
                            std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  if (sa.is_bitmap == sb.is_bitmap) {
    InnerOf(sa).Intersect(*sa.inner, *sb.inner, out);
    return;
  }
  // Mixed families: decode the smaller side; for skewed sizes probe the
  // larger through its own skip/bucket structure (SvS step), for similar
  // sizes merge two decoded lists. The threshold is the planner's shared
  // policy (common/simd_intersect.h), not a local constant.
  const Set* small = &sa;
  const Set* large = &sb;
  if (small->Cardinality() > large->Cardinality()) std::swap(small, large);
  std::vector<uint32_t> decoded;
  InnerOf(*small).Decode(*small->inner, &decoded);
  if (ChooseIntersectStrategy(small->Cardinality(), large->Cardinality()) ==
      IntersectStrategy::kMerge) {
    std::vector<uint32_t> decoded_large;
    InnerOf(*large).Decode(*large->inner, &decoded_large);
    IntersectLists(decoded, decoded_large, out);
    return;
  }
  InnerOf(*large).IntersectWithList(*large->inner, decoded, out);
}

void HybridCodec::Union(const CompressedSet& a, const CompressedSet& b,
                        std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  if (sa.is_bitmap == sb.is_bitmap) {
    InnerOf(sa).Union(*sa.inner, *sb.inner, out);
    return;
  }
  std::vector<uint32_t> da, db;
  InnerOf(sa).Decode(*sa.inner, &da);
  InnerOf(sb).Decode(*sb.inner, &db);
  UnionLists(da, db, out);
}

void HybridCodec::IntersectWithList(const CompressedSet& a,
                                    std::span<const uint32_t> probe,
                                    std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(a);
  InnerOf(s).IntersectWithList(*s.inner, probe, out);
}

void HybridCodec::Serialize(const CompressedSet& set,
                            std::vector<uint8_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  ByteWriter(out).PutU8(s.is_bitmap ? 1 : 0);
  InnerOf(s).Serialize(*s.inner, out);
}

std::unique_ptr<CompressedSet> HybridCodec::Deserialize(const uint8_t* data,
                                                        size_t size) const {
  if (size < 1) return nullptr;
  auto set = std::make_unique<Set>();
  set->is_bitmap = data[0] != 0;
  set->inner = (set->is_bitmap ? bitmap_ : list_)
                   ->Deserialize(data + 1, size - 1);
  if (set->inner == nullptr) return nullptr;
  return set;
}

StatusOr<std::unique_ptr<CompressedSet>> HybridCodec::DeserializeChecked(
    std::span<const uint8_t> image, uint64_t domain) const {
  if (image.empty())
    return Status::Corrupt("Hybrid: empty image (missing family tag)");
  auto set = std::make_unique<Set>();
  set->is_bitmap = image[0] != 0;
  auto inner = (set->is_bitmap ? bitmap_ : list_)
                   ->DeserializeChecked(image.subspan(1), domain);
  if (!inner.ok()) return inner.status();
  set->inner = std::move(inner.value());
  return StatusOr<std::unique_ptr<CompressedSet>>(std::move(set));
}

Status HybridCodec::ValidateSet(const CompressedSet& set,
                                uint64_t domain) const {
  const auto& s = static_cast<const Set&>(set);
  if (s.inner == nullptr) return Status::Corrupt("Hybrid: missing inner set");
  return InnerOf(s).ValidateSet(*s.inner, domain);
}

}  // namespace intcomp
