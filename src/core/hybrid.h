// HybridCodec — the "unified compression method" the paper's lesson 1 calls
// for: per list, adaptively store either a bitmap-family or a list-family
// representation, following the paper's §7.1 guidance (density >= ~1/5 of
// the domain favors bitmaps; sparse lists favor inverted-list codecs).
//
// The default pairing is Roaring (best bitmap, fastest intersection) with
// SIMDPforDelta* (smallest and among the fastest list codecs). Mixed-family
// operations fall back to SvS-style probing: decode the smaller side and
// probe the larger through its own skip structure.

#ifndef INTCOMP_CORE_HYBRID_H_
#define INTCOMP_CORE_HYBRID_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/codec.h"

namespace intcomp {

class HybridCodec final : public Codec {
 public:
  struct Set final : CompressedSet {
    std::unique_ptr<CompressedSet> inner;
    bool is_bitmap = false;

    size_t SizeInBytes() const override { return inner->SizeInBytes() + 1; }
    size_t Cardinality() const override { return inner->Cardinality(); }
  };

  // `bitmap` / `list` must outlive this codec (registry singletons do).
  HybridCodec(const Codec* bitmap, const Codec* list,
              double density_threshold = 0.2)
      : bitmap_(bitmap), list_(list), threshold_(density_threshold) {}

  std::string_view Name() const override { return "Hybrid"; }
  // Static family stays kBitmap (registry partition slot); per-set queries
  // must use EffectiveFamily — a list-backed set is NOT a bitmap.
  CodecFamily Family() const override { return CodecFamily::kBitmap; }
  CodecFamily EffectiveFamily(const CompressedSet& set) const override {
    return static_cast<const Set&>(set).is_bitmap ? CodecFamily::kBitmap
                                                  : CodecFamily::kInvertedList;
  }
  std::string_view SetCodecName(const CompressedSet& set) const override {
    return InnerOf(static_cast<const Set&>(set)).Name();
  }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t domain) const override;
  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override;
  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override;
  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override;
  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override;
  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override;
  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override;
  StatusOr<std::unique_ptr<CompressedSet>> DeserializeChecked(
      std::span<const uint8_t> image, uint64_t domain) const override;
  // Delegates to the inner codec's ValidateSet.
  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override;

 private:
  const Codec& InnerOf(const Set& s) const {
    return s.is_bitmap ? *bitmap_ : *list_;
  }

  const Codec* bitmap_;
  const Codec* list_;
  const double threshold_;
};

}  // namespace intcomp

#endif  // INTCOMP_CORE_HYBRID_H_
