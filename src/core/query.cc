#include "core/query.h"

#include <algorithm>

#include "core/set_ops.h"
#include "invlist/plain_list.h"
#include "obs/explain.h"
#include "obs/op_counters.h"
#include "obs/trace.h"

namespace intcomp {
namespace {

// Observability hooks below are inserted at the same points of Evaluate and
// EvaluateChecked: they never branch on results, so the checked mirror stays
// algorithmically line-for-line identical to the trusted path.
inline void CountDecodedSet(const CompressedSet& set) {
  obs::ThreadOpCounters().bytes_decoded += set.SizeInBytes();
}

// Emits one explain node for a leaf that an AND/OR parent consumes in place
// (inlined leaves never recurse, so without this they would be invisible and
// the explain tree would not cover the whole plan).
inline void ExplainInlineLeaf(const Codec& codec, uint32_t leaf,
                              const CompressedSet& set) {
  obs::ExplainScope scope("plan.leaf");
  if (scope.active()) {
    scope.AddUint("leaf", leaf);
    scope.AddUint("card", set.Cardinality());
    scope.AddStr("codec", codec.SetCodecName(set));
  }
}

// Writes the plan's result into *out (cleared first). Temporaries are
// leased from `arena`; `out` itself is caller storage so results can
// outlive the evaluation.
void Evaluate(const Codec& codec, const QueryPlan& plan,
              std::span<const CompressedSet* const> sets, ScratchArena& arena,
              std::vector<uint32_t>* out) {
  out->clear();
  switch (plan.op) {
    case QueryPlan::Op::kLeaf: {
      TRACE_SPAN("decode");
      obs::ExplainScope scope("plan.leaf");
      if (scope.active()) {
        scope.AddUint("leaf", plan.leaf);
        scope.AddUint("card", sets[plan.leaf]->Cardinality());
        scope.AddStr("codec", codec.SetCodecName(*sets[plan.leaf]));
      }
      ++obs::ThreadOpCounters().lists_touched;
      CountDecodedSet(*sets[plan.leaf]);
      codec.Decode(*sets[plan.leaf], out);
      return;
    }
    case QueryPlan::Op::kAnd: {
      obs::ExplainScope scope("plan.and");
      scope.AddUint("children", plan.children.size());
      // Materialize non-leaf children; keep leaves compressed for SvS.
      std::vector<const CompressedSet*> leaves;
      std::vector<ScratchArena::Lease> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          ExplainInlineLeaf(codec, child.leaf, *sets[child.leaf]);
          leaves.push_back(sets[child.leaf]);
        } else {
          ScratchArena::Lease sub = arena.Acquire();
          Evaluate(codec, child, sets, arena, sub.get());
          materialized.push_back(std::move(sub));
        }
      }
      std::sort(leaves.begin(), leaves.end(),
                [](const CompressedSet* a, const CompressedSet* b) {
                  return a->Cardinality() < b->Cardinality();
                });
      std::sort(materialized.begin(), materialized.end(),
                [](const auto& a, const auto& b) { return a->size() < b->size(); });
      obs::ThreadOpCounters().lists_touched += leaves.size();

      ScratchArena::Lease next = arena.Acquire();
      size_t li = 0;
      if (!materialized.empty()) {
        out->swap(*materialized[0]);
        // Merge-intersect the other materialized results.
        for (size_t i = 1; i < materialized.size(); ++i) {
          IntersectLists(*out, *materialized[i], next.get());
          out->swap(*next);
        }
      } else if (leaves.size() == 1) {
        CountDecodedSet(*leaves[0]);
        codec.Decode(*leaves[0], out);
        li = 1;
      } else {
        codec.Intersect(*leaves[0], *leaves[1], out);
        li = 2;
      }
      TRACE_SPAN("svs_probe");
      for (; li < leaves.size() && !out->empty(); ++li) {
        // Probe the smaller side: when the running result is much larger
        // than the leaf (e.g. a wide union ANDed with a selective
        // predicate), decode the leaf and gallop it into the result instead
        // of pushing every result element through the leaf's skip index.
        if (leaves[li]->Cardinality() * 8 < out->size()) {
          ScratchArena::Lease decoded = arena.Acquire();
          CountDecodedSet(*leaves[li]);
          codec.Decode(*leaves[li], decoded.get());
          GallopIntersect(*decoded, *out, next.get());
        } else {
          codec.IntersectWithList(*leaves[li], *out, next.get());
        }
        out->swap(*next);
      }
      scope.AddUint("rows", out->size());
      return;
    }
    case QueryPlan::Op::kOr:
    default: {
      obs::ExplainScope scope("plan.or");
      scope.AddUint("children", plan.children.size());
      std::vector<const CompressedSet*> leaves;
      std::vector<ScratchArena::Lease> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          ExplainInlineLeaf(codec, child.leaf, *sets[child.leaf]);
          leaves.push_back(sets[child.leaf]);
        } else {
          ScratchArena::Lease sub = arena.Acquire();
          Evaluate(codec, child, sets, arena, sub.get());
          materialized.push_back(std::move(sub));
        }
      }
      if (!leaves.empty()) {
        UnionSets(codec, leaves, &arena, out);
      }
      ScratchArena::Lease merged = arena.Acquire();
      for (const auto& m : materialized) {
        UnionLists(*out, *m, merged.get());
        out->swap(*merged);
      }
      scope.AddUint("rows", out->size());
      return;
    }
  }
}

// Status-returning mirror of Evaluate. The per-node algorithm (child
// ordering, SvS vs. gallop choices) is kept line-for-line identical so that
// a successful checked evaluation is bit-identical to the trusted path; the
// only additions are the token poll and leaf/shape validation at node entry.
Status EvaluateChecked(const Codec& codec, const QueryPlan& plan,
                       std::span<const CompressedSet* const> sets,
                       const CancellationToken* token, ScratchArena& arena,
                       std::vector<uint32_t>* out) {
  if (token != nullptr) {
    Status st = token->Check();
    if (!st.ok()) return st;
  }
  out->clear();
  switch (plan.op) {
    case QueryPlan::Op::kLeaf: {
      if (plan.leaf >= sets.size())
        return Status::InvalidArgument("plan leaf index out of range");
      if (sets[plan.leaf] == nullptr)
        return Status::InvalidArgument("plan references missing input set");
      TRACE_SPAN("decode");
      obs::ExplainScope scope("plan.leaf");
      if (scope.active()) {
        scope.AddUint("leaf", plan.leaf);
        scope.AddUint("card", sets[plan.leaf]->Cardinality());
        scope.AddStr("codec", codec.SetCodecName(*sets[plan.leaf]));
      }
      ++obs::ThreadOpCounters().lists_touched;
      CountDecodedSet(*sets[plan.leaf]);
      codec.Decode(*sets[plan.leaf], out);
      return Status::Ok();
    }
    case QueryPlan::Op::kAnd: {
      if (plan.children.empty())
        return Status::InvalidArgument("AND node with no children");
      obs::ExplainScope scope("plan.and");
      scope.AddUint("children", plan.children.size());
      std::vector<const CompressedSet*> leaves;
      std::vector<ScratchArena::Lease> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          if (child.leaf >= sets.size())
            return Status::InvalidArgument("plan leaf index out of range");
          if (sets[child.leaf] == nullptr)
            return Status::InvalidArgument("plan references missing input set");
          ExplainInlineLeaf(codec, child.leaf, *sets[child.leaf]);
          leaves.push_back(sets[child.leaf]);
        } else {
          ScratchArena::Lease sub = arena.Acquire();
          Status st =
              EvaluateChecked(codec, child, sets, token, arena, sub.get());
          if (!st.ok()) return st;
          materialized.push_back(std::move(sub));
        }
      }
      std::sort(leaves.begin(), leaves.end(),
                [](const CompressedSet* a, const CompressedSet* b) {
                  return a->Cardinality() < b->Cardinality();
                });
      std::sort(materialized.begin(), materialized.end(),
                [](const auto& a, const auto& b) { return a->size() < b->size(); });
      obs::ThreadOpCounters().lists_touched += leaves.size();

      ScratchArena::Lease next = arena.Acquire();
      size_t li = 0;
      if (!materialized.empty()) {
        out->swap(*materialized[0]);
        for (size_t i = 1; i < materialized.size(); ++i) {
          IntersectLists(*out, *materialized[i], next.get());
          out->swap(*next);
        }
      } else if (leaves.size() == 1) {
        CountDecodedSet(*leaves[0]);
        codec.Decode(*leaves[0], out);
        li = 1;
      } else {
        codec.Intersect(*leaves[0], *leaves[1], out);
        li = 2;
      }
      TRACE_SPAN("svs_probe");
      for (; li < leaves.size() && !out->empty(); ++li) {
        if (token != nullptr) {
          Status st = token->Check();
          if (!st.ok()) return st;
        }
        if (leaves[li]->Cardinality() * 8 < out->size()) {
          ScratchArena::Lease decoded = arena.Acquire();
          CountDecodedSet(*leaves[li]);
          codec.Decode(*leaves[li], decoded.get());
          GallopIntersect(*decoded, *out, next.get());
        } else {
          codec.IntersectWithList(*leaves[li], *out, next.get());
        }
        out->swap(*next);
      }
      scope.AddUint("rows", out->size());
      return Status::Ok();
    }
    case QueryPlan::Op::kOr:
    default: {
      if (plan.children.empty())
        return Status::InvalidArgument("OR node with no children");
      obs::ExplainScope scope("plan.or");
      scope.AddUint("children", plan.children.size());
      std::vector<const CompressedSet*> leaves;
      std::vector<ScratchArena::Lease> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          if (child.leaf >= sets.size())
            return Status::InvalidArgument("plan leaf index out of range");
          if (sets[child.leaf] == nullptr)
            return Status::InvalidArgument("plan references missing input set");
          ExplainInlineLeaf(codec, child.leaf, *sets[child.leaf]);
          leaves.push_back(sets[child.leaf]);
        } else {
          ScratchArena::Lease sub = arena.Acquire();
          Status st =
              EvaluateChecked(codec, child, sets, token, arena, sub.get());
          if (!st.ok()) return st;
          materialized.push_back(std::move(sub));
        }
      }
      if (!leaves.empty()) {
        UnionSets(codec, leaves, &arena, out);
      }
      ScratchArena::Lease merged = arena.Acquire();
      for (const auto& m : materialized) {
        UnionLists(*out, *m, merged.get());
        out->swap(*merged);
      }
      scope.AddUint("rows", out->size());
      return Status::Ok();
    }
  }
}

}  // namespace

void EvaluatePlan(const Codec& codec, const QueryPlan& plan,
                  std::span<const CompressedSet* const> sets,
                  ScratchArena* arena, std::vector<uint32_t>* out) {
  Evaluate(codec, plan, sets, *arena, out);
}

std::vector<uint32_t> EvaluatePlan(const Codec& codec, const QueryPlan& plan,
                                   std::span<const CompressedSet* const> sets) {
  ScratchArena arena;
  std::vector<uint32_t> out;
  Evaluate(codec, plan, sets, arena, &out);
  return out;
}

Status EvaluatePlanChecked(const Codec& codec, const QueryPlan& plan,
                           std::span<const CompressedSet* const> sets,
                           const CancellationToken* token, ScratchArena* arena,
                           std::vector<uint32_t>* out) {
  Status st = EvaluateChecked(codec, plan, sets, token, *arena, out);
  if (!st.ok()) out->clear();
  return st;
}

}  // namespace intcomp
