#include "core/query.h"

#include <algorithm>

#include "core/set_ops.h"
#include "invlist/plain_list.h"

namespace intcomp {
namespace {

// Writes the plan's result into *out (cleared first). Temporaries are
// leased from `arena`; `out` itself is caller storage so results can
// outlive the evaluation.
void Evaluate(const Codec& codec, const QueryPlan& plan,
              std::span<const CompressedSet* const> sets, ScratchArena& arena,
              std::vector<uint32_t>* out) {
  out->clear();
  switch (plan.op) {
    case QueryPlan::Op::kLeaf: {
      codec.Decode(*sets[plan.leaf], out);
      return;
    }
    case QueryPlan::Op::kAnd: {
      // Materialize non-leaf children; keep leaves compressed for SvS.
      std::vector<const CompressedSet*> leaves;
      std::vector<ScratchArena::Lease> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          leaves.push_back(sets[child.leaf]);
        } else {
          ScratchArena::Lease sub = arena.Acquire();
          Evaluate(codec, child, sets, arena, sub.get());
          materialized.push_back(std::move(sub));
        }
      }
      std::sort(leaves.begin(), leaves.end(),
                [](const CompressedSet* a, const CompressedSet* b) {
                  return a->Cardinality() < b->Cardinality();
                });
      std::sort(materialized.begin(), materialized.end(),
                [](const auto& a, const auto& b) { return a->size() < b->size(); });

      ScratchArena::Lease next = arena.Acquire();
      size_t li = 0;
      if (!materialized.empty()) {
        out->swap(*materialized[0]);
        // Merge-intersect the other materialized results.
        for (size_t i = 1; i < materialized.size(); ++i) {
          IntersectLists(*out, *materialized[i], next.get());
          out->swap(*next);
        }
      } else if (leaves.size() == 1) {
        codec.Decode(*leaves[0], out);
        li = 1;
      } else {
        codec.Intersect(*leaves[0], *leaves[1], out);
        li = 2;
      }
      for (; li < leaves.size() && !out->empty(); ++li) {
        // Probe the smaller side: when the running result is much larger
        // than the leaf (e.g. a wide union ANDed with a selective
        // predicate), decode the leaf and gallop it into the result instead
        // of pushing every result element through the leaf's skip index.
        if (leaves[li]->Cardinality() * 8 < out->size()) {
          ScratchArena::Lease decoded = arena.Acquire();
          codec.Decode(*leaves[li], decoded.get());
          GallopIntersect(*decoded, *out, next.get());
        } else {
          codec.IntersectWithList(*leaves[li], *out, next.get());
        }
        out->swap(*next);
      }
      return;
    }
    case QueryPlan::Op::kOr:
    default: {
      std::vector<const CompressedSet*> leaves;
      std::vector<ScratchArena::Lease> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          leaves.push_back(sets[child.leaf]);
        } else {
          ScratchArena::Lease sub = arena.Acquire();
          Evaluate(codec, child, sets, arena, sub.get());
          materialized.push_back(std::move(sub));
        }
      }
      if (!leaves.empty()) {
        UnionSets(codec, leaves, &arena, out);
      }
      ScratchArena::Lease merged = arena.Acquire();
      for (const auto& m : materialized) {
        UnionLists(*out, *m, merged.get());
        out->swap(*merged);
      }
      return;
    }
  }
}

}  // namespace

void EvaluatePlan(const Codec& codec, const QueryPlan& plan,
                  std::span<const CompressedSet* const> sets,
                  ScratchArena* arena, std::vector<uint32_t>* out) {
  Evaluate(codec, plan, sets, *arena, out);
}

std::vector<uint32_t> EvaluatePlan(const Codec& codec, const QueryPlan& plan,
                                   std::span<const CompressedSet* const> sets) {
  ScratchArena arena;
  std::vector<uint32_t> out;
  Evaluate(codec, plan, sets, arena, &out);
  return out;
}

}  // namespace intcomp
