#include "core/query.h"

#include <algorithm>

#include "core/set_ops.h"
#include "invlist/plain_list.h"

namespace intcomp {
namespace {

std::vector<uint32_t> Evaluate(const Codec& codec, const QueryPlan& plan,
                               std::span<const CompressedSet* const> sets) {
  switch (plan.op) {
    case QueryPlan::Op::kLeaf: {
      std::vector<uint32_t> out;
      codec.Decode(*sets[plan.leaf], &out);
      return out;
    }
    case QueryPlan::Op::kAnd: {
      // Materialize non-leaf children; keep leaves compressed for SvS.
      std::vector<const CompressedSet*> leaves;
      std::vector<std::vector<uint32_t>> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          leaves.push_back(sets[child.leaf]);
        } else {
          materialized.push_back(Evaluate(codec, child, sets));
        }
      }
      std::sort(leaves.begin(), leaves.end(),
                [](const CompressedSet* a, const CompressedSet* b) {
                  return a->Cardinality() < b->Cardinality();
                });
      std::sort(materialized.begin(), materialized.end(),
                [](const auto& a, const auto& b) { return a.size() < b.size(); });

      std::vector<uint32_t> result;
      std::vector<uint32_t> next;
      size_t li = 0;
      if (!materialized.empty()) {
        result = std::move(materialized[0]);
        // Merge-intersect the other materialized results.
        for (size_t i = 1; i < materialized.size(); ++i) {
          IntersectLists(result, materialized[i], &next);
          result.swap(next);
        }
      } else if (leaves.size() == 1) {
        codec.Decode(*leaves[0], &result);
        li = 1;
      } else {
        codec.Intersect(*leaves[0], *leaves[1], &result);
        li = 2;
      }
      for (; li < leaves.size() && !result.empty(); ++li) {
        // Probe the smaller side: when the running result is much larger
        // than the leaf (e.g. a wide union ANDed with a selective
        // predicate), decode the leaf and gallop it into the result instead
        // of pushing every result element through the leaf's skip index.
        if (leaves[li]->Cardinality() * 8 < result.size()) {
          std::vector<uint32_t> decoded;
          codec.Decode(*leaves[li], &decoded);
          GallopIntersect(decoded, result, &next);
        } else {
          codec.IntersectWithList(*leaves[li], result, &next);
        }
        result.swap(next);
      }
      return result;
    }
    case QueryPlan::Op::kOr:
    default: {
      std::vector<const CompressedSet*> leaves;
      std::vector<std::vector<uint32_t>> materialized;
      for (const QueryPlan& child : plan.children) {
        if (child.op == QueryPlan::Op::kLeaf) {
          leaves.push_back(sets[child.leaf]);
        } else {
          materialized.push_back(Evaluate(codec, child, sets));
        }
      }
      std::vector<uint32_t> result;
      if (!leaves.empty()) {
        UnionSets(codec, leaves, &result);
      }
      std::vector<uint32_t> merged;
      for (auto& m : materialized) {
        UnionLists(result, m, &merged);
        result.swap(merged);
      }
      return result;
    }
  }
}

}  // namespace

std::vector<uint32_t> EvaluatePlan(const Codec& codec, const QueryPlan& plan,
                                   std::span<const CompressedSet* const> sets) {
  return Evaluate(codec, plan, sets);
}

}  // namespace intcomp
