// Query plans combining intersection and union, e.g. SSB Q3.4's
// (L1 OR L2) AND (L3 OR L4) AND L5 (paper §6.1).

#ifndef INTCOMP_CORE_QUERY_H_
#define INTCOMP_CORE_QUERY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/cancel.h"
#include "core/codec.h"
#include "core/scratch.h"

namespace intcomp {

// Expression tree over a query's input lists (referenced by index).
struct QueryPlan {
  enum class Op { kLeaf, kAnd, kOr };

  Op op = Op::kLeaf;
  size_t leaf = 0;                  // input index (op == kLeaf)
  std::vector<QueryPlan> children;  // op == kAnd / kOr

  static QueryPlan Leaf(size_t index) {
    QueryPlan p;
    p.op = Op::kLeaf;
    p.leaf = index;
    return p;
  }
  static QueryPlan And(std::vector<QueryPlan> children) {
    QueryPlan p;
    p.op = Op::kAnd;
    p.children = std::move(children);
    return p;
  }
  static QueryPlan Or(std::vector<QueryPlan> children) {
    QueryPlan p;
    p.op = Op::kOr;
    p.children = std::move(children);
    return p;
  }
};

// Evaluates `plan` over the compressed inputs into `out`. AND nodes use SvS
// over leaf children (keeping them compressed) and probe already-materialized
// sub-results; OR nodes union leaves on the compressed form first, then
// merge in materialized sub-results. All intermediate lists are leased from
// `arena`; only `out`'s own growth allocates, so a caller that keeps one
// arena across a query stream (e.g. the batch engine's per-worker arenas)
// pays no per-query temporary allocation. The result is a pure function of
// (codec, plan, sets) — the arena never changes what is computed.
void EvaluatePlan(const Codec& codec, const QueryPlan& plan,
                  std::span<const CompressedSet* const> sets,
                  ScratchArena* arena, std::vector<uint32_t>* out);

// Convenience form with a throwaway arena per call.
std::vector<uint32_t> EvaluatePlan(const Codec& codec, const QueryPlan& plan,
                                   std::span<const CompressedSet* const> sets);

// Fault-contained form of EvaluatePlan: computes bit-identical results on
// success, but instead of assuming a well-formed plan it returns
//   kInvalidArgument   — leaf index out of range, null input set, or an
//                        AND/OR node with no children;
//   kCancelled /
//   kDeadlineExceeded  — `token` tripped (polled at every plan-node entry,
//                        so latency is bounded by one decode/intersect).
// On any non-OK status `out` is cleared. `token` may be null (no
// cancellation). The trusted EvaluatePlan stays assert-only; this is the
// entry point for plans or sets that crossed a trust boundary.
Status EvaluatePlanChecked(const Codec& codec, const QueryPlan& plan,
                           std::span<const CompressedSet* const> sets,
                           const CancellationToken* token, ScratchArena* arena,
                           std::vector<uint32_t>* out);

}  // namespace intcomp

#endif  // INTCOMP_CORE_QUERY_H_
