#include "core/registry.h"

#include <array>
#include <vector>

#include "core/hybrid.h"
#include "planner/planner_codec.h"

#include "bitmap/bbc.h"
#include "bitmap/bitset.h"
#include "bitmap/concise.h"
#include "bitmap/ewah.h"
#include "bitmap/plwah.h"
#include "bitmap/roaring.h"
#include "bitmap/sbh.h"
#include "bitmap/valwah.h"
#include "bitmap/wah.h"
#include "invlist/groupvb.h"
#include "invlist/newpfordelta.h"
#include "invlist/optpfordelta.h"
#include "invlist/pef.h"
#include "invlist/pfordelta.h"
#include "invlist/plain_list.h"
#include "invlist/simdbp128.h"
#include "invlist/simdpfordelta.h"
#include "invlist/simple16.h"
#include "invlist/simple8b.h"
#include "invlist/simple9.h"
#include "invlist/vb.h"

namespace intcomp {
namespace {

// Shared singleton instances; codecs are stateless and never destroyed
// (trivial-destruction rule for static storage).
struct Instances {
  BitsetCodec bitset;
  BbcCodec bbc;
  WahCodec wah;
  EwahCodec ewah;
  PlwahCodec plwah;
  ConciseCodec concise;
  ValwahCodec valwah;
  SbhCodec sbh;
  RoaringCodec roaring;
  PlainListCodec list;
  VbCodec vb;
  Simple9Codec simple9;
  PforDeltaCodec pfordelta;
  NewPforDeltaCodec newpfordelta;
  OptPforDeltaCodec optpfordelta;
  Simple16Codec simple16;
  GroupVbCodec groupvb;
  Simple8bCodec simple8b;
  PefCodec pef;
  SimdPforDeltaCodec simdpfordelta;
  SimdBp128Codec simdbp128;
  PforDeltaStarCodec pfordelta_star;
  SimdPforDeltaStarCodec simdpfordelta_star;
  SimdBp128StarCodec simdbp128_star;
  // Extensions: lesson-1 adaptive codec over the two recommended methods,
  // plain (non-partitioned) Elias-Fano [35], PEF's baseline, and the N-way
  // per-list codec optimizer. The planner's default pool spans both
  // families: the best container bitmap (Roaring), an RLE bitmap for
  // clustered lists (EWAH), the recommended list codec (SIMDPforDelta*),
  // and Elias-Fano partitions (PEF) for sparse irregular lists.
  HybridCodec hybrid{&roaring, &simdpfordelta_star};
  PefCodec ef{/*partition_size=*/0, "EF"};
  planner::PlannerCodec planner{
      std::vector<const Codec*>{&roaring, &ewah, &simdpfordelta_star, &pef}};
};

const Instances& GetInstances() {
  static const Instances* instances = new Instances();
  return *instances;
}

// Paper legend order (see e.g. Fig. 3 / Table 1).
const std::array<const Codec*, 24>& All() {
  static const auto* all = [] {
    const Instances& c = GetInstances();
    return new std::array<const Codec*, 24>{
        &c.bitset,       &c.bbc,           &c.wah,
        &c.ewah,         &c.plwah,         &c.concise,
        &c.valwah,       &c.sbh,           &c.roaring,
        &c.list,         &c.vb,            &c.simple9,
        &c.pfordelta,    &c.newpfordelta,  &c.optpfordelta,
        &c.simple16,     &c.groupvb,       &c.simple8b,
        &c.pef,          &c.simdpfordelta, &c.simdbp128,
        &c.pfordelta_star, &c.simdpfordelta_star, &c.simdbp128_star,
    };
  }();
  return *all;
}

}  // namespace

std::span<const Codec* const> AllCodecs() { return All(); }

std::span<const Codec* const> BitmapCodecs() {
  return std::span<const Codec* const>(All().data(), 9);
}

std::span<const Codec* const> InvertedListCodecs() {
  return std::span<const Codec* const>(All().data() + 9, 15);
}

std::span<const Codec* const> ExtensionCodecs() {
  static const auto* extensions = new std::array<const Codec*, 3>{
      &GetInstances().hybrid,
      &GetInstances().ef,
      &GetInstances().planner,
  };
  return *extensions;
}

std::span<const Codec* const> AllCodecsWithExtensions() {
  static const auto* roster = [] {
    auto* v = new std::vector<const Codec*>();
    for (const Codec* c : AllCodecs()) v->push_back(c);
    for (const Codec* c : ExtensionCodecs()) v->push_back(c);
    return v;
  }();
  return *roster;
}

const Codec* FindCodec(std::string_view name) {
  for (const Codec* codec : All()) {
    if (codec->Name() == name) return codec;
  }
  for (const Codec* codec : ExtensionCodecs()) {
    if (codec->Name() == name) return codec;
  }
  return nullptr;
}

}  // namespace intcomp
