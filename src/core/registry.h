// Registry of all 24 compression methods evaluated in the paper, in the
// order of its figure legends.

#ifndef INTCOMP_CORE_REGISTRY_H_
#define INTCOMP_CORE_REGISTRY_H_

#include <span>
#include <string_view>

#include "core/codec.h"

namespace intcomp {

// All methods in paper legend order: 9 bitmap codecs (incl. the
// uncompressed Bitset), then 15 inverted-list codecs (incl. the
// uncompressed List and the three * variants).
std::span<const Codec* const> AllCodecs();

// Bitmap-family / list-family subsets, same relative order.
std::span<const Codec* const> BitmapCodecs();
std::span<const Codec* const> InvertedListCodecs();

// Extension methods beyond the paper's 24. Currently: "Hybrid" (the
// two-way adaptive bitmap/list codec the paper's lesson 1 calls for),
// "EF" (plain Elias-Fano, PEF's baseline), and "Planner" (the N-way
// per-list codec optimizer, planner/planner_codec.h).
std::span<const Codec* const> ExtensionCodecs();

// The paper's 24 methods followed by every extension — the shared roster
// every differential/equivalence suite instantiates over, so a new codec
// (or a restored one) reaches all of them at once instead of drifting
// per-suite.
std::span<const Codec* const> AllCodecsWithExtensions();

// Looks a codec up by its legend name (e.g. "Roaring", "SIMDBP128*") or an
// extension name ("Hybrid"). Returns nullptr if unknown.
const Codec* FindCodec(std::string_view name);

}  // namespace intcomp

#endif  // INTCOMP_CORE_REGISTRY_H_
