// Reusable decode/merge buffers for query evaluation.
//
// EvaluatePlan / IntersectSets / UnionSets allocate every temporary list
// they need from a ScratchArena. Buffers returned to the arena keep their
// capacity, so steady-state evaluation of a query stream performs no heap
// allocation beyond the final per-query result — the allocation churn the
// batch engine (src/engine) is built to kill. The legacy entry points
// without an arena argument still exist; they spin up a throwaway arena per
// call and behave exactly as before.
//
// An arena is NOT thread-safe. The batch executor owns one arena per pool
// worker; serial callers use one local arena. Leases must not outlive the
// arena they came from.

#ifndef INTCOMP_CORE_SCRATCH_H_
#define INTCOMP_CORE_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace intcomp {

class ScratchArena {
 public:
  class Lease;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Hands out a cleared buffer, reusing a previously released one (and its
  // capacity) when available.
  Lease Acquire();

  // Number of distinct buffers ever created — the high-water mark of
  // concurrently live leases. A steady value across queries means the
  // buffer-reuse path is working.
  size_t BuffersAllocated() const { return buffers_.size(); }

  // Buffers currently parked in the arena (not leased out).
  size_t BuffersFree() const { return free_.size(); }

  // Sum of the capacities currently retained, in bytes.
  size_t RetainedBytes() const {
    size_t total = 0;
    for (const auto& b : buffers_) total += b->capacity() * sizeof(uint32_t);
    return total;
  }

  // RAII handle to one arena buffer; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : arena_(std::exchange(other.arena_, nullptr)),
          buf_(std::exchange(other.buf_, nullptr)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        arena_ = std::exchange(other.arena_, nullptr);
        buf_ = std::exchange(other.buf_, nullptr);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    std::vector<uint32_t>& operator*() const { return *buf_; }
    std::vector<uint32_t>* operator->() const { return buf_; }
    std::vector<uint32_t>* get() const { return buf_; }

   private:
    friend class ScratchArena;
    Lease(ScratchArena* arena, std::vector<uint32_t>* buf)
        : arena_(arena), buf_(buf) {}

    void Release() {
      if (arena_ != nullptr) {
        arena_->free_.push_back(buf_);
        arena_ = nullptr;
        buf_ = nullptr;
      }
    }

    ScratchArena* arena_ = nullptr;
    std::vector<uint32_t>* buf_ = nullptr;
  };

 private:
  std::vector<std::unique_ptr<std::vector<uint32_t>>> buffers_;
  std::vector<std::vector<uint32_t>*> free_;
};

inline ScratchArena::Lease ScratchArena::Acquire() {
  if (free_.empty()) {
    buffers_.push_back(std::make_unique<std::vector<uint32_t>>());
    free_.push_back(buffers_.back().get());
  }
  std::vector<uint32_t>* buf = free_.back();
  free_.pop_back();
  buf->clear();
  return Lease(this, buf);
}

}  // namespace intcomp

#endif  // INTCOMP_CORE_SCRATCH_H_
