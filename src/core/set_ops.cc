#include "core/set_ops.h"

#include <algorithm>

#include "common/simd_intersect.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/trace.h"

namespace intcomp {

void IntersectSets(const Codec& codec,
                   std::span<const CompressedSet* const> sets,
                   ScratchArena* arena, std::vector<uint32_t>* out) {
  TRACE_SPAN("intersect_sets");
  obs::ScopedOpTimer timer(codec.Name(), obs::OpKind::kIntersect);
  obs::ThreadOpCounters().lists_touched += sets.size();
  out->clear();
  if (sets.empty()) return;
  if (sets.size() == 1) {
    codec.Decode(*sets[0], out);
    return;
  }
  std::vector<const CompressedSet*> order(sets.begin(), sets.end());
  std::sort(order.begin(), order.end(),
            [](const CompressedSet* a, const CompressedSet* b) {
              return a->Cardinality() < b->Cardinality();
            });
  codec.Intersect(*order[0], *order[1], out);
  ScratchArena::Lease next = arena->Acquire();
  TRACE_SPAN("svs_probe");
  for (size_t i = 2; i < order.size() && !out->empty(); ++i) {
    codec.IntersectWithList(*order[i], *out, next.get());
    out->swap(*next);
  }
}

void UnionSets(const Codec& codec, std::span<const CompressedSet* const> sets,
               ScratchArena* arena, std::vector<uint32_t>* out) {
  TRACE_SPAN("union_sets");
  obs::ScopedOpTimer timer(codec.Name(), obs::OpKind::kUnion);
  obs::ThreadOpCounters().lists_touched += sets.size();
  out->clear();
  if (sets.empty()) return;
  if (sets.size() == 1) {
    codec.Decode(*sets[0], out);
    return;
  }
  if (sets.size() == 2) {
    codec.Union(*sets[0], *sets[1], out);
    return;
  }
  // k-way merge over the decoded lists: one pass instead of k-1 pairwise
  // passes over the accumulated result.
  std::vector<ScratchArena::Lease> decoded;
  decoded.reserve(sets.size());
  size_t total = 0;
  {
    TRACE_SPAN("decode");
    obs::OpCounters& oc = obs::ThreadOpCounters();
    for (size_t i = 0; i < sets.size(); ++i) {
      decoded.push_back(arena->Acquire());
      codec.Decode(*sets[i], decoded.back().get());
      oc.bytes_decoded += sets[i]->SizeInBytes();
      total += decoded.back()->size();
    }
  }
  out->reserve(total);
  struct Cursor {
    const uint32_t* p;
    const uint32_t* end;
  };
  auto later = [](const Cursor& a, const Cursor& b) { return *a.p > *b.p; };
  std::vector<Cursor> heap;
  for (const auto& d : decoded) {
    if (!d->empty()) heap.push_back({d->data(), d->data() + d->size()});
  }
  std::make_heap(heap.begin(), heap.end(), later);
  uint32_t last = 0;
  bool have_last = false;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Cursor& c = heap.back();
    const uint32_t v = *c.p++;
    if (!have_last || v != last) {
      out->push_back(v);
      last = v;
      have_last = true;
    }
    if (c.p == c.end) {
      heap.pop_back();
    } else {
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
}

void IntersectSets(const Codec& codec,
                   std::span<const CompressedSet* const> sets,
                   std::vector<uint32_t>* out) {
  ScratchArena arena;
  IntersectSets(codec, sets, &arena, out);
}

void UnionSets(const Codec& codec, std::span<const CompressedSet* const> sets,
               std::vector<uint32_t>* out) {
  ScratchArena arena;
  UnionSets(codec, sets, &arena, out);
}

void DifferenceSets(const Codec& codec, const CompressedSet& a,
                    const CompressedSet& b, std::vector<uint32_t>* out) {
  std::vector<uint32_t> decoded;
  codec.Decode(a, &decoded);
  std::vector<uint32_t> common;
  codec.IntersectWithList(b, decoded, &common);
  DifferenceLists(decoded, common, out);
}

void IntersectTagged(const TaggedSet& a, const TaggedSet& b,
                     std::vector<uint32_t>* out) {
  obs::ExplainScope scope("set_ops.intersect_tagged");
  if (scope.active()) {
    scope.AddStr("codec_a", a.codec->SetCodecName(*a.set));
    scope.AddStr("codec_b", b.codec->SetCodecName(*b.set));
  }
  if (a.codec == b.codec) {
    scope.AddStr("path", "compressed");
    a.codec->Intersect(*a.set, *b.set, out);
    return;
  }
  const TaggedSet* small = &a;
  const TaggedSet* large = &b;
  if (small->set->Cardinality() > large->set->Cardinality()) {
    std::swap(small, large);
  }
  std::vector<uint32_t> decoded;
  small->codec->Decode(*small->set, &decoded);
  obs::ThreadOpCounters().bytes_decoded += small->set->SizeInBytes();
  if (ChooseIntersectStrategy(small->set->Cardinality(),
                              large->set->Cardinality()) ==
      IntersectStrategy::kMerge) {
    scope.AddStr("path", "merge");
    std::vector<uint32_t> decoded_large;
    large->codec->Decode(*large->set, &decoded_large);
    obs::ThreadOpCounters().bytes_decoded += large->set->SizeInBytes();
    IntersectLists(decoded, decoded_large, out);
    return;
  }
  scope.AddStr("path", "probe");
  large->codec->IntersectWithList(*large->set, decoded, out);
}

void UnionTagged(const TaggedSet& a, const TaggedSet& b,
                 std::vector<uint32_t>* out) {
  obs::ExplainScope scope("set_ops.union_tagged");
  if (scope.active()) {
    scope.AddStr("codec_a", a.codec->SetCodecName(*a.set));
    scope.AddStr("codec_b", b.codec->SetCodecName(*b.set));
  }
  if (a.codec == b.codec) {
    scope.AddStr("path", "compressed");
    a.codec->Union(*a.set, *b.set, out);
    return;
  }
  scope.AddStr("path", "merge");
  std::vector<uint32_t> da, db;
  a.codec->Decode(*a.set, &da);
  b.codec->Decode(*b.set, &db);
  obs::ThreadOpCounters().bytes_decoded +=
      a.set->SizeInBytes() + b.set->SizeInBytes();
  UnionLists(da, db, out);
}

void IntersectTaggedSets(std::span<const TaggedSet> sets, ScratchArena* arena,
                         std::vector<uint32_t>* out) {
  TRACE_SPAN("intersect_tagged_sets");
  obs::ExplainScope scope("set_ops.intersect_tagged_sets");
  scope.AddUint("k", sets.size());
  obs::ThreadOpCounters().lists_touched += sets.size();
  out->clear();
  if (sets.empty()) return;
  if (sets.size() == 1) {
    sets[0].codec->Decode(*sets[0].set, out);
    return;
  }
  std::vector<const TaggedSet*> order;
  order.reserve(sets.size());
  for (const TaggedSet& s : sets) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const TaggedSet* a, const TaggedSet* b) {
              return a->set->Cardinality() < b->set->Cardinality();
            });
  IntersectTagged(*order[0], *order[1], out);
  ScratchArena::Lease next = arena->Acquire();
  TRACE_SPAN("svs_probe");
  for (size_t i = 2; i < order.size() && !out->empty(); ++i) {
    order[i]->codec->IntersectWithList(*order[i]->set, *out, next.get());
    out->swap(*next);
  }
}

void UnionTaggedSets(std::span<const TaggedSet> sets, ScratchArena* arena,
                     std::vector<uint32_t>* out) {
  TRACE_SPAN("union_tagged_sets");
  obs::ExplainScope scope("set_ops.union_tagged_sets");
  scope.AddUint("k", sets.size());
  obs::ThreadOpCounters().lists_touched += sets.size();
  out->clear();
  if (sets.empty()) return;
  if (sets.size() == 1) {
    sets[0].codec->Decode(*sets[0].set, out);
    return;
  }
  if (sets.size() == 2) {
    UnionTagged(sets[0], sets[1], out);
    return;
  }
  std::vector<ScratchArena::Lease> decoded;
  decoded.reserve(sets.size());
  size_t total = 0;
  {
    TRACE_SPAN("decode");
    obs::OpCounters& oc = obs::ThreadOpCounters();
    for (const TaggedSet& s : sets) {
      decoded.push_back(arena->Acquire());
      s.codec->Decode(*s.set, decoded.back().get());
      oc.bytes_decoded += s.set->SizeInBytes();
      total += decoded.back()->size();
    }
  }
  out->reserve(total);
  struct Cursor {
    const uint32_t* p;
    const uint32_t* end;
  };
  auto later = [](const Cursor& a, const Cursor& b) { return *a.p > *b.p; };
  std::vector<Cursor> heap;
  for (const auto& d : decoded) {
    if (!d->empty()) heap.push_back({d->data(), d->data() + d->size()});
  }
  std::make_heap(heap.begin(), heap.end(), later);
  uint32_t last = 0;
  bool have_last = false;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Cursor& c = heap.back();
    const uint32_t v = *c.p++;
    if (!have_last || v != last) {
      out->push_back(v);
      last = v;
      have_last = true;
    }
    if (c.p == c.end) {
      heap.pop_back();
    } else {
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
}

void DifferenceTagged(const TaggedSet& a, const TaggedSet& b,
                      std::vector<uint32_t>* out) {
  std::vector<uint32_t> decoded;
  a.codec->Decode(*a.set, &decoded);
  std::vector<uint32_t> common;
  b.codec->IntersectWithList(*b.set, decoded, &common);
  DifferenceLists(decoded, common, out);
}

void DifferenceLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(a.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out->push_back(a[i++]);
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
}

}  // namespace intcomp
