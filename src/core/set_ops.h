// Multi-list set operations over compressed sets.
//
// Intersection follows SvS (paper §4.3, [14]): sort the lists by size,
// intersect the two smallest (the codec switches between merge-based and
// skip-based internally), then probe each remaining compressed list with the
// running uncompressed result. Union decompresses and merges linearly
// (App. B.2).

#ifndef INTCOMP_CORE_SET_OPS_H_
#define INTCOMP_CORE_SET_OPS_H_

#include <span>
#include <vector>

#include "core/codec.h"
#include "core/scratch.h"

namespace intcomp {

// out = sets[0] AND ... AND sets[k-1]. k >= 1 (k == 1 decodes; k == 0
// clears `out`). Intermediate lists come from `arena`, so a caller that
// keeps one arena across queries pays no per-query allocation for them.
void IntersectSets(const Codec& codec,
                   std::span<const CompressedSet* const> sets,
                   ScratchArena* arena, std::vector<uint32_t>* out);

// out = sets[0] OR ... OR sets[k-1]. k >= 1 (k == 0 clears `out`). For
// k > 2 the decoded lists are merged with a k-way heap rather than repeated
// pairwise passes. Decode buffers come from `arena`.
void UnionSets(const Codec& codec, std::span<const CompressedSet* const> sets,
               ScratchArena* arena, std::vector<uint32_t>* out);

// Convenience forms with a throwaway arena per call.
void IntersectSets(const Codec& codec,
                   std::span<const CompressedSet* const> sets,
                   std::vector<uint32_t>* out);
void UnionSets(const Codec& codec, std::span<const CompressedSet* const> sets,
               std::vector<uint32_t>* out);

// out = a AND NOT b, as an uncompressed sorted list. Decodes `a` and
// subtracts the matches found by probing `b` through its skip/bucket
// structure.
void DifferenceSets(const Codec& codec, const CompressedSet& a,
                    const CompressedSet& b, std::vector<uint32_t>* out);

// ------------------------------------------------------------ mixed codec
//
// A compressed set paired with the codec that encodes it — the operand unit
// of mixed-codec set operations, where every list may use a different
// representation (the planner's per-list codec choice). All operations
// below are correct for any codec pairing; same-codec pairs use the codec's
// own compressed operation (bitmap word-AND, skip probing), cross-codec
// pairs fall back to decode-smaller-probe-larger (the larger side keeps its
// skip/bucket/bulk-block probing) or a SIMD merge of two decoded lists,
// per ChooseIntersectStrategy.

struct TaggedSet {
  const Codec* codec = nullptr;
  const CompressedSet* set = nullptr;
};

// out = a AND b across the codec boundary.
void IntersectTagged(const TaggedSet& a, const TaggedSet& b,
                     std::vector<uint32_t>* out);

// out = a OR b across the codec boundary.
void UnionTagged(const TaggedSet& a, const TaggedSet& b,
                 std::vector<uint32_t>* out);

// SvS over k mixed-codec sets: sort by cardinality, intersect the two
// smallest, probe the rest through each set's own codec. k == 1 decodes,
// k == 0 clears.
void IntersectTaggedSets(std::span<const TaggedSet> sets, ScratchArena* arena,
                         std::vector<uint32_t>* out);

// k-way heap union over the decoded lists, each decoded by its own codec.
void UnionTaggedSets(std::span<const TaggedSet> sets, ScratchArena* arena,
                     std::vector<uint32_t>* out);

// out = a AND NOT b across the codec boundary.
void DifferenceTagged(const TaggedSet& a, const TaggedSet& b,
                      std::vector<uint32_t>* out);

// Merge-difference of two uncompressed sorted lists (out = a \ b).
void DifferenceLists(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>* out);

}  // namespace intcomp

#endif  // INTCOMP_CORE_SET_OPS_H_
