#include "core/topk.h"

#include <algorithm>
#include <queue>

#include "core/set_ops.h"

namespace intcomp {
namespace {

// Min-heap ordering: the worst of the current top-k sits on top.
struct WorseThan {
  bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }
};

}  // namespace

std::vector<ScoredDoc> TopK(const Codec& codec,
                            std::span<const CompressedSet* const> lists,
                            size_t k,
                            const std::function<double(uint32_t)>& scorer) {
  std::vector<ScoredDoc> result;
  if (k == 0 || lists.empty()) return result;

  // Step 1: candidates = intersection of all term lists (the
  // time-dominant part per [33]).
  std::vector<uint32_t> candidates;
  IntersectSets(codec, lists, &candidates);

  // Step 2: score candidates, keeping the k best in a bounded min-heap.
  std::priority_queue<ScoredDoc, std::vector<ScoredDoc>, WorseThan> heap;
  for (uint32_t doc : candidates) {
    const double score = scorer(doc);
    if (heap.size() < k) {
      heap.push({doc, score});
    } else if (score > heap.top().score ||
               (score == heap.top().score && doc < heap.top().doc)) {
      heap.pop();
      heap.push({doc, score});
    }
  }

  result.resize(heap.size());
  for (size_t i = result.size(); i > 0; --i) {
    result[i - 1] = heap.top();
    heap.pop();
  }
  return result;
}

}  // namespace intcomp
