// Top-k conjunctive retrieval over compressed lists (paper App. A.1).
//
// The paper's two-step IR pipeline [33]: (1) intersect the query terms'
// compressed lists to get candidate documents — the dominant cost, which is
// why the paper recommends Roaring for top-k workloads (§7.1) — then
// (2) score each candidate and keep the k best.

#ifndef INTCOMP_CORE_TOPK_H_
#define INTCOMP_CORE_TOPK_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/codec.h"

namespace intcomp {

struct ScoredDoc {
  uint32_t doc = 0;
  double score = 0;
};

// Returns the k highest-scoring documents contained in ALL of `lists`,
// ordered by decreasing score (ties broken by ascending doc id).
// `scorer(doc)` supplies the relevance score (e.g. BM25 over stored
// payloads); it is called once per candidate.
std::vector<ScoredDoc> TopK(const Codec& codec,
                            std::span<const CompressedSet* const> lists,
                            size_t k,
                            const std::function<double(uint32_t)>& scorer);

}  // namespace intcomp

#endif  // INTCOMP_CORE_TOPK_H_
