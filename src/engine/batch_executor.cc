#include "engine/batch_executor.h"

#include "benchutil/timer.h"
#include "common/fast_clock.h"
#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/trace.h"

namespace intcomp {

BatchExecutor::BatchExecutor(ThreadPool* pool) : pool_(pool) {
  arenas_.reserve(pool_->NumWorkers());
  for (size_t w = 0; w < pool_->NumWorkers(); ++w) {
    arenas_.push_back(std::make_unique<ScratchArena>());
  }
}

std::vector<std::vector<uint32_t>> BatchExecutor::Execute(
    const QueryBatch& batch, BatchReport* report) {
  // Root span on the submitting thread; ThreadPool::Enqueue forwards the
  // context so every per-query span below nests under it.
  TRACE_SPAN("batch");
  const size_t nworkers = pool_->NumWorkers();
  const size_t nplans = batch.plans.size();
  std::vector<std::vector<uint32_t>> results(nplans);

  // Snapshot the pool's monotonic counters so the report holds per-batch
  // deltas even when the pool is re-used across batches.
  std::vector<uint64_t> steals0(nworkers), busy0(nworkers), idle0(nworkers);
  for (size_t w = 0; w < nworkers; ++w) {
    steals0[w] = pool_->Steals(w);
    busy0[w] = pool_->BusyNs(w);
    idle0[w] = pool_->IdleNs(w);
  }

  // Per-worker tallies, padded so workers never write the same cache line.
  struct alignas(64) Tally {
    uint64_t queries = 0;
    uint64_t result_ints = 0;
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t timed_out = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    KernelCounters kernels;
    obs::OpCounters ops;
  };
  std::vector<Tally> tallies(nworkers);
  // One Status / kernel-label slot per query; each slot is written by exactly
  // one task, so no synchronization beyond the pool's Wait() barrier is
  // needed.
  std::vector<Status> statuses(nplans);
  std::vector<std::string_view> kernel_labels(nplans);

  // Hoist the metrics decision (and the histogram pointer it needs) out of
  // the per-query tasks: disabled-path cost is this one relaxed load.
  obs::LatencyHistogram* query_hist =
      obs::MetricsRegistry::Global().Enabled()
          ? obs::MetricsRegistry::Global().OpLatency(batch.codec->Name(),
                                                     obs::OpKind::kQuery)
          : nullptr;

  WallTimer timer;
  const Codec* codec = batch.codec;
  const std::span<const QueryPlan> plans = batch.plans;
  const std::span<const CompressedSet* const> sets = batch.sets;
  const uint64_t default_deadline_ns = batch.default_deadline_ns;
  const std::span<const uint64_t> deadlines = batch.deadlines_ns;
  const CancellationToken* batch_cancel = batch.cancel;
  for (size_t q = 0; q < nplans; ++q) {
    const uint64_t deadline_ns =
        (q < deadlines.size() && deadlines[q] != 0) ? deadlines[q]
                                                    : default_deadline_ns;
    pool_->Submit([this, codec, plans, sets, &results, &tallies, &statuses,
                   &kernel_labels, q, deadline_ns, batch_cancel,
                   query_hist](size_t worker) {
      TRACE_SPAN("query");
      std::vector<uint32_t>& out = results[q];
      // The deadline clock starts when the query starts executing, so a
      // query queued behind a long batch is not penalized for the wait.
      CancellationToken token;
      token.ChainParent(batch_cancel);
      token.SetDeadlineAfterNs(deadline_ns);
      const CancellationToken* tok =
          (deadline_ns != 0 || batch_cancel != nullptr) ? &token : nullptr;
      // Deltas of the thread-local kernel / op tallies across the evaluation
      // attribute the executed kernels and touched data to this query.
      const KernelCounters kernels_before = ThreadKernelCounters();
      const obs::OpCounters ops_before = obs::ThreadOpCounters();
      const uint64_t t0 = query_hist != nullptr ? NowNs() : 0;
      Status st = EvaluatePlanChecked(*codec, plans[q], sets, tok,
                                      arenas_[worker].get(), &out);
      if (query_hist != nullptr) query_hist->Record(NowNs() - t0);
      const KernelCounters delta = ThreadKernelCounters() - kernels_before;
      kernel_labels[q] = delta.Dominant();
      Tally& t = tallies[worker];
      t.queries += 1;
      t.result_ints += out.size();
      t.kernels += delta;
      t.ops += obs::ThreadOpCounters() - ops_before;
      switch (st.code()) {
        case StatusCode::kOk: t.ok += 1; break;
        case StatusCode::kInvalidArgument: t.rejected += 1; break;
        case StatusCode::kDeadlineExceeded: t.timed_out += 1; break;
        case StatusCode::kCancelled: t.cancelled += 1; break;
        default: t.failed += 1; break;
      }
      statuses[q] = std::move(st);
    });
  }
  pool_->Wait();
  const double wall_ms = timer.ElapsedMs();

  if (query_hist != nullptr) {
    KernelCounters batch_kernels;
    obs::OpCounters batch_ops;
    for (const Tally& t : tallies) {
      batch_kernels += t.kernels;
      batch_ops += t.ops;
    }
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.RecordKernelCounters(codec->Name(), batch_kernels);
    reg.AddCounter("engine.lists_touched", batch_ops.lists_touched);
    reg.AddCounter("engine.bytes_decoded", batch_ops.bytes_decoded);
    reg.AddCounter("engine.blocks_loaded", batch_ops.blocks_loaded);
    reg.AddCounter("engine.blocks_skipped", batch_ops.blocks_skipped);
  }

  if (report != nullptr) {
    report->per_worker.assign(nworkers, WorkerCounters{});
    report->per_query = std::move(statuses);
    report->per_query_kernel = std::move(kernel_labels);
    report->wall_ms = wall_ms;
    for (size_t w = 0; w < nworkers; ++w) {
      WorkerCounters& c = report->per_worker[w];
      c.queries = tallies[w].queries;
      c.result_ints = tallies[w].result_ints;
      c.steals = pool_->Steals(w) - steals0[w];
      c.busy_ns = pool_->BusyNs(w) - busy0[w];
      c.idle_ns = pool_->IdleNs(w) - idle0[w];
      c.ok = tallies[w].ok;
      c.rejected = tallies[w].rejected;
      c.timed_out = tallies[w].timed_out;
      c.cancelled = tallies[w].cancelled;
      c.failed = tallies[w].failed;
      c.kernels = tallies[w].kernels;
      c.ops = tallies[w].ops;
    }
  }
  return results;
}

size_t BatchExecutor::ScratchBuffers() const {
  size_t total = 0;
  for (const auto& a : arenas_) total += a->BuffersAllocated();
  return total;
}

}  // namespace intcomp
