#include "engine/batch_executor.h"

#include "benchutil/timer.h"

namespace intcomp {

BatchExecutor::BatchExecutor(ThreadPool* pool) : pool_(pool) {
  arenas_.reserve(pool_->NumWorkers());
  for (size_t w = 0; w < pool_->NumWorkers(); ++w) {
    arenas_.push_back(std::make_unique<ScratchArena>());
  }
}

std::vector<std::vector<uint32_t>> BatchExecutor::Execute(
    const QueryBatch& batch, BatchReport* report) {
  const size_t nworkers = pool_->NumWorkers();
  const size_t nplans = batch.plans.size();
  std::vector<std::vector<uint32_t>> results(nplans);

  // Snapshot the pool's monotonic counters so the report holds per-batch
  // deltas even when the pool is re-used across batches.
  std::vector<uint64_t> steals0(nworkers), busy0(nworkers), idle0(nworkers);
  for (size_t w = 0; w < nworkers; ++w) {
    steals0[w] = pool_->Steals(w);
    busy0[w] = pool_->BusyNs(w);
    idle0[w] = pool_->IdleNs(w);
  }

  // Per-worker tallies, padded so workers never write the same cache line.
  struct alignas(64) Tally {
    uint64_t queries = 0;
    uint64_t result_ints = 0;
  };
  std::vector<Tally> tallies(nworkers);

  WallTimer timer;
  const Codec* codec = batch.codec;
  const std::span<const QueryPlan> plans = batch.plans;
  const std::span<const CompressedSet* const> sets = batch.sets;
  for (size_t q = 0; q < nplans; ++q) {
    pool_->Submit([this, codec, plans, sets, &results, &tallies,
                   q](size_t worker) {
      std::vector<uint32_t>& out = results[q];
      EvaluatePlan(*codec, plans[q], sets, arenas_[worker].get(), &out);
      tallies[worker].queries += 1;
      tallies[worker].result_ints += out.size();
    });
  }
  pool_->Wait();
  const double wall_ms = timer.ElapsedMs();

  if (report != nullptr) {
    report->per_worker.assign(nworkers, WorkerCounters{});
    report->wall_ms = wall_ms;
    for (size_t w = 0; w < nworkers; ++w) {
      WorkerCounters& c = report->per_worker[w];
      c.queries = tallies[w].queries;
      c.result_ints = tallies[w].result_ints;
      c.steals = pool_->Steals(w) - steals0[w];
      c.busy_ns = pool_->BusyNs(w) - busy0[w];
      c.idle_ns = pool_->IdleNs(w) - idle0[w];
    }
  }
  return results;
}

size_t BatchExecutor::ScratchBuffers() const {
  size_t total = 0;
  for (const auto& a : arenas_) total += a->BuffersAllocated();
  return total;
}

}  // namespace intcomp
