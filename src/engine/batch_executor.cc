#include "engine/batch_executor.h"

#include "benchutil/timer.h"

namespace intcomp {

BatchExecutor::BatchExecutor(ThreadPool* pool) : pool_(pool) {
  arenas_.reserve(pool_->NumWorkers());
  for (size_t w = 0; w < pool_->NumWorkers(); ++w) {
    arenas_.push_back(std::make_unique<ScratchArena>());
  }
}

std::vector<std::vector<uint32_t>> BatchExecutor::Execute(
    const QueryBatch& batch, BatchReport* report) {
  const size_t nworkers = pool_->NumWorkers();
  const size_t nplans = batch.plans.size();
  std::vector<std::vector<uint32_t>> results(nplans);

  // Snapshot the pool's monotonic counters so the report holds per-batch
  // deltas even when the pool is re-used across batches.
  std::vector<uint64_t> steals0(nworkers), busy0(nworkers), idle0(nworkers);
  for (size_t w = 0; w < nworkers; ++w) {
    steals0[w] = pool_->Steals(w);
    busy0[w] = pool_->BusyNs(w);
    idle0[w] = pool_->IdleNs(w);
  }

  // Per-worker tallies, padded so workers never write the same cache line.
  struct alignas(64) Tally {
    uint64_t queries = 0;
    uint64_t result_ints = 0;
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t timed_out = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    KernelCounters kernels;
  };
  std::vector<Tally> tallies(nworkers);
  // One Status / kernel-label slot per query; each slot is written by exactly
  // one task, so no synchronization beyond the pool's Wait() barrier is
  // needed.
  std::vector<Status> statuses(nplans);
  std::vector<std::string_view> kernel_labels(nplans);

  WallTimer timer;
  const Codec* codec = batch.codec;
  const std::span<const QueryPlan> plans = batch.plans;
  const std::span<const CompressedSet* const> sets = batch.sets;
  const uint64_t default_deadline_ns = batch.default_deadline_ns;
  const std::span<const uint64_t> deadlines = batch.deadlines_ns;
  const CancellationToken* batch_cancel = batch.cancel;
  for (size_t q = 0; q < nplans; ++q) {
    const uint64_t deadline_ns =
        (q < deadlines.size() && deadlines[q] != 0) ? deadlines[q]
                                                    : default_deadline_ns;
    pool_->Submit([this, codec, plans, sets, &results, &tallies, &statuses,
                   &kernel_labels, q, deadline_ns,
                   batch_cancel](size_t worker) {
      std::vector<uint32_t>& out = results[q];
      // The deadline clock starts when the query starts executing, so a
      // query queued behind a long batch is not penalized for the wait.
      CancellationToken token;
      token.ChainParent(batch_cancel);
      token.SetDeadlineAfterNs(deadline_ns);
      const CancellationToken* tok =
          (deadline_ns != 0 || batch_cancel != nullptr) ? &token : nullptr;
      // Delta of the thread-local kernel tallies across the evaluation
      // attributes the executed kernels to this query.
      const KernelCounters kernels_before = ThreadKernelCounters();
      Status st = EvaluatePlanChecked(*codec, plans[q], sets, tok,
                                      arenas_[worker].get(), &out);
      const KernelCounters delta = ThreadKernelCounters() - kernels_before;
      kernel_labels[q] = delta.Dominant();
      Tally& t = tallies[worker];
      t.queries += 1;
      t.result_ints += out.size();
      t.kernels += delta;
      switch (st.code()) {
        case StatusCode::kOk: t.ok += 1; break;
        case StatusCode::kInvalidArgument: t.rejected += 1; break;
        case StatusCode::kDeadlineExceeded: t.timed_out += 1; break;
        case StatusCode::kCancelled: t.cancelled += 1; break;
        default: t.failed += 1; break;
      }
      statuses[q] = std::move(st);
    });
  }
  pool_->Wait();
  const double wall_ms = timer.ElapsedMs();

  if (report != nullptr) {
    report->per_worker.assign(nworkers, WorkerCounters{});
    report->per_query = std::move(statuses);
    report->per_query_kernel = std::move(kernel_labels);
    report->wall_ms = wall_ms;
    for (size_t w = 0; w < nworkers; ++w) {
      WorkerCounters& c = report->per_worker[w];
      c.queries = tallies[w].queries;
      c.result_ints = tallies[w].result_ints;
      c.steals = pool_->Steals(w) - steals0[w];
      c.busy_ns = pool_->BusyNs(w) - busy0[w];
      c.idle_ns = pool_->IdleNs(w) - idle0[w];
      c.ok = tallies[w].ok;
      c.rejected = tallies[w].rejected;
      c.timed_out = tallies[w].timed_out;
      c.cancelled = tallies[w].cancelled;
      c.failed = tallies[w].failed;
      c.kernels = tallies[w].kernels;
    }
  }
  return results;
}

size_t BatchExecutor::ScratchBuffers() const {
  size_t total = 0;
  for (const auto& a : arenas_) total += a->BuffersAllocated();
  return total;
}

}  // namespace intcomp
