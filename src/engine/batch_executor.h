// Parallel batch evaluation of query plans over a shared immutable index.
//
// One task per query is scheduled onto the work-stealing pool; each task
// runs the exact same serial algorithm as EvaluatePlan, writing into its
// own result slot and drawing temporaries from the executing worker's
// ScratchArena. Because queries never share mutable state and the per-query
// algorithm is untouched, results are bit-identical to the serial path
// regardless of thread count or schedule — the determinism guarantee the
// differential tests pin down.
//
// Arena ownership: the executor owns NumWorkers() arenas, created lazily on
// first Execute and kept across batches, so decode-buffer capacity warms up
// once and steady-state batches allocate only their result storage. An
// arena is only ever touched by the worker whose index it carries, which is
// what makes the unlocked arena safe.
//
// The CompressedSets and the codec must stay alive and unmodified for the
// duration of Execute; codecs are stateless (core/codec.h) so one codec
// instance may serve all workers concurrently.

#ifndef INTCOMP_ENGINE_BATCH_EXECUTOR_H_
#define INTCOMP_ENGINE_BATCH_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/cancel.h"
#include "core/codec.h"
#include "core/query.h"
#include "core/scratch.h"
#include "engine/engine_stats.h"
#include "engine/thread_pool.h"

namespace intcomp {

// A batch: every plan is evaluated with `codec` against the shared `sets`
// slice (plans reference sets by index, as in EvaluatePlan).
//
// Fault containment: queries are evaluated through EvaluatePlanChecked, so
// a malformed plan, a missing (null) set slot, an elapsed deadline, or a
// tripped cancel token fails only its own query — the slot's result list
// comes back empty, the per-query Status in the report says why, and every
// healthy query's result is bit-identical to a serial EvaluatePlan run.
struct QueryBatch {
  const Codec* codec = nullptr;
  std::span<const QueryPlan> plans;
  std::span<const CompressedSet* const> sets;

  // Deadline applied to every query, measured from the moment the query
  // starts executing on a worker (0 = none). Deadlines are polled at plan
  // node boundaries, so overrun latency is bounded by one node.
  uint64_t default_deadline_ns = 0;
  // Optional per-query override of default_deadline_ns: either empty or
  // plans.size() entries (0 = fall back to the default).
  std::span<const uint64_t> deadlines_ns;
  // Optional batch-wide cancellation (e.g. client disconnect); checked by
  // every query alongside its own deadline. Must outlive Execute.
  const CancellationToken* cancel = nullptr;
};

class BatchExecutor {
 public:
  // The pool is borrowed and may be shared by several executors over its
  // lifetime (not concurrently — Execute assumes the pool quiesces for it).
  explicit BatchExecutor(ThreadPool* pool);

  // Evaluates all plans; element i of the result corresponds to plans[i].
  // When `report` is non-null it is overwritten with this batch's counters
  // (deltas only — consecutive batches on a re-used pool don't accumulate)
  // and its per_query vector holds each query's Status; failed queries have
  // empty result lists and never affect their neighbors.
  std::vector<std::vector<uint32_t>> Execute(const QueryBatch& batch,
                                             BatchReport* report = nullptr);

  // Total scratch buffers currently retained across all worker arenas.
  size_t ScratchBuffers() const;

 private:
  ThreadPool* pool_;
  std::vector<std::unique_ptr<ScratchArena>> arenas_;  // one per worker
};

}  // namespace intcomp

#endif  // INTCOMP_ENGINE_BATCH_EXECUTOR_H_
