// Parallel batch evaluation of query plans over a shared immutable index.
//
// One task per query is scheduled onto the work-stealing pool; each task
// runs the exact same serial algorithm as EvaluatePlan, writing into its
// own result slot and drawing temporaries from the executing worker's
// ScratchArena. Because queries never share mutable state and the per-query
// algorithm is untouched, results are bit-identical to the serial path
// regardless of thread count or schedule — the determinism guarantee the
// differential tests pin down.
//
// Arena ownership: the executor owns NumWorkers() arenas, created lazily on
// first Execute and kept across batches, so decode-buffer capacity warms up
// once and steady-state batches allocate only their result storage. An
// arena is only ever touched by the worker whose index it carries, which is
// what makes the unlocked arena safe.
//
// The CompressedSets and the codec must stay alive and unmodified for the
// duration of Execute; codecs are stateless (core/codec.h) so one codec
// instance may serve all workers concurrently.

#ifndef INTCOMP_ENGINE_BATCH_EXECUTOR_H_
#define INTCOMP_ENGINE_BATCH_EXECUTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "core/codec.h"
#include "core/query.h"
#include "core/scratch.h"
#include "engine/engine_stats.h"
#include "engine/thread_pool.h"

namespace intcomp {

// A batch: every plan is evaluated with `codec` against the shared `sets`
// slice (plans reference sets by index, as in EvaluatePlan).
struct QueryBatch {
  const Codec* codec = nullptr;
  std::span<const QueryPlan> plans;
  std::span<const CompressedSet* const> sets;
};

class BatchExecutor {
 public:
  // The pool is borrowed and may be shared by several executors over its
  // lifetime (not concurrently — Execute assumes the pool quiesces for it).
  explicit BatchExecutor(ThreadPool* pool);

  // Evaluates all plans; element i of the result corresponds to plans[i].
  // When `report` is non-null it is overwritten with this batch's counters
  // (deltas only — consecutive batches on a re-used pool don't accumulate).
  std::vector<std::vector<uint32_t>> Execute(const QueryBatch& batch,
                                             BatchReport* report = nullptr);

  // Total scratch buffers currently retained across all worker arenas.
  size_t ScratchBuffers() const;

 private:
  ThreadPool* pool_;
  std::vector<std::unique_ptr<ScratchArena>> arenas_;  // one per worker
};

}  // namespace intcomp

#endif  // INTCOMP_ENGINE_BATCH_EXECUTOR_H_
