#include "engine/engine_stats.h"

#include <cstdio>

namespace intcomp {

WorkerCounters& WorkerCounters::operator+=(const WorkerCounters& o) {
  queries += o.queries;
  result_ints += o.result_ints;
  steals += o.steals;
  busy_ns += o.busy_ns;
  idle_ns += o.idle_ns;
  ok += o.ok;
  rejected += o.rejected;
  timed_out += o.timed_out;
  cancelled += o.cancelled;
  failed += o.failed;
  kernels += o.kernels;
  ops += o.ops;
  return *this;
}

std::string QueryProfile::ToString() const {
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "%llu queries (%llu ok, %llu rejected, %llu timed out, %llu cancelled, "
      "%llu failed) %llu lists %.2f MB decoded kernel=%.*s skip-hit %.2f "
      "wall %.2f ms",
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(lists_touched),
      static_cast<double>(bytes_decoded) / 1e6,
      static_cast<int>(dominant_kernel.size()), dominant_kernel.data(),
      SkipHitRate(), wall_ms);
  return line;
}

WorkerCounters BatchReport::Totals() const {
  WorkerCounters t;
  for (const WorkerCounters& w : per_worker) t += w;
  return t;
}

double BatchReport::BusyFraction() const {
  const WorkerCounters t = Totals();
  const uint64_t denom = t.busy_ns + t.idle_ns;
  return denom == 0 ? 0.0 : static_cast<double>(t.busy_ns) / denom;
}

QueryProfile BatchReport::Profile() const {
  const WorkerCounters t = Totals();
  QueryProfile p;
  p.queries = t.queries;
  p.lists_touched = t.ops.lists_touched;
  p.bytes_decoded = t.ops.bytes_decoded;
  p.blocks_loaded = t.ops.blocks_loaded;
  p.blocks_skipped = t.ops.blocks_skipped;
  p.dominant_kernel = t.kernels.Dominant();
  p.ok = t.ok;
  p.rejected = t.rejected;
  p.timed_out = t.timed_out;
  p.cancelled = t.cancelled;
  p.failed = t.failed;
  p.wall_ms = wall_ms;
  return p;
}

std::string BatchReport::ToString() const {
  std::string s;
  char line[160];
  std::snprintf(line, sizeof(line), "%-8s %10s %14s %8s %10s %10s\n", "worker",
                "queries", "result_ints", "steals", "busy_ms", "idle_ms");
  s += line;
  auto row = [&](const char* name, const WorkerCounters& c) {
    std::snprintf(line, sizeof(line), "%-8s %10llu %14llu %8llu %10.2f %10.2f\n",
                  name, static_cast<unsigned long long>(c.queries),
                  static_cast<unsigned long long>(c.result_ints),
                  static_cast<unsigned long long>(c.steals),
                  static_cast<double>(c.busy_ns) / 1e6,
                  static_cast<double>(c.idle_ns) / 1e6);
    s += line;
  };
  for (size_t w = 0; w < per_worker.size(); ++w) {
    char name[24];
    std::snprintf(name, sizeof(name), "w%zu", w);
    row(name, per_worker[w]);
  }
  row("total", Totals());
  std::snprintf(line, sizeof(line), "wall %.2f ms, busy fraction %.2f\n",
                wall_ms, BusyFraction());
  s += line;
  const WorkerCounters t = Totals();
  if (t.rejected + t.timed_out + t.cancelled + t.failed > 0) {
    std::snprintf(line, sizeof(line),
                  "outcomes: %llu ok, %llu rejected, %llu timed out, "
                  "%llu cancelled, %llu failed\n",
                  static_cast<unsigned long long>(t.ok),
                  static_cast<unsigned long long>(t.rejected),
                  static_cast<unsigned long long>(t.timed_out),
                  static_cast<unsigned long long>(t.cancelled),
                  static_cast<unsigned long long>(t.failed));
    s += line;
  }
  if (t.kernels.Total() > 0) {
    const KernelCounters& k = t.kernels;
    std::snprintf(line, sizeof(line),
                  "kernels: merge %llu scalar / %llu simd, gallop %llu scalar"
                  " / %llu simd, union %llu scalar / %llu simd,"
                  " block probes %llu\n",
                  static_cast<unsigned long long>(k.scalar_merge),
                  static_cast<unsigned long long>(k.simd_merge),
                  static_cast<unsigned long long>(k.scalar_gallop),
                  static_cast<unsigned long long>(k.simd_gallop),
                  static_cast<unsigned long long>(k.scalar_union),
                  static_cast<unsigned long long>(k.simd_union),
                  static_cast<unsigned long long>(k.block_probes));
    s += line;
  }
  return s;
}

void EngineStats::Accumulate(const BatchReport& report) {
  const WorkerCounters t = report.Totals();
  batches_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(t.queries, std::memory_order_relaxed);
  result_ints_.fetch_add(t.result_ints, std::memory_order_relaxed);
  ok_.fetch_add(t.ok, std::memory_order_relaxed);
  rejected_.fetch_add(t.rejected, std::memory_order_relaxed);
  timed_out_.fetch_add(t.timed_out, std::memory_order_relaxed);
  cancelled_.fetch_add(t.cancelled, std::memory_order_relaxed);
  failed_.fetch_add(t.failed, std::memory_order_relaxed);
  const uint64_t k[7] = {t.kernels.scalar_merge,  t.kernels.simd_merge,
                         t.kernels.scalar_gallop, t.kernels.simd_gallop,
                         t.kernels.scalar_union,  t.kernels.simd_union,
                         t.kernels.block_probes};
  for (int i = 0; i < 7; ++i) {
    if (k[i] != 0) kernels_[i].fetch_add(k[i], std::memory_order_relaxed);
  }
  batch_wall_ns_.Record(static_cast<uint64_t>(report.wall_ms * 1e6));
}

KernelCounters EngineStats::Kernels() const {
  KernelCounters k;
  k.scalar_merge = kernels_[0].load(std::memory_order_relaxed);
  k.simd_merge = kernels_[1].load(std::memory_order_relaxed);
  k.scalar_gallop = kernels_[2].load(std::memory_order_relaxed);
  k.simd_gallop = kernels_[3].load(std::memory_order_relaxed);
  k.scalar_union = kernels_[4].load(std::memory_order_relaxed);
  k.simd_union = kernels_[5].load(std::memory_order_relaxed);
  k.block_probes = kernels_[6].load(std::memory_order_relaxed);
  return k;
}

std::string EngineStats::ToString() const {
  const KernelCounters k = Kernels();
  char line[512];
  std::snprintf(line, sizeof(line),
                "%llu batches, %llu queries (%llu ok, %llu rejected, "
                "%llu timed out, %llu cancelled, %llu failed), %llu ints, "
                "dominant kernel %.*s, batch wall p50 %.2f ms p99 %.2f ms"
                ", cache %llu hit / %llu miss / %llu bypass",
                static_cast<unsigned long long>(Batches()),
                static_cast<unsigned long long>(Queries()),
                static_cast<unsigned long long>(Ok()),
                static_cast<unsigned long long>(Rejected()),
                static_cast<unsigned long long>(TimedOut()),
                static_cast<unsigned long long>(Cancelled()),
                static_cast<unsigned long long>(Failed()),
                static_cast<unsigned long long>(ResultInts()),
                static_cast<int>(k.Dominant().size()), k.Dominant().data(),
                static_cast<double>(batch_wall_ns_.P50()) / 1e6,
                static_cast<double>(batch_wall_ns_.P99()) / 1e6,
                static_cast<unsigned long long>(CacheHits()),
                static_cast<unsigned long long>(CacheMisses()),
                static_cast<unsigned long long>(CacheBypass()));
  return line;
}

}  // namespace intcomp
