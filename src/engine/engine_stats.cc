#include "engine/engine_stats.h"

#include <cstdio>

namespace intcomp {

WorkerCounters& WorkerCounters::operator+=(const WorkerCounters& o) {
  queries += o.queries;
  result_ints += o.result_ints;
  steals += o.steals;
  busy_ns += o.busy_ns;
  idle_ns += o.idle_ns;
  ok += o.ok;
  rejected += o.rejected;
  timed_out += o.timed_out;
  cancelled += o.cancelled;
  failed += o.failed;
  kernels += o.kernels;
  return *this;
}

WorkerCounters BatchReport::Totals() const {
  WorkerCounters t;
  for (const WorkerCounters& w : per_worker) t += w;
  return t;
}

double BatchReport::BusyFraction() const {
  const WorkerCounters t = Totals();
  const uint64_t denom = t.busy_ns + t.idle_ns;
  return denom == 0 ? 0.0 : static_cast<double>(t.busy_ns) / denom;
}

std::string BatchReport::ToString() const {
  std::string s;
  char line[160];
  std::snprintf(line, sizeof(line), "%-8s %10s %14s %8s %10s %10s\n", "worker",
                "queries", "result_ints", "steals", "busy_ms", "idle_ms");
  s += line;
  auto row = [&](const char* name, const WorkerCounters& c) {
    std::snprintf(line, sizeof(line), "%-8s %10llu %14llu %8llu %10.2f %10.2f\n",
                  name, static_cast<unsigned long long>(c.queries),
                  static_cast<unsigned long long>(c.result_ints),
                  static_cast<unsigned long long>(c.steals),
                  static_cast<double>(c.busy_ns) / 1e6,
                  static_cast<double>(c.idle_ns) / 1e6);
    s += line;
  };
  for (size_t w = 0; w < per_worker.size(); ++w) {
    char name[24];
    std::snprintf(name, sizeof(name), "w%zu", w);
    row(name, per_worker[w]);
  }
  row("total", Totals());
  std::snprintf(line, sizeof(line), "wall %.2f ms, busy fraction %.2f\n",
                wall_ms, BusyFraction());
  s += line;
  const WorkerCounters t = Totals();
  if (t.rejected + t.timed_out + t.cancelled + t.failed > 0) {
    std::snprintf(line, sizeof(line),
                  "outcomes: %llu ok, %llu rejected, %llu timed out, "
                  "%llu cancelled, %llu failed\n",
                  static_cast<unsigned long long>(t.ok),
                  static_cast<unsigned long long>(t.rejected),
                  static_cast<unsigned long long>(t.timed_out),
                  static_cast<unsigned long long>(t.cancelled),
                  static_cast<unsigned long long>(t.failed));
    s += line;
  }
  if (t.kernels.Total() > 0) {
    const KernelCounters& k = t.kernels;
    std::snprintf(line, sizeof(line),
                  "kernels: merge %llu scalar / %llu simd, gallop %llu scalar"
                  " / %llu simd, union %llu scalar / %llu simd,"
                  " block probes %llu\n",
                  static_cast<unsigned long long>(k.scalar_merge),
                  static_cast<unsigned long long>(k.simd_merge),
                  static_cast<unsigned long long>(k.scalar_gallop),
                  static_cast<unsigned long long>(k.simd_gallop),
                  static_cast<unsigned long long>(k.scalar_union),
                  static_cast<unsigned long long>(k.simd_union),
                  static_cast<unsigned long long>(k.block_probes));
    s += line;
  }
  return s;
}

void EngineStats::Accumulate(const BatchReport& report) {
  ++batches;
  totals += report.Totals();
}

std::string EngineStats::ToString() const {
  char line[320];
  std::snprintf(line, sizeof(line),
                "%llu batches, %llu queries (%llu ok, %llu rejected, "
                "%llu timed out, %llu cancelled, %llu failed), %llu ints, "
                "dominant kernel %.*s",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(totals.queries),
                static_cast<unsigned long long>(totals.ok),
                static_cast<unsigned long long>(totals.rejected),
                static_cast<unsigned long long>(totals.timed_out),
                static_cast<unsigned long long>(totals.cancelled),
                static_cast<unsigned long long>(totals.failed),
                static_cast<unsigned long long>(totals.result_ints),
                static_cast<int>(totals.kernels.Dominant().size()),
                totals.kernels.Dominant().data());
  return line;
}

}  // namespace intcomp
