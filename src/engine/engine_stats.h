// Per-worker execution counters for the batch query engine.
//
// The executor fills one WorkerCounters per pool worker for each batch
// (steal / busy / idle numbers are deltas against the pool's monotonic
// counters, so re-using a pool across batches never double-counts), then
// merges them into a BatchReport that benches print as a per-core scaling
// table.

#ifndef INTCOMP_ENGINE_ENGINE_STATS_H_
#define INTCOMP_ENGINE_ENGINE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace intcomp {

struct WorkerCounters {
  uint64_t queries = 0;      // plans this worker evaluated
  uint64_t result_ints = 0;  // integers materialized into result lists
  uint64_t steals = 0;       // tasks taken from another worker's deque
  uint64_t busy_ns = 0;      // wall time inside tasks
  uint64_t idle_ns = 0;      // wall time asleep waiting for work

  WorkerCounters& operator+=(const WorkerCounters& o);
};

struct BatchReport {
  std::vector<WorkerCounters> per_worker;
  double wall_ms = 0;  // batch wall time as seen by the submitting thread

  size_t NumWorkers() const { return per_worker.size(); }

  // Sum of all workers' counters.
  WorkerCounters Totals() const;

  // Fraction of worker wall time spent inside tasks, in [0, 1];
  // the per-core scaling headroom indicator benches print.
  double BusyFraction() const;

  // Multi-line human-readable table: one row per worker plus a totals row.
  std::string ToString() const;
};

}  // namespace intcomp

#endif  // INTCOMP_ENGINE_ENGINE_STATS_H_
