// Per-worker execution counters for the batch query engine.
//
// The executor fills one WorkerCounters per pool worker for each batch
// (steal / busy / idle numbers are deltas against the pool's monotonic
// counters, so re-using a pool across batches never double-counts), then
// merges them into a BatchReport that benches print as a per-core scaling
// table.

#ifndef INTCOMP_ENGINE_ENGINE_STATS_H_
#define INTCOMP_ENGINE_ENGINE_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd_intersect.h"
#include "common/status.h"

namespace intcomp {

struct WorkerCounters {
  uint64_t queries = 0;      // plans this worker evaluated
  uint64_t result_ints = 0;  // integers materialized into result lists
  uint64_t steals = 0;       // tasks taken from another worker's deque
  uint64_t busy_ns = 0;      // wall time inside tasks
  uint64_t idle_ns = 0;      // wall time asleep waiting for work

  // Fault-containment outcome tallies (queries == ok + rejected +
  // timed_out + cancelled + failed).
  uint64_t ok = 0;         // completed successfully
  uint64_t rejected = 0;   // kInvalidArgument: bad plan or missing set
  uint64_t timed_out = 0;  // kDeadlineExceeded
  uint64_t cancelled = 0;  // kCancelled
  uint64_t failed = 0;     // kCorruptData / kInternal

  // Which set-operation kernels this worker's queries executed (sampled as
  // per-query deltas of the thread-local tallies in common/simd_intersect.h).
  KernelCounters kernels;

  WorkerCounters& operator+=(const WorkerCounters& o);
};

struct BatchReport {
  std::vector<WorkerCounters> per_worker;
  // Outcome of each query, indexed like the batch's plans. Healthy queries
  // are OK; a non-OK entry means the matching result list is empty and the
  // failure never touched any other query's result.
  std::vector<Status> per_query;
  // Dominant set-operation kernel each query executed ("simd-merge",
  // "scalar-gallop", "block-probe", ...; "none" for queries that never
  // reached a kernel), indexed like per_query.
  std::vector<std::string_view> per_query_kernel;
  double wall_ms = 0;  // batch wall time as seen by the submitting thread

  size_t NumWorkers() const { return per_worker.size(); }

  // Sum of all workers' counters.
  WorkerCounters Totals() const;

  // Fraction of worker wall time spent inside tasks, in [0, 1];
  // the per-core scaling headroom indicator benches print.
  double BusyFraction() const;

  // Multi-line human-readable table: one row per worker plus a totals row.
  std::string ToString() const;
};

// Long-lived accumulator over many batches (one per engine / service).
// BatchReport is a per-batch delta; EngineStats is the running sum a
// monitoring endpoint would export.
struct EngineStats {
  uint64_t batches = 0;
  WorkerCounters totals;

  void Accumulate(const BatchReport& report);
  std::string ToString() const;
};

}  // namespace intcomp

#endif  // INTCOMP_ENGINE_ENGINE_STATS_H_
