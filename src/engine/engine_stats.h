// Per-worker execution counters for the batch query engine.
//
// The executor fills one WorkerCounters per pool worker for each batch
// (steal / busy / idle numbers are deltas against the pool's monotonic
// counters, so re-using a pool across batches never double-counts), then
// merges them into a BatchReport that benches print as a per-core scaling
// table. BatchReport::Profile() condenses the batch into the QueryProfile
// a service would log per request batch.
//
// EngineStats is the long-lived roll-up: all of its state is atomics and a
// lock-free latency histogram, so Accumulate may race with ToString (and
// with other Accumulate calls) from any number of threads — the monitoring
// endpoint never has to stop the engine to read it.

#ifndef INTCOMP_ENGINE_ENGINE_STATS_H_
#define INTCOMP_ENGINE_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd_intersect.h"
#include "common/status.h"
#include "obs/histogram.h"
#include "obs/op_counters.h"

namespace intcomp {

struct WorkerCounters {
  uint64_t queries = 0;      // plans this worker evaluated
  uint64_t result_ints = 0;  // integers materialized into result lists
  uint64_t steals = 0;       // tasks taken from another worker's deque
  uint64_t busy_ns = 0;      // wall time inside tasks
  uint64_t idle_ns = 0;      // wall time asleep waiting for work

  // Fault-containment outcome tallies (queries == ok + rejected +
  // timed_out + cancelled + failed).
  uint64_t ok = 0;         // completed successfully
  uint64_t rejected = 0;   // kInvalidArgument: bad plan or missing set
  uint64_t timed_out = 0;  // kDeadlineExceeded
  uint64_t cancelled = 0;  // kCancelled
  uint64_t failed = 0;     // kCorruptData / kInternal

  // Which set-operation kernels this worker's queries executed (sampled as
  // per-query deltas of the thread-local tallies in common/simd_intersect.h).
  KernelCounters kernels;

  // Query-path work tallies (lists touched, bytes decoded, block cursor
  // traffic), sampled the same way from obs::ThreadOpCounters().
  obs::OpCounters ops;

  WorkerCounters& operator+=(const WorkerCounters& o);
};

// The per-batch answer to "what did these queries actually do": the shape
// of the work, the kernel the planner favored, how well skip pointers paid
// off, and how every query ended.
struct QueryProfile {
  uint64_t queries = 0;
  uint64_t lists_touched = 0;
  uint64_t bytes_decoded = 0;
  uint64_t blocks_loaded = 0;
  uint64_t blocks_skipped = 0;
  std::string_view dominant_kernel = "none";
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  double wall_ms = 0;

  // Fraction of relevant blocks the skip pointers avoided decoding, in
  // [0, 1]; 0 when the batch never touched a blocked cursor.
  double SkipHitRate() const {
    const uint64_t denom = blocks_loaded + blocks_skipped;
    return denom == 0 ? 0.0
                      : static_cast<double>(blocks_skipped) /
                            static_cast<double>(denom);
  }

  // One line, e.g. "12 queries (12 ok) 36 lists 1.2 MB decoded
  // kernel=simd-gallop skip-hit 0.83 wall 3.10 ms".
  std::string ToString() const;
};

struct BatchReport {
  std::vector<WorkerCounters> per_worker;
  // Outcome of each query, indexed like the batch's plans. Healthy queries
  // are OK; a non-OK entry means the matching result list is empty and the
  // failure never touched any other query's result.
  std::vector<Status> per_query;
  // Dominant set-operation kernel each query executed ("simd-merge",
  // "scalar-gallop", "block-probe", ...; "none" for queries that never
  // reached a kernel), indexed like per_query.
  std::vector<std::string_view> per_query_kernel;
  double wall_ms = 0;  // batch wall time as seen by the submitting thread

  size_t NumWorkers() const { return per_worker.size(); }

  // Sum of all workers' counters.
  WorkerCounters Totals() const;

  // Fraction of worker wall time spent inside tasks, in [0, 1];
  // the per-core scaling headroom indicator benches print.
  double BusyFraction() const;

  // The batch condensed into the per-batch profile a service logs.
  QueryProfile Profile() const;

  // Multi-line human-readable table: one row per worker plus a totals row.
  std::string ToString() const;
};

// Long-lived accumulator over many batches (one per engine / service).
// BatchReport is a per-batch delta; EngineStats is the running sum a
// monitoring endpoint would export. Accumulate and the readers (including
// ToString) are all lock-free and may run concurrently; readers see relaxed
// snapshots, never torn values.
class EngineStats {
 public:
  EngineStats() = default;
  EngineStats(const EngineStats&) = delete;
  EngineStats& operator=(const EngineStats&) = delete;

  void Accumulate(const BatchReport& report);

  uint64_t Batches() const { return batches_.load(std::memory_order_relaxed); }
  uint64_t Queries() const { return queries_.load(std::memory_order_relaxed); }
  uint64_t ResultInts() const {
    return result_ints_.load(std::memory_order_relaxed);
  }
  uint64_t Ok() const { return ok_.load(std::memory_order_relaxed); }
  uint64_t Rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t TimedOut() const {
    return timed_out_.load(std::memory_order_relaxed);
  }
  uint64_t Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  uint64_t Failed() const { return failed_.load(std::memory_order_relaxed); }

  // Result-cache outcomes from the index service (src/service): hit =
  // served from the cache, miss = evaluated and offered to the cache,
  // bypass = evaluated with caching disabled.
  void AddCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheBypass() {
    cache_bypass_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t CacheHits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t CacheMisses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t CacheBypass() const {
    return cache_bypass_.load(std::memory_order_relaxed);
  }

  // Snapshot of the kernel tallies across all accumulated batches.
  KernelCounters Kernels() const;

  // Batch wall-time distribution in nanoseconds (p50/p90/p99/p999 via the
  // histogram's quantile accessors).
  const obs::LatencyHistogram& BatchWallNs() const { return batch_wall_ns_; }

  std::string ToString() const;

 private:
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> result_ints_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> cache_bypass_{0};
  // KernelCounters field order: scalar_merge, simd_merge, scalar_gallop,
  // simd_gallop, scalar_union, simd_union, block_probes.
  std::atomic<uint64_t> kernels_[7] = {};
  obs::LatencyHistogram batch_wall_ns_;
};

}  // namespace intcomp

#endif  // INTCOMP_ENGINE_ENGINE_STATS_H_
