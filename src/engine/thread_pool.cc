#include "engine/thread_pool.h"

#include <algorithm>

#include "common/fast_clock.h"
#include "obs/explain.h"
#include "obs/trace.h"

namespace intcomp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
    ++signal_epoch_;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Enqueue(size_t w, PoolTask task) {
  // Carry the submitter's open span (and its sampling decision) across the
  // thread boundary, so worker-side spans nest under it no matter which
  // worker ends up stealing the task. Checked only when tracing is on, so
  // the untraced enqueue path pays one relaxed load.
  if (obs::TraceEnabled()) {
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    if (ctx.inherited) {
      task = [ctx, inner = std::move(task)](size_t worker) {
        obs::ScopedTraceContext scope(ctx);
        inner(worker);
      };
    }
  }
  // Same handoff for an active explain capture: worker-side scopes attach
  // under the scope that was open at submit time.
  if (obs::ExplainActive()) {
    const obs::ExplainContext ectx = obs::CurrentExplainContext();
    task = [ectx, inner = std::move(task)](size_t worker) {
      obs::ScopedExplainContext scope(ectx);
      inner(worker);
    };
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    workers_[w]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++signal_epoch_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Submit(PoolTask task) {
  const size_t w =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  Enqueue(w, std::move(task));
}

void ThreadPool::SubmitTo(size_t w, PoolTask task) {
  Enqueue(w % workers_.size(), std::move(task));
}

bool ThreadPool::TryPopLocal(size_t id, PoolTask* task) {
  Worker& self = *workers_[id];
  std::lock_guard<std::mutex> lock(self.mu);
  if (self.tasks.empty()) return false;
  *task = std::move(self.tasks.back());
  self.tasks.pop_back();
  return true;
}

bool ThreadPool::TrySteal(size_t thief, PoolTask* task) {
  const size_t n = workers_.size();
  for (size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(thief + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    workers_[thief]->steals.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(Worker& self, size_t id, PoolTask& task) {
  const uint64_t t0 = NowNs();
  task(id);
  self.busy_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  self.tasks_run.fetch_add(1, std::memory_order_relaxed);
  task = nullptr;  // release captures before signalling quiescence
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Empty critical section: pairs with the predicate check in Wait() so
    // the notify cannot fall between a waiter's check and its block.
    { std::lock_guard<std::mutex> lock(done_mu_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t id) {
  Worker& self = *workers_[id];
  for (;;) {
    PoolTask task;
    if (TryPopLocal(id, &task) || TrySteal(id, &task)) {
      RunTask(self, id, task);
      continue;
    }
    // Nothing anywhere: record the epoch, re-scan once (a task may have
    // been enqueued between the scans above and the epoch read), then
    // sleep until the epoch moves.
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      if (stop_) return;
      epoch = signal_epoch_;
    }
    if (TryPopLocal(id, &task) || TrySteal(id, &task)) {
      RunTask(self, id, task);
      continue;
    }
    const uint64_t i0 = NowNs();
    {
      std::unique_lock<std::mutex> lock(idle_mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || signal_epoch_ != epoch; });
      if (stop_) return;
    }
    self.idle_ns.fetch_add(NowNs() - i0, std::memory_order_relaxed);
  }
}

void ThreadPool::Wait() {
  if (pending_.load(std::memory_order_acquire) == 0) return;
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end,
    const std::function<void(size_t index, size_t worker)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  // A few chunks per worker so stealing can rebalance skewed costs without
  // paying one enqueue per index.
  const size_t chunks = std::min(n, NumWorkers() * 4);
  const size_t per = (n + chunks - 1) / chunks;
  for (size_t lo = begin; lo < end; lo += per) {
    const size_t hi = std::min(end, lo + per);
    Submit([lo, hi, &fn](size_t worker) {
      for (size_t i = lo; i < hi; ++i) fn(i, worker);
    });
  }
  Wait();
}

}  // namespace intcomp
