// Fixed-size work-stealing thread pool for the batch query engine.
//
// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
// cache-warm), idle workers steal from the front of a victim's deque (FIFO,
// oldest task first — the classic work-stealing discipline). Deques are
// mutex-protected rather than lock-free: tasks here are whole queries
// (microseconds to milliseconds), so the lock is noise, and the simple
// design is trivially clean under -fsanitize=thread.
//
// The pool is a quiescence-based batch facility, not a futures library:
// Submit() enqueues fire-and-forget tasks, Wait() blocks until *all*
// submitted tasks have finished. One batch owner drives the pool at a time
// (the BatchExecutor); Submit itself is thread-safe so running tasks may
// spawn subtasks.

#ifndef INTCOMP_ENGINE_THREAD_POOL_H_
#define INTCOMP_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace intcomp {

// Tasks receive the index of the worker executing them (0 .. NumWorkers()-1)
// so they can address per-worker state (scratch arenas, counters) without
// synchronization.
using PoolTask = std::function<void(size_t worker)>;

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1). Pass 0 to use the
  // hardware concurrency.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumWorkers() const { return workers_.size(); }

  // Enqueues `task` on a worker deque (round-robin across workers so a
  // burst of submissions spreads before stealing has to kick in).
  void Submit(PoolTask task);

  // Enqueues `task` on worker `w`'s deque specifically.
  void SubmitTo(size_t w, PoolTask task);

  // Blocks until every submitted task has completed (pool quiescent).
  void Wait();

  // Runs fn(i, worker) for i in [begin, end), spread over the workers in
  // contiguous chunks, and blocks until done. Several chunks per worker are
  // created so stealing can rebalance uneven iteration costs.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t index, size_t worker)>& fn);

  // Monotonic per-worker counters since pool construction. Callers that
  // need per-batch numbers snapshot before/after (see BatchExecutor).
  uint64_t Steals(size_t w) const { return workers_[w]->steals.load(std::memory_order_relaxed); }
  uint64_t TasksRun(size_t w) const { return workers_[w]->tasks_run.load(std::memory_order_relaxed); }
  uint64_t BusyNs(size_t w) const { return workers_[w]->busy_ns.load(std::memory_order_relaxed); }
  uint64_t IdleNs(size_t w) const { return workers_[w]->idle_ns.load(std::memory_order_relaxed); }

 private:
  // Padded so one worker's hot counters never share a cache line with a
  // sibling's.
  struct alignas(64) Worker {
    std::mutex mu;
    std::deque<PoolTask> tasks;  // guarded by mu
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> idle_ns{0};
  };

  void WorkerLoop(size_t id);
  void RunTask(Worker& self, size_t id, PoolTask& task);
  bool TryPopLocal(size_t id, PoolTask* task);
  bool TrySteal(size_t thief, PoolTask* task);
  void Enqueue(size_t w, PoolTask task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<size_t> next_worker_{0};  // round-robin submission cursor
  std::atomic<size_t> pending_{0};      // submitted but not yet finished

  // Sleep/wake protocol: every Enqueue bumps `signal_epoch_` under
  // `idle_mu_`; a worker records the epoch before its final empty scan and
  // sleeps only if the epoch is unchanged, so a submission racing the scan
  // can never be missed.
  std::mutex idle_mu_;
  std::condition_variable work_cv_;
  uint64_t signal_epoch_ = 0;  // guarded by idle_mu_
  bool stop_ = false;          // guarded by idle_mu_

  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace intcomp

#endif  // INTCOMP_ENGINE_THREAD_POOL_H_
