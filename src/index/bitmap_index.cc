#include "index/bitmap_index.h"

#include <algorithm>
#include <cassert>

#include "core/set_ops.h"

namespace intcomp {

BitmapIndex BitmapIndex::Build(const Codec& codec,
                               std::span<const uint32_t> column_codes,
                               uint32_t cardinality) {
  BitmapIndex index(&codec, column_codes.size());
  std::vector<std::vector<uint32_t>> rows_per_code(cardinality);
  for (size_t row = 0; row < column_codes.size(); ++row) {
    rows_per_code[column_codes[row]].push_back(static_cast<uint32_t>(row));
  }
  index.sets_.reserve(cardinality);
  for (const auto& rows : rows_per_code) {
    index.sets_.push_back(codec.Encode(rows, column_codes.size()));
  }
  return index;
}

BitmapIndex BitmapIndex::BuildRange(const Codec& codec,
                                    std::span<const uint32_t> column_codes,
                                    uint32_t cardinality, uint64_t row_begin,
                                    uint64_t row_end) {
  assert(row_begin <= row_end && row_end <= column_codes.size());
  // A sub-range build is a full build over the slice: local row ids are
  // exactly the slice offsets, and the encode domain is the slice length.
  return Build(codec, column_codes.subspan(row_begin, row_end - row_begin),
               cardinality);
}

std::vector<std::unique_ptr<CompressedSet>> BitmapIndex::ReleaseSets() && {
  return std::move(sets_);
}

size_t BitmapIndex::SizeInBytes() const {
  size_t total = 0;
  for (const auto& set : sets_) total += set->SizeInBytes();
  return total;
}

BitmapIndex::FamilyCounts BitmapIndex::EffectiveFamilies() const {
  FamilyCounts counts;
  for (const auto& set : sets_) {
    if (codec_->EffectiveFamily(*set) == CodecFamily::kBitmap) {
      ++counts.bitmap;
    } else {
      ++counts.inverted_list;
    }
  }
  return counts;
}

void BitmapIndex::Eq(uint32_t code, std::vector<uint32_t>* rows) const {
  codec_->Decode(*sets_[code], rows);
}

void BitmapIndex::In(std::span<const uint32_t> codes,
                     std::vector<uint32_t>* rows) const {
  std::vector<const CompressedSet*> sets;
  sets.reserve(codes.size());
  for (uint32_t c : codes) sets.push_back(sets_[c].get());
  UnionSets(*codec_, sets, rows);
}

void BitmapIndex::Range(uint32_t lo, uint32_t hi,
                        std::vector<uint32_t>* rows) const {
  std::vector<const CompressedSet*> sets;
  for (uint32_t c = lo; c <= hi && c < sets_.size(); ++c) {
    sets.push_back(sets_[c].get());
  }
  UnionSets(*codec_, sets, rows);
}

void BitmapIndex::EqAndFilter(uint32_t code,
                              std::span<const uint32_t> candidates,
                              std::vector<uint32_t>* rows) const {
  codec_->IntersectWithList(*sets_[code], candidates, rows);
}

}  // namespace intcomp
