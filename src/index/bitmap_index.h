// BitmapIndex — a per-value compressed-set index over a low-cardinality
// column, the database-side application of the paper (§1, App. A.2).
//
// One compressed set is kept per distinct value code; the i-th row
// contributes row id i to the set of its value. Equality predicates read one
// set; IN-lists and range predicates union several (App. A.2, [38]);
// conjunctions across columns intersect the per-column results.

#ifndef INTCOMP_INDEX_BITMAP_INDEX_H_
#define INTCOMP_INDEX_BITMAP_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/codec.h"

namespace intcomp {

class BitmapIndex {
 public:
  // Builds the index for a column given as value codes (0 .. cardinality-1)
  // in row order. `codec` must outlive the index.
  static BitmapIndex Build(const Codec& codec,
                           std::span<const uint32_t> column_codes,
                           uint32_t cardinality);

  // Builds an index over the row sub-range [row_begin, row_end) only: the
  // per-value sets hold *local* row ids (global row r appears as r -
  // row_begin), and NumRows() is the sub-range length. This is the shard
  // build of the sharded index service (src/service): each shard is an
  // independent BitmapIndex over its slice of the row space, and the
  // service rebases local ids back to global ones when stitching shard
  // results (ShardRouter::Rebase).
  static BitmapIndex BuildRange(const Codec& codec,
                                std::span<const uint32_t> column_codes,
                                uint32_t cardinality, uint64_t row_begin,
                                uint64_t row_end);

  // Number of distinct value codes.
  uint32_t Cardinality() const {
    return static_cast<uint32_t>(sets_.size());
  }
  uint64_t NumRows() const { return num_rows_; }

  // Total compressed footprint.
  size_t SizeInBytes() const;

  // Per-set representation census: how many value sets are stored each
  // way. Fixed codecs report their static family for every set; adaptive
  // codecs (Hybrid, Planner) report the per-set choice through
  // Codec::EffectiveFamily — the split the planner benchmarks print next
  // to size totals.
  struct FamilyCounts {
    size_t bitmap = 0;
    size_t inverted_list = 0;
  };
  FamilyCounts EffectiveFamilies() const;

  // The compressed row-id set for one value code (never null for codes
  // < Cardinality()).
  const CompressedSet* SetFor(uint32_t code) const {
    return sets_[code].get();
  }

  // rows = { i : column[i] == code }.
  void Eq(uint32_t code, std::vector<uint32_t>* rows) const;

  // rows = union of the sets of all `codes` (IN-list predicate).
  void In(std::span<const uint32_t> codes, std::vector<uint32_t>* rows) const;

  // rows = union over codes in [lo, hi] — a range predicate as a union of
  // per-value sets (paper App. A.2).
  void Range(uint32_t lo, uint32_t hi, std::vector<uint32_t>* rows) const;

  // rows = rows matching `code` here AND contained in `candidates`
  // (conjunction step across columns; probes the compressed set).
  void EqAndFilter(uint32_t code, std::span<const uint32_t> candidates,
                   std::vector<uint32_t>* rows) const;

  // Transfers ownership of the per-value sets out of the index (which is
  // left empty). Used by the sharded index service to absorb a shard built
  // with BuildRange without re-encoding.
  std::vector<std::unique_ptr<CompressedSet>> ReleaseSets() &&;

 private:
  BitmapIndex(const Codec* codec, uint64_t num_rows)
      : codec_(codec), num_rows_(num_rows) {}

  const Codec* codec_;
  uint64_t num_rows_;
  std::vector<std::unique_ptr<CompressedSet>> sets_;
};

}  // namespace intcomp

#endif  // INTCOMP_INDEX_BITMAP_INDEX_H_
