#include "index/inverted_index.h"

#include <algorithm>

#include "core/set_ops.h"

namespace intcomp {

void InvertedIndex::AddDocument(uint32_t doc_id,
                                std::span<const std::string_view> terms) {
  num_docs_ = std::max<uint64_t>(num_docs_, uint64_t{doc_id} + 1);
  for (std::string_view term : terms) {
    auto it = buffer_.find(term);
    if (it == buffer_.end()) {
      it = buffer_.emplace(std::string(term), std::vector<uint32_t>()).first;
    }
    if (it->second.empty() || it->second.back() != doc_id) {
      it->second.push_back(doc_id);
    }
  }
}

void InvertedIndex::Finalize() {
  for (auto& [term, docs] : buffer_) {
    postings_.emplace(term, codec_->Encode(docs, num_docs_));
  }
  buffer_.clear();
  finalized_ = true;
}

size_t InvertedIndex::SizeInBytes() const {
  size_t total = 0;
  for (const auto& [term, set] : postings_) {
    total += set->SizeInBytes() + term.size();
  }
  return total;
}

size_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? 0 : it->second->Cardinality();
}

const CompressedSet* InvertedIndex::PostingFor(std::string_view term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? nullptr : it->second.get();
}

std::vector<std::string_view> InvertedIndex::Terms() const {
  std::vector<std::string_view> terms;
  terms.reserve(postings_.size());
  for (const auto& [term, set] : postings_) terms.push_back(term);
  return terms;
}

bool InvertedIndex::Conjunctive(std::span<const std::string_view> terms,
                                std::vector<uint32_t>* docs) const {
  docs->clear();
  std::vector<const CompressedSet*> sets;
  for (std::string_view term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) return false;
    sets.push_back(it->second.get());
  }
  if (!sets.empty()) IntersectSets(*codec_, sets, docs);
  return true;
}

void InvertedIndex::Disjunctive(std::span<const std::string_view> terms,
                                std::vector<uint32_t>* docs) const {
  docs->clear();
  std::vector<const CompressedSet*> sets;
  for (std::string_view term : terms) {
    auto it = postings_.find(term);
    if (it != postings_.end()) sets.push_back(it->second.get());
  }
  if (!sets.empty()) UnionSets(*codec_, sets, docs);
}

std::vector<ScoredDoc> InvertedIndex::TopKQuery(
    std::span<const std::string_view> terms, size_t k,
    const std::function<double(uint32_t)>& scorer) const {
  std::vector<const CompressedSet*> sets;
  for (std::string_view term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) return {};
    sets.push_back(it->second.get());
  }
  return TopK(*codec_, sets, k, scorer);
}

}  // namespace intcomp
