// InvertedIndex — term -> compressed posting list, the IR-side application
// of the paper (App. A.1): conjunctive and disjunctive keyword queries and
// scored top-k retrieval over compressed postings.

#ifndef INTCOMP_INDEX_INVERTED_INDEX_H_
#define INTCOMP_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/codec.h"
#include "core/topk.h"

namespace intcomp {

class InvertedIndex {
 public:
  // `codec` must outlive the index.
  explicit InvertedIndex(const Codec& codec) : codec_(&codec) {}

  // Adds a document's terms. Documents must be added in increasing doc-id
  // order; duplicate terms within a document are fine.
  void AddDocument(uint32_t doc_id, std::span<const std::string_view> terms);

  // Compresses all buffered postings. Must be called once, after the last
  // AddDocument and before any query.
  void Finalize();

  size_t NumTerms() const { return postings_.size(); }
  uint64_t NumDocuments() const { return num_docs_; }
  size_t SizeInBytes() const;

  // Document frequency of a term (0 if absent).
  size_t DocumentFrequency(std::string_view term) const;

  // The compressed posting list of a term (nullptr if absent). Used by the
  // sharded index service to re-partition postings across doc-range shards.
  const CompressedSet* PostingFor(std::string_view term) const;

  // All indexed terms, in lexicographic order.
  std::vector<std::string_view> Terms() const;

  // docs containing ALL terms (SvS intersection). Unknown terms make the
  // result empty. Returns false if any term is unknown.
  bool Conjunctive(std::span<const std::string_view> terms,
                   std::vector<uint32_t>* docs) const;

  // docs containing AT LEAST ONE of the known terms.
  void Disjunctive(std::span<const std::string_view> terms,
                   std::vector<uint32_t>* docs) const;

  // The k best documents containing all terms, under `scorer` (paper
  // App. A.1's two-step pipeline). Empty if any term is unknown.
  std::vector<ScoredDoc> TopKQuery(
      std::span<const std::string_view> terms, size_t k,
      const std::function<double(uint32_t)>& scorer) const;

 private:
  const Codec* codec_;
  uint64_t num_docs_ = 0;
  bool finalized_ = false;
  std::map<std::string, std::vector<uint32_t>, std::less<>> buffer_;
  std::map<std::string, std::unique_ptr<CompressedSet>, std::less<>> postings_;
};

}  // namespace intcomp

#endif  // INTCOMP_INDEX_INVERTED_INDEX_H_
