#include "invlist/blocked_list.h"

namespace intcomp {

size_t GallopToBlock(std::span<const uint32_t> firsts, size_t from,
                     uint32_t target) {
  // Exponential probe forward from `from`, then binary search the bracket
  // for the last block whose first value is <= target.
  size_t lo = from;
  size_t step = 1;
  size_t hi = from + 1;
  while (hi < firsts.size() && firsts[hi] <= target) {
    lo = hi;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, firsts.size());
  // Invariant: firsts[lo] <= target, and (hi == size or firsts[hi] > target
  // or hi unexplored). Binary search in (lo, hi).
  while (lo + 1 < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (firsts[mid] <= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace intcomp
