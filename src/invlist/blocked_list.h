// Blocked inverted-list framework shared by all d-gap / frame-of-reference
// list codecs (paper §3 overview + §5).
//
// A list is split into blocks of 128 elements. Each block gets a skip
// pointer of (32-bit first value, 32-bit byte offset) — exactly the layout
// the paper uses — so intersection can decompress only the blocks that may
// contain a probe value (SvS with skipping, App. B). Block payloads are
// produced by a Traits type:
//
//   struct FooTraits {
//     static constexpr char kName[] = "Foo";
//     static constexpr bool kDeltaBased = true;   // payload = d-gaps
//                                                 // (false => values - first)
//     static constexpr bool kSimdPrefix = false;  // SIMD prefix sum on decode
//     // Encodes n values (n <= 128) appended to out.
//     static void EncodeBlock(const uint32_t* in, size_t n,
//                             std::vector<uint8_t>* out);
//     // Decodes exactly n values; may write up to 128 entries (SIMD codecs
//     // always materialize a full block). Returns bytes consumed.
//     static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out);
//     // Bounds-checked mirror of DecodeBlock for untrusted payloads: never
//     // reads at or past data + avail, rejects illegal headers/selectors/
//     // bit widths and out-of-range exception positions. On success decodes
//     // the same values DecodeBlock would, sets *consumed, returns true.
//     static bool CheckedDecodeBlock(const uint8_t* data, size_t avail,
//                                    size_t n, uint32_t* out,
//                                    size_t* consumed);
//   };
//
// For delta-based codecs the first gap of block b is relative to the last
// value of block b-1 (block 0: relative to 0), and decoding rebases with the
// skip pointer so any block can be decoded independently.

#ifndef INTCOMP_INVLIST_BLOCKED_LIST_H_
#define INTCOMP_INVLIST_BLOCKED_LIST_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/serialize_util.h"
#include "common/simd_intersect.h"
#include "common/simdpack.h"
#include "core/codec.h"
#include "obs/op_counters.h"

namespace intcomp {

inline constexpr size_t kListBlockSize = 128;

// The merge-vs-skip threshold (paper footnote 8) lives in
// common/simd_intersect.h (kMergeIntersectRatio / ChooseIntersectStrategy),
// shared with the hybrid codec and the uncompressed-list planner.

// Returns the last block index in [from, firsts.size()) whose first value is
// <= target, assuming firsts[from] <= target. Gallops forward then binary
// searches — probes arrive in ascending order, so starting at the current
// block is cheap.
size_t GallopToBlock(std::span<const uint32_t> firsts, size_t from,
                     uint32_t target);

template <typename Traits>
struct BlockedSet final : CompressedSet {
  std::vector<uint8_t> data;
  std::vector<uint32_t> skip_first;   // first value of each block
  std::vector<uint32_t> skip_offset;  // byte offset of each block in data
  size_t count = 0;
  bool skips_in_size = true;  // false for the Fig. 7 "no skip pointers" mode

  size_t SizeInBytes() const override {
    size_t s = data.size();
    if (skips_in_size) {
      s += (skip_first.size() + skip_offset.size()) * 4;
    } else if (!Traits::kDeltaBased) {
      // Frame-of-reference payloads are rebased to the block's first value,
      // so skip_first is part of the payload (the base), not skip metadata:
      // a no-skip encoding still has to carry it. Serialize agrees (it
      // writes skip_first, and only skip_first, for FOR no-skip sets).
      s += skip_first.size() * 4;
    }
    return s;
  }
  size_t Cardinality() const override { return count; }
};

// True when the traits' block decoder always materializes a full 128-value
// block (the SIMD codecs), which pins the block size to 128.
template <typename T>
constexpr bool TraitsRequire128() {
  if constexpr (requires { T::kFixed128; }) {
    return T::kFixed128;
  } else {
    return false;
  }
}

// Streaming cursor supporting NextGEQ over a blocked compressed list.
// kBlockN is the elements-per-block / skip-pointer granularity; 128 is the
// standard choice (paper footnote 5), other values exist for the block-size
// ablation bench.
template <typename Traits, size_t kBlockN = kListBlockSize>
class BlockedCursor {
 public:
  explicit BlockedCursor(const BlockedSet<Traits>& set) : set_(&set) {}

  // Block traffic is tallied in plain members and flushed to the thread's
  // OpCounters once per cursor lifetime, keeping the per-block hot path free
  // of TLS lookups.
  ~BlockedCursor() {
    obs::OpCounters& oc = obs::ThreadOpCounters();
    oc.blocks_loaded += stat_loaded_;
    oc.blocks_skipped += stat_skipped_;
  }

  // Positions at the smallest value >= target at-or-after the current
  // position (targets must be non-decreasing across calls — enforced by an
  // assertion in debug/sanitizer builds, since a backwards target after a
  // gallop would silently return a wrong element). Returns false if no such
  // value exists.
  bool NextGEQ(uint32_t target, uint32_t* value) {
    CheckTargetMonotone(target);
    const auto& firsts = set_->skip_first;
    if (firsts.empty()) return false;
    size_t b = (loaded_ == kNone) ? 0 : loaded_;
    if (b + 1 < firsts.size() && firsts[b + 1] <= target) {
      b = GallopToBlock(firsts, b, target);
    }
    if (b != loaded_) Load(b);
    while (true) {
      while (pos_ < n_ && buf_[pos_] < target) ++pos_;
      if (pos_ < n_) {
        *value = buf_[pos_];
        return true;
      }
      if (loaded_ + 1 >= firsts.size()) return false;
      Load(loaded_ + 1);
    }
  }

  // Bulk SvS probe: appends (probe AND list) to `out`, consuming decoded
  // blocks whole. For each block, the slice of ascending probe values that
  // lands inside the block's value range is intersected against the decoded
  // buffer in one kernel call (up to 128 values at a time) instead of
  // re-entering NextGEQ element by element; probes falling in the gap
  // between two blocks are skipped without decoding anything. `probe` must
  // be ascending and must respect the cursor's non-decreasing-target
  // contract relative to earlier NextGEQ / ProbeIntersect calls.
  void ProbeIntersect(std::span<const uint32_t> probe,
                      std::vector<uint32_t>* out) {
    const auto& firsts = set_->skip_first;
    if (firsts.empty() || probe.empty()) return;
    size_t i = 0;
    while (i < probe.size()) {
      const uint32_t target = probe[i];
      CheckTargetMonotone(target);
      size_t b = (loaded_ == kNone) ? 0 : loaded_;
      if (b + 1 < firsts.size() && firsts[b + 1] <= target) {
        b = GallopToBlock(firsts, b, target);
      }
      if (b != loaded_) Load(b);
      const uint32_t block_last = buf_[n_ - 1];
      size_t j = i;
      while (j < probe.size() && probe[j] <= block_last) ++j;
      if (j > i) {
        IntersectSliceWithBlockInto(probe.subspan(i, j - i),
                                    std::span<const uint32_t>(buf_, n_), out);
        i = j;
      }
      if (i >= probe.size() || loaded_ + 1 >= firsts.size()) break;
      // Probes between this block's last value and the next block's first
      // cannot match; drop them here so the gallop above never stalls.
      const uint32_t next_first = firsts[loaded_ + 1];
      while (i < probe.size() && probe[i] < next_first) ++i;
    }
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  void CheckTargetMonotone(uint32_t target) {
#ifndef NDEBUG
    assert((!dbg_have_target_ || target >= dbg_last_target_) &&
           "BlockedCursor targets must be non-decreasing across calls");
    dbg_have_target_ = true;
    dbg_last_target_ = target;
#else
    (void)target;
#endif
  }

  void Load(size_t b) {
    // Blocks the skip pointers let us jump past without decoding.
    if (loaded_ == kNone) {
      stat_skipped_ += b;
    } else if (b > loaded_) {
      stat_skipped_ += b - loaded_ - 1;
    }
    ++stat_loaded_;
    size_t n = std::min(kBlockN, set_->count - b * kBlockN);
    Traits::DecodeBlock(set_->data.data() + set_->skip_offset[b], n, buf_);
    if (Traits::kDeltaBased) {
      uint32_t base = set_->skip_first[b] - buf_[0];
      if (Traits::kSimdPrefix && n == kSimdBlockSize) {
        SimdPrefixSum128(buf_, base);
      } else {
        ScalarPrefixSum(buf_, n, base);
      }
    } else {
      uint32_t base = set_->skip_first[b];
      for (size_t i = 0; i < n; ++i) buf_[i] += base;
    }
    loaded_ = b;
    pos_ = 0;
    n_ = n;
  }

  const BlockedSet<Traits>* set_;
  size_t loaded_ = kNone;
  size_t pos_ = 0;
  size_t n_ = 0;
  uint64_t stat_loaded_ = 0;
  uint64_t stat_skipped_ = 0;
#ifndef NDEBUG
  uint32_t dbg_last_target_ = 0;
  bool dbg_have_target_ = false;
#endif
  uint32_t buf_[kBlockN < kSimdBlockSize ? kSimdBlockSize : kBlockN];
};

template <typename Traits, size_t kBlockN = kListBlockSize>
class BlockedListCodec final : public Codec {
  static_assert(kBlockN >= 8 && kBlockN <= 128,
                "block codecs size their scratch arrays for <= 128 values");
  static_assert(!TraitsRequire128<Traits>() || kBlockN == kSimdBlockSize,
                "SIMD block codecs require 128-element blocks");

 public:
  using Set = BlockedSet<Traits>;

  // `use_skips = false` builds lists whose intersections cannot skip
  // (every probe decompresses from the start) — the Fig. 7 ablation.
  explicit BlockedListCodec(bool use_skips = true) : use_skips_(use_skips) {}

  std::string_view Name() const override { return Traits::kName; }
  CodecFamily Family() const override { return CodecFamily::kInvertedList; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t /*domain*/) const override {
    auto set = std::make_unique<Set>();
    set->count = sorted.size();
    set->skips_in_size = use_skips_;
    uint32_t scratch[kBlockN];
    uint32_t prev_last = 0;
    const size_t nblocks = (sorted.size() + kBlockN - 1) / kBlockN;
    set->skip_first.reserve(nblocks);
    set->skip_offset.reserve(nblocks);
    for (size_t i = 0; i < sorted.size(); i += kBlockN) {
      const size_t n = std::min(kBlockN, sorted.size() - i);
      set->skip_first.push_back(sorted[i]);
      set->skip_offset.push_back(static_cast<uint32_t>(set->data.size()));
      if (Traits::kDeltaBased) {
        scratch[0] = sorted[i] - prev_last;
        for (size_t k = 1; k < n; ++k) {
          scratch[k] = sorted[i + k] - sorted[i + k - 1];
        }
      } else {
        for (size_t k = 0; k < n; ++k) scratch[k] = sorted[i + k] - sorted[i];
      }
      Traits::EncodeBlock(scratch, n, &set->data);
      prev_last = sorted[i + n - 1];
    }
    // Trailing slack so block decoders may use word-sized loads that read a
    // few bytes past the last value (e.g. GroupVB's masked 4-byte loads).
    // An empty list has no blocks to decode, so it carries no slack either —
    // SizeInBytes() == 0, matching the bitmap codecs' empty footprint.
    if (!sorted.empty()) {
      set->data.insert(set->data.end(), 4, 0);
    }
    set->data.shrink_to_fit();
    return set;
  }

  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override {
    const auto& s = static_cast<const Set&>(set);
    // SIMD block decoders always write full 128-value blocks; leave slack.
    // (No clear(): every slot below s.count is overwritten, and clear()+
    // resize() would re-zero the whole buffer on every call.)
    out->resize(s.count + kSimdBlockSize);
    uint32_t prev_last = 0;
    for (size_t b = 0; b < s.skip_first.size(); ++b) {
      const size_t i = b * kBlockN;
      const size_t n = std::min(kBlockN, s.count - i);
      uint32_t* dst = out->data() + i;
      Traits::DecodeBlock(s.data.data() + s.skip_offset[b], n, dst);
      if (Traits::kDeltaBased) {
        if (Traits::kSimdPrefix && n == kSimdBlockSize) {
          SimdPrefixSum128(dst, prev_last);
        } else {
          ScalarPrefixSum(dst, n, prev_last);
        }
      } else {
        const uint32_t base = s.skip_first[b];
        for (size_t k = 0; k < n; ++k) dst[k] += base;
      }
      prev_last = dst[n - 1];
    }
    out->resize(s.count);
  }

  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override {
    const Set* small = &static_cast<const Set&>(a);
    const Set* large = &static_cast<const Set&>(b);
    if (small->count > large->count) std::swap(small, large);
    std::vector<uint32_t> decoded;
    Decode(*small, &decoded);
    if (!use_skips_ ||
        ChooseIntersectStrategy(small->count, large->count) ==
            IntersectStrategy::kMerge) {
      // Merge-based path for similar sizes (paper footnote 8) and for the
      // no-skip ablation, where the longer list must be fully decompressed.
      std::vector<uint32_t> decoded_large;
      Decode(*large, &decoded_large);
      IntersectLists(decoded, decoded_large, out);
      return;
    }
    ProbeIntersect(*large, decoded, out);
  }

  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override {
    // Decompress both lists and merge linearly (paper §4.3).
    std::vector<uint32_t> da, db;
    Decode(a, &da);
    Decode(b, &db);
    UnionLists(da, db, out);
  }

  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override {
    const auto& s = static_cast<const Set&>(a);
    if (!use_skips_) {
      std::vector<uint32_t> decoded;
      Decode(s, &decoded);
      IntersectLists(decoded, probe, out);
      return;
    }
    ProbeIntersect(s, probe, out);
  }

  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override {
    const auto& s = static_cast<const Set&>(set);
    ByteWriter writer(out);
    writer.PutU64(s.count);
    writer.PutU8(s.skips_in_size ? 1 : 0);
    WriteVector(s.data, out);
    if (s.skips_in_size) {
      WriteVector(s.skip_first, out);
      WriteVector(s.skip_offset, out);
    } else if (!Traits::kDeltaBased) {
      // No-skip frame-of-reference images still carry the per-block bases:
      // they are payload (rebased blocks cannot be decoded without them), not
      // skip metadata, and SizeInBytes charges them accordingly. Byte
      // offsets — pure skip metadata — are rebuilt on load, as are both
      // arrays for delta-based traits. This keeps the serialized footprint
      // equal to the compression-ratio accounting for Fig. 7's no-skip mode.
      WriteVector(s.skip_first, out);
    }
  }

  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override {
    ByteReader reader(data, size);
    if (reader.Remaining() < 9) return nullptr;
    auto set = std::make_unique<Set>();
    set->count = reader.GetU64();
    set->skips_in_size = reader.GetU8() != 0;
    if (!ReadVector(&reader, &set->data)) return nullptr;
    const size_t nblocks = (set->count + kBlockN - 1) / kBlockN;
    if (set->skips_in_size) {
      if (!ReadVector(&reader, &set->skip_first) ||
          !ReadVector(&reader, &set->skip_offset)) {
        return nullptr;
      }
      if (set->skip_first.size() != set->skip_offset.size() ||
          set->skip_first.size() != nblocks) {
        return nullptr;
      }
      return set;
    }
    // No-skip image: the skip arrays were not serialized (except FOR bases);
    // rebuild them by walking the block payloads. Every block encodes to at
    // least one byte, so a count implying more blocks than payload bytes is
    // unparseable — this also bounds the rebuild allocations by the image
    // size (the trusted path stays parse-bounds-safe).
    if (nblocks > set->data.size()) return nullptr;
    if (!Traits::kDeltaBased) {
      if (!ReadVector(&reader, &set->skip_first) ||
          set->skip_first.size() != nblocks) {
        return nullptr;
      }
    }
    if (!RebuildSkips(set.get(), nblocks)) return nullptr;
    return set;
  }

  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override {
    const auto& s = static_cast<const Set&>(set);
    const uint64_t dmax = std::min<uint64_t>(domain, uint64_t{1} << 32);
    if (s.count > dmax) {
      return Status::Corrupt("cardinality exceeds domain");
    }
    if (s.count == 0) {
      return s.data.empty() ? Status::Ok()
                            : Status::Corrupt("empty list with payload");
    }
    // Re-decode every block through the traits' bounds-checked decoder and
    // replay the rebase arithmetic in uint64, so wrap-around tricks in the
    // stored gaps cannot fake monotonicity. The skip pointers are verified
    // against the recomputed first values because BlockedCursor seeks with
    // them directly.
    uint32_t buf[kBlockN < kSimdBlockSize ? kSimdBlockSize : kBlockN];
    uint64_t prev = 0;  // last accepted value
    bool any = false;
    for (size_t b = 0; b < s.skip_first.size(); ++b) {
      const size_t i = b * kBlockN;
      const size_t n = std::min(kBlockN, s.count - i);
      const size_t off = s.skip_offset[b];
      if (off >= s.data.size()) {
        return Status::Corrupt("skip offset out of range");
      }
      size_t consumed = 0;
      if (!Traits::CheckedDecodeBlock(s.data.data() + off,
                                      s.data.size() - off, n, buf,
                                      &consumed)) {
        return Status::Corrupt("malformed block payload");
      }
      if (Traits::kDeltaBased) {
        uint64_t running = prev;
        for (size_t k = 0; k < n; ++k) {
          if ((any || k > 0) && buf[k] == 0) {
            return Status::Corrupt("values not strictly increasing");
          }
          running += buf[k];
          if (running >= dmax) {
            return Status::Corrupt("value past domain");
          }
          if (k == 0 && s.skip_first[b] != running) {
            return Status::Corrupt("skip pointer mismatch");
          }
          any = true;
        }
        prev = running;
      } else {
        // Frame-of-reference blocks are rebased to their first value, so a
        // genuine payload always starts with 0 and skip_first is the base.
        if (buf[0] != 0) {
          return Status::Corrupt("FOR block base not zero");
        }
        const uint64_t base = s.skip_first[b];
        uint64_t last = base;
        if (any && base <= prev) {
          return Status::Corrupt("values not strictly increasing");
        }
        if (base >= dmax) {
          return Status::Corrupt("value past domain");
        }
        for (size_t k = 1; k < n; ++k) {
          const uint64_t v = base + buf[k];
          if (v <= last) {
            return Status::Corrupt("values not strictly increasing");
          }
          if (v >= dmax) {
            return Status::Corrupt("value past domain");
          }
          last = v;
        }
        prev = last;
        any = true;
      }
    }
    return Status::Ok();
  }

 private:
  void ProbeIntersect(const Set& s, std::span<const uint32_t> probe,
                      std::vector<uint32_t>* out) const {
    out->clear();
    BlockedCursor<Traits, kBlockN> cursor(s);
    if (GetKernelMode() == KernelMode::kScalar) {
      // Legacy per-element NextGEQ loop, kept as the measured baseline for
      // the --kernel ablation.
      uint32_t found;
      for (uint32_t v : probe) {
        if (!cursor.NextGEQ(v, &found)) break;
        if (found == v) out->push_back(v);
      }
      return;
    }
    cursor.ProbeIntersect(probe, out);
  }

  // Rebuilds the skip arrays for a no-skip image by walking the block
  // payloads with the traits' bounds-checked decoder (even the trusted
  // Deserialize path must never read past the buffer while parsing). For
  // delta-based traits block firsts are recomputed from the running gap sum;
  // for frame-of-reference traits skip_first came from the image and only
  // the byte offsets are recomputed.
  static bool RebuildSkips(Set* set, size_t nblocks) {
    set->skip_offset.clear();
    set->skip_offset.reserve(nblocks);
    if (Traits::kDeltaBased) {
      set->skip_first.clear();
      set->skip_first.reserve(nblocks);
    }
    uint32_t buf[kBlockN < kSimdBlockSize ? kSimdBlockSize : kBlockN];
    size_t off = 0;
    uint32_t prev_last = 0;
    for (size_t b = 0; b < nblocks; ++b) {
      const size_t n = std::min(kBlockN, set->count - b * kBlockN);
      if (off >= set->data.size()) return false;
      size_t consumed = 0;
      if (!Traits::CheckedDecodeBlock(set->data.data() + off,
                                      set->data.size() - off, n, buf,
                                      &consumed)) {
        return false;
      }
      set->skip_offset.push_back(static_cast<uint32_t>(off));
      if (Traits::kDeltaBased) {
        // Same uint32 wraparound arithmetic the cursor's rebase uses, so a
        // rebuilt skip_first always matches what Encode would have stored.
        set->skip_first.push_back(prev_last + buf[0]);
        for (size_t k = 0; k < n; ++k) prev_last += buf[k];
      }
      off += consumed;
    }
    return true;
  }

  const bool use_skips_;
};

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_BLOCKED_LIST_H_
