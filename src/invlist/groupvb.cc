#include "invlist/groupvb.h"

#include <cstring>

namespace intcomp {
namespace {

inline int ByteLength(uint32_t v) {
  if (v < (1u << 8)) return 1;
  if (v < (1u << 16)) return 2;
  if (v < (1u << 24)) return 3;
  return 4;
}

}  // namespace

void GroupVbTraits::EncodeBlock(const uint32_t* in, size_t n,
                                std::vector<uint8_t>* out) {
  for (size_t i = 0; i < n; i += 4) {
    const size_t k = std::min<size_t>(4, n - i);
    uint8_t header = 0;
    for (size_t j = 0; j < k; ++j) {
      header |= static_cast<uint8_t>((ByteLength(in[i + j]) - 1) << (2 * j));
    }
    out->push_back(header);
    for (size_t j = 0; j < k; ++j) {
      uint32_t v = in[i + j];
      int len = ByteLength(v);
      for (int byte = 0; byte < len; ++byte) {
        out->push_back(static_cast<uint8_t>(v >> (8 * byte)));
      }
    }
  }
}

size_t GroupVbTraits::DecodeBlock(const uint8_t* data, size_t n,
                                  uint32_t* out) {
  size_t pos = 0;
  for (size_t i = 0; i < n; i += 4) {
    const size_t k = std::min<size_t>(4, n - i);
    const uint8_t header = data[pos++];
    for (size_t j = 0; j < k; ++j) {
      const int len = ((header >> (2 * j)) & 3) + 1;
      uint32_t v = 0;
      std::memcpy(&v, data + pos, 4);  // overreads are masked off below
      v &= len == 4 ? ~uint32_t{0} : ((uint32_t{1} << (8 * len)) - 1);
      out[i + j] = v;
      pos += len;
    }
  }
  return pos;
}

bool GroupVbTraits::CheckedDecodeBlock(const uint8_t* data, size_t avail,
                                       size_t n, uint32_t* out,
                                       size_t* consumed) {
  size_t pos = 0;
  for (size_t i = 0; i < n; i += 4) {
    const size_t k = std::min<size_t>(4, n - i);
    if (pos >= avail) return false;
    const uint8_t header = data[pos++];
    for (size_t j = 0; j < k; ++j) {
      const int len = ((header >> (2 * j)) & 3) + 1;
      // DecodeBlock issues an unconditional 4-byte masked load per value, so
      // the untrusted check must cover the full load, not just `len` bytes.
      // Genuine images always satisfy this via the encoder's trailing slack.
      if (avail - pos < 4) return false;
      uint32_t v = 0;
      std::memcpy(&v, data + pos, 4);
      v &= len == 4 ? ~uint32_t{0} : ((uint32_t{1} << (8 * len)) - 1);
      out[i + j] = v;
      pos += len;
    }
  }
  *consumed = pos;
  return true;
}

}  // namespace intcomp
