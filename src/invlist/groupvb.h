// GroupVB (Group Varint) — paper §3.2, [16].
//
// Four values share one header byte holding four 2-bit length codes
// (bytes-1), followed by the values' bytes. Factoring the flags out of the
// data bytes removes VB's per-byte branches (Google's optimization).

#ifndef INTCOMP_INVLIST_GROUPVB_H_
#define INTCOMP_INVLIST_GROUPVB_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

struct GroupVbTraits {
  static constexpr char kName[] = "GroupVB";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out);
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out);
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed);
};

using GroupVbCodec = BlockedListCodec<GroupVbTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_GROUPVB_H_
