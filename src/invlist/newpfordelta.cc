#include "invlist/newpfordelta.h"

#include <algorithm>
#include <cstring>

#include "common/bitpack.h"
#include "common/bits.h"
#include "invlist/simple16.h"

namespace intcomp {
namespace newpfor_internal {

int ChooseWidth90(const uint32_t* in, size_t n) {
  int hist[33] = {};
  int max_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    int w = BitWidth32(in[i]);
    ++hist[w];
    max_bits = std::max(max_bits, w);
  }
  const size_t needed = (n * 90 + 99) / 100;
  size_t covered = 0;
  for (int b = 0; b <= 32; ++b) {
    covered += hist[b];
    if (covered >= needed) return b;
  }
  return max_bits;
}

void EncodeBlockWithWidth(const uint32_t* in, size_t n, int b,
                          std::vector<uint8_t>* out) {
  uint32_t slots[kListBlockSize];
  uint32_t positions[kListBlockSize];
  uint32_t highs[kListBlockSize];
  size_t n_exc = 0;
  const uint32_t mask = LowMask32(b);
  for (size_t i = 0; i < n; ++i) {
    slots[i] = in[i] & mask;
    if (BitWidth32(in[i]) > b) {
      positions[n_exc] = static_cast<uint32_t>(i);
      highs[n_exc] = b >= 32 ? 0 : in[i] >> b;
      ++n_exc;
    }
  }

  std::vector<uint8_t> pos_enc, high_enc;
  if (n_exc > 0) {
    Simple16EncodeArray(positions, n_exc, &pos_enc);
    Simple16EncodeArray(highs, n_exc, &high_enc);
  }

  out->push_back(static_cast<uint8_t>(b));
  out->push_back(static_cast<uint8_t>(n_exc));
  out->push_back(static_cast<uint8_t>(pos_enc.size()));
  out->push_back(static_cast<uint8_t>(pos_enc.size() >> 8));
  out->push_back(static_cast<uint8_t>(high_enc.size()));
  out->push_back(static_cast<uint8_t>(high_enc.size() >> 8));

  const size_t words = PackedWords32(n, b);
  const size_t data_pos = out->size();
  out->resize(data_pos + words * 4);
  if (words > 0) {
    uint32_t packed[kListBlockSize];
    PackBits(slots, n, b, packed);
    std::memcpy(out->data() + data_pos, packed, words * 4);
  }
  out->insert(out->end(), pos_enc.begin(), pos_enc.end());
  out->insert(out->end(), high_enc.begin(), high_enc.end());
}

size_t MeasureBlockWithWidth(const uint32_t* in, size_t n, int b) {
  uint32_t positions[kListBlockSize];
  uint32_t highs[kListBlockSize];
  size_t n_exc = 0;
  for (size_t i = 0; i < n; ++i) {
    if (BitWidth32(in[i]) > b) {
      positions[n_exc] = static_cast<uint32_t>(i);
      highs[n_exc] = b >= 32 ? 0 : in[i] >> b;
      ++n_exc;
    }
  }
  size_t size = 6 + PackedWords32(n, b) * 4;
  if (n_exc > 0) {
    size += Simple16MeasureArray(positions, n_exc);
    size += Simple16MeasureArray(highs, n_exc);
  }
  return size;
}

size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out) {
  const int b = data[0];
  const size_t n_exc = data[1];
  const size_t pos_bytes = data[2] | (static_cast<size_t>(data[3]) << 8);
  const size_t high_bytes = data[4] | (static_cast<size_t>(data[5]) << 8);
  size_t pos = 6;

  const size_t words = PackedWords32(n, b);
  if (words > 0) {
    uint32_t packed[kListBlockSize];
    std::memcpy(packed, data + pos, words * 4);
    UnpackBits(packed, n, b, out);
  } else {
    std::memset(out, 0, n * sizeof(uint32_t));
  }
  pos += words * 4;

  if (n_exc > 0) {
    uint32_t positions[kListBlockSize];
    uint32_t highs[kListBlockSize];
    Simple16DecodeArray(data + pos, n_exc, positions);
    Simple16DecodeArray(data + pos + pos_bytes, n_exc, highs);
    for (size_t k = 0; k < n_exc; ++k) {
      out[positions[k]] |= highs[k] << b;
    }
  }
  return pos + pos_bytes + high_bytes;
}

bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed) {
  if (avail < 6) return false;
  const int b = data[0];
  const size_t n_exc = data[1];
  const size_t pos_bytes = data[2] | (static_cast<size_t>(data[3]) << 8);
  const size_t high_bytes = data[4] | (static_cast<size_t>(data[5]) << 8);
  // b > 32 overflows the 128-word scratch in DecodeBlockImpl; b == 32 with
  // exceptions would shift the high bits by 32 (undefined) — genuine blocks
  // never have exceptions at the maximal width.
  if (b > 32) return false;
  if (n_exc > n) return false;
  if (n_exc > 0 && b >= 32) return false;

  const size_t words = PackedWords32(n, b);
  if (6 + words * 4 > avail) return false;
  size_t pos = 6;
  if (words > 0) {
    uint32_t packed[kListBlockSize];
    std::memcpy(packed, data + pos, words * 4);
    UnpackBits(packed, n, b, out);
  } else {
    std::memset(out, 0, n * sizeof(uint32_t));
  }
  pos += words * 4;
  if (pos_bytes > avail - pos) return false;
  if (high_bytes > avail - pos - pos_bytes) return false;

  if (n_exc > 0) {
    uint32_t positions[kListBlockSize];
    uint32_t highs[kListBlockSize];
    size_t used = 0;
    // The trusted decoder reads the two Simple16 streams from fixed offsets
    // without honoring pos_bytes/high_bytes as limits, so the checked walk
    // bounds each stream by the whole remaining payload, exactly mirroring
    // the reads DecodeBlockImpl will issue.
    if (!Simple16CheckedDecodeArray(data + pos, avail - pos, n_exc, positions,
                                    &used)) {
      return false;
    }
    if (!Simple16CheckedDecodeArray(data + pos + pos_bytes,
                                    avail - pos - pos_bytes, n_exc, highs,
                                    &used)) {
      return false;
    }
    for (size_t k = 0; k < n_exc; ++k) {
      if (positions[k] >= n) return false;
      out[positions[k]] |= highs[k] << b;
    }
  }
  *consumed = pos + pos_bytes + high_bytes;
  return true;
}

}  // namespace newpfor_internal
}  // namespace intcomp
