// NewPforDelta — paper §3.4, [40].
//
// Like PforDelta, but an exception's slot keeps the *lower b bits* of its
// value, while the overflow (high) bits and the exception positions are
// stored in two auxiliary arrays compressed with Simple16. This removes
// PforDelta's forced exceptions and offset linked list.
//
// Block layout: [b u8][n_exc u8][pos_bytes u16][high_bytes u16]
//               [slots: ceil(n*b/32) u32][s16(positions)][s16(high bits)]

#ifndef INTCOMP_INVLIST_NEWPFORDELTA_H_
#define INTCOMP_INVLIST_NEWPFORDELTA_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

namespace newpfor_internal {
// Shared by NewPforDelta (fixed 90% width rule) and OptPforDelta (b passed
// in explicitly). Returns encoded size in bytes.
void EncodeBlockWithWidth(const uint32_t* in, size_t n, int b,
                          std::vector<uint8_t>* out);
size_t MeasureBlockWithWidth(const uint32_t* in, size_t n, int b);
size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out);
bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed);
int ChooseWidth90(const uint32_t* in, size_t n);
}  // namespace newpfor_internal

struct NewPforDeltaTraits {
  static constexpr char kName[] = "NewPforDelta";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    newpfor_internal::EncodeBlockWithWidth(
        in, n, newpfor_internal::ChooseWidth90(in, n), out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return newpfor_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return newpfor_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                    consumed);
  }
};

using NewPforDeltaCodec = BlockedListCodec<NewPforDeltaTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_NEWPFORDELTA_H_
