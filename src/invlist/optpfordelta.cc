#include "invlist/optpfordelta.h"

#include <algorithm>

#include "common/bits.h"

namespace intcomp {

void OptPforDeltaTraits::EncodeBlock(const uint32_t* in, size_t n,
                                     std::vector<uint8_t>* out) {
  int max_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    max_bits = std::max(max_bits, BitWidth32(in[i]));
  }
  // Exact size minimization over all candidate widths. Blocks are at most
  // 128 values, so measuring every b is cheap and happens only at build
  // time; queries see the same decoder as NewPforDelta.
  int best_b = max_bits;
  size_t best_size = newpfor_internal::MeasureBlockWithWidth(in, n, max_bits);
  for (int b = 0; b < max_bits; ++b) {
    size_t size = newpfor_internal::MeasureBlockWithWidth(in, n, b);
    if (size < best_size) {
      best_size = size;
      best_b = b;
    }
  }
  newpfor_internal::EncodeBlockWithWidth(in, n, best_b, out);
}

}  // namespace intcomp
