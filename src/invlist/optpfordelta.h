// OptPforDelta — paper §3.5, [40].
//
// NewPforDelta's layout, but instead of a fixed 90% rule the bit width b of
// every block is chosen by exact minimization of the block's encoded size —
// "models the selection of b for each block as an optimization problem".

#ifndef INTCOMP_INVLIST_OPTPFORDELTA_H_
#define INTCOMP_INVLIST_OPTPFORDELTA_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"
#include "invlist/newpfordelta.h"

namespace intcomp {

struct OptPforDeltaTraits {
  static constexpr char kName[] = "OptPforDelta";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out);
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return newpfor_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return newpfor_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                    consumed);
  }
};

using OptPforDeltaCodec = BlockedListCodec<OptPforDeltaTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_OPTPFORDELTA_H_
