#include "invlist/pef.h"

#include <algorithm>

#include <cassert>

#include "common/bitpack.h"
#include "common/bits.h"
#include "common/serialize_util.h"
#include "common/simd_intersect.h"

namespace intcomp {
namespace {

size_t WordsForBits(uint64_t bits) { return (bits + 31) / 32; }

inline void SetBit(uint32_t* words, uint64_t pos) {
  words[pos >> 5] |= uint32_t{1} << (pos & 31);
}

inline bool TestBit(const uint32_t* words, uint64_t pos) {
  return (words[pos >> 5] >> (pos & 31)) & 1u;
}

// EF low-part width for n offsets over universe u.
int EfLowBits(uint64_t u, size_t n) {
  if (u <= n) return 0;
  return BitWidth64(u / n) - 1;
}

size_t EfWords(uint64_t u, size_t n, int l) {
  const uint64_t high_bits = n + (u >> l) + 1;
  return WordsForBits(static_cast<uint64_t>(n) * l) + WordsForBits(high_bits);
}

// Lazily iterates the values of one partition; supports skipping within the
// high-bit array without materializing the partition.
class PartitionCursor {
 public:
  // Default state is an exhausted cursor; PefCursor positions lazily.
  PartitionCursor() : part_{} {}

  PartitionCursor(const PefCodec::Set& set, size_t part_index,
                  size_t partition_span)
      : part_(set.parts[part_index]) {
    const size_t i = part_index * partition_span;
    n_ = std::min(partition_span, set.count - i);
    words_ = set.data.data() + part_.offset;
    if (part_.type == PefCodec::PartitionType::kEliasFano) {
      low_words_ = words_;
      high_words_ =
          words_ + WordsForBits(static_cast<uint64_t>(n_) * part_.low_bits);
    }
  }

  size_t size() const { return n_; }
  bool exhausted() const { return i_ >= n_; }

  // Value at the current position (valid unless exhausted).
  uint32_t Current() {
    switch (part_.type) {
      case PefCodec::PartitionType::kRun:
        return part_.first + static_cast<uint32_t>(i_);
      case PefCodec::PartitionType::kBitmap: {
        SkipBitmapZeros();
        return part_.first + static_cast<uint32_t>(bitpos_);
      }
      case PefCodec::PartitionType::kEliasFano:
      default: {
        SkipHighZeros();
        const uint32_t high = static_cast<uint32_t>(bitpos_ - i_);
        const uint32_t low = static_cast<uint32_t>(
            GetPacked(low_words_, i_, part_.low_bits));
        return part_.first + ((high << part_.low_bits) | low);
      }
    }
  }

  void Advance() {
    ++i_;
    ++bitpos_;
  }

 private:
  void SkipBitmapZeros() {
    while (!TestBit(words_, bitpos_)) ++bitpos_;
  }
  void SkipHighZeros() {
    while (!TestBit(high_words_, bitpos_)) ++bitpos_;
  }

  PefCodec::Partition part_;
  const uint32_t* words_ = nullptr;
  const uint32_t* low_words_ = nullptr;
  const uint32_t* high_words_ = nullptr;
  size_t n_ = 0;
  size_t i_ = 0;      // elements consumed
  uint64_t bitpos_ = 0;  // scan position in the bitmap / high-bit array
};

// Streaming NextGEQ cursor across partitions.
class PefCursor {
 public:
  PefCursor(const PefCodec::Set& set, size_t partition_span)
      : set_(&set), span_(partition_span) {}

  bool NextGEQ(uint32_t target, uint32_t* value) {
    CheckTargetMonotone(target);
    const auto& parts = set_->parts;
    if (parts.empty()) return false;
    const size_t p = SeekPartition(target);
    if (p != part_ || !positioned_) {
      part_ = p;
      cursor_ = PartitionCursor(*set_, p, span_);
      positioned_ = true;
    }
    while (true) {
      while (!cursor_.exhausted()) {
        uint32_t v = cursor_.Current();
        if (v >= target) {
          *value = v;
          return true;
        }
        cursor_.Advance();
      }
      if (part_ + 1 >= parts.size()) return false;
      ++part_;
      cursor_ = PartitionCursor(*set_, part_, span_);
    }
  }

  // Bulk SvS probe: appends (probe AND set) to `out`, handling whole
  // partitions at a time. Run partitions answer a probe slice by range
  // check alone, bitmap partitions by O(1) bit tests, and Elias-Fano
  // partitions are materialized once and merged through the block kernel
  // (large EF partitions stream instead of materializing). `probe` must be
  // ascending, and calls must respect the non-decreasing-target contract.
  void ProbeIntersect(std::span<const uint32_t> probe,
                      std::vector<uint32_t>* out) {
    const auto& parts = set_->parts;
    if (parts.empty() || probe.empty()) return;
    std::vector<uint32_t> buf;
    size_t i = 0;
    while (i < probe.size()) {
      const uint32_t target = probe[i];
      CheckTargetMonotone(target);
      const size_t p = SeekPartition(target);
      part_ = p;
      positioned_ = false;  // bulk paths bypass the streaming cursor state
      const PefCodec::Partition& part = parts[p];
      if (part.last < target) {
        // Gap (or past the final partition): drop probes that cannot match.
        if (p + 1 >= parts.size()) return;
        const uint32_t next_first = parts[p + 1].first;
        while (i < probe.size() && probe[i] < next_first) ++i;
        continue;
      }
      size_t j = i;
      while (j < probe.size() && probe[j] <= part.last) ++j;
      const std::span<const uint32_t> slice = probe.subspan(i, j - i);
      switch (part.type) {
        case PefCodec::PartitionType::kRun:
          // The run covers every value in [first, last]; a probe matches iff
          // it is in range.
          ThreadKernelCounters().block_probes += 1;
          for (const uint32_t v : slice) {
            if (v >= part.first) out->push_back(v);
          }
          break;
        case PefCodec::PartitionType::kBitmap: {
          ThreadKernelCounters().block_probes += 1;
          const uint32_t* words = set_->data.data() + part.offset;
          for (const uint32_t v : slice) {
            if (v >= part.first && TestBit(words, v - part.first)) {
              out->push_back(v);
            }
          }
          break;
        }
        case PefCodec::PartitionType::kEliasFano:
        default: {
          PartitionCursor cur(*set_, p, span_);
          if (cur.size() <= kMaxMaterializedPartition) {
            buf.clear();
            buf.reserve(cur.size());
            while (!cur.exhausted()) {
              buf.push_back(cur.Current());
              cur.Advance();
            }
            IntersectSliceWithBlockInto(slice, buf, out);
          } else {
            // Oversized partition (the whole-list EF extension): stream the
            // values against the slice instead of materializing them.
            size_t s = 0;
            while (s < slice.size() && !cur.exhausted()) {
              const uint32_t v = cur.Current();
              if (v < slice[s]) {
                cur.Advance();
              } else {
                if (v == slice[s]) {
                  out->push_back(v);
                  cur.Advance();
                }
                ++s;
              }
            }
          }
          break;
        }
      }
      i = j;
    }
  }

 private:
  // Partitions beyond this cardinality are streamed rather than decoded into
  // a scratch buffer during bulk probes.
  static constexpr size_t kMaxMaterializedPartition = 1024;

  void CheckTargetMonotone(uint32_t target) {
#ifndef NDEBUG
    assert((!dbg_have_target_ || target >= dbg_last_target_) &&
           "PefCursor targets must be non-decreasing across calls");
    dbg_have_target_ = true;
    dbg_last_target_ = target;
#else
    (void)target;
#endif
  }

  // Returns the last partition at-or-after the current one whose first
  // value is <= target (the current partition when none is).
  size_t SeekPartition(uint32_t target) const {
    const auto& parts = set_->parts;
    size_t p = part_;
    if (p + 1 < parts.size() && parts[p + 1].first <= target) {
      size_t step = 1;
      size_t lo = p, hi = p + 1;
      while (hi < parts.size() && parts[hi].first <= target) {
        lo = hi;
        hi = (parts.size() - hi > step) ? hi + step : parts.size();
        step *= 2;
      }
      while (lo + 1 < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (parts[mid].first <= target) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      p = lo;
    }
    return p;
  }

  const PefCodec::Set* set_;
  size_t span_;
  size_t part_ = 0;
  PartitionCursor cursor_;
  bool positioned_ = false;
#ifndef NDEBUG
  uint32_t dbg_last_target_ = 0;
  bool dbg_have_target_ = false;
#endif
};

}  // namespace

std::unique_ptr<CompressedSet> PefCodec::Encode(
    std::span<const uint32_t> sorted, uint64_t /*domain*/) const {
  auto set = std::make_unique<Set>();
  set->count = sorted.size();
  const size_t span = PartitionSpan(sorted.size());
  for (size_t i = 0; i < sorted.size(); i += span) {
    const size_t n = std::min(span, sorted.size() - i);
    Partition part;
    part.first = sorted[i];
    part.last = sorted[i + n - 1];
    part.offset = static_cast<uint32_t>(set->data.size());
    const uint64_t universe = part.last - part.first;  // offsets in [0, universe]

    if (universe == n - 1) {
      part.type = PartitionType::kRun;
      part.low_bits = 0;
      set->parts.push_back(part);
      continue;
    }

    const int l = EfLowBits(universe, n);
    const size_t ef_words = EfWords(universe, n, l);
    const size_t bm_words = WordsForBits(universe + 1);
    if (bm_words <= ef_words) {
      part.type = PartitionType::kBitmap;
      part.low_bits = 0;
      set->data.resize(part.offset + bm_words, 0);
      uint32_t* words = set->data.data() + part.offset;
      for (size_t k = 0; k < n; ++k) SetBit(words, sorted[i + k] - part.first);
    } else {
      part.type = PartitionType::kEliasFano;
      part.low_bits = static_cast<uint8_t>(l);
      set->data.resize(part.offset + ef_words, 0);
      uint32_t* low = set->data.data() + part.offset;
      uint32_t* high =
          low + WordsForBits(static_cast<uint64_t>(n) * l);
      for (size_t k = 0; k < n; ++k) {
        const uint32_t off = sorted[i + k] - part.first;
        if (l > 0) SetPacked(low, k, l, off & LowMask32(l));
        SetBit(high, (static_cast<uint64_t>(off) >> l) + k);
      }
    }
    set->parts.push_back(part);
  }
  set->data.shrink_to_fit();
  return set;
}

void PefCodec::Decode(const CompressedSet& set,
                      std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  out->clear();
  out->reserve(s.count);
  const size_t span = PartitionSpan(s.count);
  for (size_t p = 0; p < s.parts.size(); ++p) {
    PartitionCursor cursor(s, p, span);
    while (!cursor.exhausted()) {
      out->push_back(cursor.Current());
      cursor.Advance();
    }
  }
}

void PefCodec::Intersect(const CompressedSet& a, const CompressedSet& b,
                         std::vector<uint32_t>* out) const {
  const Set* small = &static_cast<const Set&>(a);
  const Set* large = &static_cast<const Set&>(b);
  if (small->count > large->count) std::swap(small, large);
  std::vector<uint32_t> decoded;
  Decode(*small, &decoded);
  if (ChooseIntersectStrategy(small->count, large->count) ==
      IntersectStrategy::kMerge) {
    // Similar sizes: decoding both and merging through the kernel planner
    // beats partition-by-partition probing (shared footnote-8 policy).
    std::vector<uint32_t> decoded_large;
    Decode(*large, &decoded_large);
    IntersectLists(decoded, decoded_large, out);
    return;
  }
  IntersectWithList(*large, decoded, out);
}

void PefCodec::Union(const CompressedSet& a, const CompressedSet& b,
                     std::vector<uint32_t>* out) const {
  std::vector<uint32_t> da, db;
  Decode(a, &da);
  Decode(b, &db);
  UnionLists(da, db, out);
}

void PefCodec::IntersectWithList(const CompressedSet& a,
                                 std::span<const uint32_t> probe,
                                 std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(a);
  out->clear();
  PefCursor cursor(s, PartitionSpan(s.count));
  if (GetKernelMode() == KernelMode::kScalar) {
    // Legacy per-element NextGEQ loop, kept as the measured baseline for the
    // --kernel ablation.
    uint32_t found;
    for (uint32_t v : probe) {
      if (!cursor.NextGEQ(v, &found)) break;
      if (found == v) out->push_back(v);
    }
    return;
  }
  cursor.ProbeIntersect(probe, out);
}

void PefCodec::Serialize(const CompressedSet& set,
                         std::vector<uint8_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  ByteWriter writer(out);
  writer.PutU64(s.count);
  writer.PutU32(static_cast<uint32_t>(s.parts.size()));
  for (const Partition& p : s.parts) {
    writer.PutU32(p.first);
    writer.PutU32(p.last);
    writer.PutU32(p.offset);
    writer.PutU8(static_cast<uint8_t>(p.type));
    writer.PutU8(p.low_bits);
  }
  WriteVector(s.data, out);
}

std::unique_ptr<CompressedSet> PefCodec::Deserialize(const uint8_t* data,
                                                     size_t size) const {
  ByteReader reader(data, size);
  if (reader.Remaining() < 12) return nullptr;
  auto set = std::make_unique<Set>();
  set->count = reader.GetU64();
  const uint32_t n = reader.GetU32();
  if (reader.Remaining() < static_cast<size_t>(n) * 14) return nullptr;
  set->parts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Partition p;
    p.first = reader.GetU32();
    p.last = reader.GetU32();
    p.offset = reader.GetU32();
    const uint8_t type = reader.GetU8();
    if (type > 2) return nullptr;
    p.type = static_cast<PartitionType>(type);
    p.low_bits = reader.GetU8();
    set->parts.push_back(p);
  }
  if (!ReadVector(&reader, &set->data)) return nullptr;
  return set;
}

Status PefCodec::ValidateSet(const CompressedSet& set, uint64_t domain) const {
  const auto& s = static_cast<const Set&>(set);
  const uint64_t dmax = std::min<uint64_t>(domain, uint64_t{1} << 32);
  if (s.count > dmax) return Status::Corrupt("PEF: cardinality beyond domain");
  const size_t span = PartitionSpan(s.count);
  const size_t want_parts = s.count == 0 ? 0 : (s.count - 1) / span + 1;
  if (s.parts.size() != want_parts)
    return Status::Corrupt("PEF: partition count mismatch");
  if (s.count == 0) {
    if (!s.data.empty()) return Status::Corrupt("PEF: data in empty set");
    return Status::Ok();
  }

  // Structural pass: every partition's container must lie inside `data` and
  // hold exactly its announced number of set bits, so the cursor replay
  // below can never scan past the allocation.
  uint64_t prev_last = 0;
  for (size_t p = 0; p < s.parts.size(); ++p) {
    const Partition& part = s.parts[p];
    const size_t n = std::min(span, s.count - p * span);
    if (part.first > part.last) return Status::Corrupt("PEF: first > last");
    if (part.last >= dmax) return Status::Corrupt("PEF: value past domain");
    if (p > 0 && part.first <= prev_last)
      return Status::Corrupt("PEF: partitions not increasing");
    prev_last = part.last;
    const uint64_t universe = part.last - part.first;
    switch (part.type) {
      case PartitionType::kRun:
        if (universe != n - 1)
          return Status::Corrupt("PEF: run span != cardinality");
        break;
      case PartitionType::kBitmap: {
        const size_t words = WordsForBits(universe + 1);
        if (static_cast<uint64_t>(part.offset) + words > s.data.size())
          return Status::Corrupt("PEF: bitmap container out of range");
        const uint32_t* w = s.data.data() + part.offset;
        uint64_t bits = 0;
        for (size_t k = 0; k < words; ++k) bits += PopCount32(w[k]);
        if (bits != n)
          return Status::Corrupt("PEF: bitmap popcount mismatch");
        // A bit past the universe would decode a value beyond `last`.
        const unsigned used = (universe + 1) & 31;
        if (used != 0 && (w[words - 1] >> used) != 0)
          return Status::Corrupt("PEF: bitmap bits past universe");
        break;
      }
      case PartitionType::kEliasFano: {
        const int l = part.low_bits;
        if (l > 31) return Status::Corrupt("PEF: low-bit width too wide");
        const size_t lw = WordsForBits(static_cast<uint64_t>(n) * l);
        const uint64_t high_bits = n + (universe >> l) + 1;
        const size_t hw = WordsForBits(high_bits);
        if (static_cast<uint64_t>(part.offset) + lw + hw > s.data.size())
          return Status::Corrupt("PEF: EF container out of range");
        const uint32_t* high = s.data.data() + part.offset + lw;
        uint64_t bits = 0;
        for (size_t k = 0; k < hw; ++k) bits += PopCount32(high[k]);
        if (bits != n)
          return Status::Corrupt("PEF: EF high-bit popcount mismatch");
        const unsigned used = high_bits & 31;
        if (used != 0 && (high[hw - 1] >> used) != 0)
          return Status::Corrupt("PEF: EF bits past universe");
        break;
      }
    }
  }

  // Value replay: decode every partition with the real cursor and require
  // exactly the announced first/last plus global strict monotonicity. The
  // high bits are bounded above, but crafted EF low bits can still produce
  // out-of-order values — only a replay catches that.
  uint64_t prev = 0;
  bool have_prev = false;
  for (size_t p = 0; p < s.parts.size(); ++p) {
    PartitionCursor cursor(s, p, span);
    uint32_t part_first = 0;
    uint32_t v = 0;
    for (size_t k = 0; !cursor.exhausted(); cursor.Advance(), ++k) {
      v = cursor.Current();
      if (k == 0) part_first = v;
      if (have_prev && v <= prev)
        return Status::Corrupt("PEF: values not strictly increasing");
      prev = v;
      have_prev = true;
    }
    if (part_first != s.parts[p].first || v != s.parts[p].last)
      return Status::Corrupt("PEF: partition bounds mismatch");
  }
  return Status::Ok();
}

}  // namespace intcomp
