// PEF (Partitioned Elias-Fano) — paper §3.9, [30].
//
// Not d-gap based: the list is split into 128-element partitions, and each
// partition is stored in whichever of three containers is smallest:
//   - Elias-Fano: low l = floor(log2(u/n)) bits of each offset packed
//     contiguously, high bits as a unary-coded bit vector;
//   - an uncompressed bitmap over the partition's span;
//   - implicit: the partition is a dense run first..last (zero bytes).
// This is the clustering-adaptive partitioning of [30] with fixed-size
// partitions. NextGEQ walks the high-bit array directly, so intersection
// does not decode whole partitions (the property the paper highlights);
// full decompression must touch every high bit, which is why PEF decodes
// slowest (§5.1(12)).

#ifndef INTCOMP_INVLIST_PEF_H_
#define INTCOMP_INVLIST_PEF_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/codec.h"

namespace intcomp {

class PefCodec final : public Codec {
 public:
  // Partition size. 128 reproduces the paper's PEF; a partition size of 0
  // means "one partition for the whole list", i.e. plain (non-partitioned)
  // Elias-Fano [35], exposed in the registry as the "EF" extension.
  explicit PefCodec(size_t partition_size = 128, const char* name = "PEF")
      : partition_size_(partition_size), name_(name) {}

  enum class PartitionType : uint8_t { kEliasFano = 0, kBitmap = 1, kRun = 2 };

  struct Partition {
    uint32_t first;       // first value in the partition
    uint32_t last;        // last value (defines the EF universe)
    uint32_t offset;      // word offset into data
    PartitionType type;
    uint8_t low_bits;     // EF low-part width l
  };

  struct Set final : CompressedSet {
    std::vector<uint32_t> data;  // packed low/high/bitmap words
    std::vector<Partition> parts;
    size_t count = 0;

    size_t SizeInBytes() const override {
      // 4 (first) + 4 (offset) + 1 (type) + 1 (l) + 4 (last) bytes of
      // metadata per partition; real PEF compresses this upper level too,
      // which we charge at face value.
      return data.size() * 4 + parts.size() * 14;
    }
    size_t Cardinality() const override { return count; }
  };

  std::string_view Name() const override { return name_; }
  CodecFamily Family() const override { return CodecFamily::kInvertedList; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t domain) const override;
  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override;
  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override;
  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override;
  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override;
  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override;
  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override;
  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override;

 private:
  // Effective elements-per-partition for a list of n values.
  size_t PartitionSpan(size_t n) const {
    return partition_size_ == 0 ? std::max<size_t>(1, n) : partition_size_;
  }

  const size_t partition_size_;
  const char* name_;
};

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_PEF_H_
