#include "invlist/pfordelta.h"

#include <algorithm>
#include <cstring>

#include "common/bitpack.h"
#include "common/bits.h"

namespace intcomp {
namespace pfor_internal {
namespace {

constexpr uint8_t kNoException = 255;

// Smallest b such that at least `threshold_percent`% of the n values fit in
// b bits.
int ChooseWidth(const uint32_t* in, size_t n, int threshold_percent) {
  int hist[33] = {};
  int max_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    int w = BitWidth32(in[i]);
    ++hist[w];
    max_bits = std::max(max_bits, w);
  }
  const size_t needed =
      (n * static_cast<size_t>(threshold_percent) + 99) / 100;
  size_t covered = 0;
  for (int b = 0; b <= 32; ++b) {
    covered += hist[b];
    if (covered >= needed) return b;
  }
  return max_bits;
}

}  // namespace

void EncodeBlockImpl(const uint32_t* in, size_t n, int threshold_percent,
                     std::vector<uint8_t>* out) {
  int b = ChooseWidth(in, n, threshold_percent);

  // Collect exception positions (values that do not fit in b bits), then
  // insert forced exceptions so consecutive offsets stay encodable: the
  // slot link stores (distance - 1) < 2^b.
  uint8_t exc_pos[kListBlockSize];
  size_t n_exc = 0;
  for (size_t i = 0; i < n; ++i) {
    if (BitWidth32(in[i]) > b) exc_pos[n_exc++] = static_cast<uint8_t>(i);
  }
  if (n_exc > 0 && b == 0) b = 1;  // links need at least one bit
  if (n_exc > 0 && b < 7) {
    // Rebuild with forced exceptions (distances must be <= 2^b).
    const size_t max_dist = size_t{1} << b;
    uint8_t forced[kListBlockSize];
    size_t m = 0;
    size_t prev = exc_pos[0];
    forced[m++] = exc_pos[0];
    for (size_t k = 1; k < n_exc; ++k) {
      while (exc_pos[k] - prev > max_dist) {
        prev += max_dist;
        forced[m++] = static_cast<uint8_t>(prev);
      }
      prev = exc_pos[k];
      forced[m++] = exc_pos[k];
    }
    n_exc = m;
    std::memcpy(exc_pos, forced, m);
  }

  // Fill slots: regular values as-is, exception slots hold the link.
  uint32_t slots[kListBlockSize];
  for (size_t i = 0; i < n; ++i) slots[i] = in[i];
  for (size_t k = 0; k < n_exc; ++k) {
    const size_t next_dist =
        (k + 1 < n_exc) ? static_cast<size_t>(exc_pos[k + 1] - exc_pos[k]) : 1;
    slots[exc_pos[k]] = static_cast<uint32_t>(next_dist - 1);
  }

  out->push_back(static_cast<uint8_t>(b));
  out->push_back(static_cast<uint8_t>(n_exc));
  out->push_back(n_exc > 0 ? exc_pos[0] : kNoException);
  out->push_back(0);

  const size_t words = PackedWords32(n, b);
  const size_t data_pos = out->size();
  out->resize(data_pos + words * 4);
  if (words > 0) {
    uint32_t packed[kListBlockSize];  // words <= n <= 128
    PackBits(slots, n, b, packed);
    std::memcpy(out->data() + data_pos, packed, words * 4);
  }
  for (size_t k = 0; k < n_exc; ++k) {
    const uint32_t v = in[exc_pos[k]];
    const size_t pos = out->size();
    out->resize(pos + 4);
    std::memcpy(out->data() + pos, &v, 4);
  }
}

size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out) {
  const int b = data[0];
  const size_t n_exc = data[1];
  const uint8_t first_exc = data[2];
  size_t pos = 4;

  const size_t words = PackedWords32(n, b);
  if (words > 0) {
    uint32_t packed[kListBlockSize];
    std::memcpy(packed, data + pos, words * 4);
    UnpackBits(packed, n, b, out);
  } else {
    std::memset(out, 0, n * sizeof(uint32_t));
  }
  pos += words * 4;

  // Patch exceptions by walking the offset linked list threaded through the
  // slots (the traversal the paper contrasts with PforDelta*'s straight
  // unpack).
  size_t p = first_exc;
  for (size_t k = 0; k < n_exc; ++k) {
    uint32_t link = out[p];
    uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    out[p] = v;
    p += link + 1;
  }
  return pos;
}

bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed) {
  if (avail < 4) return false;
  const int b = data[0];
  const size_t n_exc = data[1];
  const uint8_t first_exc = data[2];
  // b > 32 overflows the fixed 128-word scratch in DecodeBlockImpl (a stack
  // smash, not just a wrong answer), and the exception walk writes out[p]
  // for link-derived p, so both need hard bounds.
  if (b > 32) return false;
  if (n_exc > n) return false;
  if (n_exc > 0 && first_exc >= n) return false;

  const size_t words = PackedWords32(n, b);
  if (4 + words * 4 + n_exc * 4 > avail) return false;
  size_t pos = 4;
  if (words > 0) {
    uint32_t packed[kListBlockSize];
    std::memcpy(packed, data + pos, words * 4);
    UnpackBits(packed, n, b, out);
  } else {
    std::memset(out, 0, n * sizeof(uint32_t));
  }
  pos += words * 4;

  size_t p = first_exc;
  for (size_t k = 0; k < n_exc; ++k) {
    if (p >= n) return false;
    const uint32_t link = out[p];
    uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    out[p] = v;
    p += link + 1;
  }
  *consumed = pos;
  return true;
}

}  // namespace pfor_internal
}  // namespace intcomp
