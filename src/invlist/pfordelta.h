// PforDelta and PforDelta* — paper §3.3, [43].
//
// A block's d-gaps are packed into b-bit slots where b is the smallest width
// covering >= 90% of the values (PforDelta) or all of them (PforDelta*).
// Values that do not fit ("exceptions") are stored as 32-bit values after
// the slots; their slots are threaded into an offset linked list (the slot
// of one exception stores the distance to the next), with forced exceptions
// inserted when two exceptions lie more than 2^b slots apart. PforDelta*
// has no exceptions, so decompression is a straight unpack ("ultra fast",
// at the cost of a larger b).
//
// Block layout: [b u8][n_exc u8][first_exc u8, 255=none][pad u8]
//               [slots: ceil(n*b/32) u32][exceptions: n_exc u32]

#ifndef INTCOMP_INVLIST_PFORDELTA_H_
#define INTCOMP_INVLIST_PFORDELTA_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

namespace pfor_internal {
void EncodeBlockImpl(const uint32_t* in, size_t n, int threshold_percent,
                     std::vector<uint8_t>* out);
size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out);
bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed);
}  // namespace pfor_internal

struct PforDeltaTraits {
  static constexpr char kName[] = "PforDelta";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    pfor_internal::EncodeBlockImpl(in, n, 90, out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return pfor_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return pfor_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                 consumed);
  }
};

struct PforDeltaStarTraits {
  static constexpr char kName[] = "PforDelta*";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    pfor_internal::EncodeBlockImpl(in, n, 100, out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return pfor_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return pfor_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                 consumed);
  }
};

using PforDeltaCodec = BlockedListCodec<PforDeltaTraits>;
using PforDeltaStarCodec = BlockedListCodec<PforDeltaStarTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_PFORDELTA_H_
