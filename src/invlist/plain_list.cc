#include "invlist/plain_list.h"

#include <algorithm>

#include "common/serialize_util.h"
#include "common/status.h"

namespace intcomp {

void GallopIntersect(std::span<const uint32_t> small_list,
                     std::span<const uint32_t> large_list,
                     std::vector<uint32_t>* out) {
  out->clear();
  const uint32_t* lo = large_list.data();
  const uint32_t* end = large_list.data() + large_list.size();
  for (uint32_t v : small_list) {
    // Gallop forward from the previous match position.
    size_t step = 1;
    const uint32_t* hi = lo;
    while (hi < end && *hi < v) {
      lo = hi;
      hi = (static_cast<size_t>(end - hi) > step) ? hi + step : end;
      step *= 2;
    }
    lo = std::lower_bound(lo, hi < end ? hi + 1 : end, v);
    if (lo == end) return;
    if (*lo == v) out->push_back(v);
  }
}

std::unique_ptr<CompressedSet> PlainListCodec::Encode(
    std::span<const uint32_t> sorted, uint64_t /*domain*/) const {
  auto set = std::make_unique<Set>();
  set->values = VArray<uint32_t>(
      std::vector<uint32_t>(sorted.begin(), sorted.end()));
  return set;
}

void PlainListCodec::Decode(const CompressedSet& set,
                            std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  // "Decompression" of an uncompressed list = allocating a new array and
  // copying (paper §5).
  out->assign(s.values.begin(), s.values.end());
}

void PlainListCodec::Intersect(const CompressedSet& a, const CompressedSet& b,
                               std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  const auto* small = &sa;
  const auto* large = &sb;
  if (small->values.size() > large->values.size()) std::swap(small, large);
  if (large->values.size() >= 8 * std::max<size_t>(1, small->values.size())) {
    GallopIntersect(small->values, large->values, out);
  } else {
    IntersectLists(small->values, large->values, out);
  }
}

void PlainListCodec::Union(const CompressedSet& a, const CompressedSet& b,
                           std::vector<uint32_t>* out) const {
  UnionLists(static_cast<const Set&>(a).values,
             static_cast<const Set&>(b).values, out);
}

void PlainListCodec::IntersectWithList(const CompressedSet& a,
                                       std::span<const uint32_t> probe,
                                       std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  if (sa.values.size() >= 8 * std::max<size_t>(1, probe.size())) {
    GallopIntersect(probe, sa.values, out);
  } else {
    IntersectLists(probe, sa.values, out);
  }
}

void PlainListCodec::Serialize(const CompressedSet& set,
                               std::vector<uint8_t>* out) const {
  WriteSpan<uint32_t>(static_cast<const Set&>(set).values, out);
}

std::unique_ptr<CompressedSet> PlainListCodec::Deserialize(
    const uint8_t* data, size_t size) const {
  ByteReader reader(data, size);
  auto set = std::make_unique<Set>();
  std::vector<uint32_t> values;
  if (!ReadVector(&reader, &values)) return nullptr;
  set->values = VArray<uint32_t>(std::move(values));
  return set;
}

std::unique_ptr<CompressedSet> PlainListCodec::DeserializeView(
    std::span<const uint8_t> image) const {
  // [u64 count][values...] — values start 8 bytes in; misaligned images
  // fall back to the copying parse.
  CheckedByteReader reader(image.data(), image.size());
  uint64_t n = 0;
  if (!reader.GetU64(&n)) return nullptr;
  if (n > reader.Remaining() / sizeof(uint32_t)) return nullptr;
  const uint8_t* p = image.data() + reader.Position();
  if (reinterpret_cast<uintptr_t>(p) % alignof(uint32_t) != 0) {
    return Deserialize(image.data(), image.size());
  }
  auto set = std::make_unique<Set>();
  set->values = VArray<uint32_t>::View(
      {reinterpret_cast<const uint32_t*>(p), static_cast<size_t>(n)});
  return set;
}

Status PlainListCodec::ValidateSet(const CompressedSet& set,
                                   uint64_t domain) const {
  const auto& s = static_cast<const Set&>(set);
  const uint64_t dmax = std::min<uint64_t>(domain, uint64_t{1} << 32);
  // Intersection gallops under the assumption of sorted unique values.
  for (size_t i = 0; i < s.values.size(); ++i) {
    if (i > 0 && s.values[i] <= s.values[i - 1])
      return Status::Corrupt("List: values not strictly increasing");
    if (s.values[i] >= dmax)
      return Status::Corrupt("List: value past domain");
  }
  return Status::Ok();
}

}  // namespace intcomp
