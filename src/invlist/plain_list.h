// List — the uncompressed inverted-list baseline ("List" in the paper's
// legends). Decompression is a memory copy (the paper measures exactly
// that); intersection gallops via binary search when sizes are skewed.

#ifndef INTCOMP_INVLIST_PLAIN_LIST_H_
#define INTCOMP_INVLIST_PLAIN_LIST_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/varray.h"
#include "core/codec.h"

namespace intcomp {

class PlainListCodec final : public Codec {
 public:
  struct Set final : CompressedSet {
    // Owned when encoded in memory; a borrowed view when mmap-backed.
    VArray<uint32_t> values;

    size_t SizeInBytes() const override { return values.size() * 4; }
    size_t Cardinality() const override { return values.size(); }
  };

  PlainListCodec() = default;

  std::string_view Name() const override { return "List"; }
  CodecFamily Family() const override { return CodecFamily::kInvertedList; }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t domain) const override;
  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override;
  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override;
  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override;
  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override;
  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override;
  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override;
  std::unique_ptr<CompressedSet> DeserializeView(
      std::span<const uint8_t> image) const override;
  bool SupportsViewDeserialize() const override { return true; }
  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override;
};

// Galloping (exponential + binary search) intersection of a small sorted
// list into a large one; also used by the SvS driver.
void GallopIntersect(std::span<const uint32_t> small_list,
                     std::span<const uint32_t> large_list,
                     std::vector<uint32_t>* out);

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_PLAIN_LIST_H_
