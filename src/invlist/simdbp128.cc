#include "invlist/simdbp128.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"
#include "common/simdpack.h"

namespace intcomp {
namespace simdbp_internal {

void EncodeBlockImpl(const uint32_t* in, size_t n, std::vector<uint8_t>* out) {
  int b = 0;
  for (size_t i = 0; i < n; ++i) b = std::max(b, BitWidth32(in[i]));

  uint32_t buf[kSimdBlockSize] = {};  // zero padding for tail blocks
  std::memcpy(buf, in, n * sizeof(uint32_t));

  out->push_back(static_cast<uint8_t>(b));
  uint32_t packed[kSimdBlockSize];
  SimdPack128(buf, b, packed);
  const size_t packed_bytes = SimdPackedWords(b) * 4;
  const size_t pos = out->size();
  out->resize(pos + packed_bytes);
  std::memcpy(out->data() + pos, packed, packed_bytes);
}

size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out) {
  const int b = data[0];
  // The caller guarantees room for a full 128-value block.
  SimdUnpack128(reinterpret_cast<const uint32_t*>(data + 1), b, out);
  (void)n;
  return 1 + SimdPackedWords(b) * 4;
}

bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed) {
  if (avail < 1) return false;
  const int b = data[0];
  if (b > 32) return false;  // SimdUnpack128 is defined for b in [0, 32]
  const size_t packed_bytes = SimdPackedWords(b) * 4;
  if (1 + packed_bytes > avail) return false;
  SimdUnpack128(reinterpret_cast<const uint32_t*>(data + 1), b, out);
  (void)n;
  *consumed = 1 + packed_bytes;
  return true;
}

}  // namespace simdbp_internal
}  // namespace intcomp
