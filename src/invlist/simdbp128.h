// SIMDBP128 and SIMDBP128* — paper §3.11, [25].
//
// SIMDBP128 packs 128 d-gaps per block with the vertical SIMD layout using
// the block's maximum bit width (the 1-byte width is the per-block slice of
// the 16-byte bucket metadata the paper describes for 2048-integer
// buckets). SIMDBP128* is *not* d-gap based (paper §3 overview): each block
// stores values rebased to the block's first element (frame of reference),
// so decoding skips the prefix sum — faster than SIMDPforDelta* at the cost
// of more space (paper §5.1(3)).
//
// Block layout: [b u8][packed: 16*b bytes], tails zero-padded to 128.

#ifndef INTCOMP_INVLIST_SIMDBP128_H_
#define INTCOMP_INVLIST_SIMDBP128_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

namespace simdbp_internal {
void EncodeBlockImpl(const uint32_t* in, size_t n, std::vector<uint8_t>* out);
size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out);
bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed);
}  // namespace simdbp_internal

struct SimdBp128Traits {
  static constexpr char kName[] = "SIMDBP128";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = true;
  static constexpr bool kFixed128 = true;  // SIMD blocks are always 128 wide

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    simdbp_internal::EncodeBlockImpl(in, n, out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return simdbp_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return simdbp_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                   consumed);
  }
};

struct SimdBp128StarTraits {
  static constexpr char kName[] = "SIMDBP128*";
  static constexpr bool kDeltaBased = false;  // frame of reference, no d-gaps
  static constexpr bool kSimdPrefix = false;
  static constexpr bool kFixed128 = true;  // SIMD blocks are always 128 wide

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    simdbp_internal::EncodeBlockImpl(in, n, out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return simdbp_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return simdbp_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                   consumed);
  }
};

using SimdBp128Codec = BlockedListCodec<SimdBp128Traits>;
using SimdBp128StarCodec = BlockedListCodec<SimdBp128StarTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_SIMDBP128_H_
