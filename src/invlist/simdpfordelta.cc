#include "invlist/simdpfordelta.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"
#include "common/simdpack.h"

namespace intcomp {
namespace simdpfor_internal {
namespace {

int ChooseWidth(const uint32_t* in, size_t n, int threshold_percent) {
  int hist[33] = {};
  int max_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    int w = BitWidth32(in[i]);
    ++hist[w];
    max_bits = std::max(max_bits, w);
  }
  const size_t needed =
      (n * static_cast<size_t>(threshold_percent) + 99) / 100;
  size_t covered = 0;
  for (int b = 0; b <= 32; ++b) {
    covered += hist[b];
    if (covered >= needed) return b;
  }
  return max_bits;
}

}  // namespace

void EncodeBlockImpl(const uint32_t* in, size_t n, int threshold_percent,
                     std::vector<uint8_t>* out) {
  const int b = ChooseWidth(in, n, threshold_percent);
  const uint32_t mask = LowMask32(b);

  uint32_t low[kSimdBlockSize] = {};  // zero padding for tail blocks
  uint8_t exc_pos[kSimdBlockSize];
  uint32_t exc_high[kSimdBlockSize];
  size_t n_exc = 0;
  for (size_t i = 0; i < n; ++i) {
    low[i] = in[i] & mask;
    if (BitWidth32(in[i]) > b) {
      exc_pos[n_exc] = static_cast<uint8_t>(i);
      exc_high[n_exc] = in[i] >> b;
      ++n_exc;
    }
  }

  out->push_back(static_cast<uint8_t>(b));
  out->push_back(static_cast<uint8_t>(n_exc));

  uint32_t packed[kSimdBlockSize];
  SimdPack128(low, b, packed);
  const size_t packed_bytes = SimdPackedWords(b) * 4;
  const size_t pos = out->size();
  out->resize(pos + packed_bytes);
  std::memcpy(out->data() + pos, packed, packed_bytes);

  out->insert(out->end(), exc_pos, exc_pos + n_exc);
  const size_t hpos = out->size();
  out->resize(hpos + n_exc * 4);
  std::memcpy(out->data() + hpos, exc_high, n_exc * 4);
}

size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out) {
  const int b = data[0];
  const size_t n_exc = data[1];
  size_t pos = 2;

  // The caller guarantees room for a full 128-value block.
  SimdUnpack128(reinterpret_cast<const uint32_t*>(data + pos), b, out);
  pos += SimdPackedWords(b) * 4;

  const uint8_t* exc_pos = data + pos;
  pos += n_exc;
  for (size_t k = 0; k < n_exc; ++k) {
    uint32_t high;
    std::memcpy(&high, data + pos + k * 4, 4);
    out[exc_pos[k]] |= high << b;
  }
  pos += n_exc * 4;
  (void)n;
  return pos;
}

bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed) {
  if (avail < 2) return false;
  const int b = data[0];
  const size_t n_exc = data[1];
  // b > 32 makes SimdUnpack128 read past the payload it was sized for; an
  // exception at the maximal width would shift its high bits by 32
  // (undefined) — genuine blocks never have exceptions when b == 32.
  if (b > 32) return false;
  if (n_exc > 0 && b >= 32) return false;
  const size_t packed_bytes = SimdPackedWords(b) * 4;
  if (2 + packed_bytes + n_exc + n_exc * 4 > avail) return false;

  size_t pos = 2;
  SimdUnpack128(reinterpret_cast<const uint32_t*>(data + pos), b, out);
  pos += packed_bytes;

  const uint8_t* exc_pos = data + pos;
  pos += n_exc;
  for (size_t k = 0; k < n_exc; ++k) {
    // Positions are u8 (up to 255); the output buffer holds 128 values and
    // genuine blocks only patch real elements.
    if (exc_pos[k] >= n) return false;
    uint32_t high;
    std::memcpy(&high, data + pos + k * 4, 4);
    out[exc_pos[k]] |= high << b;
  }
  pos += n_exc * 4;
  *consumed = pos;
  return true;
}

}  // namespace simdpfor_internal
}  // namespace intcomp
