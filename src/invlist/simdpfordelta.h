// SIMDPforDelta and SIMDPforDelta* — paper §3.10, [25].
//
// PforDelta with the 128-bit vertical SIMD layout: the low b bits of all
// 128 d-gaps are packed so one SIMD instruction touches four elements, and
// decoding finishes with a SIMD prefix sum. Exceptions (absent in the *
// variant, which uses the full width) are patched from explicit
// position/high-bit arrays, as SIMD-PFOR implementations do.
//
// Block layout: [b u8][n_exc u8][packed: 16*b bytes]
//               [positions: n_exc u8][highs: n_exc u32]
// Blocks are always packed as full 128-value groups (tails are
// zero-padded), which is what makes the unpack branch-free.

#ifndef INTCOMP_INVLIST_SIMDPFORDELTA_H_
#define INTCOMP_INVLIST_SIMDPFORDELTA_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

namespace simdpfor_internal {
void EncodeBlockImpl(const uint32_t* in, size_t n, int threshold_percent,
                     std::vector<uint8_t>* out);
size_t DecodeBlockImpl(const uint8_t* data, size_t n, uint32_t* out);
bool CheckedDecodeBlockImpl(const uint8_t* data, size_t avail, size_t n,
                            uint32_t* out, size_t* consumed);
}  // namespace simdpfor_internal

struct SimdPforDeltaTraits {
  static constexpr char kName[] = "SIMDPforDelta";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = true;
  static constexpr bool kFixed128 = true;  // SIMD blocks are always 128 wide

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    simdpfor_internal::EncodeBlockImpl(in, n, 90, out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return simdpfor_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return simdpfor_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                     consumed);
  }
};

struct SimdPforDeltaStarTraits {
  static constexpr char kName[] = "SIMDPforDelta*";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = true;
  static constexpr bool kFixed128 = true;  // SIMD blocks are always 128 wide

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    simdpfor_internal::EncodeBlockImpl(in, n, 100, out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return simdpfor_internal::DecodeBlockImpl(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return simdpfor_internal::CheckedDecodeBlockImpl(data, avail, n, out,
                                                     consumed);
  }
};

using SimdPforDeltaCodec = BlockedListCodec<SimdPforDeltaTraits>;
using SimdPforDeltaStarCodec = BlockedListCodec<SimdPforDeltaStarTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_SIMDPFORDELTA_H_
