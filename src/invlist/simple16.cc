#include "invlist/simple16.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"

namespace intcomp {
namespace {

struct Run {
  int bits;
  int count;
};

struct Case {
  int total;    // number of values in this layout
  Run runs[3];  // up to 3 (bits,count) runs; count 0 terminates
};

// The standard Simple16 selector table (Zhang, Long & Suel, WWW'08).
constexpr Case kCases[16] = {
    {28, {{1, 28}, {0, 0}, {0, 0}}},  //  0
    {21, {{2, 7}, {1, 14}, {0, 0}}},  //  1
    {21, {{1, 7}, {2, 7}, {1, 7}}},   //  2
    {21, {{1, 14}, {2, 7}, {0, 0}}},  //  3
    {14, {{2, 14}, {0, 0}, {0, 0}}},  //  4
    {9, {{4, 1}, {3, 8}, {0, 0}}},    //  5
    {8, {{3, 1}, {4, 4}, {3, 3}}},    //  6
    {7, {{4, 7}, {0, 0}, {0, 0}}},    //  7
    {6, {{5, 4}, {4, 2}, {0, 0}}},    //  8
    {6, {{4, 2}, {5, 4}, {0, 0}}},    //  9
    {5, {{6, 3}, {5, 2}, {0, 0}}},    // 10
    {5, {{5, 2}, {6, 3}, {0, 0}}},    // 11
    {4, {{7, 4}, {0, 0}, {0, 0}}},    // 12
    {3, {{10, 1}, {9, 2}, {0, 0}}},   // 13
    {2, {{14, 2}, {0, 0}, {0, 0}}},   // 14
    {1, {{28, 1}, {0, 0}, {0, 0}}},   // 15
};

// Escape: selector 15 with all 28 data bits set, followed by a raw word.
// Any value >= kEscapeThreshold is escaped (including the marker value
// itself, so decoding is unambiguous).
constexpr uint32_t kEscapeThreshold = (1u << 28) - 1;
constexpr uint32_t kEscapeWord = (15u << 28) | kEscapeThreshold;

void PutWord(uint32_t w, std::vector<uint8_t>* out) {
  size_t pos = out->size();
  out->resize(pos + 4);
  std::memcpy(out->data() + pos, &w, 4);
}

// Returns the number of input values consumed if `sel` can encode the run
// starting at in[i], or 0 if it cannot.
size_t TryCase(uint32_t sel, const uint32_t* in, size_t i, size_t n) {
  const Case& c = kCases[sel];
  const size_t take = std::min<size_t>(c.total, n - i);
  size_t j = 0;
  for (const Run& r : c.runs) {
    for (int k = 0; k < r.count && j < take; ++k, ++j) {
      if (BitWidth32(in[i + j]) > r.bits) return 0;
    }
  }
  return take;
}

uint32_t PackCase(uint32_t sel, const uint32_t* in, size_t i, size_t take) {
  const Case& c = kCases[sel];
  uint32_t word = sel << 28;
  int shift = 0;
  size_t j = 0;
  for (const Run& r : c.runs) {
    for (int k = 0; k < r.count; ++k, shift += r.bits) {
      if (j < take) word |= in[i + j++] << shift;
    }
  }
  return word;
}

}  // namespace

void Simple16EncodeArray(const uint32_t* in, size_t n,
                         std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < n) {
    if (in[i] >= kEscapeThreshold) {
      PutWord(kEscapeWord, out);
      PutWord(in[i], out);
      ++i;
      continue;
    }
    for (uint32_t sel = 0; sel < 16; ++sel) {
      size_t take = TryCase(sel, in, i, n);
      if (take > 0) {
        PutWord(PackCase(sel, in, i, take), out);
        i += take;
        break;
      }
    }
    // Selector 15 (1x28 bits) always fits values < 2^28-1, so the loop
    // above always emits.
  }
}

size_t Simple16DecodeArray(const uint8_t* data, size_t n, uint32_t* out) {
  size_t pos = 0;
  size_t i = 0;
  while (i < n) {
    uint32_t word;
    std::memcpy(&word, data + pos, 4);
    pos += 4;
    if (word == kEscapeWord) {
      std::memcpy(&out[i], data + pos, 4);
      pos += 4;
      ++i;
      continue;
    }
    const Case& c = kCases[word >> 28];
    const size_t take = std::min<size_t>(c.total, n - i);
    int shift = 0;
    size_t j = 0;
    for (const Run& r : c.runs) {
      const uint32_t mask = LowMask32(r.bits);
      for (int k = 0; k < r.count; ++k, shift += r.bits) {
        if (j < take) out[i + j++] = (word >> shift) & mask;
      }
    }
    i += take;
  }
  return pos;
}

bool Simple16CheckedDecodeArray(const uint8_t* data, size_t avail, size_t n,
                                uint32_t* out, size_t* consumed) {
  size_t pos = 0;
  size_t i = 0;
  while (i < n) {
    if (avail - pos < 4) return false;
    uint32_t word;
    std::memcpy(&word, data + pos, 4);
    pos += 4;
    if (word == kEscapeWord) {
      if (avail - pos < 4) return false;
      std::memcpy(&out[i], data + pos, 4);
      pos += 4;
      ++i;
      continue;
    }
    const Case& c = kCases[word >> 28];
    const size_t take = std::min<size_t>(c.total, n - i);
    int shift = 0;
    size_t j = 0;
    for (const Run& r : c.runs) {
      const uint32_t mask = LowMask32(r.bits);
      for (int k = 0; k < r.count; ++k, shift += r.bits) {
        if (j < take) out[i + j++] = (word >> shift) & mask;
      }
    }
    i += take;
  }
  *consumed = pos;
  return true;
}

size_t Simple16MeasureArray(const uint32_t* in, size_t n) {
  size_t words = 0;
  size_t i = 0;
  while (i < n) {
    if (in[i] >= kEscapeThreshold) {
      words += 2;
      ++i;
      continue;
    }
    for (uint32_t sel = 0; sel < 16; ++sel) {
      size_t take = TryCase(sel, in, i, n);
      if (take > 0) {
        ++words;
        i += take;
        break;
      }
    }
  }
  return words * 4;
}

}  // namespace intcomp
