// Simple16 — paper §3.7, [42].
//
// Like Simple9 but all 16 selector values are used, with mixed-width layouts
// that waste no data bits (e.g. the 5x5-bit Simple9 case becomes 3x6+2x5 and
// 2x5+3x6). Values >= 2^28-1 use an escape: a selector-15 codeword whose
// data bits are all ones, followed by one raw 32-bit value (the only format
// deviation; see DESIGN.md).
//
// The array encoder/decoder is also exported for NewPforDelta and
// OptPforDelta, which compress their exception arrays with Simple16
// (paper §3.4).

#ifndef INTCOMP_INVLIST_SIMPLE16_H_
#define INTCOMP_INVLIST_SIMPLE16_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

// Appends the Simple16 encoding of in[0..n) to out.
void Simple16EncodeArray(const uint32_t* in, size_t n,
                         std::vector<uint8_t>* out);

// Decodes exactly n values; returns bytes consumed.
size_t Simple16DecodeArray(const uint8_t* data, size_t n, uint32_t* out);

// Bounds-checked mirror of Simple16DecodeArray for untrusted payloads: never
// reads at or past data + avail. Every 4-bit selector is a legal layout, so
// only truncation can fail. On success decodes the same n values and sets
// *consumed. Also used to validate NewPforDelta/OptPforDelta exception
// arrays.
bool Simple16CheckedDecodeArray(const uint8_t* data, size_t avail, size_t n,
                                uint32_t* out, size_t* consumed);

// Returns the number of bytes Simple16EncodeArray would produce.
size_t Simple16MeasureArray(const uint32_t* in, size_t n);

struct Simple16Traits {
  static constexpr char kName[] = "Simple16";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out) {
    Simple16EncodeArray(in, n, out);
  }
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
    return Simple16DecodeArray(data, n, out);
  }
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed) {
    return Simple16CheckedDecodeArray(data, avail, n, out, consumed);
  }
};

using Simple16Codec = BlockedListCodec<Simple16Traits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_SIMPLE16_H_
