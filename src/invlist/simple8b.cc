#include "invlist/simple8b.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"

namespace intcomp {
namespace {

// Values per codeword and bits per value for selectors 2..15.
struct Case {
  int count;
  int bits;
};
constexpr Case kCases[16] = {
    {240, 0}, {120, 0},          // runs of 1s
    {60, 1},  {30, 2},  {20, 3}, {15, 4}, {12, 5}, {10, 6},
    {8, 7},   {7, 8},   {6, 10}, {5, 12}, {4, 15}, {3, 20},
    {2, 30},  {1, 60},
};

void PutWord64(uint64_t w, std::vector<uint8_t>* out) {
  size_t pos = out->size();
  out->resize(pos + 8);
  std::memcpy(out->data() + pos, &w, 8);
}

}  // namespace

void Simple8bTraits::EncodeBlock(const uint32_t* in, size_t n,
                                 std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < n) {
    for (uint64_t sel = 0; sel < 16; ++sel) {
      const Case c = kCases[sel];
      const size_t take = std::min<size_t>(c.count, n - i);
      bool fits = true;
      if (sel <= 1) {
        // Run cases require a full run of 1s.
        if (take < static_cast<size_t>(c.count)) {
          fits = false;
        } else {
          for (size_t j = 0; j < take && fits; ++j) fits = in[i + j] == 1;
        }
      } else {
        for (size_t j = 0; j < take && fits; ++j) {
          fits = BitWidth32(in[i + j]) <= c.bits;
        }
      }
      if (!fits) continue;
      uint64_t word = sel << 60;
      if (sel > 1) {
        for (size_t j = 0; j < take; ++j) {
          word |= static_cast<uint64_t>(in[i + j]) << (j * c.bits);
        }
      }
      PutWord64(word, out);
      i += take;
      break;
      // Selector 15 (1x60 bits) always fits, so this loop always emits.
    }
  }
}

size_t Simple8bTraits::DecodeBlock(const uint8_t* data, size_t n,
                                   uint32_t* out) {
  size_t pos = 0;
  size_t i = 0;
  while (i < n) {
    uint64_t word;
    std::memcpy(&word, data + pos, 8);
    pos += 8;
    const uint64_t sel = word >> 60;
    const Case c = kCases[sel];
    const size_t take = std::min<size_t>(c.count, n - i);
    if (sel <= 1) {
      for (size_t j = 0; j < take; ++j) out[i + j] = 1;
    } else {
      const uint64_t mask = LowMask64(c.bits);
      for (size_t j = 0; j < take; ++j) {
        out[i + j] = static_cast<uint32_t>((word >> (j * c.bits)) & mask);
      }
    }
    i += take;
  }
  return pos;
}

bool Simple8bTraits::CheckedDecodeBlock(const uint8_t* data, size_t avail,
                                        size_t n, uint32_t* out,
                                        size_t* consumed) {
  // All 16 selectors are legal layouts, so only truncation can fail.
  size_t pos = 0;
  size_t i = 0;
  while (i < n) {
    if (avail - pos < 8) return false;
    uint64_t word;
    std::memcpy(&word, data + pos, 8);
    pos += 8;
    const uint64_t sel = word >> 60;
    const Case c = kCases[sel];
    const size_t take = std::min<size_t>(c.count, n - i);
    if (sel <= 1) {
      for (size_t j = 0; j < take; ++j) out[i + j] = 1;
    } else {
      const uint64_t mask = LowMask64(c.bits);
      for (size_t j = 0; j < take; ++j) {
        out[i + j] = static_cast<uint32_t>((word >> (j * c.bits)) & mask);
      }
    }
    i += take;
  }
  *consumed = pos;
  return true;
}

}  // namespace intcomp
