// Simple8b — paper §3.8, [3].
//
// 64-bit codewords: a 4-bit selector plus 60 data bits (fewer selector bits
// per encoded bit than Simple9/16). Selectors 0 and 1 are the Anh–Moffat
// run cases (a run of values all equal to 1 — the common gap in dense
// lists); selectors 2..15 pack 60..1 values of 1..60 bits. 60-bit slots
// cover any uint32, so no escape is needed.

#ifndef INTCOMP_INVLIST_SIMPLE8B_H_
#define INTCOMP_INVLIST_SIMPLE8B_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

struct Simple8bTraits {
  static constexpr char kName[] = "Simple8b";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out);
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out);
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed);
};

using Simple8bCodec = BlockedListCodec<Simple8bTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_SIMPLE8B_H_
