#include "invlist/simple9.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"

namespace intcomp {
namespace {

struct Case {
  int count;
  int bits;
};

// Selector 0..8; selector 9 is the 32-bit escape.
constexpr Case kCases[9] = {{28, 1}, {14, 2}, {9, 3},  {7, 4}, {5, 5},
                            {4, 7},  {3, 9},  {2, 14}, {1, 28}};
constexpr uint32_t kEscapeSelector = 9;

void PutWord(uint32_t w, std::vector<uint8_t>* out) {
  size_t pos = out->size();
  out->resize(pos + 4);
  std::memcpy(out->data() + pos, &w, 4);
}

}  // namespace

void Simple9Traits::EncodeBlock(const uint32_t* in, size_t n,
                                std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < n) {
    bool emitted = false;
    for (uint32_t sel = 0; sel < 9; ++sel) {
      const Case c = kCases[sel];
      const size_t take = std::min<size_t>(c.count, n - i);
      bool fits = true;
      for (size_t j = 0; j < take; ++j) {
        if (BitWidth32(in[i + j]) > c.bits) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      uint32_t word = sel << 28;
      for (size_t j = 0; j < take; ++j) {
        word |= in[i + j] << (j * c.bits);
      }
      PutWord(word, out);
      i += take;
      emitted = true;
      break;
    }
    if (!emitted) {
      // Value >= 2^28: escape codeword + raw value.
      PutWord(kEscapeSelector << 28, out);
      PutWord(in[i], out);
      ++i;
    }
  }
}

size_t Simple9Traits::DecodeBlock(const uint8_t* data, size_t n,
                                  uint32_t* out) {
  size_t pos = 0;
  size_t i = 0;
  while (i < n) {
    uint32_t word;
    std::memcpy(&word, data + pos, 4);
    pos += 4;
    const uint32_t sel = word >> 28;
    if (sel == kEscapeSelector) {
      std::memcpy(&out[i], data + pos, 4);
      pos += 4;
      ++i;
      continue;
    }
    const Case c = kCases[sel];
    const uint32_t mask = LowMask32(c.bits);
    const size_t take = std::min<size_t>(c.count, n - i);
    for (size_t j = 0; j < take; ++j) {
      out[i + j] = (word >> (j * c.bits)) & mask;
    }
    i += take;
  }
  return pos;
}

bool Simple9Traits::CheckedDecodeBlock(const uint8_t* data, size_t avail,
                                       size_t n, uint32_t* out,
                                       size_t* consumed) {
  size_t pos = 0;
  size_t i = 0;
  while (i < n) {
    if (avail - pos < 4) return false;
    uint32_t word;
    std::memcpy(&word, data + pos, 4);
    pos += 4;
    const uint32_t sel = word >> 28;
    if (sel == kEscapeSelector) {
      if (avail - pos < 4) return false;
      std::memcpy(&out[i], data + pos, 4);
      pos += 4;
      ++i;
      continue;
    }
    // Selectors 10..15 have no layout; DecodeBlock would index past kCases.
    if (sel > kEscapeSelector) return false;
    const Case c = kCases[sel];
    const uint32_t mask = LowMask32(c.bits);
    const size_t take = std::min<size_t>(c.count, n - i);
    for (size_t j = 0; j < take; ++j) {
      out[i + j] = (word >> (j * c.bits)) & mask;
    }
    i += take;
  }
  *consumed = pos;
  return true;
}

}  // namespace intcomp
