// Simple9 — paper §3.6, [2].
//
// Each 32-bit codeword has 4 status bits selecting one of 9 layouts of its
// 28 data bits (28x1b .. 1x28b); the densest layout that fits the next run
// of gaps is chosen greedily. Values >= 2^28 cannot be represented by the
// original format; we add an escape selector (9) whose codeword is followed
// by one raw 32-bit value (see DESIGN.md substitutions).

#ifndef INTCOMP_INVLIST_SIMPLE9_H_
#define INTCOMP_INVLIST_SIMPLE9_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

struct Simple9Traits {
  static constexpr char kName[] = "Simple9";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out);
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out);
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed);
};

using Simple9Codec = BlockedListCodec<Simple9Traits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_SIMPLE9_H_
