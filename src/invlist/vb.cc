#include "invlist/vb.h"

#include "common/vbyte_raw.h"

namespace intcomp {

void VbTraits::EncodeBlock(const uint32_t* in, size_t n,
                           std::vector<uint8_t>* out) {
  for (size_t i = 0; i < n; ++i) VByteEncode(in[i], out);
}

size_t VbTraits::DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) out[i] = VByteDecode(data, &pos);
  return pos;
}

bool VbTraits::CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                  uint32_t* out, size_t* consumed) {
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t value = 0;
    int shift = 0;
    while (true) {
      if (pos >= avail) return false;
      const uint8_t byte = data[pos++];
      // Reject values that do not fit 32 bits: a 5th byte may only carry
      // bits 28..31, and a 6th byte never exists (VByteLength <= 5).
      if (shift == 28 && (byte & 0x70) != 0) return false;
      value |= static_cast<uint32_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift > 28) return false;
    }
    out[i] = value;
  }
  *consumed = pos;
  return true;
}

}  // namespace intcomp
