#include "invlist/vb.h"

#include "common/vbyte_raw.h"

namespace intcomp {

void VbTraits::EncodeBlock(const uint32_t* in, size_t n,
                           std::vector<uint8_t>* out) {
  for (size_t i = 0; i < n; ++i) VByteEncode(in[i], out);
}

size_t VbTraits::DecodeBlock(const uint8_t* data, size_t n, uint32_t* out) {
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) out[i] = VByteDecode(data, &pos);
  return pos;
}

}  // namespace intcomp
