// VB (Variable Byte) inverted-list codec — paper §3.1, [15].
//
// Each d-gap is stored in 1..5 bytes: 7 data bits per byte, LSB group first,
// MSB flags a continuation. The paper's "lesson 6" codec: the simplest to
// implement, byte- rather than bit-oriented.

#ifndef INTCOMP_INVLIST_VB_H_
#define INTCOMP_INVLIST_VB_H_

#include <cstdint>
#include <vector>

#include "invlist/blocked_list.h"

namespace intcomp {

struct VbTraits {
  static constexpr char kName[] = "VB";
  static constexpr bool kDeltaBased = true;
  static constexpr bool kSimdPrefix = false;

  static void EncodeBlock(const uint32_t* in, size_t n,
                          std::vector<uint8_t>* out);
  static size_t DecodeBlock(const uint8_t* data, size_t n, uint32_t* out);
  static bool CheckedDecodeBlock(const uint8_t* data, size_t avail, size_t n,
                                 uint32_t* out, size_t* consumed);
};

using VbCodec = BlockedListCodec<VbTraits>;

}  // namespace intcomp

#endif  // INTCOMP_INVLIST_VB_H_
