#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <utility>

#include "core/registry.h"

namespace intcomp {
namespace net {

Status QueryClient::Connect(const std::string& host, uint16_t port) {
  Close();
  decoder_ = FrameDecoder(max_payload_);

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("connect");

  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = std::move(fd);
  return Status::Ok();
}

Status QueryClient::SendRaw(const uint8_t* data, size_t n) {
  if (!fd_.ok()) return Status::Unavailable("client not connected");
  return WriteAll(fd_.get(), data, n);
}

Status QueryClient::ReadResponse(QueryResponse* resp) {
  if (!fd_.ok()) return Status::Unavailable("client not connected");
  std::vector<uint8_t> payload;
  uint8_t buf[64 * 1024];
  while (true) {
    Status err = Status::Ok();
    const FrameDecoder::Result r = decoder_.Next(&payload, &err);
    if (r == FrameDecoder::Result::kBad) {
      Close();  // framing lost byte alignment; the connection is dead
      return err;
    }
    if (r == FrameDecoder::Result::kFrame) {
      return ParseResponsePayload(payload, resp);
    }
    size_t n = 0;
    const Status rs = ReadSome(fd_.get(), buf, sizeof(buf), &n);
    if (!rs.ok()) return rs;
    if (n == 0) {
      Close();
      return Status::Unavailable("server closed connection");
    }
    decoder_.Feed(buf, n);
  }
}

Status QueryClient::RoundTrip(const std::vector<uint8_t>& frame,
                              QueryResponse* resp) {
  Status st = SendRaw(frame.data(), frame.size());
  if (!st.ok()) return st;
  return ReadResponse(resp);
}

Status QueryClient::Query(std::string_view plan_text, uint64_t deadline_ns,
                          std::vector<uint32_t>* rows) {
  rows->clear();
  QueryRequest req;
  req.type = MsgType::kQuery;
  req.deadline_ns = deadline_ns;
  req.plan_text.assign(plan_text);
  std::vector<uint8_t> frame;
  EncodeRequestFrame(req, &frame);

  QueryResponse resp;
  Status st = RoundTrip(frame, &resp);
  if (!st.ok()) return st;
  if (resp.code != StatusCode::kOk) return Status(resp.code, resp.message);
  if (!resp.has_rows) return Status::Corrupt("OK reply without rows");

  const Codec* codec = FindCodec(resp.codec_name);
  if (codec == nullptr) {
    return Status::Corrupt("reply uses unknown codec: " + resp.codec_name);
  }
  // The image came over the network: it crosses the checked trust boundary
  // before any decode touches it.
  auto set = codec->DeserializeChecked(resp.image, resp.domain);
  if (!set.ok()) return set.status();
  codec->Decode(**set, rows);
  return Status::Ok();
}

Status QueryClient::Ping() {
  QueryRequest req;
  req.type = MsgType::kPing;
  std::vector<uint8_t> frame;
  EncodeRequestFrame(req, &frame);
  QueryResponse resp;
  Status st = RoundTrip(frame, &resp);
  if (!st.ok()) return st;
  if (resp.code != StatusCode::kOk) return Status(resp.code, resp.message);
  return Status::Ok();
}

}  // namespace net
}  // namespace intcomp
