// QueryClient — blocking TCP client for the QueryServer wire protocol.
//
// One client owns one connection and is NOT thread-safe (the load generator
// opens one client per concurrent stream, which also matches how the server
// accounts connections). Query() sends a plan in the service/plan_text
// grammar, waits for the reply frame, and — on an OK reply — decodes the
// row image through the wire codec's DeserializeChecked, the same trust
// boundary every on-disk payload crosses: a byzantine server can fail the
// query but cannot make the client read out of bounds.
//
// Status mapping: server-reported errors come back with their original
// StatusCode (kInvalidArgument, kDeadlineExceeded, kOverloaded, ...);
// transport failures (connect refused, peer reset, short read) are
// kUnavailable; a malformed reply frame is kCorruptData.

#ifndef INTCOMP_NET_CLIENT_H_
#define INTCOMP_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/socket_io.h"
#include "net/wire.h"

namespace intcomp {
namespace net {

class QueryClient {
 public:
  explicit QueryClient(size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_(max_payload_bytes) {}

  // Connects to host:port. kUnavailable on failure. Reconnecting an already
  // connected client closes the old connection first.
  Status Connect(const std::string& host, uint16_t port);

  bool Connected() const { return fd_.ok(); }
  void Close() { fd_.Reset(); }

  // Round-trips one query. `deadline_ns` is the relative per-request
  // deadline (0 = server default). On OK, *rows holds the sorted global row
  // ids. On any error *rows is empty.
  Status Query(std::string_view plan_text, uint64_t deadline_ns,
               std::vector<uint32_t>* rows);

  // Liveness probe: one kPing round trip.
  Status Ping();

  // Raw-stream access for protocol tests: send arbitrary bytes (fuzzers
  // splice corrupted frames in), read one reply frame off the wire.
  Status SendRaw(const uint8_t* data, size_t n);
  Status ReadResponse(QueryResponse* resp);

  int raw_fd() const { return fd_.get(); }

 private:
  // Writes `frame`, then blocks for the next reply frame.
  Status RoundTrip(const std::vector<uint8_t>& frame, QueryResponse* resp);

  size_t max_payload_;
  ScopedFd fd_;
  FrameDecoder decoder_{kDefaultMaxPayloadBytes};
};

}  // namespace net
}  // namespace intcomp

#endif  // INTCOMP_NET_CLIENT_H_
