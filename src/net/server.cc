#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/plan_text.h"

namespace intcomp {
namespace net {

namespace {

// Counter bump that also feeds the metrics registry when it is enabled, so
// load_gen exports net.* next to engine.* and perf_check can gate both.
void Count(std::atomic<uint64_t>* local, const char* name) {
  local->fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::Global();
  if (reg.Enabled()) reg.AddCounter(name, 1);
}

}  // namespace

QueryServer::QueryServer(IndexService* service, const ServerOptions& options)
    : service_(service), options_(options) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  wire_codec_ = FindCodec(options_.wire_codec);
  if (wire_codec_ == nullptr) {
    return Status::InvalidArgument("unknown wire codec: " +
                                   options_.wire_codec);
  }

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), 128) != 0) return ErrnoStatus("listen");

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &blen) !=
      0) {
    return ErrnoStatus("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  listen_fd_ = std::move(fd);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QueryServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    ReapFinished(/*all=*/false);
    const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down; anything else (EMFILE, ...) also
      // ends the accept loop rather than spinning on a broken listener.
      break;
    }
    ScopedFd conn(cfd);
    Count(&accepted_, "net.accepted");
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (conn_fds_.size() >= options_.max_connections ||
        draining_.load(std::memory_order_acquire)) {
      Count(&refused_, "net.refused");
      continue;  // ScopedFd closes: connection refused by resource cap
    }
    const uint64_t id = next_conn_id_++;
    conn_fds_.emplace(id, conn.get());
    conns_.emplace(id, std::thread([this, id, c = std::move(conn)]() mutable {
                     ServeConnection(std::move(c), id);
                   }));
  }
}

void QueryServer::ServeConnection(ScopedFd fd, uint64_t conn_id) {
  if (options_.idle_timeout_ms > 0) {
    (void)SetRecvTimeoutMs(fd.get(), options_.idle_timeout_ms);
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  FrameDecoder decoder(options_.max_payload_bytes);
  std::vector<uint8_t> payload, reply;
  uint8_t buf[64 * 1024];

  while (true) {
    Status frame_err = Status::Ok();
    const FrameDecoder::Result r = decoder.Next(&payload, &frame_err);
    if (r == FrameDecoder::Result::kBad) {
      // Framing is unrecoverable: one best-effort error reply, then close.
      Count(&malformed_, "net.malformed");
      reply.clear();
      QueryResponse resp;
      resp.code = frame_err.code();
      resp.message = frame_err.message();
      EncodeResponseFrame(resp, &reply);
      (void)WriteAll(fd.get(), reply.data(), reply.size());
      break;
    }
    if (r == FrameDecoder::Result::kFrame) {
      QueryRequest req;
      reply.clear();
      const Status ps =
          ParseRequestPayload(payload, options_.max_payload_bytes, &req);
      if (!ps.ok()) {
        // The frame itself was intact (magic + CRC), so the stream is still
        // aligned: report the bad payload and keep serving.
        Count(&malformed_, "net.malformed");
        QueryResponse resp;
        resp.code = ps.code();
        resp.message = ps.message();
        EncodeResponseFrame(resp, &reply);
      } else {
        HandleRequest(req, &reply);
      }
      if (!WriteAll(fd.get(), reply.data(), reply.size()).ok()) break;
      continue;
    }
    // kNeedMore: pull more bytes from the socket.
    size_t n = 0;
    const Status rs = ReadSome(fd.get(), buf, sizeof(buf), &n);
    if (!rs.ok()) {
      if (rs.code() == StatusCode::kDeadlineExceeded) {
        Count(&idle_closed_, "net.idle_closed");
      }
      break;
    }
    if (n == 0) break;  // peer closed (or Stop()'s SHUT_RD drained to EOF)
    decoder.Feed(buf, n);
  }

  std::lock_guard<std::mutex> lk(conns_mu_);
  conn_fds_.erase(conn_id);
  finished_.push_back(conn_id);
  conns_cv_.notify_all();
}

void QueryServer::HandleRequest(const QueryRequest& req,
                                std::vector<uint8_t>* reply) {
  Count(&requests_, "net.requests");
  QueryResponse resp;

  if (req.type == MsgType::kPing) {
    EncodeResponseFrame(resp, reply);
    return;
  }

  // Admission control: reserve an in-flight slot or shed immediately. The
  // CAS loop (rather than fetch_add + undo) never overshoots the budget, so
  // a rejected request can't transiently push a concurrent admit over.
  size_t cur = in_flight_.load(std::memory_order_relaxed);
  bool admitted = false;
  while (cur < options_.max_in_flight) {
    if (in_flight_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acq_rel)) {
      admitted = true;
      break;
    }
  }
  if (!admitted) {
    Count(&overloaded_, "net.overloaded");
    const Status st =
        Status::Overloaded("server overloaded: in-flight budget exhausted");
    resp.code = st.code();
    resp.message = st.message();
    EncodeResponseFrame(resp, reply);
    return;
  }
  struct SlotRelease {
    std::atomic<size_t>* slots;
    ~SlotRelease() { slots->fetch_sub(1, std::memory_order_release); }
  } release{&in_flight_};
  if (options_.on_admitted) options_.on_admitted();

  TRACE_SPAN("net_request");
  obs::ScopedOpTimer timer(wire_codec_->Name(), obs::OpKind::kNetRequest);

  Status st;
  std::vector<uint32_t> rows;
  QueryPlan plan;
  st = ParsePlanText(req.plan_text, &plan);
  if (st.ok()) {
    CancellationToken token;
    token.ChainParent(&drain_token_);
    const uint64_t deadline_ns =
        req.deadline_ns != 0 ? req.deadline_ns : options_.default_deadline_ns;
    token.SetDeadlineAfterNs(deadline_ns);
    st = service_->Query(plan, &token, &rows);
  }

  if (st.ok()) {
    Count(&ok_, "net.ok");
    // The result rows ride back as a compressed-set image of the wire codec
    // — the same Serialize/DeserializeChecked boundary disk images cross.
    const uint64_t domain =
        std::max<uint64_t>(service_->Snapshot()->NumRows(), 1);
    const auto set = wire_codec_->Encode(rows, domain);
    resp.has_rows = true;
    resp.codec_name = wire_codec_->Name();
    resp.domain = domain;
    wire_codec_->Serialize(*set, &resp.image);
  } else {
    if (st.code() == StatusCode::kDeadlineExceeded ||
        st.code() == StatusCode::kCancelled) {
      Count(&deadline_, "net.deadline");
    } else if (st.code() == StatusCode::kInvalidArgument) {
      Count(&rejected_, "net.rejected");
    }
    resp.code = st.code();
    resp.message = st.message();
  }
  EncodeResponseFrame(resp, reply);
}

void QueryServer::ReapFinished(bool all) {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (all) {
      for (auto& [id, t] : conns_) joinable.push_back(std::move(t));
      conns_.clear();
      finished_.clear();
    } else {
      for (uint64_t id : finished_) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;  // already taken by an all-reap
        joinable.push_back(std::move(it->second));
        conns_.erase(it);
      }
      finished_.clear();
    }
  }
  // Joins happen outside conns_mu_: the exiting thread's own cleanup takes
  // that lock, so joining under it would deadlock.
  for (std::thread& t : joinable) t.join();
}

void QueryServer::Stop() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    // A concurrent/previous Stop() owns the drain; wait for its join.
    if (accept_thread_.joinable()) return;  // destructor will re-enter
    return;
  }

  // 1. Stop accepting: shutdown() wakes a blocked accept() where a plain
  //    close() would not; the fd itself stays alive until the thread joins.
  if (listen_fd_.ok()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();

  // 2. Half-close every live connection: readers wake with EOF and exit,
  //    but responses for in-flight requests still flush on the write side.
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RD);
  }

  // 3. Grace period, then trip the drain token so any query still running
  //    finishes promptly as kCancelled.
  {
    std::unique_lock<std::mutex> lk(conns_mu_);
    conns_cv_.wait_for(lk, std::chrono::milliseconds(options_.drain_timeout_ms),
                       [this] { return conn_fds_.empty(); });
  }
  drain_token_.Cancel();

  // 4. Join everything; Stop() returns only once no connection thread runs.
  ReapFinished(/*all=*/true);
}

QueryServer::Stats QueryServer::GetStats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.deadline = deadline_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace intcomp
