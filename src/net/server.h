// QueryServer — the length-prefixed TCP front end over IndexService
// (DESIGN.md §5.14).
//
// Threading model: one accept thread plus one thread per live connection.
// Connection threads do the protocol work (framing, parsing, response
// encoding) and call IndexService::Query, whose shard fan-out runs on the
// shared work-stealing ThreadPool — so the pool stays the single execution
// backbone and connection threads are just I/O pumps that block on it.
// (Request handling must NOT itself run on the pool: Query waits for pool
// quiescence, and a pool task waiting on the pool deadlocks.)
//
// Admission control: a bounded in-flight budget (`max_in_flight`). A query
// arriving with the budget exhausted is shed immediately with an explicit
// kOverloaded reply — the client learns to back off in one round trip —
// instead of queueing unboundedly in front of the pool, which under an
// open-loop arrival process would convert overload into unbounded latency
// for every request behind it. Connections beyond `max_connections` are
// refused at accept.
//
// Deadlines: each request's relative deadline (or the server default) is
// armed on a per-request CancellationToken chained onto the server's drain
// token; IndexService polls it at plan-node boundaries, so an expired
// deadline frees the connection's worker within one decode/intersect and
// the client gets kDeadlineExceeded. A client that stalls mid-frame is
// bounded by `idle_timeout_ms` (socket receive timeout) and costs no pool
// worker at all — only its own connection thread, which then exits.
//
// Error containment: a malformed payload inside a valid frame gets a
// Status error reply and the connection continues; a framing error (bad
// magic, oversized declared length, CRC mismatch) gets one error reply and
// a close, because the byte stream has lost alignment. Nothing a client
// sends can crash the server — the protocol fuzz campaign pins this down.
//
// Drain protocol (Stop()):
//   1. stop accepting (listener closed),
//   2. shutdown(SHUT_RD) every connection — in-flight requests keep
//      computing and their responses still flow back; idle readers wake
//      with EOF and exit,
//   3. after `drain_timeout_ms`, trip the drain token so runaway queries
//      finish as kCancelled,
//   4. join every thread. Stop() returns only when the last connection is
//      gone, so destruction is race-free.

#ifndef INTCOMP_NET_SERVER_H_
#define INTCOMP_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/cancel.h"
#include "net/socket_io.h"
#include "net/wire.h"
#include "service/sharded_index.h"

namespace intcomp {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;             // 0 = ephemeral; see QueryServer::port()
  size_t max_in_flight = 64;     // admission budget (queries being evaluated)
  size_t max_connections = 256;  // accept-time cap
  size_t max_payload_bytes = kDefaultMaxPayloadBytes;
  uint64_t default_deadline_ns = 0;   // applied when a request carries none
  uint64_t idle_timeout_ms = 30000;   // stalled-client bound (0 = none)
  uint64_t drain_timeout_ms = 5000;   // Stop(): grace before cancelling
  std::string wire_codec = "VB";      // registry codec for response rows
  // Test hook: runs on the connection thread for every admitted query,
  // while the admission slot is held and before evaluation — lets tests
  // park a request deterministically to observe overload shedding.
  std::function<void()> on_admitted;
};

class QueryServer {
 public:
  // `service` is borrowed and must outlive the server.
  QueryServer(IndexService* service, const ServerOptions& options);
  ~QueryServer();  // implies Stop()

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens, and spawns the accept thread. kUnavailable on bind
  // failure (port taken), kInvalidArgument for an unknown wire codec.
  Status Start();

  // The bound port (after Start(); the interesting case is port 0 in the
  // options, where the kernel picked).
  uint16_t port() const { return port_; }

  // Graceful drain; idempotent; implied by the destructor.
  void Stop();

  // Point-in-time counters (also exported as net.* metrics when the
  // registry is enabled).
  struct Stats {
    uint64_t accepted = 0;
    uint64_t refused = 0;        // over max_connections
    uint64_t requests = 0;       // well-formed requests seen
    uint64_t ok = 0;
    uint64_t overloaded = 0;     // shed by admission control
    uint64_t deadline = 0;       // kDeadlineExceeded replies
    uint64_t rejected = 0;       // kInvalidArgument replies (bad plan)
    uint64_t malformed = 0;      // framing/payload errors
    uint64_t idle_closed = 0;    // stalled clients reaped by idle timeout
  };
  Stats GetStats() const;

  size_t InFlight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(ScopedFd fd, uint64_t conn_id);
  // Handles one parsed request; appends the response frame to *reply.
  void HandleRequest(const QueryRequest& req, std::vector<uint8_t>* reply);
  void ReapFinished(bool all);

  IndexService* service_;
  ServerOptions options_;
  const Codec* wire_codec_ = nullptr;

  ScopedFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  CancellationToken drain_token_;  // parent of every per-request token

  std::mutex conns_mu_;
  std::condition_variable conns_cv_;                 // fires on conn exit
  std::unordered_map<uint64_t, int> conn_fds_;       // live sockets, by id
  std::unordered_map<uint64_t, std::thread> conns_;  // live + unreaped
  std::vector<uint64_t> finished_;                   // ids ready to join
  uint64_t next_conn_id_ = 0;

  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> accepted_{0}, refused_{0}, requests_{0}, ok_{0},
      overloaded_{0}, deadline_{0}, rejected_{0}, malformed_{0},
      idle_closed_{0};
};

}  // namespace net
}  // namespace intcomp

#endif  // INTCOMP_NET_SERVER_H_
