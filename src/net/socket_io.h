// Small POSIX TCP helpers shared by the server, the client, and the
// protocol tests. Everything reports Status instead of errno so callers
// stay on the repo's error-propagation idiom; writes use MSG_NOSIGNAL so a
// peer that closed mid-response surfaces as an error return, never SIGPIPE.

#ifndef INTCOMP_NET_SOCKET_IO_H_
#define INTCOMP_NET_SOCKET_IO_H_

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "common/status.h"

namespace intcomp {
namespace net {

// Owns a file descriptor; closes on destruction. -1 = empty.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

inline Status ErrnoStatus(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

// Blocking receive timeout; 0 disables the timeout.
inline Status SetRecvTimeoutMs(int fd, uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

// Writes all of [data, data+n); EINTR-restarted, SIGPIPE-suppressed.
inline Status WriteAll(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

// One blocking read. *n receives the byte count; 0 with OK status means the
// peer closed cleanly. A receive timeout surfaces as kDeadlineExceeded so
// the server can distinguish a stalled client from a network failure.
inline Status ReadSome(int fd, uint8_t* buf, size_t cap, size_t* n) {
  while (true) {
    const ssize_t r = ::recv(fd, buf, cap, 0);
    if (r >= 0) {
      *n = static_cast<size_t>(r);
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *n = 0;
      return Status::DeadlineExceeded("socket receive timeout");
    }
    *n = 0;
    return ErrnoStatus("recv");
  }
}

}  // namespace net
}  // namespace intcomp

#endif  // INTCOMP_NET_SOCKET_IO_H_
