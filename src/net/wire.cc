#include "net/wire.h"

#include <cstring>

#include "common/crc32.h"

namespace intcomp {
namespace net {

namespace {

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 8);
  std::memcpy(out->data() + n, &v, 8);
}

void PutBytes(std::span<const uint8_t> bytes, std::vector<uint8_t>* out) {
  out->insert(out->end(), bytes.begin(), bytes.end());
}

// A string whose length must fit the given prefix width; callers bound the
// inputs (plan caps, codec names) well below these limits.
void PutString8(std::string_view s, std::vector<uint8_t>* out) {
  PutU8(static_cast<uint8_t>(s.size()), out);
  PutBytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()}, out);
}

void PutString32(std::string_view s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  PutBytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()}, out);
}

bool ValidStatusCode(uint8_t v) {
  return v <= static_cast<uint8_t>(StatusCode::kOverloaded);
}

}  // namespace

void AppendFrame(std::span<const uint8_t> payload, std::vector<uint8_t>* out) {
  PutU32(kFrameMagic, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(Crc32Of(payload), out);
  PutBytes(payload, out);
}

void EncodeRequestFrame(const QueryRequest& req, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutU8(static_cast<uint8_t>(req.type), &payload);
  if (req.type == MsgType::kQuery) {
    PutU64(req.deadline_ns, &payload);
    PutString32(req.plan_text, &payload);
  }
  AppendFrame(payload, out);
}

void EncodeResponseFrame(const QueryResponse& resp, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutU8(static_cast<uint8_t>(MsgType::kReply), &payload);
  PutU8(static_cast<uint8_t>(resp.code), &payload);
  PutString32(resp.message, &payload);
  PutU8(resp.has_rows ? 1 : 0, &payload);
  if (resp.has_rows) {
    PutString8(resp.codec_name, &payload);
    PutU64(resp.domain, &payload);
    PutU32(static_cast<uint32_t>(resp.image.size()), &payload);
    PutBytes(resp.image, &payload);
  }
  AppendFrame(payload, out);
}

Status ParseRequestPayload(std::span<const uint8_t> payload,
                           size_t max_plan_bytes, QueryRequest* out) {
  CheckedByteReader r(payload.data(), payload.size());
  uint8_t type = 0;
  if (!r.GetU8(&type)) return Status::Corrupt("request truncated: no type");
  if (type == static_cast<uint8_t>(MsgType::kPing)) {
    if (!r.AtEnd()) return Status::Corrupt("trailing bytes after ping");
    out->type = MsgType::kPing;
    out->deadline_ns = 0;
    out->plan_text.clear();
    return Status::Ok();
  }
  if (type != static_cast<uint8_t>(MsgType::kQuery)) {
    return Status::Corrupt("unknown request type");
  }
  uint64_t deadline_ns = 0;
  uint32_t plan_len = 0;
  if (!r.GetU64(&deadline_ns) || !r.GetU32(&plan_len)) {
    return Status::Corrupt("request truncated: header");
  }
  // Declared-length check against what is actually present AND the cap:
  // plan_len is attacker-controlled (0 and 2^32-1 are both legal encodings
  // of hostility here).
  if (plan_len > max_plan_bytes) {
    return Status::Corrupt("declared plan length exceeds cap");
  }
  if (plan_len > r.Remaining()) {
    return Status::Corrupt("declared plan length exceeds payload");
  }
  out->plan_text.resize(plan_len);
  if (plan_len > 0 &&
      !r.GetBytes(reinterpret_cast<uint8_t*>(out->plan_text.data()),
                  plan_len)) {
    return Status::Corrupt("request truncated: plan");
  }
  if (!r.AtEnd()) return Status::Corrupt("trailing bytes after request");
  out->type = MsgType::kQuery;
  out->deadline_ns = deadline_ns;
  return Status::Ok();
}

Status ParseResponsePayload(std::span<const uint8_t> payload,
                            QueryResponse* out) {
  CheckedByteReader r(payload.data(), payload.size());
  uint8_t type = 0, code = 0, has_rows = 0;
  uint32_t msg_len = 0;
  if (!r.GetU8(&type)) return Status::Corrupt("response truncated: no type");
  if (type != static_cast<uint8_t>(MsgType::kReply)) {
    return Status::Corrupt("unknown response type");
  }
  if (!r.GetU8(&code) || !ValidStatusCode(code)) {
    return Status::Corrupt("bad response status code");
  }
  if (!r.GetU32(&msg_len) || msg_len > r.Remaining()) {
    return Status::Corrupt("declared message length exceeds payload");
  }
  out->message.resize(msg_len);
  if (msg_len > 0 &&
      !r.GetBytes(reinterpret_cast<uint8_t*>(out->message.data()), msg_len)) {
    return Status::Corrupt("response truncated: message");
  }
  if (!r.GetU8(&has_rows) || has_rows > 1) {
    return Status::Corrupt("bad has_rows flag");
  }
  out->code = static_cast<StatusCode>(code);
  out->has_rows = has_rows == 1;
  out->codec_name.clear();
  out->domain = 0;
  out->image.clear();
  if (!out->has_rows) {
    if (!r.AtEnd()) return Status::Corrupt("trailing bytes after response");
    return Status::Ok();
  }
  uint8_t codec_len = 0;
  if (!r.GetU8(&codec_len) || codec_len > r.Remaining()) {
    return Status::Corrupt("declared codec name exceeds payload");
  }
  out->codec_name.resize(codec_len);
  if (codec_len > 0 &&
      !r.GetBytes(reinterpret_cast<uint8_t*>(out->codec_name.data()),
                  codec_len)) {
    return Status::Corrupt("response truncated: codec name");
  }
  uint32_t image_len = 0;
  if (!r.GetU64(&out->domain) || !r.GetU32(&image_len) ||
      image_len > r.Remaining()) {
    return Status::Corrupt("declared image length exceeds payload");
  }
  out->image.resize(image_len);
  if (image_len > 0 && !r.GetBytes(out->image.data(), image_len)) {
    return Status::Corrupt("response truncated: image");
  }
  if (!r.AtEnd()) return Status::Corrupt("trailing bytes after response");
  return Status::Ok();
}

FrameDecoder::Result FrameDecoder::Next(std::vector<uint8_t>* payload,
                                        Status* error) {
  if (bad_) {
    *error = bad_status_;
    return Result::kBad;
  }
  if (buf_.size() < kFrameHeaderBytes) return Result::kNeedMore;
  uint8_t header[kFrameHeaderBytes];
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) header[i] = buf_[i];
  uint32_t magic = 0, len = 0, crc = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&len, header + 4, 4);
  std::memcpy(&crc, header + 8, 4);
  if (magic != kFrameMagic) {
    bad_ = true;
    bad_status_ = Status::Corrupt("bad frame magic");
  } else if (len > max_payload_) {
    // Reject on the declared length alone: never buffer toward an
    // attacker-chosen 2^32-1.
    bad_ = true;
    bad_status_ = Status::Corrupt("declared frame length exceeds cap");
  }
  if (bad_) {
    *error = bad_status_;
    return Result::kBad;
  }
  if (buf_.size() < kFrameHeaderBytes + len) return Result::kNeedMore;
  payload->assign(buf_.begin() + kFrameHeaderBytes,
                  buf_.begin() + kFrameHeaderBytes + len);
  if (Crc32Of(*payload) != crc) {
    payload->clear();
    bad_ = true;
    bad_status_ = Status::Corrupt("frame checksum mismatch");
    *error = bad_status_;
    return Result::kBad;
  }
  buf_.erase(buf_.begin(), buf_.begin() + kFrameHeaderBytes + len);
  return Result::kFrame;
}

}  // namespace net
}  // namespace intcomp
