// Length-prefixed, CRC-framed wire protocol for the query front end
// (DESIGN.md §5.14).
//
// Every message travels in one frame:
//
//   [u32 magic "ICP1"] [u32 payload_len] [u32 crc32(payload)] [payload]
//
// all little-endian. The declared length is the trust boundary: a decoder
// rejects frames above its payload cap *before* buffering (an adversarial
// length of 2^32-1 costs 12 bytes of input, not 4 GiB of memory), and a CRC
// mismatch rejects the frame without ever handing the payload to a parser.
// Framing errors (bad magic, oversized length, CRC mismatch) are not
// recoverable — the stream has lost byte alignment — so the server replies
// with one error frame and closes; payload-level errors (malformed request
// inside a valid frame) keep the connection alive.
//
// Request payload:
//   [u8 type]                        kQuery=1, kPing=2
//   kQuery only:
//     [u64 deadline_ns]              relative deadline; 0 = server default
//     [u32 plan_len] [plan bytes]    service/plan_text grammar — the same
//                                    grammar the result-cache key and the
//                                    EXPLAIN tool use, now depth-capped
//                                    because it is untrusted input
//
// Response payload:
//   [u8 type = kReply]
//   [u8 status_code]                 StatusCode numeric value
//   [u32 msg_len] [msg bytes]        empty when OK
//   [u8 has_rows]                    1 on successful kQuery replies
//   has_rows only:
//     [u8 codec_len] [codec name]    registry name of the row encoding
//     [u64 domain]                   row-id domain the image was encoded for
//     [u32 image_len] [image]        Codec::Serialize image of the result —
//                                    decoded client-side through the same
//                                    DeserializeChecked trust boundary every
//                                    on-disk payload already crosses
//
// Every parser here is a pure function over bytes (CheckedByteReader, exact
// length required) so the fuzz layer can drive it without sockets.

#ifndef INTCOMP_NET_WIRE_H_
#define INTCOMP_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace intcomp {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x31504349;  // "ICP1" little-endian
inline constexpr size_t kFrameHeaderBytes = 12;
// Default payload cap. Covers any plan the grammar accepts at full depth and
// result images for multi-million-row answers; both server and client take
// theirs from options so tests can shrink it.
inline constexpr size_t kDefaultMaxPayloadBytes = 4u << 20;

enum class MsgType : uint8_t {
  kQuery = 1,
  kPing = 2,
  kReply = 3,
};

struct QueryRequest {
  MsgType type = MsgType::kQuery;
  uint64_t deadline_ns = 0;  // relative; 0 = use the server default
  std::string plan_text;     // empty for kPing
};

struct QueryResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool has_rows = false;
  std::string codec_name;       // row-image encoding (registry name)
  uint64_t domain = 0;          // row-id domain of the image
  std::vector<uint8_t> image;   // Codec::Serialize bytes of the result set
};

// Appends one complete frame (header + payload) to *out.
void AppendFrame(std::span<const uint8_t> payload, std::vector<uint8_t>* out);

// Serializes a request into a ready-to-send frame appended to *out.
void EncodeRequestFrame(const QueryRequest& req, std::vector<uint8_t>* out);

// Serializes a response into a ready-to-send frame appended to *out. OK
// query replies carry the row image; error replies and ping replies don't.
void EncodeResponseFrame(const QueryResponse& resp, std::vector<uint8_t>* out);

// Parses a frame payload into a request. Exact-length: trailing bytes after
// a well-formed request are an error (they would desynchronize a framed
// stream that trusted them). Returns kCorruptData with a reason on any
// malformed input; plan text longer than `max_plan_bytes` is rejected here
// so the plan parser never sees unbounded input.
Status ParseRequestPayload(std::span<const uint8_t> payload,
                           size_t max_plan_bytes, QueryRequest* out);

// Parses a frame payload into a response (structural only — the row image
// is NOT decoded here; the client runs it through DeserializeChecked).
Status ParseResponsePayload(std::span<const uint8_t> payload,
                            QueryResponse* out);

// Incremental frame decoder over an arbitrary byte-chunked stream (the
// receive path of both server and client). Feed() appends raw bytes; Next()
// yields complete validated payloads in order.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_(max_payload_bytes) {}

  void Feed(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  enum class Result {
    kFrame,     // *payload holds the next frame's validated payload
    kNeedMore,  // no complete frame buffered yet
    kBad,       // stream unrecoverable; *error says why
  };

  // On kBad the decoder stays bad forever: framing errors lose byte
  // alignment, so the only sound continuation is closing the connection.
  Result Next(std::vector<uint8_t>* payload, Status* error);

  size_t BufferedBytes() const { return buf_.size(); }

 private:
  size_t max_payload_;
  std::deque<uint8_t> buf_;
  bool bad_ = false;
  Status bad_status_;
};

}  // namespace net
}  // namespace intcomp

#endif  // INTCOMP_NET_WIRE_H_
