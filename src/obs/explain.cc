#include "obs/explain.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/fast_clock.h"
#include "obs/json.h"
#include "obs/op_counters.h"

namespace intcomp {
namespace obs {

namespace detail {
std::atomic<uint32_t> g_explain_active{0};
}  // namespace detail

namespace {

// Timing attributes (keys ending in "_ns") carry wall time and are dropped
// from the timing-stripped JSON form along with start_ns/dur_ns.
bool IsTimingAttr(const ExplainAttr& a) {
  return a.key.size() >= 3 && a.key.compare(a.key.size() - 3, 3, "_ns") == 0;
}

void AppendAttrValue(const ExplainAttr& a, std::string* out) {
  char buf[32];
  switch (a.kind) {
    case ExplainAttr::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(a.u));
      *out += buf;
      break;
    case ExplainAttr::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.1f", a.d);
      *out += buf;
      break;
    case ExplainAttr::Kind::kStr:
      out->push_back('"');
      *out += JsonEscape(a.s);
      out->push_back('"');
      break;
  }
}

void AppendNodeJson(const ExplainNode& n, bool include_timings,
                    std::string* out) {
  char buf[64];
  *out += "{\"name\":\"";
  *out += JsonEscape(n.name);
  out->push_back('"');
  if (include_timings) {
    std::snprintf(buf, sizeof(buf), ",\"start_ns\":%llu,\"dur_ns\":%llu",
                  static_cast<unsigned long long>(n.start_ns),
                  static_cast<unsigned long long>(n.dur_ns));
    *out += buf;
  }
  bool any_attr = false;
  for (const ExplainAttr& a : n.attrs) {
    if (!include_timings && IsTimingAttr(a)) continue;
    *out += any_attr ? "," : ",\"attrs\":{";
    any_attr = true;
    out->push_back('"');
    *out += JsonEscape(a.key);
    *out += "\":";
    AppendAttrValue(a, out);
  }
  if (any_attr) out->push_back('}');
  if (!n.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendNodeJson(n.children[i], include_timings, out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

void SortByOrdinal(ExplainNode* n) {
  std::stable_sort(n->children.begin(), n->children.end(),
                   [](const ExplainNode& a, const ExplainNode& b) {
                     return a.ordinal < b.ordinal;
                   });
  for (ExplainNode& child : n->children) SortByOrdinal(&child);
}

void AppendNodePretty(const ExplainNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += n.name;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  %.3f ms",
                static_cast<double>(n.dur_ns) / 1e6);
  *out += buf;
  for (const ExplainAttr& a : n.attrs) {
    *out += "  ";
    *out += a.key;
    out->push_back('=');
    switch (a.kind) {
      case ExplainAttr::Kind::kUint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(a.u));
        *out += buf;
        break;
      case ExplainAttr::Kind::kDouble:
        std::snprintf(buf, sizeof(buf), "%.1f", a.d);
        *out += buf;
        break;
      case ExplainAttr::Kind::kStr:
        *out += a.s;
        break;
    }
  }
  out->push_back('\n');
  for (const ExplainNode& child : n.children) {
    AppendNodePretty(child, depth + 1, out);
  }
}

}  // namespace

const ExplainAttr* ExplainNode::FindAttr(std::string_view key) const {
  for (const ExplainAttr& a : attrs) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

size_t ExplainNode::CountNodes(std::string_view node_name) const {
  size_t n = name == node_name ? 1 : 0;
  for (const ExplainNode& child : children) n += child.CountNodes(node_name);
  return n;
}

const ExplainNode* ExplainNode::Find(std::string_view node_name) const {
  if (name == node_name) return this;
  for (const ExplainNode& child : children) {
    if (const ExplainNode* hit = child.Find(node_name)) return hit;
  }
  return nullptr;
}

std::string QueryExplain::ToString() const {
  if (!ok) return "(no explain data)\n";
  std::string out;
  AppendNodePretty(root, 0, &out);
  return out;
}

std::string QueryExplain::ToJson(bool include_timings) const {
  if (!ok) return "{}";
  std::string out;
  AppendNodeJson(root, include_timings, &out);
  return out;
}

QueryExplain ExplainSink::Build() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryExplain out;
  if (recs_.empty()) return out;
  // Assemble bottom-up: children attach to parents in record order, which is
  // program order per recording thread; racing siblings are then ordered by
  // their explicit ordinal (stable sort keeps record order within a tie).
  std::vector<ExplainNode> nodes(recs_.size());
  for (size_t i = 0; i < recs_.size(); ++i) {
    const Rec& r = recs_[i];
    nodes[i].name = r.name;
    nodes[i].start_ns = r.start_ns;
    nodes[i].dur_ns = r.dur_ns;
    nodes[i].ordinal = r.ordinal;
    nodes[i].attrs = r.attrs;
  }
  for (size_t i = recs_.size(); i-- > 1;) {
    const uint64_t parent = recs_[i].parent;
    if (parent == 0 || parent > recs_.size()) continue;
    std::vector<ExplainNode>& siblings = nodes[parent - 1].children;
    siblings.insert(siblings.begin(), std::move(nodes[i]));
  }
  out.ok = true;
  out.root = std::move(nodes[0]);
  SortByOrdinal(&out.root);
  return out;
}

uint64_t ExplainSink::Open(const char* name, uint64_t parent,
                           uint64_t ordinal, uint64_t start_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Rec rec;
  rec.parent = parent;
  rec.name = name;
  rec.start_ns = start_ns;
  rec.ordinal = ordinal;
  recs_.push_back(std::move(rec));
  return recs_.size();
}

void ExplainSink::Close(uint64_t id, uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  recs_[id - 1].dur_ns = dur_ns;
}

void ExplainSink::Attr(uint64_t id, ExplainAttr attr) {
  std::lock_guard<std::mutex> lock(mu_);
  recs_[id - 1].attrs.push_back(std::move(attr));
}

ScopedExplainCapture::ScopedExplainCapture(ExplainSink* sink) {
  detail::ExplainTls& tls = detail::t_explain;
  saved_sink_ = tls.sink;
  saved_parent_ = tls.parent;
  tls.sink = sink;
  tls.parent = 0;
  detail::g_explain_active.fetch_add(1, std::memory_order_relaxed);
}

ScopedExplainCapture::~ScopedExplainCapture() {
  detail::ExplainTls& tls = detail::t_explain;
  tls.sink = saved_sink_;
  tls.parent = saved_parent_;
  detail::g_explain_active.fetch_sub(1, std::memory_order_relaxed);
}

ExplainContext CurrentExplainContext() {
  if (!ExplainActive()) return ExplainContext{};
  const detail::ExplainTls& tls = detail::t_explain;
  return ExplainContext{tls.sink, tls.parent};
}

ScopedExplainContext::ScopedExplainContext(const ExplainContext& ctx) {
  if (ctx.sink == nullptr) return;
  detail::ExplainTls& tls = detail::t_explain;
  saved_sink_ = tls.sink;
  saved_parent_ = tls.parent;
  tls.sink = ctx.sink;
  tls.parent = ctx.parent;
  applied_ = true;
}

ScopedExplainContext::~ScopedExplainContext() {
  if (!applied_) return;
  detail::ExplainTls& tls = detail::t_explain;
  tls.sink = saved_sink_;
  tls.parent = saved_parent_;
}

void ExplainScope::Begin(const char* name, uint64_t ordinal) {
  detail::ExplainTls& tls = detail::t_explain;
  sink_ = tls.sink;
  start_ns_ = NowNs();
  start_bytes_decoded_ = ThreadOpCounters().bytes_decoded;
  id_ = sink_->Open(name, tls.parent, ordinal, start_ns_);
  saved_parent_ = tls.parent;
  tls.parent = id_;
}

void ExplainScope::End() {
  detail::t_explain.parent = saved_parent_;
  ExplainAttr bytes;
  bytes.key = "bytes_decoded";
  bytes.u = ThreadOpCounters().bytes_decoded - start_bytes_decoded_;
  sink_->Attr(id_, std::move(bytes));
  sink_->Close(id_, NowNs() - start_ns_);
}

void ExplainScope::AddUint(const char* key, uint64_t v) {
  if (sink_ == nullptr) return;
  ExplainAttr a;
  a.key = key;
  a.kind = ExplainAttr::Kind::kUint;
  a.u = v;
  sink_->Attr(id_, std::move(a));
}

void ExplainScope::AddDouble(const char* key, double v) {
  if (sink_ == nullptr) return;
  ExplainAttr a;
  a.key = key;
  a.kind = ExplainAttr::Kind::kDouble;
  a.d = v;
  sink_->Attr(id_, std::move(a));
}

void ExplainScope::AddStr(const char* key, std::string_view v) {
  if (sink_ == nullptr) return;
  ExplainAttr a;
  a.key = key;
  a.kind = ExplainAttr::Kind::kStr;
  a.s = std::string(v);
  sink_->Attr(id_, std::move(a));
}

}  // namespace obs
}  // namespace intcomp
