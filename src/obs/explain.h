// Per-query EXPLAIN capture: a structured decision/timing tree built by the
// query path itself, opt-in per query.
//
// Relationship to the trace layer (obs/trace.h): spans answer "where did the
// nanoseconds go, sampled across the whole process"; an explain capture
// answers "what did *this* query decide and why" — which codec served each
// list, which intersection strategy the cost model picked and what it
// predicted vs. what it measured, whether the cache hit, how the fan-out
// split. Spans are always-on infrastructure with ring buffers and sampling;
// explain is a per-query opt-in that records everything for exactly one
// query into a caller-owned sink.
//
// Cost discipline mirrors TRACE_SPAN:
//   - No capture active anywhere in the process: every instrumentation site
//     is one relaxed atomic load and a branch.
//   - A capture active on *some* thread: threads not involved additionally
//     read one thread_local pointer (still no branches taken).
//   - The capturing thread: a mutex-protected append per event. Explain is
//     opt-in per query, so this is paid only by queries that asked for it.
//
// Cross-thread handoff mirrors TraceContext: CurrentExplainContext() /
// ScopedExplainContext let a worker's scopes attach under the submitting
// thread's open scope; ThreadPool::Enqueue forwards both contexts.
//
// Sibling ordering: nodes recorded by one thread appear in program order.
// Nodes racing from different threads (per-shard scopes under a fan-out)
// are ordered by the explicit `ordinal` passed to ExplainScope — the service
// passes the shard index — so the built tree is deterministic for a
// deterministic query regardless of worker scheduling.

#ifndef INTCOMP_OBS_EXPLAIN_H_
#define INTCOMP_OBS_EXPLAIN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace intcomp {
namespace obs {

// One key/value attribute on an explain node. Keys are string literals from
// our own instrumentation sites.
struct ExplainAttr {
  enum class Kind : uint8_t { kUint, kDouble, kStr };
  std::string key;
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  double d = 0.0;
  std::string s;
};

// One node of the built tree. Durations are steady-clock nanoseconds and
// inclusive of children (like spans).
struct ExplainNode {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t ordinal = 0;
  std::vector<ExplainAttr> attrs;
  std::vector<ExplainNode> children;

  // First attribute with `key`, or nullptr.
  const ExplainAttr* FindAttr(std::string_view key) const;
  // Nodes named `name` in this subtree (including this node).
  size_t CountNodes(std::string_view name) const;
  // First node named `name` in DFS order (including this node), or nullptr.
  const ExplainNode* Find(std::string_view name) const;
};

// The finished capture. `ok` is false when nothing was recorded (e.g. the
// query failed before the root scope opened).
struct QueryExplain {
  bool ok = false;
  ExplainNode root;

  // Pretty tree for terminals: one node per line, indented, with duration
  // and attributes.
  std::string ToString() const;
  // Single-line JSON object {"name":...,"start_ns":...,"dur_ns":...,
  // "attrs":{...},"children":[...]}. With include_timings=false the
  // start_ns/dur_ns fields (and measured-ns attributes, which carry wall
  // time) are omitted — that form is byte-identical across identical runs
  // and is what the determinism tests compare.
  std::string ToJson(bool include_timings = true) const;
};

// Caller-owned event store for one capture. Thread-safe for concurrent
// recorders (fan-out workers append under a mutex).
class ExplainSink {
 public:
  ExplainSink() = default;
  ExplainSink(const ExplainSink&) = delete;
  ExplainSink& operator=(const ExplainSink&) = delete;

  // Assembles the tree. Siblings are ordered by (ordinal, record order).
  // Records whose scope never closed (worker died) keep dur_ns = 0.
  QueryExplain Build() const;

 private:
  friend class ExplainScope;

  struct Rec {
    uint64_t parent = 0;
    std::string name;
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
    uint64_t ordinal = 0;
    std::vector<ExplainAttr> attrs;
  };

  // Returns the new record id (1-based; 0 is "no parent").
  uint64_t Open(const char* name, uint64_t parent, uint64_t ordinal,
                uint64_t start_ns);
  void Close(uint64_t id, uint64_t dur_ns);
  void Attr(uint64_t id, ExplainAttr attr);

  mutable std::mutex mu_;
  std::vector<Rec> recs_;
};

namespace detail {
// Count of live captures process-wide: the fast-path gate.
extern std::atomic<uint32_t> g_explain_active;

struct ExplainTls {
  ExplainSink* sink = nullptr;
  uint64_t parent = 0;  // innermost open record id on this thread
};
inline thread_local ExplainTls t_explain;
}  // namespace detail

// True iff the *calling thread* is inside an active capture. One relaxed
// load when no capture exists anywhere.
inline bool ExplainActive() {
  return detail::g_explain_active.load(std::memory_order_relaxed) != 0 &&
         detail::t_explain.sink != nullptr;
}

// Activates `sink` as the calling thread's capture target for the current
// scope. The query root; typically immediately followed by an ExplainScope.
class ScopedExplainCapture {
 public:
  explicit ScopedExplainCapture(ExplainSink* sink);
  ~ScopedExplainCapture();

  ScopedExplainCapture(const ScopedExplainCapture&) = delete;
  ScopedExplainCapture& operator=(const ScopedExplainCapture&) = delete;

 private:
  ExplainSink* saved_sink_;
  uint64_t saved_parent_;
};

// Capture of "where am I in the explain tree" for handoff to a worker.
struct ExplainContext {
  ExplainSink* sink = nullptr;
  uint64_t parent = 0;
};

// {} when the calling thread is not capturing.
ExplainContext CurrentExplainContext();

// Applies a captured context for the current scope (no-op for a null sink).
class ScopedExplainContext {
 public:
  explicit ScopedExplainContext(const ExplainContext& ctx);
  ~ScopedExplainContext();

  ScopedExplainContext(const ScopedExplainContext&) = delete;
  ScopedExplainContext& operator=(const ScopedExplainContext&) = delete;

 private:
  ExplainSink* saved_sink_ = nullptr;
  uint64_t saved_parent_ = 0;
  bool applied_ = false;
};

// RAII node. Inactive (one relaxed load) unless the thread is capturing.
// `name` must be a string literal. `ordinal` orders racing siblings.
//
// Every scope automatically records the bytes_decoded delta observed by
// this thread's OpCounters between open and close as a "bytes_decoded"
// attribute — per-node decode attribution comes for free.
class ExplainScope {
 public:
  explicit ExplainScope(const char* name, uint64_t ordinal = 0) {
    if (ExplainActive()) Begin(name, ordinal);
  }
  ~ExplainScope() {
    if (sink_ != nullptr) End();
  }

  ExplainScope(const ExplainScope&) = delete;
  ExplainScope& operator=(const ExplainScope&) = delete;

  // True when this scope is recording: guard attribute computation that is
  // not free.
  bool active() const { return sink_ != nullptr; }

  void AddUint(const char* key, uint64_t v);
  void AddDouble(const char* key, double v);
  void AddStr(const char* key, std::string_view v);

 private:
  void Begin(const char* name, uint64_t ordinal);
  void End();

  ExplainSink* sink_ = nullptr;
  uint64_t id_ = 0;
  uint64_t saved_parent_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t start_bytes_decoded_ = 0;
};

}  // namespace obs
}  // namespace intcomp

#endif  // INTCOMP_OBS_EXPLAIN_H_
