#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace intcomp {
namespace obs {

uint64_t LatencyHistogram::ValueAtPercentile(double p) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based; p=0 maps to the first.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * total)));
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += BucketCount(i);
    if (cum >= rank) return BucketUpperBound(i);
  }
  // Concurrent recording can leave count_ ahead of the bucket sums; fall
  // back to the highest non-empty bucket.
  for (int i = kBuckets - 1; i >= 0; --i) {
    if (BucketCount(i) != 0) return BucketUpperBound(i);
  }
  return 0;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t c = other.BucketCount(i);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::ToString() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "count=%llu mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus "
                "p999=%.1fus",
                static_cast<unsigned long long>(Count()), Mean() / 1e3,
                static_cast<double>(P50()) / 1e3,
                static_cast<double>(P90()) / 1e3,
                static_cast<double>(P99()) / 1e3,
                static_cast<double>(P999()) / 1e3);
  return line;
}

}  // namespace obs
}  // namespace intcomp
