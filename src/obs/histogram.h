// Lock-free fixed-bucket latency histogram.
//
// Log2 buckets with 8 linear sub-buckets per power of two (HdrHistogram-
// style): values below 8 get exact unit buckets; above, the relative
// quantile error is bounded by 1/8 = 12.5%. 496 buckets cover the full
// uint64 nanosecond range in ~4 KB of counters.
//
// Record() is three relaxed fetch_adds — safe from any number of threads,
// no locks, no allocation. Readers (quantiles, merge, export) take relaxed
// snapshots: under concurrent recording the result is a consistent-enough
// approximation (each bucket internally exact, cross-bucket skew bounded by
// the records in flight), which is the standard contract for monitoring
// histograms.

#ifndef INTCOMP_OBS_HISTOGRAM_H_
#define INTCOMP_OBS_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace intcomp {
namespace obs {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;                 // 8 sub-buckets / octave
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kBuckets = (64 - kSubBits) * kSubBuckets + kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  static int BucketIndex(uint64_t v) {
    if (v < static_cast<uint64_t>(kSubBuckets)) return static_cast<int>(v);
    const int e = 63 - std::countl_zero(v);
    const int sub =
        static_cast<int>((v >> (e - kSubBits)) & (kSubBuckets - 1));
    return (e - kSubBits + 1) * kSubBuckets + sub;
  }

  // Largest value mapping to bucket `idx` (quantiles report this bound, so
  // estimates never understate the true quantile and are monotone in p).
  static uint64_t BucketUpperBound(int idx) {
    if (idx < kSubBuckets) return static_cast<uint64_t>(idx);
    const int e = idx / kSubBuckets + kSubBits - 1;
    const int sub = idx % kSubBuckets;
    const uint64_t low =
        (uint64_t{1} << e) + (static_cast<uint64_t>(sub) << (e - kSubBits));
    return low + ((uint64_t{1} << (e - kSubBits)) - 1);
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }
  uint64_t BucketCount(int idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

  // Upper bound of the bucket containing the p-th percentile (p in
  // [0, 100]); 0 when empty. Monotone non-decreasing in p by construction.
  uint64_t ValueAtPercentile(double p) const;

  uint64_t P50() const { return ValueAtPercentile(50.0); }
  uint64_t P90() const { return ValueAtPercentile(90.0); }
  uint64_t P99() const { return ValueAtPercentile(99.0); }
  uint64_t P999() const { return ValueAtPercentile(99.9); }

  // Adds `other`'s counts into this histogram (commutative / associative up
  // to relaxed-snapshot skew; exact under quiescence).
  void MergeFrom(const LatencyHistogram& other);

  void Reset();

  // "count=12 mean=1.2ms p50=0.9ms p99=4.1ms" — for logs and bench output.
  std::string ToString() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace obs
}  // namespace intcomp

#endif  // INTCOMP_OBS_HISTOGRAM_H_
