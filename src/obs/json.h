// Tiny JSON string escaper shared by the metrics, explain, and trace-event
// exporters. Inputs are our own identifiers (codec names, span names), but
// escape anyway so a hostile name can't corrupt an exported stream.

#ifndef INTCOMP_OBS_JSON_H_
#define INTCOMP_OBS_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace intcomp {
namespace obs {

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace intcomp

#endif  // INTCOMP_OBS_JSON_H_
