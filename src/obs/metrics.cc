#include "obs/metrics.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "obs/json.h"
#include "obs/trace.h"

namespace intcomp {
namespace obs {

namespace {

void AppendQuantiles(const LatencyHistogram& h, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"count\":%llu,\"mean_ns\":%.1f,\"p50_ns\":%llu,"
                "\"p90_ns\":%llu,\"p99_ns\":%llu,\"p999_ns\":%llu",
                static_cast<unsigned long long>(h.Count()), h.Mean(),
                static_cast<unsigned long long>(h.P50()),
                static_cast<unsigned long long>(h.P90()),
                static_cast<unsigned long long>(h.P99()),
                static_cast<unsigned long long>(h.P999()));
  *out += buf;
}

}  // namespace

std::string_view OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kIntersect: return "intersect";
    case OpKind::kUnion: return "union";
    case OpKind::kDecode: return "decode";
    case OpKind::kDeserializeChecked: return "deserialize_checked";
    case OpKind::kQuery: return "query";
    case OpKind::kServiceQuery: return "service_query";
    case OpKind::kStorageOpen: return "storage_open";
    case OpKind::kWalAppend: return "wal_append";
    case OpKind::kCompaction: return "compaction";
    case OpKind::kPlannerBuild: return "planner_build";
    case OpKind::kPlannerQuery: return "planner_query";
    case OpKind::kNetRequest: return "net_request";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();  // intentionally leaked
  return *r;
}

LatencyHistogram* MetricsRegistry::OpLatency(std::string_view codec,
                                             OpKind op) {
  const size_t oi = static_cast<size_t>(op);
  {
    std::shared_lock lock(mu_);
    auto it = latency_.find(codec);
    if (it != latency_.end()) return &(*it->second)[oi];
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] =
      latency_.try_emplace(std::string(codec), nullptr);
  if (inserted) it->second = std::make_unique<OpHistograms>();
  return &(*it->second)[oi];
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  {
    std::shared_lock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second->fetch_add(delta, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = counters_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<std::atomic<uint64_t>>(0);
  it->second->fetch_add(delta, std::memory_order_relaxed);
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  return it->second->load(std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(std::string_view name, uint64_t value) {
  {
    std::shared_lock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) {
      it->second->store(value, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<std::atomic<uint64_t>>(0);
  it->second->store(value, std::memory_order_relaxed);
}

uint64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return 0;
  return it->second->load(std::memory_order_relaxed);
}

void MetricsRegistry::RecordKernelCounters(std::string_view codec,
                                           const KernelCounters& k) {
  const std::pair<const char*, uint64_t> fields[] = {
      {"scalar_merge", k.scalar_merge},   {"simd_merge", k.simd_merge},
      {"scalar_gallop", k.scalar_gallop}, {"simd_gallop", k.simd_gallop},
      {"scalar_union", k.scalar_union},   {"simd_union", k.simd_union},
      {"block_probes", k.block_probes},
  };
  std::string name;
  for (const auto& [field, value] : fields) {
    if (value == 0) continue;
    name.assign("kernel.");
    name.append(codec);
    name.push_back('.');
    name.append(field);
    AddCounter(name, value);
  }
}

std::string MetricsRegistry::ExportJsonl(std::string_view bench_name) const {
  std::string out;
  {
    char buf[64];
    out += "{\"metric\":\"meta\",\"bench\":\"";
    out += JsonEscape(bench_name);
    std::snprintf(buf, sizeof(buf), "\",\"trace_sampling\":%u}\n",
                  GetTraceSampling());
    out += buf;
  }
  std::shared_lock lock(mu_);
  for (const auto& [codec, hists] : latency_) {
    for (size_t oi = 0; oi < kNumOpKinds; ++oi) {
      const LatencyHistogram& h = (*hists)[oi];
      if (h.Count() == 0) continue;
      out += "{\"metric\":\"op_latency\",\"codec\":\"";
      out += JsonEscape(codec);
      out += "\",\"op\":\"";
      out += OpKindName(static_cast<OpKind>(oi));
      out += "\",";
      AppendQuantiles(h, &out);
      out += "}\n";
    }
  }
  for (const auto& [name, value] : counters_) {
    char buf[32];
    out += "{\"metric\":\"counter\",\"name\":\"";
    out += JsonEscape(name);
    std::snprintf(buf, sizeof(buf), "\",\"value\":%llu}\n",
                  static_cast<unsigned long long>(
                      value->load(std::memory_order_relaxed)));
    out += buf;
  }
  for (const auto& [name, value] : gauges_) {
    char buf[32];
    out += "{\"metric\":\"gauge\",\"name\":\"";
    out += JsonEscape(name);
    std::snprintf(buf, sizeof(buf), "\",\"value\":%llu}\n",
                  static_cast<unsigned long long>(
                      value->load(std::memory_order_relaxed)));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::string out;
  out +=
      "# HELP intcomp_op_latency_ns Per-codec operation latency quantiles.\n"
      "# TYPE intcomp_op_latency_ns summary\n";
  std::shared_lock lock(mu_);
  char buf[256];
  for (const auto& [codec, hists] : latency_) {
    for (size_t oi = 0; oi < kNumOpKinds; ++oi) {
      const LatencyHistogram& h = (*hists)[oi];
      if (h.Count() == 0) continue;
      const std::string_view op = OpKindName(static_cast<OpKind>(oi));
      const std::pair<const char*, uint64_t> quantiles[] = {
          {"0.5", h.P50()}, {"0.9", h.P90()},
          {"0.99", h.P99()}, {"0.999", h.P999()},
      };
      for (const auto& [q, v] : quantiles) {
        std::snprintf(buf, sizeof(buf),
                      "intcomp_op_latency_ns{codec=\"%s\",op=\"%.*s\","
                      "quantile=\"%s\"} %llu\n",
                      codec.c_str(), static_cast<int>(op.size()), op.data(),
                      q, static_cast<unsigned long long>(v));
        out += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "intcomp_op_latency_ns_sum{codec=\"%s\",op=\"%.*s\"} "
                    "%llu\n"
                    "intcomp_op_latency_ns_count{codec=\"%s\",op=\"%.*s\"} "
                    "%llu\n",
                    codec.c_str(), static_cast<int>(op.size()), op.data(),
                    static_cast<unsigned long long>(h.Sum()), codec.c_str(),
                    static_cast<int>(op.size()), op.data(),
                    static_cast<unsigned long long>(h.Count()));
      out += buf;
    }
  }
  out +=
      "# HELP intcomp_counter Named event counters.\n"
      "# TYPE intcomp_counter counter\n";
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "intcomp_counter{name=\"%s\"} %llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      value->load(std::memory_order_relaxed)));
    out += buf;
  }
  out +=
      "# HELP intcomp_gauge Point-in-time values (occupancy, depths).\n"
      "# TYPE intcomp_gauge gauge\n";
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof(buf), "intcomp_gauge{name=\"%s\"} %llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      value->load(std::memory_order_relaxed)));
    out += buf;
  }
  return out;
}

bool MetricsRegistry::ExportToFile(const std::string& path,
                                   std::string_view format,
                                   std::string_view bench_name) const {
  std::string body;
  if (format == "jsonl") {
    body = ExportJsonl(bench_name);
  } else if (format == "prom") {
    body = ExportPrometheus();
  } else {
    return false;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out.flush());
}

void MetricsRegistry::Reset() {
  std::unique_lock lock(mu_);
  latency_.clear();
  counters_.clear();
  gauges_.clear();
}

}  // namespace obs
}  // namespace intcomp
