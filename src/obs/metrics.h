// MetricsRegistry: process-wide aggregation of latency histograms (keyed
// codec × operation) and named counters, with JSONL and Prometheus-text
// exporters.
//
// The registry is disabled by default; ScopedOpTimer then costs one relaxed
// atomic load. Benches enable it through the shared --metrics-out flag
// (benchutil/metrics_export.h); services would call
// MetricsRegistry::Global().SetEnabled(true) at startup.
//
// Hot-path protocol: look up the histogram pointer once (shared-lock map
// hit, ~100 ns, amortized over a microsecond-scale operation or hoisted out
// of the loop entirely — see BatchExecutor), then Record() lock-free.

#ifndef INTCOMP_OBS_METRICS_H_
#define INTCOMP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/fast_clock.h"
#include "common/simd_intersect.h"
#include "obs/histogram.h"

namespace intcomp {
namespace obs {

// The per-codec operations the paper's breakdowns attribute cost to, plus
// the engine-level whole-query roll-up.
enum class OpKind : uint8_t {
  kIntersect = 0,
  kUnion,
  kDecode,
  kDeserializeChecked,
  kQuery,
  kServiceQuery,  // whole sharded-service query: cache probe + fan-out
  kStorageOpen,   // container open: header/directory parse + validation
  kWalAppend,     // one durable WAL record: frame build + write (+ fsync)
  kCompaction,    // whole compaction: merge + rewrite + commit + swap
  kPlannerBuild,  // per-list codec selection: stats + trial encodes
  kPlannerQuery,  // query-time strategy choice + mixed-codec execution
  kNetRequest,    // one served network request: decode + query + respond
};
inline constexpr size_t kNumOpKinds = 12;

std::string_view OpKindName(OpKind op);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool Enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Stable pointer to the (codec, op) histogram, creating it on first use.
  // The pointer stays valid for the registry's lifetime — hoist it out of
  // loops that record many samples for one key.
  LatencyHistogram* OpLatency(std::string_view codec, OpKind op);

  void RecordOpLatency(std::string_view codec, OpKind op, uint64_t ns) {
    OpLatency(codec, op)->Record(ns);
  }

  void AddCounter(std::string_view name, uint64_t delta);
  uint64_t CounterValue(std::string_view name) const;

  // Gauges: last-write-wins point-in-time values (cache occupancy, queue
  // depths) — unlike counters they can go down, so exporters label them
  // separately and perf_check never gates their values.
  void SetGauge(std::string_view name, uint64_t value);
  uint64_t GaugeValue(std::string_view name) const;

  // Folds a per-codec KernelCounters delta into counters named
  // "kernel.<codec>.<kernel>" (only non-zero fields).
  void RecordKernelCounters(std::string_view codec, const KernelCounters& k);

  // One JSON object per line:
  //   {"metric":"meta","bench":...,"kernel":...,"trace_sampling":N}
  //   {"metric":"op_latency","codec":...,"op":...,"count":N,"mean_ns":...,
  //    "p50_ns":...,"p90_ns":...,"p99_ns":...,"p999_ns":...}
  //   {"metric":"counter","name":...,"value":N}
  //   {"metric":"gauge","name":...,"value":N}
  // Keys iterate in map order, so output is deterministic for a given set of
  // recorded metrics — which is what lets tools/perf_check.py diff runs.
  std::string ExportJsonl(std::string_view bench_name) const;

  // Prometheus text exposition: intcomp_op_latency_ns{codec=,op=,quantile=}
  // summaries plus intcomp_counter{name=} counters.
  std::string ExportPrometheus() const;

  // Writes ExportJsonl (format "jsonl") or ExportPrometheus (format "prom")
  // to `path`. Returns false on I/O failure or unknown format.
  bool ExportToFile(const std::string& path, std::string_view format,
                    std::string_view bench_name) const;

  // Drops every histogram and counter (testing).
  void Reset();

 private:
  using OpHistograms = std::array<LatencyHistogram, kNumOpKinds>;

  std::atomic<bool> enabled_{false};
  mutable std::shared_mutex mu_;
  // std::map: deterministic export order; unique_ptr: histograms hold
  // atomics and must never move.
  std::map<std::string, std::unique_ptr<OpHistograms>, std::less<>> latency_;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>, std::less<>>
      gauges_;
};

// Times one codec operation into the global registry; a no-op (one relaxed
// load) when the registry is disabled.
class ScopedOpTimer {
 public:
  ScopedOpTimer(std::string_view codec, OpKind op)
      : enabled_(MetricsRegistry::Global().Enabled()) {
    if (enabled_) {
      codec_ = codec;
      op_ = op;
      start_ns_ = NowNs();
    }
  }
  ~ScopedOpTimer() {
    if (enabled_) {
      MetricsRegistry::Global().RecordOpLatency(codec_, op_,
                                                NowNs() - start_ns_);
    }
  }

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  bool enabled_;
  std::string_view codec_;
  OpKind op_ = OpKind::kIntersect;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace intcomp

#endif  // INTCOMP_OBS_METRICS_H_
