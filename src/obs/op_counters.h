// Per-thread tallies of query-path work, sampled as per-query deltas by the
// batch engine (exactly like KernelCounters in common/simd_intersect.h) to
// build each query's QueryProfile.
//
// Counters are incremented unconditionally: every site is amortized over at
// least a block's worth of work (the BlockedCursor batches its counts
// locally and flushes once per cursor), so the cost stays inside the
// observability layer's disabled-overhead budget.

#ifndef INTCOMP_OBS_OP_COUNTERS_H_
#define INTCOMP_OBS_OP_COUNTERS_H_

#include <cstdint>

namespace intcomp {
namespace obs {

struct OpCounters {
  // Compressed sets the query path evaluated against (decoded, intersected,
  // or probed).
  uint64_t lists_touched = 0;
  // Compressed bytes of every set that was fully decoded.
  uint64_t bytes_decoded = 0;
  // Blocked-list cursor traffic: blocks decoded vs. blocks the skip
  // pointers let the cursor jump over without decoding. skipped/(loaded+
  // skipped) is the skip-pointer hit rate QueryProfile reports.
  uint64_t blocks_loaded = 0;
  uint64_t blocks_skipped = 0;

  OpCounters& operator+=(const OpCounters& o) {
    lists_touched += o.lists_touched;
    bytes_decoded += o.bytes_decoded;
    blocks_loaded += o.blocks_loaded;
    blocks_skipped += o.blocks_skipped;
    return *this;
  }
  OpCounters operator-(const OpCounters& o) const {
    OpCounters d;
    d.lists_touched = lists_touched - o.lists_touched;
    d.bytes_decoded = bytes_decoded - o.bytes_decoded;
    d.blocks_loaded = blocks_loaded - o.blocks_loaded;
    d.blocks_skipped = blocks_skipped - o.blocks_skipped;
    return d;
  }
};

// Mutable reference to the calling thread's tallies.
inline OpCounters& ThreadOpCounters() {
  thread_local OpCounters counters;
  return counters;
}

}  // namespace obs
}  // namespace intcomp

#endif  // INTCOMP_OBS_OP_COUNTERS_H_
