#include "obs/trace.h"

#include <cassert>
#include <memory>
#include <mutex>

#include "common/fast_clock.h"
#include "common/prng.h"

namespace intcomp {
namespace obs {

namespace detail {
std::atomic<uint32_t> g_trace_period{0};
}  // namespace detail

namespace {

constexpr size_t kDefaultRingCapacity = 4096;

// Single-writer ring: only the owning thread touches head/written/slots
// while recording; readers synchronize externally (quiescence contract).
struct Ring {
  Ring(size_t capacity, uint32_t index)
      : slots(capacity), thread_index(index) {}

  std::vector<SpanRecord> slots;
  size_t head = 0;        // next write position
  uint64_t written = 0;   // total spans ever written (>= capacity => wrapped)
  uint32_t thread_index;
  // Spans this thread currently has open in the recording state. Atomic so
  // readers can poll it to *check* the quiescence contract; it does not make
  // concurrent snapshotting safe.
  std::atomic<uint64_t> open{0};
};

struct RingRegistry {
  std::mutex mu;
  // Rings are owned here and never destroyed: a pool thread may exit while
  // its spans are still waiting to be snapshotted. Bounded by the number of
  // distinct recording threads over the process lifetime.
  std::vector<std::unique_ptr<Ring>> rings;
  size_t capacity = kDefaultRingCapacity;
};

RingRegistry& Registry() {
  static RingRegistry* r = new RingRegistry();  // intentionally leaked
  return *r;
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_seed{0};
std::atomic<uint64_t> g_seed_epoch{1};

struct ThreadTraceState {
  Ring* ring = nullptr;
  uint64_t current_parent = 0;
  uint32_t depth = 0;       // open spans (incl. an applied ScopedTraceContext)
  bool sampled = false;     // decision of the current root
  uint64_t seed_epoch = 0;  // last SetTraceSeed generation seen
  Prng rng{0};
};

thread_local ThreadTraceState t_state;

// Registry mutex must be held.
uint64_t ActiveRecorderCountLocked(const RingRegistry& reg) {
  uint64_t open = 0;
  for (const auto& ring : reg.rings) {
    open += ring->open.load(std::memory_order_relaxed);
  }
  return open;
}

void EnsureRing(ThreadTraceState& ts) {
  if (ts.ring != nullptr) return;
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const uint32_t index = static_cast<uint32_t>(reg.rings.size());
  reg.rings.push_back(std::make_unique<Ring>(reg.capacity, index));
  ts.ring = reg.rings.back().get();
}

}  // namespace

void SetTraceSampling(uint32_t period) {
  detail::g_trace_period.store(period, std::memory_order_relaxed);
}

uint32_t GetTraceSampling() {
  return detail::g_trace_period.load(std::memory_order_relaxed);
}

void SetTraceSeed(uint64_t seed) {
  g_seed.store(seed, std::memory_order_relaxed);
  g_seed_epoch.fetch_add(1, std::memory_order_release);
}

void SetTraceRingCapacity(size_t capacity) {
  if (capacity == 0) capacity = 1;
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  assert(ActiveRecorderCountLocked(reg) == 0 &&
         "SetTraceRingCapacity requires quiescence");
  reg.capacity = capacity;
  for (auto& ring : reg.rings) {
    ring->slots.assign(capacity, SpanRecord{});
    ring->head = 0;
    ring->written = 0;
  }
}

std::vector<SpanRecord> SnapshotSpans() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  assert(ActiveRecorderCountLocked(reg) == 0 &&
         "SnapshotSpans racing an active recorder");
  std::vector<SpanRecord> out;
  for (const auto& ring : reg.rings) {
    const size_t cap = ring->slots.size();
    const size_t n = ring->written < cap ? static_cast<size_t>(ring->written)
                                         : cap;
    // Oldest-first: when wrapped, the oldest live span sits at head.
    const size_t start = ring->written < cap ? 0 : ring->head;
    for (size_t i = 0; i < n; ++i) {
      SpanRecord r = ring->slots[(start + i) % cap];
      r.start_ns = TicksToNs(r.start_ns);
      r.dur_ns = TicksToNs(r.dur_ns);
      out.push_back(r);
    }
  }
  return out;
}

void ClearSpans() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  assert(ActiveRecorderCountLocked(reg) == 0 &&
         "ClearSpans racing an active recorder");
  for (auto& ring : reg.rings) {
    ring->head = 0;
    ring->written = 0;
  }
}

uint64_t DroppedSpans() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  uint64_t dropped = 0;
  for (const auto& ring : reg.rings) {
    const uint64_t cap = ring->slots.size();
    if (ring->written > cap) dropped += ring->written - cap;
  }
  return dropped;
}

uint64_t ActiveRecorderCount() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return ActiveRecorderCountLocked(reg);
}

TraceContext CurrentTraceContext() {
  const ThreadTraceState& ts = t_state;
  if (!TraceEnabled() || ts.depth == 0) return TraceContext{};
  return TraceContext{ts.current_parent, ts.sampled, true};
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  if (!ctx.inherited || !TraceEnabled()) return;
  ThreadTraceState& ts = t_state;
  saved_parent_ = ts.current_parent;
  saved_depth_ = ts.depth;
  saved_sampled_ = ts.sampled;
  ts.current_parent = ctx.parent_id;
  ts.depth = 1;  // nested spans are non-roots and inherit ctx's sampling
  ts.sampled = ctx.sampled;
  applied_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (!applied_) return;
  ThreadTraceState& ts = t_state;
  ts.current_parent = saved_parent_;
  ts.depth = saved_depth_;
  ts.sampled = saved_sampled_;
}

void TraceSpan::Begin(const char* name) {
  ThreadTraceState& ts = t_state;
  if (ts.depth == 0) {
    // Root span: refresh the sampler if the seed changed, then decide.
    const uint64_t epoch = g_seed_epoch.load(std::memory_order_acquire);
    if (ts.seed_epoch != epoch) {
      EnsureRing(ts);  // assigns the thread index the seed is mixed with
      ts.rng = Prng(g_seed.load(std::memory_order_relaxed) ^
                    (0x9e3779b97f4a7c15ULL * (ts.ring->thread_index + 1)));
      ts.seed_epoch = epoch;
    }
    const uint32_t period = detail::g_trace_period.load(std::memory_order_relaxed);
    ts.sampled = period == 1 || (period > 1 && ts.rng.NextBounded(period) == 0);
  }
  ++ts.depth;
  if (!ts.sampled) {
    state_ = State::kSuppressed;
    return;
  }
  EnsureRing(ts);
  ts.ring->open.fetch_add(1, std::memory_order_relaxed);
  name_ = name;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  saved_parent_ = ts.current_parent;
  ts.current_parent = span_id_;
  state_ = State::kRecording;
  start_ticks_ = CycleTicks();
}

void TraceSpan::End() {
  const uint64_t end_ticks = CycleTicks();
  ThreadTraceState& ts = t_state;
  --ts.depth;
  if (state_ != State::kRecording) return;
  ts.current_parent = saved_parent_;
  Ring& ring = *ts.ring;
  SpanRecord& slot = ring.slots[ring.head];
  slot.name = name_;
  slot.span_id = span_id_;
  slot.parent_id = saved_parent_;
  slot.start_ns = start_ticks_;          // raw ticks; converted at snapshot
  slot.dur_ns = end_ticks - start_ticks_;
  slot.thread_index = ring.thread_index;
  ring.head = (ring.head + 1) % ring.slots.size();
  ++ring.written;
  ring.open.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace intcomp
