// Trace layer: cheap RAII spans recording into per-thread ring buffers.
//
// Design goals, in priority order:
//   1. Near-zero cost when disabled: TRACE_SPAN compiles to one relaxed
//      atomic load and a branch (the destructor is a branch on a member).
//   2. Cheap when enabled but unsampled: the sampling decision is made once
//      per *root* span (one PRNG draw); every span nested under an unsampled
//      root pays only a TLS depth bump.
//   3. Lock-free recording: each thread owns a fixed-capacity ring buffer
//      that only it writes; full rings overwrite the oldest span (and count
//      the drop) rather than blocking or allocating.
//
// Span timing uses CycleTicks (raw TSC); conversion to nanoseconds happens
// at SnapshotSpans time, never on the record path.
//
// Cross-thread propagation: CurrentTraceContext() captures the innermost
// open span and the root's sampling decision; ScopedTraceContext re-applies
// it on another thread, so a worker's spans nest under the submitting
// thread's span. ThreadPool::Submit does this automatically, which is how a
// batch span on the caller becomes the parent of per-query spans on workers
// regardless of which worker steals the task.
//
// Thread-safety contract for readers: SnapshotSpans / ClearSpans /
// SetTraceRingCapacity require quiescence — no thread may be concurrently
// recording (disable sampling and reach a synchronization point, e.g.
// ThreadPool::Wait, first). Recording itself is always safe from any number
// of threads.

#ifndef INTCOMP_OBS_TRACE_H_
#define INTCOMP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace intcomp {
namespace obs {

// One completed span. `start_ns` is measured from an arbitrary per-process
// epoch (calibrated TSC) — deltas and ordering are meaningful, wall time is
// not. `parent_id` is 0 for root spans.
struct SpanRecord {
  const char* name = nullptr;  // static string literal passed to TRACE_SPAN
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t thread_index = 0;  // ring registration order of the recorder
};

namespace detail {
extern std::atomic<uint32_t> g_trace_period;
}  // namespace detail

// The master switch doubles as the sampling knob: 0 disables tracing
// entirely, 1 records every root, N records roughly 1/N of roots (decided
// per root span by a deterministic per-thread PRNG).
void SetTraceSampling(uint32_t period);
uint32_t GetTraceSampling();

// True when tracing is on at any sampling period. Inline: this is the
// fast-path check TRACE_SPAN performs when tracing is disabled.
inline bool TraceEnabled() {
  return detail::g_trace_period.load(std::memory_order_relaxed) != 0;
}

// Reseeds every thread's sampling PRNG (applied lazily at each thread's next
// root span). With a fixed seed, the sequence of keep/drop decisions made by
// any single thread is deterministic.
void SetTraceSeed(uint64_t seed);

// Ring capacity in spans (default 4096). Resets existing rings; requires
// quiescence. Test hook for exercising wraparound cheaply.
void SetTraceRingCapacity(size_t capacity);

// All spans currently buffered, per-thread rings concatenated, each ring
// oldest-first. Requires quiescence.
std::vector<SpanRecord> SnapshotSpans();

// Empties every ring and zeroes the dropped-span counter. Requires
// quiescence.
void ClearSpans();

// Spans overwritten by ring wraparound since the last ClearSpans.
uint64_t DroppedSpans();

// Number of spans currently open in the recording state, summed across all
// threads. The quiescence contract above is precisely "this returns 0":
// debug builds assert it inside SnapshotSpans / ClearSpans /
// SetTraceRingCapacity, turning a racing reader into a crash instead of a
// torn snapshot.
uint64_t ActiveRecorderCount();

// Capture of "where am I in the trace" for handoff to another thread.
struct TraceContext {
  uint64_t parent_id = 0;
  bool sampled = false;
  // False when captured outside any span: applying such a context is a
  // no-op and the receiving thread makes its own root sampling decisions.
  bool inherited = false;
};

TraceContext CurrentTraceContext();

// Applies a captured context for the current scope: spans opened while it is
// alive become children of ctx.parent_id and inherit its sampling decision.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t saved_parent_ = 0;
  uint32_t saved_depth_ = 0;
  bool saved_sampled_ = false;
  bool applied_ = false;
};

// RAII span. Use via TRACE_SPAN; `name` must be a string literal (stored by
// pointer, never copied).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) Begin(name);
  }
  ~TraceSpan() {
    if (state_ != State::kInactive) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  enum class State : uint8_t { kInactive, kSuppressed, kRecording };

  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  uint64_t span_id_ = 0;
  uint64_t saved_parent_ = 0;
  uint64_t start_ticks_ = 0;
  State state_ = State::kInactive;
};

}  // namespace obs
}  // namespace intcomp

#define INTCOMP_TRACE_CONCAT_(a, b) a##b
#define INTCOMP_TRACE_CONCAT(a, b) INTCOMP_TRACE_CONCAT_(a, b)
#define TRACE_SPAN(name)                 \
  ::intcomp::obs::TraceSpan INTCOMP_TRACE_CONCAT(intcomp_trace_span_, \
                                                 __COUNTER__)(name)

#endif  // INTCOMP_OBS_TRACE_H_
