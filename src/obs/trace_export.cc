#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace intcomp {
namespace obs {

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  std::vector<SpanRecord> sorted = spans;
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[192];
  for (size_t i = 0; i < sorted.size(); ++i) {
    const SpanRecord& s = sorted[i];
    if (i > 0) out.push_back(',');
    out += "\n{\"name\":\"";
    out += JsonEscape(s.name != nullptr ? s.name : "?");
    // ts/dur are microseconds in this format; keep nanosecond precision via
    // three decimals.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%llu.%03llu,"
                  "\"dur\":%llu.%03llu,\"args\":{\"span_id\":%llu,"
                  "\"parent_id\":%llu}}",
                  s.thread_index,
                  static_cast<unsigned long long>(s.start_ns / 1000),
                  static_cast<unsigned long long>(s.start_ns % 1000),
                  static_cast<unsigned long long>(s.dur_ns / 1000),
                  static_cast<unsigned long long>(s.dur_ns % 1000),
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<SpanRecord>& spans) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ExportChromeTrace(spans);
  return static_cast<bool>(out.flush());
}

}  // namespace obs
}  // namespace intcomp
