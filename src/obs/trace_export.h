// Chrome trace-event exporter: turns a SnapshotSpans() result into the JSON
// trace-event format that chrome://tracing and Perfetto load directly, so
// any bench's span buffer becomes a flamegraph (--trace-out on every bench
// via benchutil/metrics_export.h).
//
// Output is deterministic for a given set of spans: events are sorted by
// (start_ns, span_id) before serialization, independent of which thread's
// ring they came from.

#ifndef INTCOMP_OBS_TRACE_EXPORT_H_
#define INTCOMP_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace intcomp {
namespace obs {

// Complete ("ph":"X") events, one per span: pid 0, tid = recording thread
// index, ts/dur in fractional microseconds (the unit the format requires),
// span/parent ids in args for cross-referencing.
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

// Writes ExportChromeTrace to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace intcomp

#endif  // INTCOMP_OBS_TRACE_EXPORT_H_
