#include "planner/list_stats.h"

#include <algorithm>

namespace intcomp::planner {

ListStats MeasureListStats(std::span<const uint32_t> sorted, uint64_t domain) {
  ListStats s;
  s.size = sorted.size();
  if (sorted.empty()) return s;
  const uint64_t value_range = uint64_t{sorted.back()} + 1;
  s.universe = domain == 0 ? value_range : std::min(domain, value_range);
  s.density = static_cast<double>(s.size) / static_cast<double>(s.universe);
  s.num_runs = 1;
  uint64_t gap_sum = 0;
  for (size_t i = 1; i < sorted.size(); ++i) {
    const uint32_t delta = sorted[i] - sorted[i - 1];
    gap_sum += delta;
    if (delta != 1) ++s.num_runs;
  }
  s.avg_run_len =
      static_cast<double>(s.size) / static_cast<double>(s.num_runs);
  s.avg_gap = sorted.size() > 1 ? static_cast<double>(gap_sum) /
                                      static_cast<double>(sorted.size() - 1)
                                : 0.0;
  return s;
}

}  // namespace intcomp::planner
