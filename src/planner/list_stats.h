// Per-list shape statistics the build-time codec optimizer measures before
// choosing a representation (DESIGN.md §5.12).
//
// The paper's headline finding is that the winner between bitmap and
// inverted-list compression is decided by two properties of the list:
// density (|L| / universe, §7.1: >= ~1/5 favors bitmaps) and clustering
// (long runs of consecutive ids favor RLE bitmaps even at lower density).
// These are exactly the fields below; the planner's stats-based selection
// mode keys off them, and the trial-encode mode reports them in its
// decision counters.

#ifndef INTCOMP_PLANNER_LIST_STATS_H_
#define INTCOMP_PLANNER_LIST_STATS_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace intcomp::planner {

struct ListStats {
  size_t size = 0;        // |L|
  uint64_t universe = 0;  // min(domain, max+1); 0 for an empty list
  double density = 0.0;   // size / universe
  size_t num_runs = 0;    // maximal runs of consecutive values
  double avg_run_len = 0.0;  // size / num_runs (1.0 = no clustering)
  double avg_gap = 0.0;      // mean delta between consecutive values
};

// Single pass over `sorted` (strictly increasing). `domain` follows the
// Encode contract: the declared row universe, 0 for "unknown" (then the
// value range stands in, mirroring HybridCodec's density rule).
ListStats MeasureListStats(std::span<const uint32_t> sorted, uint64_t domain);

}  // namespace intcomp::planner

#endif  // INTCOMP_PLANNER_LIST_STATS_H_
