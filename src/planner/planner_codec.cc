#include "planner/planner_codec.h"

#include <cassert>
#include <utility>

#include "common/bufio.h"
#include "core/set_ops.h"
#include "obs/metrics.h"
#include "planner/strategy.h"

namespace intcomp::planner {

namespace {

void BumpBuildChoice(std::string_view codec_name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.Enabled()) return;
  std::string name = "planner.build.choice.";
  name.append(codec_name);
  reg.AddCounter(name, 1);
}

}  // namespace

PlannerCodec::PlannerCodec(std::vector<const Codec*> pool,
                           Selection selection, std::string_view name,
                           double density_threshold)
    : pool_(std::move(pool)),
      selection_(selection),
      name_(name),
      threshold_(density_threshold) {
  assert(!pool_.empty() && pool_.size() <= 255);
}

uint8_t PlannerCodec::StatsChoice(const ListStats& stats) const {
  // §7.1 rules: density decides the family; strong run clustering pulls a
  // moderately sparse list to the bitmap side too (RLE words compress runs
  // at a constant cost per run, independent of the run's length).
  const bool bitmap_side =
      stats.density >= threshold_ ||
      (stats.avg_run_len >= 16.0 && stats.density >= threshold_ / 16.0);
  const CodecFamily want =
      bitmap_side ? CodecFamily::kBitmap : CodecFamily::kInvertedList;
  for (size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i]->Family() == want) return static_cast<uint8_t>(i);
  }
  return 0;  // pool has no codec of the wanted family: first candidate
}

uint8_t PlannerCodec::SelectCodec(
    std::span<const uint32_t> sorted, uint64_t domain,
    std::unique_ptr<CompressedSet>* encoded) const {
  if (pool_.size() == 1) {
    *encoded = pool_[0]->Encode(sorted, domain);
    return 0;
  }
  if (selection_ == Selection::kStats) {
    const uint8_t tag = StatsChoice(MeasureListStats(sorted, domain));
    *encoded = pool_[tag]->Encode(sorted, domain);
    return tag;
  }
  // Trial encode: smallest image wins, lowest pool index breaks ties —
  // deterministic, and by construction no single pool member beats the
  // per-list minimum in total size.
  uint8_t best = 0;
  for (size_t i = 0; i < pool_.size(); ++i) {
    auto candidate = pool_[i]->Encode(sorted, domain);
    if (*encoded == nullptr ||
        candidate->SizeInBytes() < (*encoded)->SizeInBytes()) {
      *encoded = std::move(candidate);
      best = static_cast<uint8_t>(i);
    }
  }
  return best;
}

std::unique_ptr<CompressedSet> PlannerCodec::Encode(
    std::span<const uint32_t> sorted, uint64_t domain) const {
  obs::ScopedOpTimer timer(Name(), obs::OpKind::kPlannerBuild);
  auto set = std::make_unique<Set>();
  set->tag = SelectCodec(sorted, domain, &set->inner);
  set->codec = pool_[set->tag];
  BumpBuildChoice(set->codec->Name());
  return set;
}

void PlannerCodec::Decode(const CompressedSet& set,
                          std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  s.codec->Decode(*s.inner, out);
}

void PlannerCodec::Intersect(const CompressedSet& a, const CompressedSet& b,
                             std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  PlannedIntersect(TaggedSet{sa.codec, sa.inner.get()},
                   TaggedSet{sb.codec, sb.inner.get()}, SetOpStrategy::kAuto,
                   CostModel::Default(), out);
}

void PlannerCodec::Union(const CompressedSet& a, const CompressedSet& b,
                         std::vector<uint32_t>* out) const {
  const auto& sa = static_cast<const Set&>(a);
  const auto& sb = static_cast<const Set&>(b);
  UnionTagged(TaggedSet{sa.codec, sa.inner.get()},
              TaggedSet{sb.codec, sb.inner.get()}, out);
}

void PlannerCodec::IntersectWithList(const CompressedSet& a,
                                     std::span<const uint32_t> probe,
                                     std::vector<uint32_t>* out) const {
  const auto& s = static_cast<const Set&>(a);
  s.codec->IntersectWithList(*s.inner, probe, out);
}

void PlannerCodec::Serialize(const CompressedSet& set,
                             std::vector<uint8_t>* out) const {
  const auto& s = static_cast<const Set&>(set);
  ByteWriter(out).PutU8(s.tag);
  s.codec->Serialize(*s.inner, out);
}

std::unique_ptr<CompressedSet> PlannerCodec::Deserialize(const uint8_t* data,
                                                         size_t size) const {
  if (size < 1 || data[0] >= pool_.size()) return nullptr;
  auto set = std::make_unique<Set>();
  set->tag = data[0];
  set->codec = pool_[set->tag];
  set->inner = set->codec->Deserialize(data + 1, size - 1);
  if (set->inner == nullptr) return nullptr;
  return set;
}

StatusOr<std::unique_ptr<CompressedSet>> PlannerCodec::DeserializeChecked(
    std::span<const uint8_t> image, uint64_t domain) const {
  if (image.empty()) {
    return Status::Corrupt("Planner: empty image (missing codec tag)");
  }
  if (image[0] >= pool_.size()) {
    return Status::Corrupt("Planner: codec tag outside candidate pool");
  }
  auto set = std::make_unique<Set>();
  set->tag = image[0];
  set->codec = pool_[set->tag];
  auto inner = set->codec->DeserializeChecked(image.subspan(1), domain);
  if (!inner.ok()) return inner.status();
  set->inner = std::move(inner.value());
  return StatusOr<std::unique_ptr<CompressedSet>>(std::move(set));
}

Status PlannerCodec::ValidateSet(const CompressedSet& set,
                                 uint64_t domain) const {
  const auto& s = static_cast<const Set&>(set);
  if (s.inner == nullptr) return Status::Corrupt("Planner: missing inner set");
  if (s.tag >= pool_.size() || s.codec != pool_[s.tag]) {
    return Status::Corrupt("Planner: codec tag outside candidate pool");
  }
  return s.codec->ValidateSet(*s.inner, domain);
}

}  // namespace intcomp::planner
