// PlannerCodec — the build-time per-list codec optimizer (DESIGN.md §5.12).
//
// Generalizes HybridCodec's two-way density split to an N-way choice over a
// configurable candidate pool: every Encode measures the list's shape
// (planner/list_stats.h) and picks the candidate that represents *that*
// list best, so an index never pays a whole-index codec's worst case on
// lists the other family wins. Two selection modes:
//
//   kTrialEncode (default) — encode with every candidate, keep the
//     smallest image (deterministic tie-break: lowest pool index). Optimal
//     for space by construction: the index's total size is <= the total
//     under any single pool member.
//   kStats — pick from the measured density/run statistics alone (the
//     paper's §7.1 rules, no trial encodes): dense or strongly-clustered
//     lists go to the bitmap side, sparse lists to the list side.
//
// A set carries its pool index as a one-byte tag, serialized ahead of the
// inner image — the per-list codec tag the storage layer persists in the
// container's section directory. Cross-tag set operations route through
// the mixed-codec core ops (core/set_ops.h TaggedSet) and the query-time
// strategy chooser (planner/strategy.h).

#ifndef INTCOMP_PLANNER_PLANNER_CODEC_H_
#define INTCOMP_PLANNER_PLANNER_CODEC_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/codec.h"
#include "planner/list_stats.h"

namespace intcomp::planner {

class PlannerCodec final : public Codec {
 public:
  enum class Selection : uint8_t { kTrialEncode, kStats };

  struct Set final : CompressedSet {
    uint8_t tag = 0;                    // index into the candidate pool
    const Codec* codec = nullptr;       // pool()[tag]
    std::unique_ptr<CompressedSet> inner;

    size_t SizeInBytes() const override { return inner->SizeInBytes() + 1; }
    size_t Cardinality() const override { return inner->Cardinality(); }
  };

  // `pool` entries must outlive this codec (registry singletons do); 1 to
  // 255 candidates, and should span both families for the selection to
  // matter. `name` is the registry/display name.
  PlannerCodec(std::vector<const Codec*> pool,
               Selection selection = Selection::kTrialEncode,
               std::string_view name = "Planner",
               double density_threshold = 0.2);

  std::span<const Codec* const> pool() const { return pool_; }
  Selection selection() const { return selection_; }

  // The pool index kStats selection would assign to a list with `stats`'s
  // shape (exposed for tests and the sweep bench's decision table).
  uint8_t StatsChoice(const ListStats& stats) const;

  std::string_view Name() const override { return name_; }
  // Static family is a registry slot, not a per-set truth — adaptive sets
  // answer through EffectiveFamily.
  CodecFamily Family() const override { return CodecFamily::kBitmap; }
  CodecFamily EffectiveFamily(const CompressedSet& set) const override {
    const Set& s = static_cast<const Set&>(set);
    return s.codec->EffectiveFamily(*s.inner);
  }
  std::string_view SetCodecName(const CompressedSet& set) const override {
    const Set& s = static_cast<const Set&>(set);
    return s.codec->SetCodecName(*s.inner);
  }

  std::unique_ptr<CompressedSet> Encode(std::span<const uint32_t> sorted,
                                        uint64_t domain) const override;
  void Decode(const CompressedSet& set,
              std::vector<uint32_t>* out) const override;
  void Intersect(const CompressedSet& a, const CompressedSet& b,
                 std::vector<uint32_t>* out) const override;
  void Union(const CompressedSet& a, const CompressedSet& b,
             std::vector<uint32_t>* out) const override;
  void IntersectWithList(const CompressedSet& a,
                         std::span<const uint32_t> probe,
                         std::vector<uint32_t>* out) const override;
  void Serialize(const CompressedSet& set,
                 std::vector<uint8_t>* out) const override;
  std::unique_ptr<CompressedSet> Deserialize(const uint8_t* data,
                                             size_t size) const override;
  StatusOr<std::unique_ptr<CompressedSet>> DeserializeChecked(
      std::span<const uint8_t> image, uint64_t domain) const override;
  Status ValidateSet(const CompressedSet& set,
                     uint64_t domain) const override;

 private:
  uint8_t SelectCodec(std::span<const uint32_t> sorted, uint64_t domain,
                      std::unique_ptr<CompressedSet>* encoded) const;

  std::vector<const Codec*> pool_;
  Selection selection_;
  std::string name_;
  double threshold_;
};

}  // namespace intcomp::planner

#endif  // INTCOMP_PLANNER_PLANNER_CODEC_H_
