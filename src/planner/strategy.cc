#include "planner/strategy.h"

#include <algorithm>
#include <cmath>

#include "common/fast_clock.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/trace.h"

namespace intcomp::planner {

namespace {

void BumpStrategyCounter(SetOpStrategy chosen) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.Enabled()) return;
  switch (chosen) {
    case SetOpStrategy::kCompressed:
      reg.AddCounter("planner.strategy.compressed", 1);
      break;
    case SetOpStrategy::kDecodeMerge:
      reg.AddCounter("planner.strategy.merge", 1);
      break;
    case SetOpStrategy::kGallopProbe:
      reg.AddCounter("planner.strategy.gallop", 1);
      break;
    case SetOpStrategy::kAuto:
      break;
  }
}

// Folds one decision's estimated and measured cost into the
// planner.cost.residual.<strategy>.{est_ns,act_ns,count} counters, so
// est/act across a whole run exposes model miscalibration per strategy as a
// queryable ratio instead of a bisection session.
void RecordCostResidual(SetOpStrategy chosen, double est_ns,
                        uint64_t act_ns) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.Enabled()) return;
  std::string key("planner.cost.residual.");
  key += SetOpStrategyName(chosen);
  const size_t stem = key.size();
  key += ".est_ns";
  reg.AddCounter(key, est_ns <= 0.0 ? 0
                                    : static_cast<uint64_t>(std::llround(
                                          est_ns)));
  key.resize(stem);
  key += ".act_ns";
  reg.AddCounter(key, act_ns);
  key.resize(stem);
  key += ".count";
  reg.AddCounter(key, 1);
}

}  // namespace

bool ParseSetOpStrategy(std::string_view text, SetOpStrategy* strategy) {
  if (text == "auto") {
    *strategy = SetOpStrategy::kAuto;
  } else if (text == "compressed") {
    *strategy = SetOpStrategy::kCompressed;
  } else if (text == "merge") {
    *strategy = SetOpStrategy::kDecodeMerge;
  } else if (text == "gallop") {
    *strategy = SetOpStrategy::kGallopProbe;
  } else {
    return false;
  }
  return true;
}

std::string_view SetOpStrategyName(SetOpStrategy strategy) {
  switch (strategy) {
    case SetOpStrategy::kAuto: return "auto";
    case SetOpStrategy::kCompressed: return "compressed";
    case SetOpStrategy::kDecodeMerge: return "merge";
    case SetOpStrategy::kGallopProbe: return "gallop";
  }
  return "unknown";
}

const CostModel& CostModel::Default() {
  static const CostModel* model = [] {
    auto* m = new CostModel();
    m->kernel = MeasureKernelCosts();
    return m;
  }();
  return *model;
}

double IntersectCostNs(const TaggedSet& a, const TaggedSet& b,
                       SetOpStrategy strategy, const CostModel& model) {
  const double ca = static_cast<double>(a.set->Cardinality());
  const double cb = static_cast<double>(b.set->Cardinality());
  const double smaller = std::min(ca, cb);
  switch (strategy) {
    case SetOpStrategy::kCompressed:
      // Bitmap-backed pairs intersect as a compressed-word scan (AND or RLE
      // run walk): work scales with the compressed bytes. A list codec's
      // native Intersect walks both streams element-wise — effectively a
      // decode+merge without the SIMD kernel, so model it as merge plus a
      // small scalar penalty rather than by image size.
      if (a.codec->EffectiveFamily(*a.set) == CodecFamily::kBitmap &&
          b.codec->EffectiveFamily(*b.set) == CodecFamily::kBitmap) {
        return model.compressed_ns_per_byte *
               static_cast<double>(a.set->SizeInBytes() +
                                   b.set->SizeInBytes());
      }
      return 1.05 * (model.decode_ns_per_elem +
                     model.kernel.merge_ns_per_elem) * (ca + cb);
    case SetOpStrategy::kDecodeMerge:
      return (model.decode_ns_per_elem + model.kernel.merge_ns_per_elem) *
             (ca + cb);
    case SetOpStrategy::kGallopProbe:
      // Decode the smaller side, then one probe per element through the
      // larger side's own skip/bucket structure. Codec probes batch into
      // bulk block lookups, so they run cheaper than the raw-array gallop
      // kernel the merge path would use.
      return (model.decode_ns_per_elem + model.probe_ns_per_elem) * smaller;
    case SetOpStrategy::kAuto:
      break;
  }
  return 0.0;
}

SetOpStrategy ChoosePairStrategy(const TaggedSet& a, const TaggedSet& b,
                                 const CostModel& model) {
  SetOpStrategy best = SetOpStrategy::kDecodeMerge;
  double best_cost = IntersectCostNs(a, b, best, model);
  const double gallop = IntersectCostNs(a, b, SetOpStrategy::kGallopProbe,
                                        model);
  if (gallop < best_cost) {
    best = SetOpStrategy::kGallopProbe;
    best_cost = gallop;
  }
  if (a.codec == b.codec) {
    const double compressed =
        IntersectCostNs(a, b, SetOpStrategy::kCompressed, model);
    if (compressed < best_cost) best = SetOpStrategy::kCompressed;
  }
  return best;
}

void PlannedIntersect(const TaggedSet& a, const TaggedSet& b,
                      SetOpStrategy strategy, const CostModel& model,
                      std::vector<uint32_t>* out) {
  if (strategy == SetOpStrategy::kAuto) {
    strategy = ChoosePairStrategy(a, b, model);
  } else if (strategy == SetOpStrategy::kCompressed && a.codec != b.codec) {
    // A forced compressed op has no cross-codec form; degrade to the SvS
    // probe, which keeps the larger side compressed.
    strategy = SetOpStrategy::kGallopProbe;
  }
  BumpStrategyCounter(strategy);
  // Estimate-vs-actual audit: priced only when a per-query explain capture
  // or the metrics registry is on; the plain path pays two relaxed loads.
  obs::ExplainScope scope("planner.pair");
  const bool audit =
      scope.active() || obs::MetricsRegistry::Global().Enabled();
  double est_ns = 0.0;
  uint64_t t0 = 0;
  if (audit) {
    est_ns = IntersectCostNs(a, b, strategy, model);
    if (scope.active()) {
      scope.AddStr("strategy", SetOpStrategyName(strategy));
      scope.AddStr("codec_a", a.codec->SetCodecName(*a.set));
      scope.AddStr("codec_b", b.codec->SetCodecName(*b.set));
      scope.AddUint("card_a", a.set->Cardinality());
      scope.AddUint("card_b", b.set->Cardinality());
      // The full alternative menu the chooser priced (estimates depend on
      // the host's kernel calibration, hence the _ns suffix so the
      // structural form stays run-independent).
      scope.AddDouble("est_merge_ns",
                      IntersectCostNs(a, b, SetOpStrategy::kDecodeMerge,
                                      model));
      scope.AddDouble("est_gallop_ns",
                      IntersectCostNs(a, b, SetOpStrategy::kGallopProbe,
                                      model));
      if (a.codec == b.codec) {
        scope.AddDouble("est_compressed_ns",
                        IntersectCostNs(a, b, SetOpStrategy::kCompressed,
                                        model));
      }
      scope.AddDouble("est_ns", est_ns);
    }
    t0 = NowNs();
  }
  switch (strategy) {
    case SetOpStrategy::kCompressed:
      a.codec->Intersect(*a.set, *b.set, out);
      break;
    case SetOpStrategy::kDecodeMerge: {
      std::vector<uint32_t> da, db;
      a.codec->Decode(*a.set, &da);
      b.codec->Decode(*b.set, &db);
      obs::ThreadOpCounters().bytes_decoded +=
          a.set->SizeInBytes() + b.set->SizeInBytes();
      out->clear();
      if (UseSimdKernels(GetKernelMode())) {
        SimdMergeIntersectInto(da, db, out);
      } else {
        ScalarMergeIntersectInto(da, db, out);
      }
      break;
    }
    case SetOpStrategy::kGallopProbe: {
      const TaggedSet* small = &a;
      const TaggedSet* large = &b;
      if (small->set->Cardinality() > large->set->Cardinality()) {
        std::swap(small, large);
      }
      std::vector<uint32_t> decoded;
      small->codec->Decode(*small->set, &decoded);
      obs::ThreadOpCounters().bytes_decoded += small->set->SizeInBytes();
      large->codec->IntersectWithList(*large->set, decoded, out);
      break;
    }
    case SetOpStrategy::kAuto:
      return;  // unreachable
  }
  if (audit) {
    const uint64_t act_ns = NowNs() - t0;
    if (scope.active()) {
      scope.AddUint("measured_ns", act_ns);
      scope.AddUint("rows", out->size());
    }
    RecordCostResidual(strategy, est_ns, act_ns);
  }
}

void PlannedIntersectSets(std::span<const TaggedSet> sets,
                          SetOpStrategy strategy, const CostModel& model,
                          ScratchArena* arena, std::vector<uint32_t>* out) {
  TRACE_SPAN("planner.intersect");
  obs::ScopedOpTimer timer("Planner", obs::OpKind::kPlannerQuery);
  obs::ThreadOpCounters().lists_touched += sets.size();
  out->clear();
  if (sets.empty()) return;
  if (sets.size() == 1) {
    sets[0].codec->Decode(*sets[0].set, out);
    return;
  }
  std::vector<const TaggedSet*> order;
  order.reserve(sets.size());
  for (const TaggedSet& s : sets) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const TaggedSet* a, const TaggedSet* b) {
              return a->set->Cardinality() < b->set->Cardinality();
            });
  PlannedIntersect(*order[0], *order[1], strategy, model, out);
  ScratchArena::Lease next = arena->Acquire();
  for (size_t i = 2; i < order.size() && !out->empty(); ++i) {
    order[i]->codec->IntersectWithList(*order[i]->set, *out, next.get());
    out->swap(*next);
  }
}

}  // namespace intcomp::planner
