// Query-time strategy chooser for mixed-codec set operations
// (DESIGN.md §5.12).
//
// For each pairwise intersection step the chooser picks one of three
// execution strategies from the operands' sizes and a cost model calibrated
// against the measured SIMD kernel costs (common/simd_intersect.h,
// MeasureKernelCosts — the Lemire et al. merge/gallop figures for this
// host):
//
//   kCompressed  — the codec's own compressed operation; only available
//                  when both operands share a codec. For bitmap-backed
//                  sets this is the compressed-word AND, whose cost scales
//                  with the compressed byte size, not the cardinality.
//   kDecodeMerge — decode both sides and run the SIMD merge kernel; wins
//                  for similar-size list-backed pairs.
//   kGallopProbe — decode the smaller side and probe the larger through
//                  its own skip/bucket structure (SvS step, bulk block
//                  probes where the codec supports them); wins for skewed
//                  pairs.
//
// kAuto evaluates the model and takes the cheapest; the bench's fixed
// strategies (planner_sweep --strategy=...) ablate the choice. Every
// decision is counted under planner.strategy.* when metrics are enabled.

#ifndef INTCOMP_PLANNER_STRATEGY_H_
#define INTCOMP_PLANNER_STRATEGY_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/simd_intersect.h"
#include "core/scratch.h"
#include "core/set_ops.h"

namespace intcomp::planner {

enum class SetOpStrategy : uint8_t {
  kAuto = 0,
  kCompressed,
  kDecodeMerge,
  kGallopProbe,
};

// Parses "auto" / "compressed" / "merge" / "gallop"; false on anything else.
bool ParseSetOpStrategy(std::string_view text, SetOpStrategy* strategy);
std::string_view SetOpStrategyName(SetOpStrategy strategy);

// Calibrated per-unit costs. Kernel figures come from MeasureKernelCosts;
// the decode and compressed-word figures are representative constants (the
// spread across codecs is within the model's tolerance — the chooser only
// needs the relative order of three coarse alternatives).
struct CostModel {
  KernelCostProfile kernel;
  double decode_ns_per_elem = 1.5;       // typical codec Decode throughput
  double compressed_ns_per_byte = 0.25;  // compressed-word scan (AND / skip)
  double probe_ns_per_elem = 2.0;        // codec skip/bucket probe (bulk)

  // Process-wide default, calibrated once on first use.
  static const CostModel& Default();
};

// Model cost in nanoseconds of intersecting `a` and `b` under `strategy`
// (never kAuto).
double IntersectCostNs(const TaggedSet& a, const TaggedSet& b,
                       SetOpStrategy strategy, const CostModel& model);

// The cheapest applicable strategy for intersecting `a` and `b`
// (kCompressed is only applicable when the operands share a codec).
SetOpStrategy ChoosePairStrategy(const TaggedSet& a, const TaggedSet& b,
                                 const CostModel& model);

// Executes one pairwise intersection under `strategy` (kAuto chooses per
// the model first). Bumps the planner.strategy.* decision counter.
void PlannedIntersect(const TaggedSet& a, const TaggedSet& b,
                      SetOpStrategy strategy, const CostModel& model,
                      std::vector<uint32_t>* out);

// SvS over k mixed-codec sets with a per-step strategy choice: sorts by
// cardinality, intersects the two smallest via PlannedIntersect, then
// probes the rest through each set's own codec. Timed under
// OpKind::kPlannerQuery.
void PlannedIntersectSets(std::span<const TaggedSet> sets,
                          SetOpStrategy strategy, const CostModel& model,
                          ScratchArena* arena, std::vector<uint32_t>* out);

}  // namespace intcomp::planner

#endif  // INTCOMP_PLANNER_STRATEGY_H_
