#include "service/delta_overlay.h"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace intcomp {
namespace {

// a := a \ b over sorted unique vectors.
void EraseSorted(std::vector<uint32_t>* a, std::span<const uint32_t> b) {
  if (a->empty() || b.empty()) return;
  std::vector<uint32_t> out;
  out.reserve(a->size());
  std::set_difference(a->begin(), a->end(), b.begin(), b.end(),
                      std::back_inserter(out));
  *a = std::move(out);
}

// a := a ∪ b over sorted unique vectors.
void MergeSorted(std::vector<uint32_t>* a, std::span<const uint32_t> b) {
  if (b.empty()) return;
  std::vector<uint32_t> out;
  out.reserve(a->size() + b.size());
  std::set_union(a->begin(), a->end(), b.begin(), b.end(),
                 std::back_inserter(out));
  *a = std::move(out);
}

}  // namespace

void CanonicalizeRows(std::vector<uint32_t>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

void ApplyDelta(std::span<const uint32_t> base, const ListDelta& delta,
                std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(base.size() + delta.inserts.size());
  std::vector<uint32_t> survivors;
  survivors.reserve(base.size());
  std::set_difference(base.begin(), base.end(), delta.deletes.begin(),
                      delta.deletes.end(), std::back_inserter(survivors));
  std::set_union(survivors.begin(), survivors.end(), delta.inserts.begin(),
                 delta.inserts.end(), std::back_inserter(*out));
}

void DeltaMap::Insert(uint32_t list, std::span<const uint32_t> rows) {
  if (rows.empty()) return;
  ListDelta& d = map_[list];
  EraseSorted(&d.deletes, rows);
  MergeSorted(&d.inserts, rows);
  if (d.Empty()) map_.erase(list);
  ++version_;
}

void DeltaMap::Remove(uint32_t list, std::span<const uint32_t> rows) {
  if (rows.empty()) return;
  ListDelta& d = map_[list];
  EraseSorted(&d.inserts, rows);
  MergeSorted(&d.deletes, rows);
  if (d.Empty()) map_.erase(list);
  ++version_;
}

std::vector<std::pair<uint32_t, ListDelta>> DeltaMap::Copy() const {
  std::vector<std::pair<uint32_t, ListDelta>> out;
  out.reserve(map_.size());
  for (const auto& [list, delta] : map_) out.emplace_back(list, delta);
  return out;
}

void DeltaMap::Subtract(
    const std::vector<std::pair<uint32_t, ListDelta>>& frozen) {
  for (const auto& [list, folded] : frozen) {
    auto it = map_.find(list);
    if (it == map_.end()) continue;
    EraseSorted(&it->second.inserts, folded.inserts);
    EraseSorted(&it->second.deletes, folded.deletes);
    if (it->second.Empty()) map_.erase(it);
  }
  ++version_;
}

void DeltaMap::Clear() {
  map_.clear();
  ++version_;
}

size_t DeltaMap::DeltaRows() const {
  size_t n = 0;
  for (const auto& [list, delta] : map_) n += delta.Rows();
  return n;
}

OverlaySnapshot::OverlaySnapshot(
    std::shared_ptr<const IndexSnapshot> base,
    std::vector<std::pair<uint32_t, ListDelta>> deltas)
    : base_(std::move(base)), deltas_(std::move(deltas)) {
  assert(base_ != nullptr);
  assert(std::is_sorted(deltas_.begin(), deltas_.end(),
                        [](const auto& a, const auto& b) {
                          return a.first < b.first;
                        }));
  shards_.reserve(base_->NumShards());
  for (size_t s = 0; s < base_->NumShards(); ++s) {
    auto state = std::make_unique<ShardState>();
    state->ptrs.assign(base_->NumLists(), nullptr);
    shards_.push_back(std::move(state));
  }
}

const ListDelta* OverlaySnapshot::FindDelta(uint32_t list) const {
  auto it = std::lower_bound(deltas_.begin(), deltas_.end(), list,
                             [](const auto& entry, uint32_t l) {
                               return entry.first < l;
                             });
  if (it == deltas_.end() || it->first != list) return nullptr;
  return &it->second;
}

size_t OverlaySnapshot::SizeInBytes() const {
  size_t delta_bytes = 0;
  for (const auto& [list, delta] : deltas_) {
    delta_bytes += delta.Rows() * sizeof(uint32_t);
  }
  return base_->SizeInBytes() + delta_bytes;
}

StatusOr<std::span<const CompressedSet* const>> OverlaySnapshot::PlanSets(
    size_t shard, std::span<const size_t> leaves) const {
  if (deltas_.empty()) return base_->PlanSets(shard, leaves);
  StatusOr<std::span<const CompressedSet* const>> base_sets =
      base_->PlanSets(shard, leaves);
  if (!base_sets.ok()) return base_sets.status();

  const ShardRouter& router = base_->Router();
  const uint32_t begin = static_cast<uint32_t>(router.Begin(shard));
  const uint64_t end = router.End(shard);
  const Codec& c = base_->codec();

  ShardState& state = *shards_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<uint32_t> rows, local, effective;
  for (size_t leaf : leaves) {
    const ListDelta* delta = FindDelta(static_cast<uint32_t>(leaf));
    if (delta == nullptr) {
      // Clean list: alias the base's set (same pointer every call).
      state.ptrs[leaf] = base_sets.value()[leaf];
      continue;
    }
    if (state.ptrs[leaf] != nullptr) continue;  // already materialized

    // Dirty list: base rows for this shard, rebased to local ids ...
    rows.clear();
    c.Decode(*base_sets.value()[leaf], &rows);
    // ... the shard's slice of each polarity, rebased likewise ...
    ListDelta slice;
    auto take = [&](const std::vector<uint32_t>& global) {
      local.clear();
      auto lo = std::lower_bound(global.begin(), global.end(), begin);
      auto hi = std::lower_bound(lo, global.end(), end);
      local.reserve(static_cast<size_t>(hi - lo));
      for (auto it = lo; it != hi; ++it) local.push_back(*it - begin);
      return local;
    };
    slice.inserts = take(delta->inserts);
    slice.deletes = take(delta->deletes);
    // ... merged and re-encoded at the shard's own domain, exactly as a
    // rebuilt index would encode it.
    ApplyDelta(rows, slice, &effective);
    state.owned.push_back(c.Encode(effective, router.ShardRows(shard)));
    state.ptrs[leaf] = state.owned.back().get();
  }
  return StatusOr<std::span<const CompressedSet* const>>(
      std::span<const CompressedSet* const>(state.ptrs.data(),
                                            state.ptrs.size()));
}

}  // namespace intcomp
