// Delta overlay — the mutable half of the crash-safe write path
// (DESIGN.md §5.11).
//
// The base index (a ShardedIndex or MappedIndex snapshot) stays immutable;
// inserts and deletes accumulate in a per-list DeltaMap with *set*
// semantics: inserting a row cancels a pending delete of it and vice
// versa, so each touched row carries exactly one polarity (insert or
// delete) — never both. That choice is load-bearing twice over:
//
//   * WAL replay is idempotent. The delta state is a function of each
//     row's *last* recorded polarity, independent of the base, so
//     replaying a WAL whose early records were already folded into a
//     compacted base reconverges on the same effective index. Compaction
//     can therefore rename the container and rotate the WAL as two
//     separate atomic steps with a crash window between them.
//   * Compaction commit is a subtraction. The deltas folded into the new
//     base are removed from the live map per polarity list (a row whose
//     polarity changed mid-compaction keeps its newer polarity), so
//     updates racing a compaction are never lost.
//
// OverlaySnapshot presents base+delta through the IndexSnapshot interface:
// clean lists pass the base's compressed sets through untouched; dirty
// lists are materialized lazily per (shard, list) — decode the base set,
// apply the shard's slice of the delta, re-encode with the index codec —
// and cached for the snapshot's lifetime. A snapshot is immutable once
// built; every mutation publishes a fresh OverlaySnapshot over the same
// base (copy-on-write), which is what lets queries race mutations and
// compaction swaps while observing exactly one generation end to end.

#ifndef INTCOMP_SERVICE_DELTA_OVERLAY_H_
#define INTCOMP_SERVICE_DELTA_OVERLAY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/codec.h"
#include "service/snapshot.h"

namespace intcomp {

// Pending changes for one list: sorted unique global row ids, disjoint
// between the two polarities.
struct ListDelta {
  std::vector<uint32_t> inserts;
  std::vector<uint32_t> deletes;

  bool Empty() const { return inserts.empty() && deletes.empty(); }
  size_t Rows() const { return inserts.size() + deletes.size(); }
};

// Sorts and deduplicates a batch of row ids in place (the canonical form
// Insert/Remove and the WAL require).
void CanonicalizeRows(std::vector<uint32_t>* rows);

// out = (base \ delta.deletes) ∪ delta.inserts, all sorted unique.
void ApplyDelta(std::span<const uint32_t> base, const ListDelta& delta,
                std::vector<uint32_t>* out);

// Per-list delta accumulator. Not internally synchronized — LiveIndex
// serializes writers; readers only ever see immutable Copy() snapshots.
class DeltaMap {
 public:
  // `rows` sorted unique. Set semantics: rows move to the insert (resp.
  // delete) polarity regardless of their previous polarity.
  void Insert(uint32_t list, std::span<const uint32_t> rows);
  void Remove(uint32_t list, std::span<const uint32_t> rows);

  // Deep copy of the dirty lists, ordered by list id — the frozen view a
  // compaction folds into the base, and the state an OverlaySnapshot owns.
  std::vector<std::pair<uint32_t, ListDelta>> Copy() const;

  // Removes `frozen` rows from the live deltas, per polarity list: a row
  // the compaction folded as an insert is dropped from inserts only, so a
  // racing Remove of the same row (which moved it to deletes) survives.
  void Subtract(const std::vector<std::pair<uint32_t, ListDelta>>& frozen);

  void Clear();

  bool Dirty() const { return !map_.empty(); }
  size_t DirtyLists() const { return map_.size(); }
  size_t DeltaRows() const;
  // Bumped by every state change; lets LiveIndex skip republishing.
  uint64_t Version() const { return version_; }

 private:
  std::map<uint32_t, ListDelta> map_;  // ordered: deterministic iteration
  uint64_t version_ = 0;
};

// Immutable base+delta view. Thread-safe like every IndexSnapshot:
// materialization is guarded per shard.
class OverlaySnapshot final : public IndexSnapshot {
 public:
  // `deltas` sorted by list id (DeltaMap::Copy order), lists < NumLists(),
  // rows < NumRows().
  OverlaySnapshot(std::shared_ptr<const IndexSnapshot> base,
                  std::vector<std::pair<uint32_t, ListDelta>> deltas);

  const Codec& codec() const override { return base_->codec(); }
  const ShardRouter& Router() const override { return base_->Router(); }
  size_t NumLists() const override { return base_->NumLists(); }
  // Overlay results live in the base's key namespace; data differences
  // between overlay generations are already retired by the cache's
  // per-shard generation stamps.
  std::string_view CodecSignature() const override {
    return base_->CodecSignature();
  }

  // Base footprint plus the raw delta rows (materialized sets are a cache,
  // not an independent copy of the data, and are excluded to keep the
  // number stable across query orders).
  size_t SizeInBytes() const override;

  StatusOr<std::span<const CompressedSet* const>> PlanSets(
      size_t shard, std::span<const size_t> leaves) const override;

  size_t DirtyLists() const { return deltas_.size(); }

 private:
  struct ShardState {
    std::mutex mu;
    // Indexed by list id; null until ensured by a PlanSets call. Clean
    // lists alias the base's set, dirty lists point into `owned`.
    std::vector<const CompressedSet*> ptrs;
    std::vector<std::unique_ptr<CompressedSet>> owned;
  };

  const ListDelta* FindDelta(uint32_t list) const;

  std::shared_ptr<const IndexSnapshot> base_;
  std::vector<std::pair<uint32_t, ListDelta>> deltas_;  // sorted by list
  mutable std::vector<std::unique_ptr<ShardState>> shards_;
};

}  // namespace intcomp

#endif  // INTCOMP_SERVICE_DELTA_OVERLAY_H_
