#include "service/plan_text.h"

#include <cctype>
#include <cstdint>

namespace intcomp {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(QueryPlan* plan) {
    Status st = ParseNode(plan, /*depth=*/0);
    if (!st.ok()) return st;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing input after plan");
    return Status::Ok();
  }

 private:
  Status ParseNode(QueryPlan* plan, size_t depth) {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("expected plan node");
    const char c = text_[pos_];
    if (c == '&' || c == '|') {
      if (depth >= kMaxPlanTextDepth) return Error("plan nested too deeply");
      const QueryPlan::Op op =
          c == '&' ? QueryPlan::Op::kAnd : QueryPlan::Op::kOr;
      ++pos_;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '(')
        return Error("expected '(' after operator");
      ++pos_;
      QueryPlan node;
      node.op = op;
      while (true) {
        QueryPlan child;
        Status st = ParseNode(&child, depth + 1);
        if (!st.ok()) return st;
        node.children.push_back(std::move(child));
        SkipSpace();
        if (pos_ >= text_.size())
          return Error("unterminated operator node (missing ')')");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ')') {
          ++pos_;
          break;
        }
        return Error("expected ',' or ')' in operator node");
      }
      *plan = std::move(node);
      return Status::Ok();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = v * 10 + static_cast<uint64_t>(text_[pos_] - '0');
        if (v > UINT32_MAX) return Error("leaf id out of range");
        ++pos_;
      }
      *plan = QueryPlan::Leaf(static_cast<size_t>(v));
      return Status::Ok();
    }
    return Error("expected leaf number, '&(', or '|('");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const char* what) const {
    return Status::InvalidArgument(std::string(what) + " at offset " +
                                   std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void Render(const QueryPlan& plan, std::string* out) {
  if (plan.op == QueryPlan::Op::kLeaf) {
    out->append(std::to_string(plan.leaf));
    return;
  }
  out->push_back(plan.op == QueryPlan::Op::kAnd ? '&' : '|');
  out->push_back('(');
  for (size_t i = 0; i < plan.children.size(); ++i) {
    if (i > 0) out->push_back(',');
    Render(plan.children[i], out);
  }
  out->push_back(')');
}

}  // namespace

Status ParsePlanText(std::string_view text, QueryPlan* plan) {
  return Parser(text).Parse(plan);
}

std::string PlanToText(const QueryPlan& plan) {
  std::string out;
  Render(plan, &out);
  return out;
}

}  // namespace intcomp
