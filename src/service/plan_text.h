// Textual query plans for tools — the same grammar the result cache's
// canonical encoder emits (service/result_cache.cc), so any cache key or
// EXPLAIN signature can be pasted back in as a plan:
//
//   plan  := NUM                    leaf (list id, decimal)
//          | '&' '(' plan-list ')'  intersection
//          | '|' '(' plan-list ')'  union
//   plan-list := plan (',' plan)*
//
// Whitespace is allowed between tokens. Examples:
//   "3"            → Leaf(3)
//   "&(1,2,5)"     → And(1, 2, 5)
//   "&(|(0,1),2)"  → And(Or(0, 1), 2)
//
// Parsing does NOT canonicalize: child order, nesting, and duplicates are
// preserved exactly as written, so a tool can explain the plan the user
// asked for rather than its cache-key normal form.

#ifndef INTCOMP_SERVICE_PLAN_TEXT_H_
#define INTCOMP_SERVICE_PLAN_TEXT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/query.h"

namespace intcomp {

// Deepest operator nesting ParsePlanText accepts. The grammar is recursive
// and, since the wire front end (src/net), parsed from untrusted network
// bytes: without a cap a hostile "&(&(&(..." plan would recurse the parser —
// and later the plan's own destructor — off the stack. 64 is far beyond any
// plan the service or cache key emits.
inline constexpr size_t kMaxPlanTextDepth = 64;

// Parses `text` into *plan. Returns kInvalidArgument (with a position-tagged
// message) on syntax errors, trailing garbage, an empty operator node, or
// nesting deeper than kMaxPlanTextDepth.
Status ParsePlanText(std::string_view text, QueryPlan* plan);

// Renders a plan in the same grammar (no canonicalization; inverse of
// ParsePlanText for any plan it accepts).
std::string PlanToText(const QueryPlan& plan);

}  // namespace intcomp

#endif  // INTCOMP_SERVICE_PLAN_TEXT_H_
