#include "service/result_cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace intcomp {
namespace {

constexpr size_t kDoorkeeperSlots = 1024;
// Fixed per-entry overhead charged against capacity on top of the image and
// key bytes (list/map node, Entry fields).
constexpr size_t kEntryOverhead = 64;

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MixGeneration(uint64_t h, uint64_t gen) {
  // splitmix64 finalizer over the running mix: any single-counter bump
  // changes the stamp.
  h += gen + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

// Canonicalizes `plan` and returns its text encoding; `*out` (when non-null)
// receives the canonical tree. Leaves encode as their index; operator nodes
// as "&(...)" / "|(...)" over sorted, deduplicated child encodings.
std::string CanonEncode(const QueryPlan& plan, QueryPlan* out) {
  if (plan.op == QueryPlan::Op::kLeaf) {
    if (out != nullptr) *out = QueryPlan::Leaf(plan.leaf);
    return std::to_string(plan.leaf);
  }
  std::vector<std::pair<std::string, QueryPlan>> kids;
  kids.reserve(plan.children.size());
  for (const QueryPlan& child : plan.children) {
    QueryPlan canon;
    std::string enc = CanonEncode(child, &canon);
    if (canon.op == plan.op) {
      // Associativity: splice an identical operator's children in directly.
      for (QueryPlan& grand : canon.children) {
        kids.emplace_back(CanonEncode(grand, nullptr), std::move(grand));
      }
    } else {
      kids.emplace_back(std::move(enc), std::move(canon));
    }
  }
  // Commutativity + idempotence: sort by encoding, drop duplicates.
  std::sort(kids.begin(), kids.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  kids.erase(std::unique(kids.begin(), kids.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }),
             kids.end());
  if (kids.size() == 1) {
    if (out != nullptr) *out = std::move(kids[0].second);
    return std::move(kids[0].first);
  }
  std::string enc(plan.op == QueryPlan::Op::kAnd ? "&(" : "|(");
  QueryPlan node;
  node.op = plan.op;
  node.children.reserve(kids.size());
  for (size_t i = 0; i < kids.size(); ++i) {
    if (i > 0) enc.push_back(',');
    enc += kids[i].first;
    node.children.push_back(std::move(kids[i].second));
  }
  enc.push_back(')');
  if (out != nullptr) *out = std::move(node);
  return enc;
}

}  // namespace

QueryPlan CanonicalizePlan(const QueryPlan& plan) {
  QueryPlan out;
  CanonEncode(plan, &out);
  return out;
}

std::string PlanCacheKey(std::string_view codec_name, const QueryPlan& plan) {
  std::string key(codec_name);
  key.push_back(':');
  key += CanonEncode(plan, nullptr);
  return key;
}

ResultCache::ResultCache(const ResultCacheOptions& options,
                         size_t num_index_shards)
    : options_(options),
      generations_(std::max<size_t>(num_index_shards, 1)) {
  const size_t n = std::bit_ceil(std::max<size_t>(options.shards, 1));
  subs_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    subs_.push_back(std::make_unique<SubCache>());
    subs_.back()->doorkeeper.assign(kDoorkeeperSlots, 0);
  }
  per_shard_capacity_ = std::max<size_t>(options.capacity_bytes / n, 1);
  for (auto& g : generations_) g.store(0, std::memory_order_relaxed);
}

uint64_t ResultCache::Stamp() const {
  uint64_t h = 0x6a09e667f3bcc908ull;
  for (const auto& g : generations_) {
    h = MixGeneration(h, g.load(std::memory_order_seq_cst));
  }
  return h;
}

bool ResultCache::Get(std::string_view key, std::vector<uint32_t>* out) {
  out->clear();
  const uint64_t hash = Fnv1a64(key);
  const uint64_t stamp = Stamp();
  SubCache& sub = Shard(hash);
  std::lock_guard<std::mutex> lock(sub.mu);
  auto it = sub.map.find(hash);
  if (it == sub.map.end() || it->second->key != key) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Entry& entry = *it->second;
  if (entry.stamp != stamp) {
    // A shard generation moved since this result was computed: the entry
    // can never be served again, so drop it on the spot.
    sub.bytes -= entry.bytes;
    sub.lru.erase(it->second);
    sub.map.erase(it);
    stale_dropped_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  sub.lru.splice(sub.lru.begin(), sub.lru, it->second);  // refresh LRU
  entry.codec->Decode(*entry.set, out);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ResultCache::Put(std::string_view key, const Codec& codec,
                      std::span<const uint32_t> result, uint64_t domain) {
  return PutWithStamp(key, codec, result, domain, Stamp());
}

bool ResultCache::PutWithStamp(std::string_view key, const Codec& codec,
                               std::span<const uint32_t> result,
                               uint64_t domain, uint64_t stamp) {
  const uint64_t hash = Fnv1a64(key);
  SubCache& sub = Shard(hash);
  {
    std::lock_guard<std::mutex> lock(sub.mu);
    auto it = sub.map.find(hash);
    if (it != sub.map.end() && it->second->key == key &&
        it->second->stamp == stamp) {
      return true;  // a racing Put already cached this result
    }
    if (options_.require_second_touch && it == sub.map.end()) {
      uint64_t& slot = sub.doorkeeper[hash % kDoorkeeperSlots];
      if (slot != hash) {
        slot = hash;  // first touch: register, admit on the next one
        rejected_doorkeeper_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }
  // Compress outside the lock; the entry holds the result at codec size.
  std::unique_ptr<CompressedSet> set = codec.Encode(result, domain);
  const size_t bytes = set->SizeInBytes() + key.size() + kEntryOverhead;
  if (set->SizeInBytes() > options_.max_entry_bytes) {
    rejected_size_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::lock_guard<std::mutex> lock(sub.mu);
  auto it = sub.map.find(hash);
  if (it != sub.map.end()) {
    if (it->second->key == key && it->second->stamp != stamp &&
        it->second->stamp == Stamp()) {
      // A racing Put already cached this key at the *current* generation
      // while our stamp is stale (a swap landed mid-evaluation): keep the
      // servable entry instead of replacing it with a dead one.
      return false;
    }
    // Replace (stale entry, hash collision, or a racing Put): drop the old
    // entry and fall through to a fresh insert.
    sub.bytes -= it->second->bytes;
    sub.lru.erase(it->second);
    sub.map.erase(it);
  }
  sub.lru.push_front(Entry{std::string(key), hash, stamp, &codec,
                           std::move(set), domain, bytes});
  sub.map.emplace(hash, sub.lru.begin());
  sub.bytes += bytes;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  while (sub.bytes > per_shard_capacity_ && sub.lru.size() > 1) {
    const Entry& victim = sub.lru.back();
    sub.bytes -= victim.bytes;
    sub.map.erase(victim.hash);
    sub.lru.pop_back();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void ResultCache::BumpGeneration(size_t s) {
  assert(s < generations_.size());
  generations_[s].fetch_add(1, std::memory_order_seq_cst);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

ResultCacheStats ResultCache::Snapshot() const {
  ResultCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale_dropped = stale_dropped_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_size = rejected_size_.load(std::memory_order_relaxed);
  s.rejected_doorkeeper =
      rejected_doorkeeper_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

size_t ResultCache::Entries() const {
  size_t n = 0;
  for (const auto& sub : subs_) {
    std::lock_guard<std::mutex> lock(sub->mu);
    n += sub->map.size();
  }
  return n;
}

size_t ResultCache::SizeInBytes() const {
  size_t n = 0;
  for (const auto& sub : subs_) {
    std::lock_guard<std::mutex> lock(sub->mu);
    n += sub->bytes;
  }
  return n;
}

void ResultCache::Clear() {
  for (const auto& sub : subs_) {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->lru.clear();
    sub->map.clear();
    sub->bytes = 0;
    sub->doorkeeper.assign(kDoorkeeperSlots, 0);
  }
}

}  // namespace intcomp
