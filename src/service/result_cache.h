// ResultCache — an admission-controlled, sharded LRU cache of compressed
// query results for the sharded index service (DESIGN.md §5.9).
//
// Keying. Entries are keyed by the *canonical* form of a query plan
// (commutative operands flattened, sorted, and deduplicated — see
// CanonicalizePlan) prefixed with the codec name, so algebraically equal
// queries like (A AND B) and (B AND A) share one entry. The canonical key
// string itself is stored in the entry and compared on lookup; the 64-bit
// FNV hash only picks the cache shard and the map bucket, so a hash
// collision can never serve the wrong result.
//
// Values. Hits must be bit-identical to fresh evaluation, so the cache
// stores the result *compressed with the index's own codec* (Encode is
// lossless over sorted unique lists) and decodes on hit. This keeps hot
// results resident at compressed size — the cache holds 10-50x more entries
// than a raw uint32 store for typical codecs.
//
// Invalidation. The cache owns one generation counter per index shard. A
// lookup/insert stamps entries with a mix of *all* generations (every query
// fans out to every shard); BumpGeneration(s) changes the stamp, so every
// pre-bump entry mismatches on its next probe and is dropped there (and
// otherwise ages out through the LRU). Entries never need to be found and
// erased eagerly, which keeps invalidation O(1) and lock-free.
//
// Admission. Two gates keep one-shot scans and oversized results from
// flushing the hot set: (1) results whose compressed image exceeds
// max_entry_bytes are never cached; (2) with require_second_touch, a key is
// only admitted when a small per-shard doorkeeper (a direct-mapped table of
// recent key hashes) has seen it before — the first touch registers, the
// second admits, so only re-requested plans occupy LRU space.
//
// Concurrency. The cache is internally sharded by key hash; each sub-cache
// has its own mutex, and the stat/generation counters are atomics, so
// Get/Put/BumpGeneration may be called from any number of threads.

#ifndef INTCOMP_SERVICE_RESULT_CACHE_H_
#define INTCOMP_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/codec.h"
#include "core/query.h"

namespace intcomp {

// Canonical form of `plan` under the set-algebra identities the cache may
// exploit: nested same-op nodes are flattened (associativity), children of
// AND/OR are sorted by their canonical encoding (commutativity), and equal
// children are deduplicated (idempotence). Single-child operator nodes
// collapse to the child. Evaluating the canonical plan yields the same set
// as the original.
QueryPlan CanonicalizePlan(const QueryPlan& plan);

// Deterministic text encoding of the canonical form of `plan`, prefixed
// with the codec name: "Roaring:&(|(1,2),5)". Two (codec, plan) pairs get
// the same key iff the plans are equal under the identities above.
std::string PlanCacheKey(std::string_view codec_name, const QueryPlan& plan);

struct ResultCacheOptions {
  // Sub-caches (each with its own lock and LRU list); rounded up to a
  // power of two, so the shard pick is a mask.
  size_t shards = 8;
  // Total budget across all sub-caches, counting compressed entry images
  // plus key strings.
  size_t capacity_bytes = 64u << 20;
  // Admission: results whose compressed image is larger than this are
  // returned to the caller but never cached.
  size_t max_entry_bytes = 4u << 20;
  // Admission: require a key to be seen twice before it occupies LRU
  // space (doorkeeper). Disable for tiny caches in tests.
  bool require_second_touch = true;
};

// Monotonic event counters (relaxed atomics; Snapshot gives a consistent-
// enough view for monitoring, not an atomic cut).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;           // probed, not found (or found stale)
  uint64_t stale_dropped = 0;    // found but generation stamp mismatched
  uint64_t admitted = 0;         // entries inserted
  uint64_t rejected_size = 0;    // Put refused: image > max_entry_bytes
  uint64_t rejected_doorkeeper = 0;  // Put deferred: first touch of the key
  uint64_t evicted = 0;          // LRU evictions to fit capacity
  uint64_t invalidations = 0;    // BumpGeneration calls
};

class ResultCache {
 public:
  // `num_index_shards` is the number of generation counters (one per index
  // shard, all starting at 0).
  ResultCache(const ResultCacheOptions& options, size_t num_index_shards);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Probes `key`; on hit decodes the cached compressed result into `*out`
  // (cleared first) and refreshes LRU order. A stale entry (generation
  // stamp mismatch) is dropped and reported as a miss.
  bool Get(std::string_view key, std::vector<uint32_t>* out);

  // Offers a freshly computed result for caching. `codec` must be the
  // codec named in the key and must outlive the cache; `domain` is the row
  // domain of the result (the index's NumRows()). Applies the admission
  // gates; returns true iff the entry was admitted.
  bool Put(std::string_view key, const Codec& codec,
           std::span<const uint32_t> result, uint64_t domain);

  // Put with an explicit generation stamp, captured via CurrentStamp()
  // *before* the result was computed. If a shard generation moved while the
  // result was being evaluated (a concurrent SwapSnapshot/Invalidate), the
  // stale stamp makes the entry unservable — plain Put would stamp the old
  // snapshot's result with the new generation and serve it after the swap.
  bool PutWithStamp(std::string_view key, const Codec& codec,
                    std::span<const uint32_t> result, uint64_t domain,
                    uint64_t stamp);

  // The current generation mix, for PutWithStamp.
  uint64_t CurrentStamp() const { return Stamp(); }

  // Marks index shard `s`'s data as changed: every entry stamped before
  // this call can no longer be served.
  void BumpGeneration(size_t s);

  uint64_t Generation(size_t s) const {
    return generations_[s].load(std::memory_order_seq_cst);
  }
  size_t NumGenerations() const { return generations_.size(); }

  ResultCacheStats Snapshot() const;
  size_t Entries() const;
  size_t SizeInBytes() const;

  // Drops every entry (keeps generations and stats).
  void Clear();

 private:
  struct Entry {
    std::string key;
    uint64_t hash = 0;
    uint64_t stamp = 0;  // generation mix at insert time
    const Codec* codec = nullptr;
    std::unique_ptr<CompressedSet> set;
    uint64_t domain = 0;
    size_t bytes = 0;  // image + key, the capacity accounting unit
  };

  struct SubCache {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    std::vector<uint64_t> doorkeeper;  // direct-mapped recent key hashes
    size_t bytes = 0;
  };

  uint64_t Stamp() const;  // mix of all generation counters
  SubCache& Shard(uint64_t hash) {
    return *subs_[hash & (subs_.size() - 1)];
  }

  ResultCacheOptions options_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<SubCache>> subs_;
  std::vector<std::atomic<uint64_t>> generations_;

  mutable std::atomic<uint64_t> hits_{0}, misses_{0}, stale_dropped_{0},
      admitted_{0}, rejected_size_{0}, rejected_doorkeeper_{0}, evicted_{0},
      invalidations_{0};
};

}  // namespace intcomp

#endif  // INTCOMP_SERVICE_RESULT_CACHE_H_
