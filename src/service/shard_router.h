// ShardRouter — the row-space partitioning scheme of the sharded index
// service (DESIGN.md §5.9).
//
// A column's row space [0, num_rows) is split into S contiguous range
// shards; shard s owns [Begin(s), End(s)). Contiguous ranges (rather than
// hash striping) keep two properties the service leans on:
//   1. every per-shard evaluation produces locally-sorted row ids, so the
//      global result is the plain concatenation of the rebased shard
//      results — no merge step, and bit-identical to the unsharded path;
//   2. run-length-coded bitmap codecs (WAH/EWAH/...) see the same run
//      structure inside a shard that they would see in the full column,
//      so sharding never degrades their compression model.
// Ranges are balanced to within one row: the first num_rows % S shards get
// one extra row.

#ifndef INTCOMP_SERVICE_SHARD_ROUTER_H_
#define INTCOMP_SERVICE_SHARD_ROUTER_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace intcomp {

class ShardRouter {
 public:
  ShardRouter() = default;

  // Splits [0, num_rows) into `num_shards` balanced ranges. The shard count
  // is clamped to [1, max(1, num_rows)] so no shard is ever empty (an empty
  // shard would force domain-0 encodes on every codec for no benefit).
  ShardRouter(uint64_t num_rows, size_t num_shards)
      : num_rows_(num_rows),
        num_shards_(std::clamp<size_t>(num_shards, 1,
                                       static_cast<size_t>(std::max<uint64_t>(
                                           num_rows, 1)))) {}

  uint64_t NumRows() const { return num_rows_; }
  size_t NumShards() const { return num_shards_; }

  // First global row of shard s.
  uint64_t Begin(size_t s) const {
    assert(s < num_shards_);
    const uint64_t base = num_rows_ / num_shards_;
    const uint64_t extra = num_rows_ % num_shards_;
    return base * s + std::min<uint64_t>(s, extra);
  }

  // One past the last global row of shard s.
  uint64_t End(size_t s) const {
    return s + 1 == num_shards_ ? num_rows_ : Begin(s + 1);
  }

  // Rows owned by shard s.
  uint64_t ShardRows(size_t s) const { return End(s) - Begin(s); }

  // The shard owning global row `row` (row must be < NumRows()).
  size_t ShardOf(uint64_t row) const {
    assert(row < num_rows_);
    const uint64_t base = num_rows_ / num_shards_;
    const uint64_t extra = num_rows_ % num_shards_;
    // The first `extra` shards hold base+1 rows each.
    const uint64_t fat_rows = (base + 1) * extra;
    if (row < fat_rows) return static_cast<size_t>(row / (base + 1));
    return static_cast<size_t>(extra + (row - fat_rows) / base);
  }

  // Appends shard s's local row ids onto `out` as global row ids.
  void Rebase(size_t s, std::span<const uint32_t> local,
              std::vector<uint32_t>* out) const {
    const uint64_t base = Begin(s);
    for (uint32_t v : local) {
      out->push_back(static_cast<uint32_t>(base + v));
    }
  }

 private:
  uint64_t num_rows_ = 0;
  size_t num_shards_ = 1;
};

}  // namespace intcomp

#endif  // INTCOMP_SERVICE_SHARD_ROUTER_H_
