#include "service/sharded_index.h"

#include <algorithm>
#include <cassert>

#include "index/bitmap_index.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace intcomp {

void ShardedIndex::AdoptShard(
    std::vector<std::unique_ptr<CompressedSet>> sets) {
  assert(sets.size() == num_lists_);
  std::vector<const CompressedSet*> ptrs;
  ptrs.reserve(sets.size());
  for (const auto& s : sets) ptrs.push_back(s.get());
  sets_.push_back(std::move(sets));
  ptrs_.push_back(std::move(ptrs));
}

void ShardedIndex::FinishCodecSignature() {
  CodecSignatureBuilder builder(codec_->Name());
  for (const auto& shard : sets_) {
    for (const auto& set : shard) builder.AddListTag(codec_->SetCodecName(*set));
  }
  codec_signature_ = builder.Finish();
}

ShardedIndex ShardedIndex::Build(const Codec& codec,
                                 std::span<const std::vector<uint32_t>> lists,
                                 uint64_t num_rows, size_t num_shards) {
  assert(num_rows >= 1 && num_rows <= (uint64_t{1} << 32));
  const ShardRouter router(num_rows, num_shards);
  ShardedIndex index(&codec, router, lists.size());
  std::vector<uint32_t> local;
  for (size_t s = 0; s < router.NumShards(); ++s) {
    const uint32_t begin = static_cast<uint32_t>(router.Begin(s));
    const uint64_t domain = router.ShardRows(s);
    std::vector<std::unique_ptr<CompressedSet>> sets;
    sets.reserve(lists.size());
    for (const auto& list : lists) {
      // The shard's slice of the list, rebased to local ids.
      auto lo = std::lower_bound(list.begin(), list.end(), begin);
      auto hi = std::lower_bound(lo, list.end(),
                                 static_cast<uint64_t>(router.End(s)));
      local.clear();
      local.reserve(static_cast<size_t>(hi - lo));
      for (auto it = lo; it != hi; ++it) local.push_back(*it - begin);
      sets.push_back(codec.Encode(local, domain));
    }
    index.AdoptShard(std::move(sets));
  }
  index.FinishCodecSignature();
  return index;
}

ShardedIndex ShardedIndex::BuildFromColumn(
    const Codec& codec, std::span<const uint32_t> column_codes,
    uint32_t cardinality, size_t num_shards) {
  assert(!column_codes.empty());
  const ShardRouter router(column_codes.size(), num_shards);
  ShardedIndex index(&codec, router, cardinality);
  for (size_t s = 0; s < router.NumShards(); ++s) {
    index.AdoptShard(BitmapIndex::BuildRange(codec, column_codes, cardinality,
                                             router.Begin(s), router.End(s))
                         .ReleaseSets());
  }
  index.FinishCodecSignature();
  return index;
}

ShardedIndex ShardedIndex::BuildFromPostings(
    const Codec& codec, const InvertedIndex& index,
    std::span<const std::string_view> terms, size_t num_shards) {
  std::vector<std::vector<uint32_t>> lists;
  lists.reserve(terms.size());
  for (std::string_view term : terms) {
    const CompressedSet* posting = index.PostingFor(term);
    assert(posting != nullptr);
    lists.emplace_back();
    codec.Decode(*posting, &lists.back());
  }
  return Build(codec, lists, index.NumDocuments(), num_shards);
}

size_t ShardedIndex::SizeInBytes() const {
  size_t total = 0;
  for (const auto& shard : sets_) {
    for (const auto& set : shard) total += set->SizeInBytes();
  }
  return total;
}

namespace {

// Shape validation fused with leaf collection: the sorted, deduplicated
// leaf list is what lazily-materialized snapshots need from PlanSets.
Status CollectPlanLeaves(const QueryPlan& plan, size_t num_lists,
                         std::vector<size_t>* leaves) {
  if (plan.op == QueryPlan::Op::kLeaf) {
    if (plan.leaf >= num_lists) {
      return Status::InvalidArgument("plan leaf out of range");
    }
    leaves->push_back(plan.leaf);
    return Status::Ok();
  }
  if (plan.children.empty()) {
    return Status::InvalidArgument("operator node with no children");
  }
  for (const QueryPlan& child : plan.children) {
    Status st = CollectPlanLeaves(child, num_lists, leaves);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

void BumpServiceCounter(const char* name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (reg.Enabled()) reg.AddCounter(name, 1);
}

}  // namespace

IndexService::IndexService(const IndexSnapshot* index, ThreadPool* pool,
                           const IndexServiceOptions& options,
                           EngineStats* stats)
    // Borrowed snapshot: shared_ptr with a no-op deleter keeps the old
    // raw-pointer contract (caller owns, must outlive the service).
    : IndexService(std::shared_ptr<const IndexSnapshot>(
                       index, [](const IndexSnapshot*) {}),
                   pool, options, stats) {}

IndexService::IndexService(std::shared_ptr<const IndexSnapshot> index,
                           ThreadPool* pool,
                           const IndexServiceOptions& options,
                           EngineStats* stats)
    : index_(std::move(index)), pool_(pool), stats_(stats) {
  if (options.cache_enabled) {
    cache_ = std::make_unique<ResultCache>(options.cache, index_->NumShards());
  }
  arenas_.reserve(pool->NumWorkers());
  for (size_t w = 0; w < pool->NumWorkers(); ++w) {
    arenas_.push_back(std::make_unique<ScratchArena>());
  }
}

std::shared_ptr<const IndexSnapshot> IndexService::Snapshot() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_;
}

Status IndexService::Query(const QueryPlan& plan, std::vector<uint32_t>* out) {
  return QueryImpl(plan, nullptr, out);
}

Status IndexService::Query(const QueryPlan& plan,
                           const CancellationToken* token,
                           std::vector<uint32_t>* out) {
  return QueryImpl(plan, token, out);
}

Status IndexService::Query(const QueryPlan& plan, std::vector<uint32_t>* out,
                           obs::QueryExplain* explain) {
  if (explain == nullptr) return QueryImpl(plan, nullptr, out);
  obs::ExplainSink sink;
  Status st;
  {
    // Activate capture for this thread; the fan-out forwards it to workers
    // (ThreadPool::Enqueue), so their scopes land in the same sink.
    obs::ScopedExplainCapture capture(&sink);
    st = QueryImpl(plan, nullptr, out);
  }
  *explain = sink.Build();
  return st;
}

Status IndexService::QueryImpl(const QueryPlan& plan,
                               const CancellationToken* token,
                               std::vector<uint32_t>* out) {
  TRACE_SPAN("service.query");
  // Pin the snapshot once: a concurrent SwapSnapshot retires index_, but
  // this query keeps evaluating the generation it started on.
  const std::shared_ptr<const IndexSnapshot> index = Snapshot();
  obs::ScopedOpTimer timer(index->codec().Name(),
                           obs::OpKind::kServiceQuery);
  obs::ExplainScope explain_scope("service.query");
  if (explain_scope.active()) {
    explain_scope.AddStr("codec", index->codec().Name());
    explain_scope.AddStr("signature", index->CodecSignature());
    explain_scope.AddUint("shards", index->NumShards());
  }
  out->clear();
  queries_.fetch_add(1, std::memory_order_relaxed);

  // Fail fast before any work — including the cache probe — so a request
  // that arrives with an already-expired deadline costs one clock read and
  // returns deterministically, cached answer or not.
  if (token != nullptr) {
    Status gate = token->Check();
    if (!gate.ok()) return gate;
  }

  // Plan once: shape validation plus the canonical cache key; the fan-out
  // below reuses the original plan (same algebra, so the cache entry is
  // valid for every commutation of it).
  std::vector<size_t> leaves;
  Status shape = CollectPlanLeaves(plan, index->NumLists(), &leaves);
  if (!shape.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return shape;
  }
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  if (explain_scope.active()) {
    explain_scope.AddUint("lists", leaves.size());
  }
  std::string key;
  uint64_t stamp = 0;
  if (cache_ != nullptr) {
    // Capture the generation stamp *before* evaluating: if a swap lands
    // mid-evaluation, this result belongs to the retired snapshot and must
    // be stored unservable, not stamped fresh.
    stamp = cache_->CurrentStamp();
    // Key by the snapshot's representation signature, not the bare codec
    // name: two Planner-built snapshots with different per-list codec
    // choices must not share a key namespace.
    key = PlanCacheKey(index->CodecSignature(), plan);
    obs::ExplainScope probe("cache.probe");
    const bool hit = cache_->Get(key, out);
    if (probe.active()) {
      probe.AddStr("key", key);
      probe.AddUint("stamp", stamp);
      probe.AddStr("outcome", hit ? "hit" : "miss");
      if (hit) probe.AddUint("rows", out->size());
    }
    if (hit) {
      if (stats_ != nullptr) stats_->AddCacheHit();
      BumpServiceCounter("service.cache.hit");
      return Status::Ok();
    }
  } else {
    obs::ExplainScope probe("cache.probe");
    probe.AddStr("outcome", "disabled");
  }

  const size_t num_shards = index->NumShards();
  std::vector<std::vector<uint32_t>> parts(num_shards);
  std::vector<Status> statuses(num_shards);
  {
    TRACE_SPAN("service.fanout");
    obs::ExplainScope fanout("service.fanout");
    fanout.AddUint("shards", num_shards);
    pool_->ParallelFor(0, num_shards, [&](size_t s, size_t worker) {
      TRACE_SPAN("service.shard");
      // Ordinal = shard id: racing shard scopes sort deterministically in
      // the built tree no matter which worker ran them.
      obs::ExplainScope shard_scope("service.shard", /*ordinal=*/s);
      shard_scope.AddUint("shard", s);
      // Materialization failures (lazy mapped snapshots) fail just this
      // query, with the snapshot's kCorruptData status.
      StatusOr<std::span<const CompressedSet* const>> sets =
          index->PlanSets(s, leaves);
      if (!sets.ok()) {
        statuses[s] = sets.status();
        if (shard_scope.active()) {
          shard_scope.AddStr("status", sets.status().message());
        }
        return;
      }
      if (shard_scope.active()) {
        // Per-touched-list codec attribution: what the planner chose for
        // each list this shard actually serves (EffectiveFamily /
        // SetCodecName resolve adaptive wrappers per set).
        const Codec& codec = index->codec();
        for (size_t l : leaves) {
          const CompressedSet* set = sets.value()[l];
          if (set == nullptr) continue;
          obs::ExplainScope list_scope("list", /*ordinal=*/l);
          list_scope.AddUint("list", l);
          list_scope.AddStr("codec", codec.SetCodecName(*set));
          list_scope.AddStr("family",
                            codec.EffectiveFamily(*set) ==
                                    CodecFamily::kBitmap
                                ? "bitmap"
                                : "list");
          list_scope.AddUint("bytes", set->SizeInBytes());
          list_scope.AddUint("card", set->Cardinality());
        }
      }
      statuses[s] =
          EvaluatePlanChecked(index->codec(), plan, sets.value(),
                              token, arenas_[worker].get(), &parts[s]);
      if (shard_scope.active()) {
        shard_scope.AddUint("rows", parts[s].size());
        if (!statuses[s].ok()) {
          shard_scope.AddStr("status", statuses[s].message());
        }
      }
    });
  }
  for (const Status& st : statuses) {
    if (!st.ok()) {
      out->clear();
      // Deadline/cancellation are caller outcomes, not plan rejections.
      if (st.code() == StatusCode::kInvalidArgument) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
      }
      return st;
    }
  }

  {
    TRACE_SPAN("service.stitch");
    obs::ExplainScope stitch("service.stitch");
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out->reserve(total);
    const ShardRouter& router = index->Router();
    for (size_t s = 0; s < num_shards; ++s) {
      router.Rebase(s, parts[s], out);
    }
    stitch.AddUint("rows", total);
  }

  if (cache_ != nullptr) {
    const bool admitted =
        cache_->PutWithStamp(key, index->codec(), *out, index->NumRows(),
                             stamp);
    {
      obs::ExplainScope admit("cache.admit");
      admit.AddStr("outcome", admitted ? "stored" : "rejected");
    }
    PublishCacheGauges();
    if (stats_ != nullptr) stats_->AddCacheMiss();
    BumpServiceCounter("service.cache.miss");
  } else {
    if (stats_ != nullptr) stats_->AddCacheBypass();
    BumpServiceCounter("service.cache.bypass");
  }
  if (explain_scope.active()) {
    explain_scope.AddUint("rows", out->size());
  }
  return Status::Ok();
}

void IndexService::PublishCacheGauges() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (cache_ == nullptr || !reg.Enabled()) return;
  reg.SetGauge("service.cache.bytes", cache_->SizeInBytes());
  reg.SetGauge("service.cache.entries", cache_->Entries());
  reg.SetGauge("service.cache.evictions", cache_->Snapshot().evicted);
}

void IndexService::Invalidate(size_t shard) {
  if (cache_ != nullptr) cache_->BumpGeneration(shard);
  BumpServiceCounter("service.cache.invalidation");
  PublishCacheGauges();
}

Status IndexService::SwapSnapshot(std::shared_ptr<const IndexSnapshot> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("null snapshot");
  }
  const size_t num_shards = next->NumShards();
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (num_shards != index_->NumShards()) {
      return Status::InvalidArgument(
          "snapshot shard count mismatch (cache generations are per shard)");
    }
    index_ = std::move(next);
  }
  // Invalidate after the swap: a query that raced the swap and cached a
  // pre-swap result used a pre-bump stamp (captured before evaluation), so
  // the bump below retires it either way.
  for (size_t s = 0; s < num_shards; ++s) Invalidate(s);
  BumpServiceCounter("service.snapshot.swap");
  return Status::Ok();
}

Status IndexService::SwapSnapshot(const IndexSnapshot* next) {
  if (next == nullptr) {
    return Status::InvalidArgument("null snapshot");
  }
  return SwapSnapshot(std::shared_ptr<const IndexSnapshot>(
      next, [](const IndexSnapshot*) {}));
}

ServiceStats IndexService::Stats() const {
  ServiceStats s;
  if (cache_ != nullptr) s.cache = cache_->Snapshot();
  s.queries = queries_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace intcomp
