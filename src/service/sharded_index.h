// ShardedIndex + IndexService — the multi-index orchestration layer of the
// sharded snapshot index service (DESIGN.md §5.9).
//
// ShardedIndex partitions a column's row space into S contiguous range
// shards (ShardRouter); each shard is an independent per-value compressed
// index over its sub-range, holding *local* row ids so every codec encodes
// the same dense id space it would see in a standalone index. Column shards
// are literally BitmapIndex::BuildRange products; list- and posting-built
// shards use the identical per-range split.
//
// IndexService is the query front end:
//   1. plan once   — validate leaf references, compute the canonical cache
//                    key (commutative operands sorted — result_cache.h);
//   2. probe cache — a hit decodes the stored compressed result and returns
//                    (bit-identical to fresh evaluation: codecs are
//                    lossless);
//   3. fan out     — one task per shard on the shared ThreadPool, each
//                    evaluating the plan over its shard's sets through
//                    EvaluatePlanChecked with the executing worker's
//                    ScratchArena;
//   4. stitch      — rebase each shard's local row ids by the shard's range
//                    base and concatenate in shard order (ranges are
//                    ordered, so the concatenation is the globally sorted
//                    result — no merge);
//   5. admit       — offer the result to the cache (admission gates inside).
//
// Determinism: per-shard evaluation runs the untouched serial algorithm and
// the stitch order is fixed by the router, so the service result is
// bit-identical to unsharded serial EvaluatePlan for every codec at every
// shard/thread count — the invariant the service tests pin down.
//
// Concurrency: the index is an immutable snapshot; Query may be called from
// several threads at once (per-worker arenas are only touched by the worker
// that owns them, the cache locks internally, stats are atomics). Data
// changes are modeled by swapping in a new snapshot — SwapSnapshot, which
// also invalidates every shard — or, for in-place shard rebuilds, calling
// Invalidate(shard); both bump the cache's generation counters so every
// stale entry mismatches on its next probe.
//
// The service queries any IndexSnapshot (service/snapshot.h): ShardedIndex
// here, or storage/mapped_index.h's MappedIndex serving a container file
// zero-copy. A lazily-validated snapshot can fail PlanSets with
// kCorruptData; the service surfaces that as the query's Status.

#ifndef INTCOMP_SERVICE_SHARDED_INDEX_H_
#define INTCOMP_SERVICE_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/codec.h"
#include "core/query.h"
#include "core/scratch.h"
#include "engine/engine_stats.h"
#include "engine/thread_pool.h"
#include "index/inverted_index.h"
#include "service/result_cache.h"
#include "service/shard_router.h"
#include "service/snapshot.h"

namespace intcomp {

namespace obs {
struct QueryExplain;
}  // namespace obs

class ShardedIndex final : public IndexSnapshot {
 public:
  // Builds from per-list sorted row-id lists (values < num_rows): list l of
  // shard s holds lists[l] ∩ [Begin(s), End(s)), rebased to local ids.
  // num_rows must be >= 1 and <= 2^32.
  static ShardedIndex Build(const Codec& codec,
                            std::span<const std::vector<uint32_t>> lists,
                            uint64_t num_rows, size_t num_shards);

  // Builds from a column of value codes (0 .. cardinality-1) in row order:
  // list l is the row set of value l. Each shard is produced by
  // BitmapIndex::BuildRange over its sub-range.
  static ShardedIndex BuildFromColumn(const Codec& codec,
                                      std::span<const uint32_t> column_codes,
                                      uint32_t cardinality, size_t num_shards);

  // Builds from a finalized InvertedIndex: list l is the posting list of
  // terms[l] (which must all exist in `index`), re-partitioned across
  // doc-range shards.
  static ShardedIndex BuildFromPostings(
      const Codec& codec, const InvertedIndex& index,
      std::span<const std::string_view> terms, size_t num_shards);

  ShardedIndex(ShardedIndex&&) = default;
  ShardedIndex& operator=(ShardedIndex&&) = default;

  const Codec& codec() const override { return *codec_; }
  const ShardRouter& Router() const override { return router_; }
  size_t NumLists() const override { return num_lists_; }

  // Computed once at build time from the per-list effective codec tags
  // (service/snapshot.h's CodecSignatureBuilder); equals the codec name for
  // every fixed codec.
  std::string_view CodecSignature() const override { return codec_signature_; }

  // Total compressed footprint across all shards.
  size_t SizeInBytes() const override;

  // Shard s's compressed sets, indexed by list id (plan leaves index into
  // this span).
  std::span<const CompressedSet* const> ShardSets(size_t s) const {
    return ptrs_[s];
  }

  // Everything is materialized at build time, so this never fails.
  StatusOr<std::span<const CompressedSet* const>> PlanSets(
      size_t s, std::span<const size_t> /*leaves*/) const override {
    return StatusOr<std::span<const CompressedSet* const>>(ShardSets(s));
  }

 private:
  ShardedIndex(const Codec* codec, ShardRouter router, size_t num_lists)
      : codec_(codec), router_(router), num_lists_(num_lists) {}

  void AdoptShard(std::vector<std::unique_ptr<CompressedSet>> sets);
  void FinishCodecSignature();  // after the last AdoptShard

  const Codec* codec_;
  ShardRouter router_;
  size_t num_lists_;
  std::string codec_signature_;
  std::vector<std::vector<std::unique_ptr<CompressedSet>>> sets_;  // [shard]
  std::vector<std::vector<const CompressedSet*>> ptrs_;            // [shard]
};

struct IndexServiceOptions {
  // Result cache; set enabled=false to evaluate every query.
  bool cache_enabled = true;
  ResultCacheOptions cache;
};

// Point-in-time cache counters the service exposes next to EngineStats.
struct ServiceStats {
  ResultCacheStats cache;
  uint64_t queries = 0;
  uint64_t rejected = 0;  // invalid plans (bad leaf, empty operator node)
};

class IndexService {
 public:
  // `index` and `pool` are borrowed and must outlive the service; `stats`
  // (optional) receives cache hit/miss/bypass and query-outcome counts.
  IndexService(const IndexSnapshot* index, ThreadPool* pool,
               const IndexServiceOptions& options, EngineStats* stats = nullptr);

  // Shared-ownership flavor: the service keeps the snapshot alive as long
  // as it (or an in-flight query) still uses it — the write path swaps
  // snapshots while queries run, so borrowed lifetimes are not enough.
  IndexService(std::shared_ptr<const IndexSnapshot> index, ThreadPool* pool,
               const IndexServiceOptions& options, EngineStats* stats = nullptr);

  // Evaluates `plan` (leaves are list ids of the index) and writes the
  // matching global row ids, sorted ascending, into *out. Returns
  // kInvalidArgument for malformed plans (leaf out of range, empty operator
  // node), kCorruptData when a lazily-validated snapshot rejects a payload;
  // on any non-OK status *out is empty.
  Status Query(const QueryPlan& plan, std::vector<uint32_t>* out);

  // Deadline/cancellation flavor (the network front end's entry point):
  // `token` is polled once before the cache probe — so a request that
  // arrives already past its deadline fails fast even when the answer is
  // cached — and then at every plan-node boundary inside each shard's
  // evaluation, bounding cancellation latency by one decode/intersect.
  // Returns kDeadlineExceeded / kCancelled with *out empty; a null token is
  // exactly the plain Query. (Token precedes `out` so the overload never
  // collides with the QueryExplain* flavor on a literal nullptr.)
  Status Query(const QueryPlan& plan, const CancellationToken* token,
               std::vector<uint32_t>* out);

  // EXPLAIN flavor: additionally captures the full decision/timing tree for
  // this one query into *explain — per-plan-node attribution, per-list codec
  // choices, the planner's per-pair strategy with estimated vs. measured
  // cost, cache probe outcome, and the per-shard fan-out/stitch breakdown
  // (obs/explain.h). Costs a mutex-protected event append per decision, paid
  // only by queries that ask; with explain == nullptr this is exactly the
  // plain Query. The capture itself never changes results: the evaluation
  // path is shared.
  Status Query(const QueryPlan& plan, std::vector<uint32_t>* out,
               obs::QueryExplain* explain);

  // Marks shard s's underlying data as changed: bumps the cache generation
  // so no result computed before this call can be served again.
  void Invalidate(size_t shard);

  // Replaces the served snapshot (e.g. remapping a rewritten container
  // file, or publishing a new delta overlay). `next` must agree with the
  // current snapshot on shard count — the cache's generation table is
  // sized per shard. Every shard is invalidated, so no result computed
  // against the old snapshot can be served again. Safe concurrently with
  // Query: an in-flight query pins the snapshot it started on (copy-on-
  // write), so each query observes exactly one generation end to end.
  Status SwapSnapshot(std::shared_ptr<const IndexSnapshot> next);

  // Borrowed-lifetime flavor, matching the borrowed constructor: `next`
  // must outlive the service and every in-flight query on it.
  Status SwapSnapshot(const IndexSnapshot* next);

  // The currently served snapshot. The reference flavor is only safe while
  // no concurrent SwapSnapshot can retire it; Snapshot() pins it.
  const IndexSnapshot& Index() const { return *index_; }
  std::shared_ptr<const IndexSnapshot> Snapshot() const;
  ResultCache* Cache() { return cache_.get(); }
  ServiceStats Stats() const;

 private:
  Status QueryImpl(const QueryPlan& plan, const CancellationToken* token,
                   std::vector<uint32_t>* out);
  // Refreshes the service.cache.* occupancy gauges (entries, bytes,
  // evictions) when the metrics registry is enabled.
  void PublishCacheGauges();

  mutable std::mutex index_mu_;  // guards index_ (pointer copy only)
  std::shared_ptr<const IndexSnapshot> index_;
  ThreadPool* pool_;
  EngineStats* stats_;
  std::unique_ptr<ResultCache> cache_;  // null when disabled
  std::vector<std::unique_ptr<ScratchArena>> arenas_;  // one per pool worker
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace intcomp

#endif  // INTCOMP_SERVICE_SHARDED_INDEX_H_
