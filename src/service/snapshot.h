// IndexSnapshot — the read interface the IndexService fans out over: an
// immutable, sharded collection of per-list compressed sets.
//
// Two implementations exist:
//   * ShardedIndex (service/sharded_index.h) — sets built and owned in RAM;
//   * MappedIndex (storage/mapped_index.h)   — sets parsed from an mmap'ed
//     container file, materialized eagerly at open or lazily per list.
// The service treats both identically, which is what makes the persistent
// path's results bit-identical to the in-memory path: the same plans run
// through the same EvaluatePlanChecked over sets that decode to the same
// values.
//
// PlanSets returns a StatusOr because a lazily-validated snapshot can
// discover corruption on first touch of a payload: the service converts
// that into a failed query (kCorruptData) instead of a crash.

#ifndef INTCOMP_SERVICE_SNAPSHOT_H_
#define INTCOMP_SERVICE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/codec.h"
#include "service/shard_router.h"

namespace intcomp {

class IndexSnapshot {
 public:
  virtual ~IndexSnapshot() = default;

  virtual const Codec& codec() const = 0;
  virtual const ShardRouter& Router() const = 0;
  virtual size_t NumLists() const = 0;

  // The representation signature the service keys cached results by. The
  // default — the codec's name — is right for any uniformly-encoded
  // snapshot. Adaptive snapshots whose per-list codec choice varies
  // (Planner- or Hybrid-built indexes) append a digest of the per-list
  // tags, so two snapshots that share a codec name but not a per-list
  // representation never share a cache namespace. Stable for the
  // snapshot's lifetime.
  virtual std::string_view CodecSignature() const { return codec().Name(); }

  // Total compressed footprint across all shards.
  virtual size_t SizeInBytes() const = 0;

  size_t NumShards() const { return Router().NumShards(); }
  uint64_t NumRows() const { return Router().NumRows(); }

  // Shard `shard`'s sets, indexed by list id, ready for a plan whose leaves
  // are `leaves` (sorted, deduplicated, all < NumLists()). Entries outside
  // `leaves` may be null for lazily-materialized snapshots — the evaluator
  // only dereferences the leaves of its plan. The span stays valid for the
  // snapshot's lifetime; materialization is thread-safe.
  virtual StatusOr<std::span<const CompressedSet* const>> PlanSets(
      size_t shard, std::span<const size_t> leaves) const = 0;
};

// Derives a snapshot's CodecSignature from its per-(shard, list) codec
// tags (Codec::SetCodecName values), fed in shard-major order. When every
// tag equals the codec's own name the signature is just that name —
// identical to the default — otherwise "<name>#<fnv64 hex>" over the tag
// strings. ShardedIndex (from its in-RAM sets) and MappedIndex (from the
// container's list-codecs section) both build their signature through
// this class, so the same index yields the same signature whichever path
// serves it.
class CodecSignatureBuilder {
 public:
  explicit CodecSignatureBuilder(std::string_view codec_name)
      : name_(codec_name) {}

  void AddListTag(std::string_view tag) {
    if (tag != name_) uniform_ = false;
    for (char c : tag) Mix(static_cast<uint8_t>(c));
    Mix(0);  // separator: {"a","bc"} and {"ab","c"} must hash apart
  }

  std::string Finish() const {
    std::string out(name_);
    if (uniform_) return out;
    out.push_back('#');
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back("0123456789abcdef"[(hash_ >> shift) & 0xf]);
    }
    return out;
  }

 private:
  void Mix(uint8_t byte) {
    hash_ = (hash_ ^ byte) * 1099511628211ull;  // FNV-1a
  }

  std::string_view name_;
  uint64_t hash_ = 14695981039346656037ull;
  bool uniform_ = true;
};

}  // namespace intcomp

#endif  // INTCOMP_SERVICE_SNAPSHOT_H_
