// IndexSnapshot — the read interface the IndexService fans out over: an
// immutable, sharded collection of per-list compressed sets.
//
// Two implementations exist:
//   * ShardedIndex (service/sharded_index.h) — sets built and owned in RAM;
//   * MappedIndex (storage/mapped_index.h)   — sets parsed from an mmap'ed
//     container file, materialized eagerly at open or lazily per list.
// The service treats both identically, which is what makes the persistent
// path's results bit-identical to the in-memory path: the same plans run
// through the same EvaluatePlanChecked over sets that decode to the same
// values.
//
// PlanSets returns a StatusOr because a lazily-validated snapshot can
// discover corruption on first touch of a payload: the service converts
// that into a failed query (kCorruptData) instead of a crash.

#ifndef INTCOMP_SERVICE_SNAPSHOT_H_
#define INTCOMP_SERVICE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/status.h"
#include "core/codec.h"
#include "service/shard_router.h"

namespace intcomp {

class IndexSnapshot {
 public:
  virtual ~IndexSnapshot() = default;

  virtual const Codec& codec() const = 0;
  virtual const ShardRouter& Router() const = 0;
  virtual size_t NumLists() const = 0;

  // Total compressed footprint across all shards.
  virtual size_t SizeInBytes() const = 0;

  size_t NumShards() const { return Router().NumShards(); }
  uint64_t NumRows() const { return Router().NumRows(); }

  // Shard `shard`'s sets, indexed by list id, ready for a plan whose leaves
  // are `leaves` (sorted, deduplicated, all < NumLists()). Entries outside
  // `leaves` may be null for lazily-materialized snapshots — the evaluator
  // only dereferences the leaves of its plan. The span stays valid for the
  // snapshot's lifetime; materialization is thread-safe.
  virtual StatusOr<std::span<const CompressedSet* const>> PlanSets(
      size_t shard, std::span<const size_t> leaves) const = 0;
};

}  // namespace intcomp

#endif  // INTCOMP_SERVICE_SNAPSHOT_H_
