// On-disk container format for a persisted ShardedIndex (DESIGN.md §5.10).
//
// File layout (all integers little-endian, all sections 8-byte aligned):
//
//   [ header, 64 bytes, patched in Finalize() ]
//   [ meta section        ]  rows/lists/shards + codec name
//   [ payload section     ]  shard-major codec images, each 8-byte aligned
//   [ offset-table section]  one 24-byte entry per (shard, list) payload
//   [ ...opaque sections  ]  optional extensions; unknown ids are skipped
//   [ directory           ]  32-byte entries locating every section
//
// Header (offsets in bytes):
//    0  u64 magic            "ICSTOR01"
//    8  u16 version_major    readers reject unknown majors
//   10  u16 version_minor    informational; minor bumps stay readable
//   12  u32 header_bytes     64 in v1
//   16  u64 file_bytes       total size; != actual size ⇒ torn write
//   24  u64 directory_offset
//   32  u32 directory_entries
//   36  u32 directory_crc    CRC-32 of the directory bytes
//   40  u32 header_crc       CRC-32 of header bytes [0, 40)
//   44  .. zero padding to 64
//
// The writer streams sections first and patches the header last, so every
// strict prefix of the write stream is an invalid file (bad magic, bad
// header CRC, or a file-size mismatch) — the crash-consistency property the
// torn-write tests replay byte by byte.
//
// Directory entry (32 bytes): u32 section_id, u32 reserved, u64 offset,
// u64 length, u32 crc (CRC-32 of the section's `length` bytes),
// u32 reserved. Length excludes inter-section padding except inside the
// payload section, whose internal alignment padding is part of the section
// (so its CRC covers exactly the streamed bytes).
//
// Offset-table entry (24 bytes): u64 offset (relative to the payload
// section start, 8-byte aligned), u64 length, u32 crc (CRC-32 of that
// payload image), u32 reserved. Per-payload CRCs let lazy validation check
// only the lists a query touches. Entries are shard-major:
// entry(shard, list) = shard * num_lists + list.
//
// Meta section: u64 num_rows, u64 num_lists, u64 num_shards,
// u32 codec_name_length, codec name bytes (not NUL-terminated).
//
// List-codecs section (optional): the per-list effective codec tags of an
// adaptively-encoded index (Planner/Hybrid — Codec::SetCodecName varies
// per set). Layout: u32 num_names, then num_names of { u8 length, name
// bytes }, then u64 num_entries (must equal num_shards * num_lists), then
// one u8 name-table index per (shard, list) payload in shard-major order.
// The writer emits the section only when some tag differs from the index
// codec's own name, so fixed-codec containers are byte-for-byte unchanged
// by its existence, and v1 readers that predate it skip it as an unknown
// id (no minor-version bump needed).

#ifndef INTCOMP_STORAGE_FORMAT_H_
#define INTCOMP_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace intcomp::storage {

// "ICSTOR01" read as a little-endian u64.
inline constexpr uint64_t kMagic = 0x3130524F54534349ull;

inline constexpr uint16_t kVersionMajor = 1;
inline constexpr uint16_t kVersionMinor = 0;

inline constexpr size_t kHeaderBytes = 64;
inline constexpr size_t kHeaderCrcOffset = 40;  // header_crc covers [0, 40)
inline constexpr size_t kDirEntryBytes = 32;
inline constexpr size_t kPayloadEntryBytes = 24;
inline constexpr size_t kSectionAlign = 8;

// Section ids the v1 reader understands. Ids outside this set are legal
// (forward compatibility): readers skip them.
inline constexpr uint32_t kSectionMeta = 1;
inline constexpr uint32_t kSectionOffsets = 2;
inline constexpr uint32_t kSectionPayloads = 3;
// Optional per-list codec tags for adaptive codecs (layout above). Readers
// without it treat every list as stored under the index codec's own name.
inline constexpr uint32_t kSectionListCodecs = 4;
// First id available to extensions / tests; never interpreted by v1.
inline constexpr uint32_t kFirstUnassignedSectionId = 1000;

// Parsed forms (the wire encoding is the packed layouts described above,
// written field by field — these structs are never memcpy'd to disk).
struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
};

struct PayloadEntry {
  uint64_t offset = 0;  // relative to the payload section start
  uint64_t length = 0;
  uint32_t crc = 0;
};

inline constexpr uint64_t AlignUp8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

}  // namespace intcomp::storage

#endif  // INTCOMP_STORAGE_FORMAT_H_
