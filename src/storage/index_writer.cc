#include "storage/index_writer.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>

#include "common/bufio.h"
#include "common/crc32.h"
#include "common/fault.h"

namespace intcomp::storage {

// ---------------------------------------------------------------- FileSink

namespace {

// EINTR-class errno values are worth retrying: the write can succeed on a
// later attempt (WriteIndexFile re-runs the whole file, which is idempotent
// — Create truncates). ENOSPC/EIO count as transient here because the
// retrying caller is writing a *temp* file whose space may be reclaimed
// (e.g. by a concurrent compaction cleaning up) between attempts.
bool ErrnoIsTransientWrite(int err) {
  return err == EINTR || err == EAGAIN || err == ENOSPC || err == EIO;
}

Status WriteErrorStatus(const char* what) {
  if (ErrnoIsTransientWrite(errno)) return Status::Unavailable(what);
  return Status::Internal(what);
}

// Consults the fault registry for file-sink ops; returns non-OK for an
// injected fault (short writes land `action.short_bytes` of `bytes` first,
// modeling a torn buffered write that made it to disk).
Status ConsultFaults(fault::Site site, std::FILE* file,
                     std::span<const uint8_t> bytes, uint64_t* end) {
  const fault::Action action =
      fault::FaultInjector::Global().OnOp(site, bytes.size());
  switch (action.kind) {
    case fault::Kind::kNone:
      return Status::Ok();
    case fault::Kind::kTransient:
      return Status::Unavailable("injected transient fault");
    case fault::Kind::kPermanent:
      return Status::Internal("injected permanent fault");
    case fault::Kind::kShortWrite: {
      const size_t n = std::min<size_t>(action.short_bytes, bytes.size());
      if (file != nullptr && n > 0 &&
          std::fwrite(bytes.data(), 1, n, file) == n && end != nullptr) {
        *end += n;
      }
      return Status::Internal("injected short write");
    }
  }
  return Status::Internal("unknown fault kind");
}

}  // namespace

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::Create(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("FileSink already open");
  Status fault = ConsultFaults(fault::Site::kFileCreate, nullptr, {}, nullptr);
  if (!fault.ok()) return fault;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (ErrnoIsTransientWrite(errno)) {
      return Status::Unavailable("cannot create file: " + path);
    }
    return Status::InvalidArgument("cannot create file: " + path);
  }
  end_ = 0;
  return Status::Ok();
}

Status FileSink::Append(std::span<const uint8_t> bytes) {
  if (file_ == nullptr) return Status::Internal("FileSink not open");
  Status fault = ConsultFaults(fault::Site::kFileAppend, file_, bytes, &end_);
  if (!fault.ok()) return fault;
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return WriteErrorStatus("short write");
  }
  end_ += bytes.size();
  return Status::Ok();
}

Status FileSink::WriteAt(uint64_t offset, std::span<const uint8_t> bytes) {
  if (file_ == nullptr) return Status::Internal("FileSink not open");
  if (offset + bytes.size() > end_) {
    return Status::Internal("WriteAt past end of stream");
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::Internal("seek failed");
  }
  Status fault = ConsultFaults(fault::Site::kFileWriteAt, file_, bytes,
                               nullptr);
  if (!fault.ok()) return fault;
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return WriteErrorStatus("short write");
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::Internal("seek failed");
  }
  return Status::Ok();
}

Status FileSink::Flush() {
  if (file_ == nullptr) return Status::Ok();
  Status fault = ConsultFaults(fault::Site::kFileFlush, nullptr, {}, nullptr);
  if (!fault.ok()) return fault;
  if (std::fflush(file_) != 0) return WriteErrorStatus("flush failed");
  // Durability point: the crash-safe write path renames this file into
  // place right after Finalize, and rename-then-crash must never expose a
  // file whose data is still in the page cache only.
  if (fsync(fileno(file_)) != 0) return WriteErrorStatus("fsync failed");
  return Status::Ok();
}

Status FileSink::Close() {
  if (file_ == nullptr) return Status::Ok();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  return rc == 0 ? Status::Ok() : Status::Internal("close failed");
}

// -------------------------------------------------------------- VectorSink

Status VectorSink::Append(std::span<const uint8_t> bytes) {
  out_->insert(out_->end(), bytes.begin(), bytes.end());
  return Status::Ok();
}

Status VectorSink::WriteAt(uint64_t offset, std::span<const uint8_t> bytes) {
  if (offset + bytes.size() > out_->size()) {
    return Status::Internal("WriteAt past end of stream");
  }
  if (!bytes.empty()) {
    std::memcpy(out_->data() + offset, bytes.data(), bytes.size());
  }
  return Status::Ok();
}

// ------------------------------------------------------------- IndexWriter

Status IndexWriter::AppendRaw(std::span<const uint8_t> bytes) {
  Status st = sink_->Append(bytes);
  if (st.ok()) pos_ += bytes.size();
  return st;
}

Status IndexWriter::PadToAlignment() {
  static constexpr uint8_t kZeros[kSectionAlign] = {};
  const uint64_t padded = AlignUp8(pos_);
  if (padded == pos_) return Status::Ok();
  return AppendRaw({kZeros, static_cast<size_t>(padded - pos_)});
}

Status IndexWriter::WriteShardedIndex(const ShardedIndex& index) {
  if (wrote_index_ || finalized_) {
    return Status::Internal("WriteShardedIndex called twice");
  }
  wrote_index_ = true;

  // Header placeholder: all zeros (invalid magic) until Finalize patches it.
  const std::vector<uint8_t> zeros(kHeaderBytes, 0);
  Status st = AppendRaw(zeros);
  if (!st.ok()) return st;

  const size_t num_shards = index.NumShards();
  const size_t num_lists = index.NumLists();

  // Meta section.
  {
    std::vector<uint8_t> meta;
    ByteWriter w(&meta);
    w.PutU64(index.NumRows());
    w.PutU64(num_lists);
    w.PutU64(num_shards);
    const std::string_view name = index.codec().Name();
    w.PutU32(static_cast<uint32_t>(name.size()));
    w.PutBytes(reinterpret_cast<const uint8_t*>(name.data()), name.size());
    directory_.push_back(
        {kSectionMeta, pos_, meta.size(), Crc32Of(meta)});
    st = AppendRaw(meta);
    if (!st.ok()) return st;
    st = PadToAlignment();
    if (!st.ok()) return st;
  }

  // Payload section: shard-major images, each padded to 8 bytes so mapped
  // readers can borrow word arrays in place. The section CRC covers the
  // streamed bytes including internal padding.
  std::vector<PayloadEntry> offsets;
  offsets.reserve(num_shards * num_lists);
  std::vector<std::string_view> list_codec_tags;
  list_codec_tags.reserve(num_shards * num_lists);
  const uint64_t payload_start = pos_;
  Crc32 payload_crc;
  std::vector<uint8_t> image;
  for (size_t s = 0; s < num_shards; ++s) {
    std::span<const CompressedSet* const> sets = index.ShardSets(s);
    for (size_t l = 0; l < num_lists; ++l) {
      image.clear();
      index.codec().Serialize(*sets[l], &image);
      list_codec_tags.push_back(index.codec().SetCodecName(*sets[l]));
      offsets.push_back({pos_ - payload_start, image.size(), Crc32Of(image)});
      payload_crc.Update(image.data(), image.size());
      st = AppendRaw(image);
      if (!st.ok()) return st;
      const uint64_t padded = AlignUp8(pos_);
      if (padded != pos_) {
        static constexpr uint8_t kZeros[kSectionAlign] = {};
        payload_crc.Update(kZeros, static_cast<size_t>(padded - pos_));
        st = AppendRaw({kZeros, static_cast<size_t>(padded - pos_)});
        if (!st.ok()) return st;
      }
    }
  }
  directory_.push_back(
      {kSectionPayloads, payload_start, pos_ - payload_start,
       payload_crc.Value()});

  // Offset table (entries are 24 bytes, so the section stays 8-aligned).
  {
    std::vector<uint8_t> table;
    table.reserve(offsets.size() * kPayloadEntryBytes);
    ByteWriter w(&table);
    for (const PayloadEntry& e : offsets) {
      w.PutU64(e.offset);
      w.PutU64(e.length);
      w.PutU32(e.crc);
      w.PutU32(0);
    }
    directory_.push_back(
        {kSectionOffsets, pos_, table.size(), Crc32Of(table)});
    st = AppendRaw(table);
    if (!st.ok()) return st;
  }
  st = PadToAlignment();
  if (!st.ok()) return st;

  // List-codecs section — only when the codec's per-set choice varies, so
  // fixed-codec containers (and the committed golden images of them) stay
  // byte-for-byte identical to pre-section writers.
  const std::string_view codec_name = index.codec().Name();
  bool uniform = true;
  for (std::string_view tag : list_codec_tags) {
    if (tag != codec_name) {
      uniform = false;
      break;
    }
  }
  if (!uniform) {
    std::vector<std::string_view> names;
    std::vector<uint8_t> indices;
    indices.reserve(list_codec_tags.size());
    for (std::string_view tag : list_codec_tags) {
      size_t i = 0;
      while (i < names.size() && names[i] != tag) ++i;
      if (i == names.size()) {
        // Tags come from candidate pools capped at 255 codecs and names fit
        // a u8 length; a violation is a codec bug, not a data condition.
        if (names.size() >= 255 || tag.empty() || tag.size() > 255) {
          return Status::Internal("per-list codec tags exceed section limits");
        }
        names.push_back(tag);
      }
      indices.push_back(static_cast<uint8_t>(i));
    }
    std::vector<uint8_t> section;
    ByteWriter w(&section);
    w.PutU32(static_cast<uint32_t>(names.size()));
    for (std::string_view name : names) {
      w.PutU8(static_cast<uint8_t>(name.size()));
      w.PutBytes(reinterpret_cast<const uint8_t*>(name.data()), name.size());
    }
    w.PutU64(indices.size());
    w.PutBytes(indices.data(), indices.size());
    directory_.push_back(
        {kSectionListCodecs, pos_, section.size(), Crc32Of(section)});
    st = AppendRaw(section);
    if (!st.ok()) return st;
  }
  return PadToAlignment();
}

Status IndexWriter::AppendOpaqueSection(uint32_t id,
                                        std::span<const uint8_t> bytes) {
  if (!wrote_index_ || finalized_) {
    return Status::Internal("AppendOpaqueSection outside write window");
  }
  if (id == kSectionMeta || id == kSectionOffsets || id == kSectionPayloads ||
      id == kSectionListCodecs) {
    return Status::InvalidArgument("opaque section id collides with v1 id");
  }
  Status st = PadToAlignment();
  if (!st.ok()) return st;
  directory_.push_back(
      {id, pos_, bytes.size(), Crc32Of({bytes.data(), bytes.size()})});
  st = AppendRaw(bytes);
  if (!st.ok()) return st;
  return PadToAlignment();
}

Status IndexWriter::Finalize() {
  if (!wrote_index_) return Status::Internal("Finalize before write");
  if (finalized_) return Status::Internal("Finalize called twice");
  finalized_ = true;

  Status st = PadToAlignment();
  if (!st.ok()) return st;

  const uint64_t directory_offset = pos_;
  std::vector<uint8_t> dir;
  dir.reserve(directory_.size() * kDirEntryBytes);
  {
    ByteWriter w(&dir);
    for (const SectionEntry& e : directory_) {
      w.PutU32(e.id);
      w.PutU32(0);
      w.PutU64(e.offset);
      w.PutU64(e.length);
      w.PutU32(e.crc);
      w.PutU32(0);
    }
  }
  st = AppendRaw(dir);
  if (!st.ok()) return st;

  // Header patch — the stream's final op. Until it lands, the file has a
  // zero magic and cannot open.
  std::vector<uint8_t> header;
  header.reserve(kHeaderBytes);
  ByteWriter w(&header);
  w.PutU64(kMagic);
  w.PutU16(kVersionMajor);
  w.PutU16(kVersionMinor);
  w.PutU32(static_cast<uint32_t>(kHeaderBytes));
  w.PutU64(pos_);  // file_bytes
  w.PutU64(directory_offset);
  w.PutU32(static_cast<uint32_t>(directory_.size()));
  w.PutU32(Crc32Of(dir));
  w.PutU32(Crc32Of({header.data(), kHeaderCrcOffset}));
  header.resize(kHeaderBytes, 0);
  st = sink_->WriteAt(0, header);
  if (!st.ok()) return st;
  return sink_->Flush();
}

Status WriteIndexFile(const std::string& path, const ShardedIndex& index,
                      const RetryOptions& retry) {
  // The whole-file write is idempotent (Create truncates), so transient
  // failures retry the complete attempt rather than resuming mid-stream.
  return RetryTransient(retry, [&]() -> Status {
    FileSink sink;
    Status st = sink.Create(path);
    if (!st.ok()) return st;
    IndexWriter writer(&sink);
    st = writer.WriteShardedIndex(index);
    if (!st.ok()) return st;
    st = writer.Finalize();
    if (!st.ok()) return st;
    return sink.Close();
  });
}

Status WriteIndexImage(const ShardedIndex& index, std::vector<uint8_t>* image) {
  image->clear();
  VectorSink sink(image);
  IndexWriter writer(&sink);
  Status st = writer.WriteShardedIndex(index);
  if (!st.ok()) return st;
  return writer.Finalize();
}

}  // namespace intcomp::storage
