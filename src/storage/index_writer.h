// IndexWriter — streams a ShardedIndex into the container format of
// format.h through a StorageSink.
//
// The sink abstraction exists for the crash-consistency tests: a recording
// sink captures the exact op stream (appends + the final header patch) so
// every byte-prefix of it can be replayed against MappedIndex::OpenBorrowed.
// Production writes go through FileSink.
//
// Usage:
//   FileSink sink;
//   RETURN_IF_ERROR(sink.Create(path));
//   IndexWriter writer(&sink);
//   RETURN_IF_ERROR(writer.WriteShardedIndex(index));
//   RETURN_IF_ERROR(writer.Finalize());   // directory + header patch
// or the one-call convenience WriteIndexFile(path, index).

#ifndef INTCOMP_STORAGE_INDEX_WRITER_H_
#define INTCOMP_STORAGE_INDEX_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "service/sharded_index.h"
#include "storage/format.h"

namespace intcomp::storage {

// Byte destination for the writer. Append grows the stream at its end;
// WriteAt patches previously-appended bytes (the writer only uses it for
// the final header patch, which is what gives prefixes their fail-closed
// property).
class StorageSink {
 public:
  virtual ~StorageSink() = default;
  virtual Status Append(std::span<const uint8_t> bytes) = 0;
  virtual Status WriteAt(uint64_t offset, std::span<const uint8_t> bytes) = 0;
  virtual Status Flush() = 0;
};

class FileSink final : public StorageSink {
 public:
  FileSink() = default;
  ~FileSink() override;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  Status Create(const std::string& path);  // truncates
  Status Append(std::span<const uint8_t> bytes) override;
  Status WriteAt(uint64_t offset, std::span<const uint8_t> bytes) override;
  Status Flush() override;
  Status Close();

 private:
  std::FILE* file_ = nullptr;
  uint64_t end_ = 0;
};

// Appends into a caller-owned buffer; WriteAt patches in place. Used by
// tests and by WriteIndexImage.
class VectorSink final : public StorageSink {
 public:
  explicit VectorSink(std::vector<uint8_t>* out) : out_(out) {}
  Status Append(std::span<const uint8_t> bytes) override;
  Status WriteAt(uint64_t offset, std::span<const uint8_t> bytes) override;
  Status Flush() override { return Status::Ok(); }

 private:
  std::vector<uint8_t>* out_;
};

class IndexWriter {
 public:
  // `sink` is borrowed and must outlive the writer.
  explicit IndexWriter(StorageSink* sink) : sink_(sink) {}

  // Streams header placeholder + meta + payloads + offset table. Call once.
  Status WriteShardedIndex(const ShardedIndex& index);

  // Optional extension section, appended after WriteShardedIndex and before
  // Finalize. v1 readers skip ids they do not know, which the format-skew
  // tests exercise. `id` must not collide with the assigned section ids.
  Status AppendOpaqueSection(uint32_t id, std::span<const uint8_t> bytes);

  // Writes the directory, then patches the header (the last sink op). After
  // this the file is complete and self-validating.
  Status Finalize();

  uint64_t BytesWritten() const { return pos_; }

 private:
  Status AppendRaw(std::span<const uint8_t> bytes);
  Status PadToAlignment();

  StorageSink* sink_;
  uint64_t pos_ = 0;
  bool wrote_index_ = false;
  bool finalized_ = false;
  std::vector<SectionEntry> directory_;
};

// Convenience wrappers: stream `index` into a fresh file / into *image.
// File writes classify EINTR-class errors (and injected transient faults)
// as kUnavailable and retry the whole idempotent attempt per `retry`.
Status WriteIndexFile(const std::string& path, const ShardedIndex& index,
                      const RetryOptions& retry = {});
Status WriteIndexImage(const ShardedIndex& index, std::vector<uint8_t>* image);

}  // namespace intcomp::storage

#endif  // INTCOMP_STORAGE_INDEX_WRITER_H_
