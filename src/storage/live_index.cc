#include "storage/live_index.h"

#include <cerrno>
#include <cstdio>
#include <numeric>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/index_writer.h"

namespace intcomp::storage {
namespace {

void BumpCounter(const char* name, uint64_t delta = 1) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (reg.Enabled()) reg.AddCounter(name, delta);
}

std::string PathJoin(const std::string& dir, const char* file) {
  return dir + "/" + file;
}

// rename(2) with fault injection and transient retry. POSIX rename is the
// atomic commit primitive of both commit steps: readers see either the old
// or the new file, never a mix.
Status RenameFile(const std::string& from, const std::string& to,
                  const RetryOptions& retry) {
  return RetryTransient(retry, [&]() -> Status {
    const fault::Action action =
        fault::FaultInjector::Global().OnOp(fault::Site::kRename, 0);
    if (action.kind == fault::Kind::kTransient) {
      return Status::Unavailable("injected transient fault: rename");
    }
    if (action.kind != fault::Kind::kNone) {
      return Status::Internal("injected permanent fault: rename");
    }
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ENOSPC ||
          errno == EIO) {
        return Status::Unavailable("rename failed: " + from);
      }
      return Status::Internal("rename failed: " + from);
    }
    return Status::Ok();
  });
}

// A compaction phase boundary: lets crash-at-op-K schedules land between
// (not just inside) the file operations of the commit protocol.
Status CompactionStep(const char* phase) {
  const fault::Action action =
      fault::FaultInjector::Global().OnOp(fault::Site::kCompactionStep, 0);
  if (action.kind == fault::Kind::kNone) return Status::Ok();
  if (action.kind == fault::Kind::kTransient) {
    return Status::Unavailable(std::string("injected transient fault: ") +
                               phase);
  }
  return Status::Internal(std::string("injected fault: ") + phase);
}

}  // namespace

LiveIndex::LiveIndex(std::string dir, LiveIndexOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

LiveIndex::~LiveIndex() { Close(); }

StatusOr<std::unique_ptr<LiveIndex>> LiveIndex::Create(
    const std::string& dir, const ShardedIndex& base,
    const LiveIndexOptions& options) {
  Status st = WriteIndexFile(PathJoin(dir, kIndexTmpFile), base,
                             options.retry);
  if (!st.ok()) return st;
  st = RenameFile(PathJoin(dir, kIndexTmpFile), PathJoin(dir, kIndexFile),
                  options.retry);
  if (!st.ok()) return st;
  return Open(dir, options);
}

StatusOr<std::unique_ptr<LiveIndex>> LiveIndex::Open(
    const std::string& dir, const LiveIndexOptions& options) {
  TRACE_SPAN("storage.live_open");
  StatusOr<std::unique_ptr<MappedIndex>> base =
      OpenIndexWithRetry(PathJoin(dir, kIndexFile), options.mapped,
                         options.retry);
  if (!base.ok()) return base.status();

  // A crash may strand temp files from an uncommitted compaction; they are
  // dead (never read) and removed so later compactions start clean.
  std::remove(PathJoin(dir, kIndexTmpFile).c_str());
  std::remove(PathJoin(dir, kWalTmpFile).c_str());

  std::unique_ptr<LiveIndex> live(new LiveIndex(dir, options));
  live->base_ = std::shared_ptr<const IndexSnapshot>(std::move(base.value()));
  const size_t num_lists = live->base_->NumLists();
  const uint64_t num_rows = live->base_->NumRows();

  const std::string wal_path = PathJoin(dir, kWalFile);
  StatusOr<WalReplayStats> replay =
      ReplayWal(wal_path, [&](const WalRecord& rec) -> Status {
        switch (rec.op) {
          case WalOp::kInsert:
          case WalOp::kRemove:
            if (rec.list >= num_lists ||
                (!rec.rows.empty() && rec.rows.back() >= num_rows)) {
              return Status::Corrupt("wal record out of index bounds");
            }
            if (rec.op == WalOp::kInsert) {
              live->deltas_.Insert(rec.list, rec.rows);
            } else {
              live->deltas_.Remove(rec.list, rec.rows);
            }
            return Status::Ok();
          case WalOp::kCheckpoint:
            // Informational compaction marker; replay over the *current*
            // base is idempotent regardless (see delta_overlay.h).
            live->checkpoint_seq_ =
                std::max(live->checkpoint_seq_, rec.checkpoint_id);
            return Status::Ok();
        }
        return Status::Corrupt("wal record with unknown op");
      });
  if (!replay.ok()) return replay.status();
  live->replayed_records_ = replay.value().records;
  live->recovered_torn_tail_ = replay.value().tail_truncated;
  if (replay.value().tail_truncated) {
    BumpCounter("storage.wal.torn_tail_recovered");
  }

  StatusOr<std::unique_ptr<WalWriter>> wal =
      replay.value().existed
          ? WalWriter::OpenForAppend(wal_path, replay.value(), options.wal)
          : WalWriter::Create(wal_path, options.wal);
  if (!wal.ok()) return wal.status();
  live->wal_ = std::move(wal.value());

  {
    std::lock_guard<std::mutex> lock(live->mu_);
    live->PublishLocked();
  }
  return StatusOr<std::unique_ptr<LiveIndex>>(std::move(live));
}

std::unique_ptr<LiveIndex> LiveIndex::Wrap(
    std::shared_ptr<const IndexSnapshot> base) {
  std::unique_ptr<LiveIndex> live(new LiveIndex("", {}));
  live->base_ = std::move(base);
  std::lock_guard<std::mutex> lock(live->mu_);
  live->PublishLocked();
  return live;
}

void LiveIndex::PublishLocked() {
  std::shared_ptr<const IndexSnapshot> next =
      deltas_.Dirty() ? std::make_shared<OverlaySnapshot>(base_,
                                                          deltas_.Copy())
                      : base_;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snapshot_ = next;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
  if (service_ != nullptr) {
    // Swap failures (shard-count mismatch) are impossible here: every
    // overlay shares the base's router.
    service_->SwapSnapshot(std::move(next));
  }
}

std::shared_ptr<const IndexSnapshot> LiveIndex::Snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snapshot_;
}

void LiveIndex::AttachService(IndexService* service) {
  std::lock_guard<std::mutex> lock(mu_);
  service_ = service;
  if (service_ != nullptr) {
    std::shared_ptr<const IndexSnapshot> snap;
    {
      std::lock_guard<std::mutex> slock(snap_mu_);
      snap = snapshot_;
    }
    service_->SwapSnapshot(std::move(snap));
  }
}

Status LiveIndex::Update(WalOp op, uint32_t list,
                         std::span<const uint32_t> rows) {
  std::vector<uint32_t> canon(rows.begin(), rows.end());
  CanonicalizeRows(&canon);

  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::Internal("live index closed");
  if (wal_ == nullptr && !dir_.empty()) {
    // A failed WAL rotation retired the writer after its rename landed;
    // accepting non-durable updates here would diverge from disk.
    return Status::Unavailable("wal writer unavailable; reopen the index");
  }
  if (list >= base_->NumLists()) {
    return Status::InvalidArgument("update list out of range");
  }
  if (!canon.empty() && canon.back() >= base_->NumRows()) {
    return Status::InvalidArgument("update row out of range");
  }
  if (canon.empty()) return Status::Ok();

  if (wal_ != nullptr) {
    obs::ScopedOpTimer timer(base_->codec().Name(), obs::OpKind::kWalAppend);
    Status st = wal_->AppendUpdate(op, list, canon);
    if (!st.ok()) return st;  // not applied: durable and in-memory agree
  }
  if (op == WalOp::kInsert) {
    deltas_.Insert(list, canon);
    inserts_.fetch_add(1, std::memory_order_relaxed);
  } else {
    deltas_.Remove(list, canon);
    removes_.fetch_add(1, std::memory_order_relaxed);
  }
  PublishLocked();
  return Status::Ok();
}

Status LiveIndex::Insert(uint32_t list, std::span<const uint32_t> rows) {
  return Update(WalOp::kInsert, list, rows);
}

Status LiveIndex::Remove(uint32_t list, std::span<const uint32_t> rows) {
  return Update(WalOp::kRemove, list, rows);
}

Status LiveIndex::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::Ok();
  return wal_->Sync();
}

Status LiveIndex::MergeBase(const IndexSnapshot& base,
                            std::vector<std::vector<uint32_t>>* lists) {
  const size_t num_lists = base.NumLists();
  const ShardRouter& router = base.Router();
  lists->assign(num_lists, {});
  std::vector<size_t> all(num_lists);
  std::iota(all.begin(), all.end(), 0);
  std::vector<uint32_t> local;
  for (size_t s = 0; s < router.NumShards(); ++s) {
    StatusOr<std::span<const CompressedSet* const>> sets = base.PlanSets(s, all);
    if (!sets.ok()) return sets.status();
    const uint32_t begin = static_cast<uint32_t>(router.Begin(s));
    for (size_t l = 0; l < num_lists; ++l) {
      local.clear();
      base.codec().Decode(*sets.value()[l], &local);
      auto& out = (*lists)[l];
      out.reserve(out.size() + local.size());
      // Shards cover ascending disjoint ranges, so appending in shard
      // order keeps the global list sorted.
      for (uint32_t r : local) out.push_back(r + begin);
    }
  }
  return Status::Ok();
}

Status LiveIndex::Compact() {
  bool expected = false;
  if (!compacting_.compare_exchange_strong(expected, true)) {
    return Status::Unavailable("compaction already running");
  }
  TRACE_SPAN("storage.compaction");
  Status st = [&]() -> Status {
    // Freeze: the deltas this compaction folds in. Updates keep landing in
    // the live map while the merge runs; commit subtracts exactly `frozen`.
    std::vector<std::pair<uint32_t, ListDelta>> frozen;
    std::shared_ptr<const IndexSnapshot> base;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return Status::Internal("live index closed");
      frozen = deltas_.Copy();
      base = base_;
    }
    obs::ScopedOpTimer timer(base->codec().Name(), obs::OpKind::kCompaction);

    Status step = CompactionStep("compaction merge");
    if (!step.ok()) return step;

    // Merge base + frozen into plain lists, rebuild freshly compressed.
    std::vector<std::vector<uint32_t>> lists;
    Status merge = MergeBase(*base, &lists);
    if (!merge.ok()) return merge;
    std::vector<uint32_t> merged;
    for (const auto& [list, delta] : frozen) {
      ApplyDelta(lists[list], delta, &merged);
      lists[list] = merged;
    }
    ShardedIndex fresh =
        ShardedIndex::Build(base->codec(), lists, base->NumRows(),
                            base->NumShards());

    std::shared_ptr<const IndexSnapshot> next_base;
    if (dir_.empty()) {
      // Volatile index: the rebuilt snapshot itself is the new base.
      next_base = std::make_shared<ShardedIndex>(std::move(fresh));
    } else {
      // Commit step 1: temp container (header patched last, fsynced),
      // renamed atomically over index.ics.
      step = CompactionStep("compaction container write");
      if (!step.ok()) return step;
      Status write = WriteIndexFile(PathJoin(dir_, kIndexTmpFile), fresh,
                                    options_.retry);
      if (!write.ok()) return write;
      step = CompactionStep("compaction container rename");
      if (!step.ok()) return step;
      Status ren = RenameFile(PathJoin(dir_, kIndexTmpFile),
                              PathJoin(dir_, kIndexFile), options_.retry);
      if (!ren.ok()) return ren;
      // From here on the on-disk pair is (new container, old WAL) — a
      // crash recovers the post-compaction state via idempotent replay.
      StatusOr<std::unique_ptr<MappedIndex>> reopened =
          OpenIndexWithRetry(PathJoin(dir_, kIndexFile), options_.mapped,
                             options_.retry);
      if (!reopened.ok()) return reopened.status();
      next_base = std::shared_ptr<const IndexSnapshot>(
          std::move(reopened.value()));
    }

    // Commit: rotate the WAL (step 2) onto the surviving deltas, then drop
    // the folded ones and swap the base. Under mu_ so no update interleaves
    // with the subtract or lands in the gap between the new WAL's content
    // and the live map. The survivors are computed on a copy first: if
    // rotation fails before its rename, the live state is untouched.
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::Internal("live index closed");
    DeltaMap survivors = deltas_;
    survivors.Subtract(frozen);
    if (wal_ != nullptr) {
      Status rot = RotateWalLocked(++checkpoint_seq_, survivors.Copy());
      if (!rot.ok()) return rot;
    }
    deltas_ = std::move(survivors);
    base_ = std::move(next_base);
    PublishLocked();
    BumpCounter("storage.compaction.committed");
    return Status::Ok();
  }();
  if (st.ok()) {
    compactions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    compaction_failures_.fetch_add(1, std::memory_order_relaxed);
    BumpCounter("storage.compaction.aborted");
  }
  compacting_.store(false, std::memory_order_release);
  return st;
}

void LiveIndex::CompactAsync(ThreadPool* pool,
                             std::function<void(Status)> done) {
  // Submit-side trace anchor. ThreadPool::Enqueue only carries a trace
  // context when the submitting thread has a span open, so a CompactAsync
  // called outside any span used to surface its storage.compaction span as
  // an orphaned root in snapshots. Opening the anchor here (a child of
  // whatever the caller has open, or a root of its own) gives Enqueue a
  // context to capture, and the worker-side spans nest under the submitting
  // thread's trace.
  TRACE_SPAN("storage.compact_submit");
  pool->Submit([this, done = std::move(done)](size_t /*worker*/) {
    Status st = Compact();
    if (done) done(st);
  });
}

Status LiveIndex::RotateWalLocked(
    uint64_t checkpoint_id,
    const std::vector<std::pair<uint32_t, ListDelta>>& survivors) {
  TRACE_SPAN("storage.wal_rotate");
  const std::string tmp = PathJoin(dir_, kWalTmpFile);
  const std::string path = PathJoin(dir_, kWalFile);

  // Fresh log: checkpoint marker + synthetic records for the deltas that
  // arrived during the merge (they are not in the new base). Written and
  // fsynced as a whole before the rename, so the swap is atomic.
  {
    StatusOr<std::unique_ptr<WalWriter>> fresh =
        WalWriter::Create(tmp, options_.wal);
    if (!fresh.ok()) return fresh.status();
    WalWriter& w = *fresh.value();
    Status st = w.AppendCheckpoint(checkpoint_id);
    for (const auto& [list, delta] : survivors) {
      if (st.ok() && !delta.inserts.empty()) {
        st = w.AppendUpdate(WalOp::kInsert, list, delta.inserts);
      }
      if (st.ok() && !delta.deletes.empty()) {
        st = w.AppendUpdate(WalOp::kRemove, list, delta.deletes);
      }
    }
    if (st.ok()) st = w.Close();
    if (!st.ok()) return st;  // old WAL untouched, still appending
  }

  Status ren = RenameFile(tmp, path, options_.retry);
  if (!ren.ok()) return ren;

  // The old writer now appends to an unlinked inode; retire it and resume
  // on the new file. Accumulate its counters first.
  wal_records_base_ += wal_->Records();
  wal_bytes_base_ += wal_->BytesWritten();
  wal_syncs_base_ += wal_->Syncs();
  wal_->Close();
  wal_.reset();

  StatusOr<WalReplayStats> replay =
      ReplayWal(path, [](const WalRecord&) { return Status::Ok(); });
  if (!replay.ok()) return replay.status();
  StatusOr<std::unique_ptr<WalWriter>> reopened =
      WalWriter::OpenForAppend(path, replay.value(), options_.wal);
  if (!reopened.ok()) return reopened.status();
  wal_ = std::move(reopened.value());
  BumpCounter("storage.wal.rotations");
  return Status::Ok();
}

Status LiveIndex::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::Ok();
  closed_ = true;
  if (wal_ == nullptr) return Status::Ok();
  wal_records_base_ += wal_->Records();
  wal_bytes_base_ += wal_->BytesWritten();
  wal_syncs_base_ += wal_->Syncs();
  Status st = wal_->Close();
  wal_.reset();
  return st;
}

LiveIndexStats LiveIndex::Stats() const {
  LiveIndexStats s;
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.removes = removes_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.compaction_failures =
      compaction_failures_.load(std::memory_order_relaxed);
  s.generation = generation_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.delta_rows = deltas_.DeltaRows();
  s.dirty_lists = deltas_.DirtyLists();
  s.replayed_records = replayed_records_;
  s.recovered_torn_tail = recovered_torn_tail_;
  s.wal_records = wal_records_base_;
  s.wal_bytes = wal_bytes_base_;
  s.wal_syncs = wal_syncs_base_;
  if (wal_ != nullptr) {
    s.wal_records += wal_->Records();
    s.wal_bytes += wal_->BytesWritten();
    s.wal_syncs += wal_->Syncs();
  }
  return s;
}

}  // namespace intcomp::storage
