// LiveIndex — the crash-safe mutable index (DESIGN.md §5.11).
//
// Layers an LSM-flavored write path over the immutable container format:
//
//   index.ics   the compacted base (format.h container, served by
//               MappedIndex)
//   wal.log     CRC-framed redo log of every update since the base was
//               compacted (wal.h)
//   in memory   a DeltaMap of pending inserts/deletes, overlaid on the
//               base by OverlaySnapshot (delta_overlay.h)
//
// Every Insert/Remove appends one WAL record (durable per the configured
// fsync cadence), applies the delta, and publishes a fresh copy-on-write
// OverlaySnapshot — into the attached IndexService if any, so queries
// racing updates or compaction swaps observe exactly one generation.
//
// Compaction folds a frozen copy of the deltas into a freshly built,
// freshly compressed base and commits in two atomic steps:
//
//   1. write index.tmp.ics (header patched last, fsynced), rename over
//      index.ics;
//   2. write wal.tmp.log (checkpoint + the deltas that arrived *during*
//      the merge), fsync, rename over wal.log.
//
// A crash between the two is benign by construction: delta state is each
// row's last recorded polarity, independent of the base, so replaying the
// full old WAL over the new base reconverges on the identical effective
// index (the recovery tests pin this down for every crash point).
// Updates are accepted throughout — only the commit itself briefly holds
// the writer lock.
//
// Recovery (Open) maps the container, replays the WAL's valid prefix —
// tolerating a torn tail, rejecting tampering — and resumes appending
// where the log left off. Transient I/O failures (injected faults,
// EINTR-class errno) are retried with deterministic jittered backoff;
// permanent ones surface as Status.

#ifndef INTCOMP_STORAGE_LIVE_INDEX_H_
#define INTCOMP_STORAGE_LIVE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "engine/thread_pool.h"
#include "service/delta_overlay.h"
#include "service/sharded_index.h"
#include "service/snapshot.h"
#include "storage/mapped_index.h"
#include "storage/wal.h"

namespace intcomp::storage {

struct LiveIndexOptions {
  MappedIndexOptions mapped;  // validate mode for (re)opened containers
  WalOptions wal;             // fsync cadence + append retry
  RetryOptions retry;         // container write/open/rename retry
};

// Point-in-time counters (monotonic over the object's lifetime).
struct LiveIndexStats {
  uint64_t inserts = 0;             // accepted Insert batches
  uint64_t removes = 0;             // accepted Remove batches
  uint64_t delta_rows = 0;          // rows currently pending in the overlay
  uint64_t dirty_lists = 0;         // lists with pending deltas
  uint64_t wal_records = 0;         // records appended by this object
  uint64_t wal_bytes = 0;           // bytes appended by this object
  uint64_t wal_syncs = 0;           // fsyncs issued by this object
  uint64_t replayed_records = 0;    // records recovered at Open
  bool recovered_torn_tail = false; // Open truncated a torn WAL tail
  uint64_t compactions = 0;         // committed compactions
  uint64_t compaction_failures = 0; // aborted compactions (state unchanged)
  uint64_t generation = 0;          // published snapshots (swap count)
};

class LiveIndex {
 public:
  // Files inside the index directory.
  static constexpr const char* kIndexFile = "index.ics";
  static constexpr const char* kWalFile = "wal.log";
  static constexpr const char* kIndexTmpFile = "index.tmp.ics";
  static constexpr const char* kWalTmpFile = "wal.tmp.log";

  // Creates a fresh live index at `dir` (which must exist): writes `base`
  // as the container, starts an empty WAL.
  static StatusOr<std::unique_ptr<LiveIndex>> Create(
      const std::string& dir, const ShardedIndex& base,
      const LiveIndexOptions& options = {});

  // Opens an existing directory: maps the container, replays the WAL's
  // valid prefix (torn tails are truncated and reported in Stats()), and
  // resumes appending. Fails with kCorruptData for damage no crash of our
  // writer can produce.
  static StatusOr<std::unique_ptr<LiveIndex>> Open(
      const std::string& dir, const LiveIndexOptions& options = {});

  // Volatile flavor: no directory, no WAL — the overlay/compaction
  // machinery over an in-memory snapshot (concurrency tests, benches).
  static std::unique_ptr<LiveIndex> Wrap(
      std::shared_ptr<const IndexSnapshot> base);

  ~LiveIndex();
  LiveIndex(const LiveIndex&) = delete;
  LiveIndex& operator=(const LiveIndex&) = delete;

  // Adds / removes `rows` (any order, duplicates ignored; all < NumRows())
  // for `list`. Durable once the call returns OK (per the WAL sync
  // cadence); the published snapshot reflects the update immediately.
  Status Insert(uint32_t list, std::span<const uint32_t> rows);
  Status Remove(uint32_t list, std::span<const uint32_t> rows);

  // Forces every accepted update to disk regardless of sync cadence.
  Status Sync();

  // Folds the current deltas into a freshly compressed base and swaps it
  // in (see the commit protocol above). Serialized: a second concurrent
  // call fails fast with kUnavailable. On failure the live state is
  // unchanged (at worst a temp file is left behind and reclaimed later).
  Status Compact();

  // Compact() on `pool`, invoking `done` (if set) with its Status.
  void CompactAsync(ThreadPool* pool, std::function<void(Status)> done = {});

  // Attaches a service: every publish (updates, compactions) swaps the
  // fresh snapshot in, invalidating its result cache. The service must
  // outlive this object (or be detached with nullptr).
  void AttachService(IndexService* service);

  // The current published snapshot (base + pending deltas).
  std::shared_ptr<const IndexSnapshot> Snapshot() const;

  // Final sync + close of the WAL; further updates fail. Idempotent.
  Status Close();

  LiveIndexStats Stats() const;
  const std::string& Dir() const { return dir_; }

 private:
  LiveIndex(std::string dir, LiveIndexOptions options);

  Status Update(WalOp op, uint32_t list, std::span<const uint32_t> rows);
  // Rebuilds + republishes the overlay; call with mu_ held.
  void PublishLocked();
  // Writes a fresh WAL (checkpoint + `survivors`), renames it over
  // wal.log, resumes appending; call with mu_ held. On failure after the
  // rename the writer is lost (wal_ == nullptr): updates are refused until
  // the index is reopened, while queries keep serving a consistent state.
  Status RotateWalLocked(
      uint64_t checkpoint_id,
      const std::vector<std::pair<uint32_t, ListDelta>>& survivors);
  // Decodes every list of `base` into global row ids.
  static Status MergeBase(const IndexSnapshot& base,
                          std::vector<std::vector<uint32_t>>* lists);

  const std::string dir_;  // empty for Wrap()ed volatile indexes
  const LiveIndexOptions options_;

  mutable std::mutex mu_;  // writer/state lock: deltas_, wal_, base_
  std::shared_ptr<const IndexSnapshot> base_;
  DeltaMap deltas_;
  std::unique_ptr<WalWriter> wal_;  // null for volatile or closed indexes
  bool closed_ = false;

  mutable std::mutex snap_mu_;  // publish pointer (cheap reads)
  std::shared_ptr<const IndexSnapshot> snapshot_;
  IndexService* service_ = nullptr;  // guarded by mu_

  std::atomic<bool> compacting_{false};
  uint64_t checkpoint_seq_ = 0;  // guarded by mu_

  std::atomic<uint64_t> inserts_{0}, removes_{0}, compactions_{0},
      compaction_failures_{0}, generation_{0};
  uint64_t replayed_records_ = 0;
  bool recovered_torn_tail_ = false;
  // WAL counters accumulated across rotations (a rotation discards the
  // writer and its counters).
  uint64_t wal_records_base_ = 0, wal_bytes_base_ = 0, wal_syncs_base_ = 0;
};

}  // namespace intcomp::storage

#endif  // INTCOMP_STORAGE_LIVE_INDEX_H_
