#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace intcomp::storage {

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open file: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("fstat failed: " + path);
  }
  MappedFile file;
  if (st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      return Status::Internal("mmap failed: " + path);
    }
    file.data_ = static_cast<const uint8_t*>(map);
    file.size_ = static_cast<size_t>(st.st_size);
  }
  ::close(fd);  // the mapping survives the descriptor
  return StatusOr<MappedFile>(std::move(file));
}

}  // namespace intcomp::storage
