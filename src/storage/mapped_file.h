// MappedFile — read-only mmap of a whole file, RAII-owned. The mapping
// outlives the descriptor (closed right after mmap), so a MappedFile is
// just a span plus an munmap at destruction.

#ifndef INTCOMP_STORAGE_MAPPED_FILE_H_
#define INTCOMP_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/status.h"

namespace intcomp::storage {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static StatusOr<MappedFile> Open(const std::string& path);

  std::span<const uint8_t> bytes() const { return {data_, size_}; }

 private:
  void Reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace intcomp::storage

#endif  // INTCOMP_STORAGE_MAPPED_FILE_H_
