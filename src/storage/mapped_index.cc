#include "storage/mapped_index.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/crc32.h"
#include "common/fault.h"
#include "core/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace intcomp::storage {

namespace {

void BumpStorageCounter(const char* name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (reg.Enabled()) reg.AddCounter(name, 1);
}

// offset/length describe a sub-range of a buffer of `size` bytes.
bool RangeInBounds(uint64_t offset, uint64_t length, uint64_t size) {
  return offset <= size && length <= size - offset;
}

}  // namespace

Status MappedIndex::Parse() {
  const uint64_t size = bytes_.size();
  if (size < kHeaderBytes) {
    return Status::Corrupt("container smaller than header");
  }

  // Header.
  CheckedByteReader header(bytes_.data(), kHeaderBytes);
  uint64_t magic = 0, file_bytes = 0, directory_offset = 0;
  uint16_t version_major = 0, version_minor = 0;
  uint32_t header_bytes = 0, directory_entries = 0, directory_crc = 0,
           header_crc = 0;
  header.GetU64(&magic);
  header.GetU16(&version_major);
  header.GetU16(&version_minor);
  header.GetU32(&header_bytes);
  header.GetU64(&file_bytes);
  header.GetU64(&directory_offset);
  header.GetU32(&directory_entries);
  header.GetU32(&directory_crc);
  header.GetU32(&header_crc);
  if (magic != kMagic) {
    return Status::Corrupt("bad magic (not a container, or torn header)");
  }
  if (header_crc != Crc32Of(bytes_.subspan(0, kHeaderCrcOffset))) {
    return Status::Corrupt("header checksum mismatch");
  }
  if (version_major != kVersionMajor) {
    return Status::Corrupt("unsupported major format version");
  }
  if (header_bytes != kHeaderBytes) {
    return Status::Corrupt("bad header size for format v1");
  }
  if (file_bytes != size) {
    return Status::Corrupt("file size mismatch (truncated or torn write)");
  }

  // Directory.
  const uint64_t dir_len =
      static_cast<uint64_t>(directory_entries) * kDirEntryBytes;
  if (directory_offset < kHeaderBytes ||
      !RangeInBounds(directory_offset, dir_len, size)) {
    return Status::Corrupt("directory out of bounds");
  }
  const std::span<const uint8_t> dir =
      bytes_.subspan(static_cast<size_t>(directory_offset),
                     static_cast<size_t>(dir_len));
  if (directory_crc != Crc32Of(dir)) {
    return Status::Corrupt("directory checksum mismatch");
  }
  SectionEntry meta_section, offsets_section, list_codecs_section;
  bool have_meta = false, have_offsets = false, have_payloads = false,
       have_list_codecs = false;
  CheckedByteReader dir_reader(dir.data(), dir.size());
  for (uint32_t i = 0; i < directory_entries; ++i) {
    SectionEntry e;
    uint32_t reserved = 0;
    dir_reader.GetU32(&e.id);
    dir_reader.GetU32(&reserved);
    dir_reader.GetU64(&e.offset);
    dir_reader.GetU64(&e.length);
    dir_reader.GetU32(&e.crc);
    dir_reader.GetU32(&reserved);
    if (e.offset < kHeaderBytes || !RangeInBounds(e.offset, e.length, size)) {
      return Status::Corrupt("section out of bounds");
    }
    switch (e.id) {
      case kSectionMeta:
        if (have_meta) return Status::Corrupt("duplicate meta section");
        have_meta = true;
        meta_section = e;
        break;
      case kSectionOffsets:
        if (have_offsets) return Status::Corrupt("duplicate offset section");
        have_offsets = true;
        offsets_section = e;
        break;
      case kSectionPayloads:
        if (have_payloads) return Status::Corrupt("duplicate payload section");
        have_payloads = true;
        payload_section_ = e;
        break;
      case kSectionListCodecs:
        if (have_list_codecs) {
          return Status::Corrupt("duplicate list-codecs section");
        }
        have_list_codecs = true;
        list_codecs_section = e;
        break;
      default:
        break;  // unknown section: skip (forward compatibility)
    }
  }
  if (!have_meta || !have_offsets || !have_payloads) {
    return Status::Corrupt("missing required section");
  }

  // Meta.
  {
    const std::span<const uint8_t> meta = SectionBytes(meta_section);
    if (meta_section.crc != Crc32Of(meta)) {
      return Status::Corrupt("meta section checksum mismatch");
    }
    CheckedByteReader r(meta.data(), meta.size());
    uint64_t num_rows = 0, num_lists = 0, num_shards = 0;
    uint32_t name_len = 0;
    if (!r.GetU64(&num_rows) || !r.GetU64(&num_lists) ||
        !r.GetU64(&num_shards) || !r.GetU32(&name_len)) {
      return Status::Corrupt("meta section truncated");
    }
    if (num_rows < 1 || num_rows > (uint64_t{1} << 32)) {
      return Status::Corrupt("row count out of range");
    }
    if (name_len > r.Remaining()) {
      return Status::Corrupt("codec name truncated");
    }
    std::string name(name_len, '\0');
    r.GetBytes(reinterpret_cast<uint8_t*>(name.data()), name_len);
    codec_ = FindCodec(name);
    if (codec_ == nullptr) {
      return Status::Corrupt("unknown codec: " + name);
    }
    router_ = ShardRouter(num_rows, static_cast<size_t>(
                                        std::min<uint64_t>(num_shards, size)));
    if (router_.NumShards() != num_shards) {
      // The router clamps; a file whose claimed shard count the router
      // cannot reproduce would silently serve a different partitioning.
      return Status::Corrupt("shard count out of range for row count");
    }
    num_lists_ = static_cast<size_t>(num_lists);
  }

  // Offset table. Entry count must match shards × lists exactly. The count
  // is derived from the actual section size (so every allocation below is
  // bounded by the file size) and the meta product is checked against it
  // with an overflow guard — `shards * lists * 24` on raw meta values
  // could wrap and alias a small table.
  const size_t num_shards = router_.NumShards();
  const std::span<const uint8_t> table = SectionBytes(offsets_section);
  if (offsets_section.crc != Crc32Of(table)) {
    return Status::Corrupt("offset table checksum mismatch");
  }
  if (table.size() % kPayloadEntryBytes != 0) {
    return Status::Corrupt("offset table size not a whole entry count");
  }
  const size_t num_payloads = table.size() / kPayloadEntryBytes;
  if (num_lists_ != 0 &&
      num_shards > std::numeric_limits<size_t>::max() / num_lists_) {
    return Status::Corrupt("payload count overflow");
  }
  if (num_shards * num_lists_ != num_payloads) {
    return Status::Corrupt("offset table size does not match meta counts");
  }
  {
    payloads_.reserve(num_payloads);
    payload_bytes_ = 0;
    CheckedByteReader r(table.data(), table.size());
    for (size_t i = 0; i < num_payloads; ++i) {
      PayloadEntry e;
      uint32_t reserved = 0;
      r.GetU64(&e.offset);
      r.GetU64(&e.length);
      r.GetU32(&e.crc);
      r.GetU32(&reserved);
      if (e.offset % kSectionAlign != 0) {
        return Status::Corrupt("misaligned payload offset");
      }
      if (!RangeInBounds(e.offset, e.length, payload_section_.length)) {
        return Status::Corrupt("payload out of bounds");
      }
      payload_bytes_ += static_cast<size_t>(e.length);
      payloads_.push_back(e);
    }
  }

  // List-codecs section (optional — absent means every payload is stored
  // under the index codec's own name). A present-but-malformed section is
  // a known id, so it fails closed instead of being skipped.
  codec_signature_ = std::string(codec_->Name());
  if (have_list_codecs) {
    const std::span<const uint8_t> sec = SectionBytes(list_codecs_section);
    if (list_codecs_section.crc != Crc32Of(sec)) {
      return Status::Corrupt("list-codecs section checksum mismatch");
    }
    CheckedByteReader r(sec.data(), sec.size());
    uint32_t num_names = 0;
    if (!r.GetU32(&num_names)) {
      return Status::Corrupt("list-codecs section truncated");
    }
    if (num_names == 0 || num_names > 255) {
      return Status::Corrupt("list-codecs name count out of range");
    }
    list_codec_names_.reserve(num_names);
    for (uint32_t i = 0; i < num_names; ++i) {
      uint8_t len = 0;
      if (!r.GetU8(&len) || len == 0 || len > r.Remaining()) {
        return Status::Corrupt("list-codecs name table truncated");
      }
      std::string name(len, '\0');
      r.GetBytes(reinterpret_cast<uint8_t*>(name.data()), len);
      list_codec_names_.push_back(std::move(name));
    }
    uint64_t num_entries = 0;
    if (!r.GetU64(&num_entries)) {
      return Status::Corrupt("list-codecs section truncated");
    }
    if (num_entries != num_payloads || r.Remaining() != num_entries) {
      return Status::Corrupt("list-codecs entry count does not match index");
    }
    list_codec_indices_.resize(static_cast<size_t>(num_entries));
    r.GetBytes(list_codec_indices_.data(), list_codec_indices_.size());
    CodecSignatureBuilder builder(codec_->Name());
    for (uint8_t idx : list_codec_indices_) {
      if (idx >= num_names) {
        return Status::Corrupt("list-codecs entry outside name table");
      }
      builder.AddListTag(list_codec_names_[idx]);
    }
    codec_signature_ = builder.Finish();
  }

  sets_.resize(num_payloads);
  ptrs_.assign(num_payloads, nullptr);
  shard_mu_ = std::make_unique<std::mutex[]>(num_shards);
  return Status::Ok();
}

Status MappedIndex::Materialize(size_t shard, size_t idx) const {
  const PayloadEntry& e = payloads_[idx];
  const std::span<const uint8_t> image =
      SectionBytes(payload_section_)
          .subspan(static_cast<size_t>(e.offset), static_cast<size_t>(e.length));
  if (e.crc != Crc32Of(image)) {
    return Status::Corrupt("payload checksum mismatch");
  }
  StatusOr<std::unique_ptr<CompressedSet>> set =
      codec_->DeserializeCheckedView(image, router_.ShardRows(shard));
  if (!set.ok()) return set.status();
  materialized_.fetch_add(1, std::memory_order_relaxed);
  if (codec_->SupportsViewDeserialize()) {
    zero_copy_.fetch_add(1, std::memory_order_relaxed);
  }
  sets_[idx] = std::move(set.value());
  ptrs_[idx] = sets_[idx].get();
  return Status::Ok();
}

Status MappedIndex::ValidateAllPayloads() const {
  const size_t num_shards = router_.NumShards();
  for (size_t s = 0; s < num_shards; ++s) {
    std::lock_guard<std::mutex> lock(shard_mu_[s]);
    for (size_t l = 0; l < num_lists_; ++l) {
      const size_t idx = s * num_lists_ + l;
      if (sets_[idx] != nullptr) continue;
      Status st = Materialize(s, idx);
      if (!st.ok()) return st;
    }
  }
  return Status::Ok();
}

StatusOr<std::span<const CompressedSet* const>> MappedIndex::PlanSets(
    size_t shard, std::span<const size_t> leaves) const {
  if (shard >= router_.NumShards()) {
    return Status::InvalidArgument("shard out of range");
  }
  const size_t base = shard * num_lists_;
  if (mode_ == ValidateMode::kLazy) {
    std::lock_guard<std::mutex> lock(shard_mu_[shard]);
    for (size_t leaf : leaves) {
      if (leaf >= num_lists_) {
        return Status::InvalidArgument("plan leaf out of range");
      }
      if (sets_[base + leaf] != nullptr) continue;
      Status st = Materialize(shard, base + leaf);
      if (!st.ok()) {
        BumpStorageCounter("storage.lazy_materialize_failure");
        return st;
      }
    }
  }
  return StatusOr<std::span<const CompressedSet* const>>(
      std::span<const CompressedSet* const>(ptrs_.data() + base, num_lists_));
}

std::span<const uint8_t> MappedIndex::PayloadBytes(size_t shard,
                                                   size_t list) const {
  const PayloadEntry& e = payloads_[shard * num_lists_ + list];
  return SectionBytes(payload_section_)
      .subspan(static_cast<size_t>(e.offset), static_cast<size_t>(e.length));
}

StatusOr<std::unique_ptr<MappedIndex>> MappedIndex::OpenImpl(
    MappedFile file, std::span<const uint8_t> bytes,
    const MappedIndexOptions& options) {
  TRACE_SPAN("storage.open");
  std::unique_ptr<MappedIndex> index(new MappedIndex());
  index->file_ = std::move(file);
  index->bytes_ = bytes;
  index->mode_ = options.validate;
  Status st = index->Parse();
  if (st.ok() && options.validate == ValidateMode::kEager) {
    obs::ScopedOpTimer timer(index->codec().Name(), obs::OpKind::kStorageOpen);
    // Whole-section CRC first (one linear pass also catches corruption in
    // the inter-payload padding, which per-payload CRCs cannot see), then
    // every payload. Lazy mode skips both; per-payload CRCs cover it at
    // first touch.
    if (index->payload_section_.crc !=
        Crc32Of(index->SectionBytes(index->payload_section_))) {
      st = Status::Corrupt("payload section checksum mismatch");
    } else {
      st = index->ValidateAllPayloads();
    }
  }
  if (!st.ok()) {
    BumpStorageCounter("storage.open_failure");
    return st;
  }
  BumpStorageCounter("storage.open");
  return StatusOr<std::unique_ptr<MappedIndex>>(std::move(index));
}

StatusOr<std::unique_ptr<MappedIndex>> MappedIndex::Open(
    const std::string& path, const MappedIndexOptions& options) {
  const fault::Action action =
      fault::FaultInjector::Global().OnOp(fault::Site::kMapOpen, 0);
  if (action.kind == fault::Kind::kTransient) {
    return Status::Unavailable("injected transient fault: map open");
  }
  if (action.kind != fault::Kind::kNone) {
    return Status::Internal("injected permanent fault: map open");
  }
  StatusOr<MappedFile> file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  const std::span<const uint8_t> bytes = file.value().bytes();
  return OpenImpl(std::move(file.value()), bytes, options);
}

StatusOr<std::unique_ptr<MappedIndex>> OpenIndexWithRetry(
    const std::string& path, const MappedIndexOptions& options,
    const RetryOptions& retry) {
  std::unique_ptr<MappedIndex> out;
  Status st = RetryTransient(retry, [&]() -> Status {
    StatusOr<std::unique_ptr<MappedIndex>> r = MappedIndex::Open(path, options);
    if (!r.ok()) return r.status();
    out = std::move(r.value());
    return Status::Ok();
  });
  if (!st.ok()) return st;
  return StatusOr<std::unique_ptr<MappedIndex>>(std::move(out));
}

StatusOr<std::unique_ptr<MappedIndex>> MappedIndex::OpenBorrowed(
    std::span<const uint8_t> bytes, const MappedIndexOptions& options) {
  return OpenImpl(MappedFile(), bytes, options);
}

}  // namespace intcomp::storage
