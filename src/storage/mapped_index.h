// MappedIndex — serves a container file (format.h) as an IndexSnapshot
// without deserializing payloads up front.
//
// Open mmaps the file, parses header/directory/meta/offset-table with full
// bounds- and checksum-validation (a hostile or torn file yields a Status,
// never a crash), then materializes per-list sets in one of two modes:
//
//   kEager — every payload is CRC-checked and parsed through
//            DeserializeCheckedView at open; Open fails on the first bad
//            list and queries never see corruption.
//   kLazy  — open validates only the structural sections; a payload is
//            CRC-checked + parsed on the first query that touches its list
//            (per-shard mutex). Corruption discovered late fails that query
//            with kCorruptData via PlanSets.
//
// Codecs that support view deserialization (the RLE bitmap family, Bitset,
// List) borrow their word arrays straight from the mapping — zero copy;
// the writer 8-byte-aligns every payload to make those borrows aligned.
// Other codecs parse into owned memory, still lazily in kLazy mode.
//
// Thread safety: PlanSets may be called concurrently (the service fans out
// one task per shard, and several queries can run at once). Lazy
// materialization synchronizes on a per-shard mutex; a reader only
// dereferences set pointers for leaves it ensured under that mutex, which
// establishes the happens-before edge with whichever thread parsed them.

#ifndef INTCOMP_STORAGE_MAPPED_INDEX_H_
#define INTCOMP_STORAGE_MAPPED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/codec.h"
#include "service/shard_router.h"
#include "service/snapshot.h"
#include "storage/format.h"
#include "storage/mapped_file.h"

namespace intcomp::storage {

enum class ValidateMode {
  kEager,  // validate every payload at open
  kLazy,   // validate a payload on first touch
};

struct MappedIndexOptions {
  ValidateMode validate = ValidateMode::kEager;
};

class MappedIndex final : public IndexSnapshot {
 public:
  // Maps `path` and parses/validates it per `options`.
  static StatusOr<std::unique_ptr<MappedIndex>> Open(
      const std::string& path, const MappedIndexOptions& options = {});

  // Serves a caller-owned image (no mmap): `bytes` must stay alive and
  // unchanged for the index's lifetime. This is the corruption-fuzz entry
  // point — same parser, no filesystem round trip.
  static StatusOr<std::unique_ptr<MappedIndex>> OpenBorrowed(
      std::span<const uint8_t> bytes, const MappedIndexOptions& options = {});

  MappedIndex(const MappedIndex&) = delete;
  MappedIndex& operator=(const MappedIndex&) = delete;

  // IndexSnapshot:
  const Codec& codec() const override { return *codec_; }
  const ShardRouter& Router() const override { return router_; }
  size_t NumLists() const override { return num_lists_; }
  // Rebuilt in Parse from the container's list-codecs section, through the
  // same CodecSignatureBuilder a ShardedIndex uses — persisting an index
  // and reopening it preserves its signature exactly.
  std::string_view CodecSignature() const override { return codec_signature_; }
  // Sum of on-disk payload lengths (the compressed footprint being served).
  size_t SizeInBytes() const override { return payload_bytes_; }
  StatusOr<std::span<const CompressedSet* const>> PlanSets(
      size_t shard, std::span<const size_t> leaves) const override;

  ValidateMode Mode() const { return mode_; }
  uint64_t FileBytes() const { return bytes_.size(); }

  // Raw on-disk image of one list's payload (tests compare these across
  // writer runs for byte-identical output).
  std::span<const uint8_t> PayloadBytes(size_t shard, size_t list) const;

  // The effective codec name one payload is stored under: the list-codecs
  // section entry when the container has one, else the index codec's name.
  std::string_view ListCodecName(size_t shard, size_t list) const {
    if (list_codec_indices_.empty()) return codec_->Name();
    return list_codec_names_[list_codec_indices_[shard * num_lists_ + list]];
  }

  // Materializes (CRC + checked parse) every payload; what kEager open
  // runs. Idempotent; safe to call on a lazy index to pre-warm it.
  Status ValidateAllPayloads() const;

  // Materialization counters (lifetime totals, cross-thread).
  uint64_t MaterializedPayloads() const {
    return materialized_.load(std::memory_order_relaxed);
  }
  // Of the materialized payloads, how many borrowed the mapping zero-copy.
  uint64_t ZeroCopyPayloads() const {
    return zero_copy_.load(std::memory_order_relaxed);
  }

 private:
  MappedIndex() = default;

  static StatusOr<std::unique_ptr<MappedIndex>> OpenImpl(
      MappedFile file, std::span<const uint8_t> bytes,
      const MappedIndexOptions& options);

  // Parses + validates header, directory, meta and offset table.
  Status Parse();

  // CRC-checks and parses payload `idx` into sets_[idx]/ptrs_[idx].
  // REQUIRES: sets_[idx] == nullptr; caller holds the shard's mutex (or is
  // the single opening thread).
  Status Materialize(size_t shard, size_t idx) const;

  std::span<const uint8_t> SectionBytes(const SectionEntry& e) const {
    return bytes_.subspan(static_cast<size_t>(e.offset),
                          static_cast<size_t>(e.length));
  }

  MappedFile file_;  // empty when serving borrowed bytes
  std::span<const uint8_t> bytes_;
  ValidateMode mode_ = ValidateMode::kEager;

  const Codec* codec_ = nullptr;
  ShardRouter router_;
  size_t num_lists_ = 0;
  size_t payload_bytes_ = 0;

  SectionEntry payload_section_;
  std::vector<PayloadEntry> payloads_;  // shard-major, shard*num_lists+list

  // List-codecs section, parsed; indices empty when the section is absent.
  std::vector<std::string> list_codec_names_;
  std::vector<uint8_t> list_codec_indices_;  // same indexing as payloads_
  std::string codec_signature_;

  // Materialized sets, same indexing as payloads_. Sized once in Parse and
  // never resized, so lazy writers touch disjoint slots.
  mutable std::vector<std::unique_ptr<CompressedSet>> sets_;
  mutable std::vector<const CompressedSet*> ptrs_;
  mutable std::unique_ptr<std::mutex[]> shard_mu_;  // [NumShards()]

  mutable std::atomic<uint64_t> materialized_{0};
  mutable std::atomic<uint64_t> zero_copy_{0};
};

// MappedIndex::Open with bounded retry of transient failures (injected
// kMapOpen faults, EINTR-class mmap errors). Used by the crash-safe write
// path when remapping a freshly compacted container.
StatusOr<std::unique_ptr<MappedIndex>> OpenIndexWithRetry(
    const std::string& path, const MappedIndexOptions& options = {},
    const RetryOptions& retry = {});

}  // namespace intcomp::storage

#endif  // INTCOMP_STORAGE_MAPPED_INDEX_H_
