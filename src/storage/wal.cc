#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bufio.h"
#include "common/crc32.h"
#include "common/fault.h"
#include "obs/metrics.h"

namespace intcomp::storage {

namespace {

void BumpCounter(const char* name, uint64_t delta) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (reg.Enabled()) reg.AddCounter(name, delta);
}

bool ErrnoIsTransient(int err) {
  return err == EINTR || err == EAGAIN || err == ENOSPC || err == EIO;
}

// write() the whole span, resuming EINTR-class short writes. Returns the
// number of bytes that landed (== bytes.size() on success).
size_t WriteFully(int fd, std::span<const uint8_t> bytes, int* err) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      *err = errno;
      return done;
    }
    done += static_cast<size_t>(n);
  }
  *err = 0;
  return done;
}

}  // namespace

// ------------------------------------------------------------------ replay

StatusOr<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& fn) {
  WalReplayStats stats;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return stats;  // missing file: an empty log
  }
  std::vector<uint8_t> bytes;
  {
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size > 0) {
      if (fault::FaultInjector::Global()
              .OnOp(fault::Site::kAlloc, static_cast<size_t>(size))
              .kind != fault::Kind::kNone) {
        std::fclose(f);
        return Status::Unavailable("wal replay: injected allocation failure");
      }
      bytes.resize(static_cast<size_t>(size));
      if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        std::fclose(f);
        return Status::Unavailable("wal replay: read failed");
      }
    }
  }
  std::fclose(f);
  stats.existed = true;

  // Header. A short header is a torn first append: treat as empty.
  if (bytes.size() < kWalHeaderBytes) {
    stats.tail_truncated = !bytes.empty();
    return stats;
  }
  uint64_t magic = 0;
  std::memcpy(&magic, bytes.data(), 8);
  if (magic != kWalMagic) {
    return Status::Corrupt("wal: bad magic");
  }
  stats.valid_bytes = kWalHeaderBytes;

  CheckedByteReader reader(bytes.data() + kWalHeaderBytes,
                           bytes.size() - kWalHeaderBytes);
  std::vector<uint32_t> rows;
  while (reader.Remaining() > 0) {
    uint32_t payload_len = 0;
    uint32_t payload_crc = 0;
    if (!reader.GetU32(&payload_len) || !reader.GetU32(&payload_crc) ||
        payload_len > kWalMaxPayloadBytes ||
        reader.Remaining() < payload_len) {
      stats.tail_truncated = true;  // torn frame header or torn payload
      break;
    }
    const uint8_t* payload = bytes.data() + kWalHeaderBytes + reader.Position();
    if (Crc32Of({payload, payload_len}) != payload_crc) {
      stats.tail_truncated = true;  // torn payload bytes
      break;
    }
    CheckedByteReader body(payload, payload_len);
    WalRecord record;
    uint8_t op = 0;
    bool shape_ok = body.GetU64(&record.seq) && body.GetU8(&op);
    if (shape_ok) {
      switch (op) {
        case static_cast<uint8_t>(WalOp::kInsert):
        case static_cast<uint8_t>(WalOp::kRemove): {
          record.op = static_cast<WalOp>(op);
          uint32_t count = 0;
          shape_ok = body.GetU32(&record.list) && body.GetU32(&count) &&
                     body.Remaining() == count * sizeof(uint32_t);
          if (shape_ok) {
            rows.resize(count);
            for (uint32_t i = 0; i < count; ++i) {
              body.GetU32(&rows[i]);
              if (i > 0 && rows[i] <= rows[i - 1]) {
                shape_ok = false;
                break;
              }
            }
            record.rows = rows;
          }
          break;
        }
        case static_cast<uint8_t>(WalOp::kCheckpoint):
          record.op = WalOp::kCheckpoint;
          shape_ok = body.GetU64(&record.checkpoint_id) && body.AtEnd();
          break;
        default:
          shape_ok = false;
      }
    }
    // A CRC-valid frame with an ill-formed payload, or a sequence gap, is
    // tampering — our writer never produces it, torn or not.
    if (!shape_ok) {
      return Status::Corrupt("wal: CRC-valid frame with malformed payload");
    }
    if (record.seq != stats.next_seq) {
      return Status::Corrupt("wal: sequence discontinuity");
    }
    if (!reader.Skip(payload_len)) {
      return Status::Internal("wal: reader skip after bounds check");
    }
    Status st = fn(record);
    if (!st.ok()) return st;
    stats.records += 1;
    stats.next_seq += 1;
    stats.valid_bytes = kWalHeaderBytes + reader.Position();
  }
  return stats;
}

// ------------------------------------------------------------------ writer

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    const std::string& path, const WalOptions& options) {
  const fault::Action a =
      fault::FaultInjector::Global().OnOp(fault::Site::kFileCreate);
  if (a.kind == fault::Kind::kTransient) {
    return Status::Unavailable("wal create: injected transient fault");
  }
  if (a.kind != fault::Kind::kNone) {
    return Status::Internal("wal create: injected fault");
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return ErrnoIsTransient(errno)
               ? Status::Unavailable("wal create: " + path)
               : Status::InvalidArgument("wal create: " + path);
  }
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(fd, 0, 1, options));
  std::vector<uint8_t> header;
  ByteWriter w(&header);
  w.PutU64(kWalMagic);
  Status st = writer->AppendFrame(header);
  if (!st.ok()) return st;
  return writer;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, const WalReplayStats& stats,
    const WalOptions& options) {
  if (!stats.existed) {
    return Create(path, options);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoIsTransient(errno)
               ? Status::Unavailable("wal open: " + path)
               : Status::InvalidArgument("wal open: " + path);
  }
  // Drop the torn tail so the next frame lands on a clean boundary.
  if (::ftruncate(fd, static_cast<off_t>(stats.valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::Unavailable("wal open: truncate/seek failed: " + path);
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(fd, stats.valid_bytes, stats.next_seq, options));
  if (stats.valid_bytes < kWalHeaderBytes) {
    // The original header itself was torn; rewrite it.
    std::vector<uint8_t> header;
    ByteWriter w(&header);
    w.PutU64(kWalMagic);
    if (::ftruncate(fd, 0) != 0) {
      return Status::Unavailable("wal open: header rewrite failed");
    }
    writer->end_ = 0;
    Status st = writer->AppendFrame(header);
    if (!st.ok()) return st;
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::AppendFrame(std::span<const uint8_t> frame) {
  // One attempt: consult the injector, write, and repair a partial frame by
  // truncating back to the last clean boundary — unless the schedule says
  // the process died, in which case the torn bytes stay (recovery's
  // problem, by design).
  auto attempt = [&]() -> Status {
    fault::FaultInjector& injector = fault::FaultInjector::Global();
    const fault::Action a = injector.OnOp(fault::Site::kWalAppend, frame.size());
    size_t to_write = frame.size();
    bool injected_fail = false;
    Status fail_status = Status::Ok();
    switch (a.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kTransient:
        return Status::Unavailable("wal append: injected transient fault");
      case fault::Kind::kPermanent:
        return Status::Internal("wal append: injected permanent fault");
      case fault::Kind::kShortWrite:
        to_write = a.short_bytes;
        injected_fail = true;
        fail_status = injector.Crashed()
                          ? Status::Internal("wal append: crashed mid-write")
                          : Status::Unavailable("wal append: short write");
        break;
    }
    int err = 0;
    const size_t wrote = WriteFully(fd_, frame.subspan(0, to_write), &err);
    if (wrote == frame.size() && !injected_fail) {
      end_ += frame.size();
      return Status::Ok();
    }
    if (!injected_fail) {
      fail_status = ErrnoIsTransient(err)
                        ? Status::Unavailable("wal append: write failed")
                        : Status::Internal("wal append: write failed");
    }
    // Torn frame on disk. A crashed process cannot repair; a live one
    // truncates back to the clean boundary so a retry starts fresh.
    if (injector.Crashed()) {
      return Status::Internal("wal append: crash left torn frame");
    }
    if (::ftruncate(fd_, static_cast<off_t>(end_)) != 0 ||
        ::lseek(fd_, 0, SEEK_END) < 0) {
      return Status::Internal("wal append: torn-frame repair failed");
    }
    return fail_status;
  };

  if (!broken_.ok()) return broken_;
  int attempts = 0;
  Status st = RetryTransient(options_.retry, attempt, &attempts);
  if (attempts > 1) {
    BumpCounter("storage.retry.attempts", static_cast<uint64_t>(attempts - 1));
  }
  if (!st.ok() && !IsTransient(st)) broken_ = st;
  return st;
}

Status WalWriter::AppendUpdate(WalOp op, uint32_t list,
                               std::span<const uint32_t> rows) {
  if (op != WalOp::kInsert && op != WalOp::kRemove) {
    return Status::InvalidArgument("wal: AppendUpdate wants insert/remove");
  }
  std::vector<uint8_t> payload;
  payload.reserve(17 + rows.size() * 4);
  ByteWriter w(&payload);
  w.PutU64(next_seq_);
  w.PutU8(static_cast<uint8_t>(op));
  w.PutU32(list);
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (uint32_t r : rows) w.PutU32(r);

  std::vector<uint8_t> frame;
  frame.reserve(kWalFrameBytes + payload.size());
  ByteWriter fw(&frame);
  fw.PutU32(static_cast<uint32_t>(payload.size()));
  fw.PutU32(Crc32Of(payload));
  fw.PutBytes(payload.data(), payload.size());

  Status st = AppendFrame(frame);
  if (!st.ok()) return st;
  next_seq_ += 1;
  records_ += 1;
  BumpCounter("storage.wal.records", 1);
  BumpCounter("storage.wal.bytes", frame.size());
  if (options_.sync_every_records > 0 &&
      ++unsynced_records_ >= options_.sync_every_records) {
    return Sync();
  }
  return Status::Ok();
}

Status WalWriter::AppendCheckpoint(uint64_t checkpoint_id) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.PutU64(next_seq_);
  w.PutU8(static_cast<uint8_t>(WalOp::kCheckpoint));
  w.PutU64(checkpoint_id);

  std::vector<uint8_t> frame;
  ByteWriter fw(&frame);
  fw.PutU32(static_cast<uint32_t>(payload.size()));
  fw.PutU32(Crc32Of(payload));
  fw.PutBytes(payload.data(), payload.size());

  Status st = AppendFrame(frame);
  if (!st.ok()) return st;
  next_seq_ += 1;
  records_ += 1;
  BumpCounter("storage.wal.records", 1);
  BumpCounter("storage.wal.bytes", frame.size());
  return Sync();
}

Status WalWriter::SyncInternal() {
  auto attempt = [&]() -> Status {
    const fault::Action a =
        fault::FaultInjector::Global().OnOp(fault::Site::kWalSync);
    if (a.kind == fault::Kind::kTransient) {
      return Status::Unavailable("wal sync: injected transient fault");
    }
    if (a.kind != fault::Kind::kNone) {
      return Status::Internal("wal sync: injected fault");
    }
    if (::fsync(fd_) != 0) {
      return ErrnoIsTransient(errno)
                 ? Status::Unavailable("wal sync: fsync failed")
                 : Status::Internal("wal sync: fsync failed");
    }
    return Status::Ok();
  };
  if (!broken_.ok()) return broken_;
  int attempts = 0;
  Status st = RetryTransient(options_.retry, attempt, &attempts);
  if (attempts > 1) {
    BumpCounter("storage.retry.attempts", static_cast<uint64_t>(attempts - 1));
  }
  if (!st.ok() && !IsTransient(st)) broken_ = st;
  return st;
}

Status WalWriter::Sync() {
  Status st = SyncInternal();
  if (st.ok()) {
    syncs_ += 1;
    unsynced_records_ = 0;
    BumpCounter("storage.wal.syncs", 1);
  }
  return st;
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::Ok();
  Status st = Status::Ok();
  if (broken_.ok()) st = Sync();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (!st.ok()) return st;
  return rc == 0 ? Status::Ok() : Status::Internal("wal close failed");
}

}  // namespace intcomp::storage
