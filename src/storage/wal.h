// Write-ahead log for the mutable index write path (DESIGN.md §5.11).
//
// File layout: an 8-byte magic ("ICWAL001") followed by CRC-framed records:
//
//   [ u32 payload_len ][ u32 payload_crc ][ payload_len payload bytes ]
//
// Payload (little-endian, parsed with CheckedByteReader):
//   u64 seq          monotonically increasing, 1-based
//   u8  op           1 = insert, 2 = remove, 3 = checkpoint
//   insert/remove:   u32 list, u32 count, count x u32 sorted unique rows
//   checkpoint:      u64 checkpoint_id (compaction commit marker)
//
// Crash model. The writer appends each record with a single write() and
// fsyncs on a configurable cadence, so a crash leaves a *byte prefix* of
// the record stream (possibly tearing the final record). ReplayWal accepts
// exactly the longest valid record prefix: it stops at the first frame
// whose length field runs past the file or whose CRC mismatches, reports
// the torn tail, and never surfaces a half-applied record — which is what
// makes recovery land on a state equal to some prefix of the operation
// stream, never a torn one. Sequence numbers must increase by exactly one
// per record; a gap or repeat after a CRC-valid frame means the file was
// tampered with (not torn) and replay fails with kCorruptData.
//
// Fault injection. Appends consult fault::Site::kWalAppend and syncs
// kWalSync. Transient faults are retried with bounded jittered backoff
// after truncating any partial frame; a crash-at-op-K schedule leaves the
// torn bytes in place (the process "died"), and recovery is exercised by
// reopening the file.

#ifndef INTCOMP_STORAGE_WAL_H_
#define INTCOMP_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"

namespace intcomp::storage {

// "ICWAL001" read as a little-endian u64.
inline constexpr uint64_t kWalMagic = 0x3130304C41574349ull;
inline constexpr size_t kWalHeaderBytes = 8;
inline constexpr size_t kWalFrameBytes = 8;  // payload_len + payload_crc
// A record never legitimately exceeds this (4 Mi rows in one batch); larger
// length fields are treated as torn/corrupt frames.
inline constexpr uint32_t kWalMaxPayloadBytes = 1u << 24;

enum class WalOp : uint8_t {
  kInsert = 1,
  kRemove = 2,
  kCheckpoint = 3,
};

struct WalRecord {
  uint64_t seq = 0;
  WalOp op = WalOp::kInsert;
  uint32_t list = 0;                 // insert/remove
  std::span<const uint32_t> rows;    // insert/remove (sorted, unique)
  uint64_t checkpoint_id = 0;        // checkpoint
};

struct WalReplayStats {
  bool existed = false;         // file was present (even if empty/torn)
  uint64_t records = 0;         // CRC-valid records surfaced to the callback
  uint64_t valid_bytes = 0;     // header + valid frames; the append offset
  bool tail_truncated = false;  // bytes past valid_bytes were torn
  uint64_t next_seq = 1;        // sequence number the writer should continue at
};

// Replays the valid record prefix of the WAL at `path` through `fn`
// (stopping early if `fn` returns non-OK and propagating that status). A
// missing file is not an error: existed=false, zero records. Returns
// kCorruptData only for damage that no crash of our writer can produce
// (bad magic with a full-size header, sequence gaps after valid CRC).
StatusOr<WalReplayStats> ReplayWal(
    const std::string& path, const std::function<Status(const WalRecord&)>& fn);

struct WalOptions {
  // fsync after every Nth appended record (1 = every record, the durable
  // default; 0 = only on explicit Sync/Close — the fastest, least durable).
  size_t sync_every_records = 1;
  RetryOptions retry;
};

class WalWriter {
 public:
  // Creates a fresh WAL at `path` (truncating any existing file) and writes
  // the header.
  static StatusOr<std::unique_ptr<WalWriter>> Create(
      const std::string& path, const WalOptions& options = {});

  // Opens an existing WAL for append: truncates the torn tail at
  // `stats.valid_bytes` and continues at `stats.next_seq` (both from
  // ReplayWal over the same file).
  static StatusOr<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, const WalReplayStats& stats,
      const WalOptions& options = {});

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one insert/remove record (rows sorted, unique). Durable per the
  // sync cadence. On a permanent failure the writer latches broken: every
  // later append fails fast and the on-disk file holds a clean prefix (or a
  // torn final frame, under a crash schedule).
  Status AppendUpdate(WalOp op, uint32_t list, std::span<const uint32_t> rows);

  // Appends a checkpoint marker (compaction commit id).
  Status AppendCheckpoint(uint64_t checkpoint_id);

  // Forces everything appended so far to disk (fsync).
  Status Sync();

  // Final sync + close. The destructor closes without syncing.
  Status Close();

  uint64_t NextSeq() const { return next_seq_; }
  uint64_t BytesWritten() const { return end_; }
  uint64_t Records() const { return records_; }
  uint64_t Syncs() const { return syncs_; }
  bool Broken() const { return !broken_.ok(); }

 private:
  WalWriter(int fd, uint64_t end, uint64_t next_seq, const WalOptions& options)
      : fd_(fd), end_(end), next_seq_(next_seq), options_(options) {}

  Status AppendFrame(std::span<const uint8_t> frame);
  Status SyncInternal();

  int fd_ = -1;
  uint64_t end_ = 0;        // bytes of valid, fully-appended frames
  uint64_t next_seq_ = 1;
  WalOptions options_;
  uint64_t records_ = 0;
  uint64_t syncs_ = 0;
  size_t unsynced_records_ = 0;
  Status broken_ = Status::Ok();
};

}  // namespace intcomp::storage

#endif  // INTCOMP_STORAGE_WAL_H_
