#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/prng.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

// Builds an AND-of-all-leaves plan for `n` lists.
QueryPlan AndAll(size_t n) {
  std::vector<QueryPlan> leaves;
  for (size_t i = 0; i < n; ++i) leaves.push_back(QueryPlan::Leaf(i));
  return QueryPlan::And(std::move(leaves));
}

// Uniform list of round(domain * selectivity) values.
std::vector<uint32_t> SelList(uint64_t domain, double selectivity,
                              uint64_t seed) {
  const size_t n = static_cast<size_t>(
      std::llround(static_cast<double>(domain) * selectivity));
  return GenerateUniform(n, domain, seed);
}

DatasetQuery TwoListQuery(const std::string& name, uint64_t domain, size_t n1,
                          size_t n2, uint64_t seed, bool clustered = false) {
  DatasetQuery q;
  q.name = name;
  q.domain = domain;
  if (clustered) {
    q.lists.push_back(GenerateMarkov(n1, domain, kPaperMarkovClustering, seed));
    q.lists.push_back(
        GenerateMarkov(n2, domain, kPaperMarkovClustering, seed + 1));
  } else {
    q.lists.push_back(GenerateUniform(n1, domain, seed));
    q.lists.push_back(GenerateUniform(n2, domain, seed + 1));
  }
  q.plan = AndAll(2);
  return q;
}

}  // namespace

std::vector<DatasetQuery> MakeSsbQueries(int scale_factor, uint64_t seed) {
  const uint64_t domain = 6000000ull * scale_factor;
  std::vector<DatasetQuery> queries;

  {
    DatasetQuery q;  // Q1.1: AND of selectivities 1/7, 1/2, 3/11
    q.name = "Q1.1";
    q.domain = domain;
    q.lists.push_back(SelList(domain, 1.0 / 7, seed + 11));
    q.lists.push_back(SelList(domain, 1.0 / 2, seed + 12));
    q.lists.push_back(SelList(domain, 3.0 / 11, seed + 13));
    q.plan = AndAll(3);
    queries.push_back(std::move(q));
  }
  {
    DatasetQuery q;  // Q2.1: AND of 1/25, 1/5
    q.name = "Q2.1";
    q.domain = domain;
    q.lists.push_back(SelList(domain, 1.0 / 25, seed + 21));
    q.lists.push_back(SelList(domain, 1.0 / 5, seed + 22));
    q.plan = AndAll(2);
    queries.push_back(std::move(q));
  }
  {
    DatasetQuery q;  // Q3.4: (L1 u L2) n (L3 u L4) n L5
    q.name = "Q3.4";
    q.domain = domain;
    for (int i = 0; i < 4; ++i) {
      q.lists.push_back(SelList(domain, 1.0 / 250, seed + 31 + i));
    }
    q.lists.push_back(SelList(domain, 1.0 / 364, seed + 35));
    q.plan = QueryPlan::And(
        {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
         QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)}),
         QueryPlan::Leaf(4)});
    queries.push_back(std::move(q));
  }
  {
    DatasetQuery q;  // Q4.1: L1 n L2 n (L3 u L4)
    q.name = "Q4.1";
    q.domain = domain;
    for (int i = 0; i < 4; ++i) {
      q.lists.push_back(SelList(domain, 1.0 / 5, seed + 41 + i));
    }
    q.plan = QueryPlan::And(
        {QueryPlan::Leaf(0), QueryPlan::Leaf(1),
         QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)})});
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<DatasetQuery> MakeTpchQueries(int scale_factor, uint64_t seed) {
  const uint64_t domain = 6000000ull * scale_factor;
  std::vector<DatasetQuery> queries;
  {
    DatasetQuery q;  // Q6: L1 n L2 n L3
    q.name = "Q6";
    q.domain = domain;
    q.lists.push_back(SelList(domain, 1.0 / 7, seed + 61));
    q.lists.push_back(SelList(domain, 3.0 / 11, seed + 62));
    q.lists.push_back(SelList(domain, 1.0 / 50, seed + 63));
    q.plan = AndAll(3);
    queries.push_back(std::move(q));
  }
  {
    DatasetQuery q;  // Q12: (L1 u L2) n L3
    q.name = "Q12";
    q.domain = domain;
    q.lists.push_back(SelList(domain, 1.0 / 10, seed + 71));
    q.lists.push_back(SelList(domain, 1.0 / 10, seed + 72));
    q.lists.push_back(SelList(domain, 1.0 / 364, seed + 73));
    q.plan = QueryPlan::And(
        {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
         QueryPlan::Leaf(2)});
    queries.push_back(std::move(q));
  }
  return queries;
}

WebWorkload MakeWebWorkload(uint64_t num_docs, size_t num_queries,
                            uint64_t seed) {
  WebWorkload w;
  w.num_docs = num_docs;
  Prng rng(seed);
  // Term document-frequencies follow df(rank) = 0.2 * num_docs / rank
  // (Zipf), the skew that makes web queries mix short and long postings.
  constexpr double kTopDf = 0.2;
  constexpr uint64_t kMaxRank = 100000;
  const double log_max_rank = std::log(static_cast<double>(kMaxRank));

  std::vector<std::pair<uint64_t, size_t>> rank_to_list;  // sorted by rank
  auto list_for_rank = [&](uint64_t rank) -> size_t {
    auto it = std::lower_bound(
        rank_to_list.begin(), rank_to_list.end(), rank,
        [](const auto& a, uint64_t r) { return a.first < r; });
    if (it != rank_to_list.end() && it->first == rank) return it->second;
    const double df = kTopDf * static_cast<double>(num_docs) /
                      static_cast<double>(rank);
    const size_t n = std::max<size_t>(16, static_cast<size_t>(df));
    w.lists.push_back(
        GenerateUniform(std::min<size_t>(n, num_docs / 2), num_docs,
                        seed ^ (rank * 0x9e3779b97f4a7c15ull)));
    rank_to_list.insert(it, {rank, w.lists.size() - 1});
    return w.lists.size() - 1;
  };

  for (size_t qi = 0; qi < num_queries; ++qi) {
    const size_t nterms = 2 + rng.NextBounded(3);  // 2..4 terms
    std::vector<size_t> terms;
    while (terms.size() < nterms) {
      // Log-uniform rank: frequent terms appear in queries far more often.
      const uint64_t rank = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::exp(rng.NextDouble() * log_max_rank)));
      const size_t li = list_for_rank(rank);
      if (std::find(terms.begin(), terms.end(), li) == terms.end()) {
        terms.push_back(li);
      }
    }
    w.queries.push_back(std::move(terms));
  }
  return w;
}

std::vector<DatasetQuery> MakeGraphQueries(uint64_t seed) {
  // Twitter subset: 52,579,682 vertices; adjacency lists are clustered, so
  // we generate them with the markov model. Sizes from App. C.3.
  const uint64_t domain = 52579682ull;
  std::vector<DatasetQuery> queries;
  {
    DatasetQuery q;
    q.name = "Q1";
    q.domain = domain;
    for (size_t n : {size_t{960}, size_t{50913}, size_t{507777}}) {
      q.lists.push_back(
          GenerateMarkov(n, domain, kPaperMarkovClustering, seed + n));
    }
    q.plan = AndAll(3);
    queries.push_back(std::move(q));
  }
  {
    DatasetQuery q;
    q.name = "Q2";
    q.domain = domain;
    for (size_t n : {size_t{507777}, size_t{526292}, size_t{779957}}) {
      q.lists.push_back(
          GenerateMarkov(n, domain, kPaperMarkovClustering, seed + n));
    }
    q.plan = AndAll(3);
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<DatasetQuery> MakeKddcupQueries(uint64_t seed) {
  const uint64_t domain = 4898431ull;  // App. C.4
  return {TwoListQuery("Q1", domain, 2833545, 4195364, seed + 1),
          TwoListQuery("Q2", domain, 1051, 3744328, seed + 3)};
}

std::vector<DatasetQuery> MakeBerkeleyearthQueries(uint64_t seed) {
  const uint64_t domain = 61174591ull;  // App. C.5
  return {TwoListQuery("Q1", domain, 7730307, 9254744, seed + 1),
          TwoListQuery("Q2", domain, 5395, 8174163, seed + 3)};
}

std::vector<DatasetQuery> MakeHiggsQueries(uint64_t seed) {
  const uint64_t domain = 11000000ull;  // App. C.6
  return {TwoListQuery("Q1", domain, 172380, 4446476, seed + 1),
          TwoListQuery("Q2", domain, 49170, 102607, seed + 3)};
}

std::vector<DatasetQuery> MakeKeggQueries(uint64_t seed) {
  const uint64_t domain = 53414ull;  // App. C.7
  return {TwoListQuery("Q1", domain, 16965, 47783, seed + 1),
          TwoListQuery("Q2", domain, 1082, 1438, seed + 3)};
}

}  // namespace intcomp
