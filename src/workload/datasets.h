// Synthetic stand-ins for the paper's 8 real datasets (§6, App. C.3-C.7).
//
// We do not have the originals (SSB/TPCH dbgen output, the 300GB ClueWeb12
// crawl, the Twitter graph, the UCI datasets), so each is simulated with the
// properties the paper's experiments exercise: the exact domain sizes,
// per-list selectivities/cardinalities and query plans the paper specifies.
// See DESIGN.md §1.4 for the substitution rationale.

#ifndef INTCOMP_WORKLOAD_DATASETS_H_
#define INTCOMP_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"

namespace intcomp {

// One benchmark query: input lists plus the AND/OR plan over them.
struct DatasetQuery {
  std::string name;
  uint64_t domain = 0;
  std::vector<std::vector<uint32_t>> lists;
  QueryPlan plan;
};

// SSB (Fig. 4): fact table of 6M * SF rows; queries Q1.1, Q2.1, Q3.4, Q4.1
// with the selectivities/plans of §6.1.
std::vector<DatasetQuery> MakeSsbQueries(int scale_factor, uint64_t seed);

// TPCH (Fig. 5): 6M * SF rows; Q6 = AND(1/7, 3/11, 1/50),
// Q12 = (1/10 OR 1/10) AND 1/364 (§6.2, following [5]).
std::vector<DatasetQuery> MakeTpchQueries(int scale_factor, uint64_t seed);

// Web (Fig. 6): Zipf-skewed postings over `num_docs` documents (paper: 41M
// ClueWeb12 docs) and `num_queries` conjunctive queries of 2-4 terms drawn
// by popularity (paper: 1000 TREC queries).
struct WebWorkload {
  uint64_t num_docs = 0;
  std::vector<std::vector<uint32_t>> lists;   // postings of referenced terms
  std::vector<std::vector<size_t>> queries;   // term-list indexes per query
};
WebWorkload MakeWebWorkload(uint64_t num_docs, size_t num_queries,
                            uint64_t seed);

// Graph (Fig. 8): Twitter-like adjacency lists (clustered) over 52,579,682
// vertices with the paper's exact list sizes.
std::vector<DatasetQuery> MakeGraphQueries(uint64_t seed);

// KDDCup (Fig. 9): 4,898,431 rows; Q1 = {2833545, 4195364},
// Q2 = {1051, 3744328}.
std::vector<DatasetQuery> MakeKddcupQueries(uint64_t seed);

// Berkeleyearth (Fig. 10): 61,174,591 rows; Q1 = {7730307, 9254744},
// Q2 = {5395, 8174163}.
std::vector<DatasetQuery> MakeBerkeleyearthQueries(uint64_t seed);

// Higgs (Fig. 11): 11,000,000 rows; Q1 = {172380, 4446476},
// Q2 = {49170, 102607}.
std::vector<DatasetQuery> MakeHiggsQueries(uint64_t seed);

// Kegg (Fig. 12): 53,414 rows; Q1 = {16965, 47783}, Q2 = {1082, 1438}.
std::vector<DatasetQuery> MakeKeggQueries(uint64_t seed);

}  // namespace intcomp

#endif  // INTCOMP_WORKLOAD_DATASETS_H_
