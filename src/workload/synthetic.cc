#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/prng.h"

namespace intcomp {
namespace {

// Integral approximation of sum_{k=a..b} k^-f (the generalized-harmonic
// tail); good to a fraction of a percent for a >= 1, which is all the
// normalization below needs.
double HarmonicRange(double a, double b, double f) {
  if (b <= a) return 0;
  if (std::abs(f - 1.0) < 1e-9) return std::log(b / a);
  return (std::pow(b, 1 - f) - std::pow(a, 1 - f)) / (1 - f);
}

// Expected list size when rank k is included with probability
// min(1, lambda / k^f): the first K = lambda^(1/f) ranks are certain, the
// tail contributes lambda * sum_{k>K} k^-f.
double ExpectedZipfSize(double lambda, double domain, double f) {
  const double certain = std::min(domain, std::pow(lambda, 1.0 / f));
  return certain +
         lambda * HarmonicRange(std::max(1.0, certain), domain, f);
}

// Solves ExpectedZipfSize(lambda) == target for lambda (monotone increasing)
// by bisection.
double SolveZipfLambda(double target, double domain, double f) {
  double lo = 0, hi = 1;
  while (ExpectedZipfSize(hi, domain, f) < target && hi < domain * domain) {
    hi *= 2;
  }
  for (int i = 0; i < 80; ++i) {
    const double mid = (lo + hi) / 2;
    if (ExpectedZipfSize(mid, domain, f) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

// Geometric run length >= 0 with success probability p in (0, 1].
uint64_t GeometricSkip(Prng& rng, double p) {
  if (p >= 1.0) return 0;
  double u = rng.NextDouble();
  if (u <= 0) u = 1e-18;
  return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
}

}  // namespace

std::vector<uint32_t> GenerateUniform(size_t n, uint64_t domain,
                                      uint64_t seed) {
  Prng rng(seed);
  std::vector<uint32_t> v;
  v.reserve(n + n / 16 + 16);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<uint32_t>(rng.NextBounded(domain)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  while (v.size() < n) {
    const size_t missing = n - v.size();
    for (size_t i = 0; i < missing; ++i) {
      v.push_back(static_cast<uint32_t>(rng.NextBounded(domain)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return v;
}

std::vector<uint32_t> GenerateZipf(size_t n, uint64_t domain, double skew,
                                   uint64_t seed) {
  Prng rng(seed);
  // Choose lambda so the *expected* list size (with probabilities clamped
  // at 1) slightly overshoots n, then subsample to exactly n.
  const double target = static_cast<double>(n) * 1.03 + 64;
  const double lambda =
      SolveZipfLambda(target, static_cast<double>(domain), skew);
  std::vector<uint32_t> v;
  v.reserve(static_cast<size_t>(target * 1.05));
  uint64_t k = 1;
  while (k <= domain) {
    const double p = lambda * std::pow(static_cast<double>(k), -skew);
    if (p >= 1.0) {
      v.push_back(static_cast<uint32_t>(k - 1));
      ++k;
      continue;
    }
    // Skip sampling: treat p as locally constant and jump to the next
    // included rank.
    const uint64_t gap = GeometricSkip(rng, p);
    if (gap > domain - k) break;
    k += gap;
    v.push_back(static_cast<uint32_t>(k - 1));
    ++k;
  }
  if (v.size() > n) {
    // Random subsample preserving relative inclusion probabilities.
    for (size_t i = 0; i < n; ++i) {
      const size_t j = i + rng.NextBounded(v.size() - i);
      std::swap(v[i], v[j]);
    }
    v.resize(n);
    std::sort(v.begin(), v.end());
  } else {
    // Statistical shortfall: top up in bulk with uniform values.
    while (v.size() < n) {
      const size_t missing = n - v.size();
      for (size_t i = 0; i < missing; ++i) {
        v.push_back(static_cast<uint32_t>(rng.NextBounded(domain)));
      }
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
  }
  return v;
}

std::vector<uint32_t> GenerateMarkov(size_t n, uint64_t domain,
                                     double clustering, uint64_t seed) {
  Prng rng(seed);
  const double w =
      std::min(0.999, static_cast<double>(n) / static_cast<double>(domain));
  // Runs of 1s have mean length f (the clustering factor), runs of 0s mean
  // (1-w)*f/w, giving stationary density w.
  const double p = w / ((1.0 - w) * clustering);  // 0 -> 1
  const double q = 1.0 / clustering;              // 1 -> 0
  std::vector<uint32_t> v;
  v.reserve(n);
  uint64_t pos = 0;
  constexpr uint64_t kHardCap = 0xffffffffull;
  while (v.size() < n && pos < kHardCap) {
    pos += GeometricSkip(rng, p);  // run of 0s (mean 1/p - 1 given restart)
    uint64_t run1 = 1 + GeometricSkip(rng, std::min(1.0, q));
    while (run1-- > 0 && v.size() < n && pos < kHardCap) {
      v.push_back(static_cast<uint32_t>(pos++));
    }
  }
  return v;
}

}  // namespace intcomp
