// Synthetic dataset generators (paper §5).
//
// All generators produce a sorted, duplicate-free list of uint32 values over
// [0, domain), deterministically from a seed. The default domain is INTMAX =
// 2^31 - 1, as in the paper.

#ifndef INTCOMP_WORKLOAD_SYNTHETIC_H_
#define INTCOMP_WORKLOAD_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace intcomp {

inline constexpr uint64_t kPaperDomain = 2147483647ull;  // 2^31 - 1
inline constexpr double kPaperZipfSkew = 1.0;
inline constexpr double kPaperMarkovClustering = 8.0;  // f, following [39]

// n distinct values drawn uniformly from [0, domain). n <= domain/2
// recommended (rejection-based sampling).
std::vector<uint32_t> GenerateUniform(size_t n, uint64_t domain,
                                      uint64_t seed);

// Zipf inclusion model: value k (1-based rank) is included with probability
// min(1, n * (1/k^f) / H_f(domain)). Small values are near-certain members,
// so long lists degenerate toward {0, 1, 2, ...}, the regime the paper
// discusses for 1-billion-element zipf lists. The result is subsampled /
// topped up to exactly n values.
std::vector<uint32_t> GenerateZipf(size_t n, uint64_t domain, double skew,
                                   uint64_t seed);

// Two-state Markov chain with clustering factor f: runs of 1s have mean
// length f, runs of 0s mean length (1-w)*f/w where w = n/domain is the
// density, so the expected density is w. (The paper's §5 formulas as
// printed yield density 1-w; we use the orientation that actually produces
// density w with f-length clusters — see DESIGN.md.) Produces exactly n
// values.
std::vector<uint32_t> GenerateMarkov(size_t n, uint64_t domain,
                                     double clustering, uint64_t seed);

}  // namespace intcomp

#endif  // INTCOMP_WORKLOAD_SYNTHETIC_H_
