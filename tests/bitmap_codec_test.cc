// Structural (format-level) tests for the bitmap codecs: word layouts,
// paper worked examples, container/pattern selection, and edge behaviors
// that the generic property suite cannot pin down.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bitmap/bbc.h"
#include "bitmap/bitset.h"
#include "bitmap/concise.h"
#include "bitmap/ewah.h"
#include "bitmap/plwah.h"
#include "bitmap/roaring.h"
#include "bitmap/sbh.h"
#include "bitmap/valwah.h"
#include "bitmap/wah.h"
#include "test_util.h"

namespace intcomp {
namespace {

// --- WAH ------------------------------------------------------------------

TEST(WahTest, PaperExampleStructure) {
  // §2.1: bitmap 1 0^20 1^3 0^111 1^25 (160 bits). Groups: G1 literal,
  // G2-G4 a 3-group 0-fill, G5 literal, G6 literal.
  std::vector<uint32_t> values;
  values.push_back(0);
  for (uint32_t i = 21; i < 24; ++i) values.push_back(i);
  for (uint32_t i = 135; i < 160; ++i) values.push_back(i);

  std::vector<uint32_t> words;
  WahTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0] >> 31, 0u);  // literal G1
  EXPECT_EQ(words[1], 0x80000000u | 3u);  // 0-fill of 3 groups
  EXPECT_EQ(words[2] >> 31, 0u);  // literal G5
  EXPECT_EQ(words[3] >> 31, 0u);  // literal G6
}

TEST(WahTest, AllOnesBecomesOneFill) {
  std::vector<uint32_t> values(31 * 10);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  std::vector<uint32_t> words;
  WahTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0x80000000u | 0x40000000u | 10u);
}

TEST(WahTest, HugeFillRunFitsOneWord) {
  // WAH's 30-bit fill counter covers the whole uint32 domain (at most
  // ~2^32/31 < 2^30 groups), so even the largest gap is a single fill word.
  std::vector<uint32_t> values = {0, 4294967290u};
  std::vector<uint32_t> words;
  WahTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 3u);  // literal, one fill word, literal
  const uint64_t gap_groups = 4294967290ull / 31 - 1;
  EXPECT_EQ(words[1], 0x80000000u | static_cast<uint32_t>(gap_groups));
}

// --- EWAH -----------------------------------------------------------------

TEST(EwahTest, MarkerCarriesFillAndLiteralCounts) {
  // 32 ones (one 1-fill group), then a gap of 2 zero groups, then a literal.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; ++i) values.push_back(i);
  values.push_back(97);  // group 3, payload bit 1
  std::vector<uint32_t> words;
  EwahTraits::EncodeWords(values, &words);
  // marker(1-fill p=1, q=0), marker(0-fill p=2, q=1), literal.
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], EwahTraits::MakeMarker(true, 1, 0));
  EXPECT_EQ(words[1], EwahTraits::MakeMarker(false, 2, 1));
  EXPECT_EQ(words[2], 1u << 1);
}

TEST(EwahTest, FillRunLongerThan65535Splits) {
  std::vector<uint32_t> values = {0, 32u * 70000u};
  std::vector<uint32_t> words;
  EwahTraits::EncodeWords(values, &words);
  // marker(q=1) + literal + marker(65535 fills) + marker(rest, q=1) + literal
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[2], EwahTraits::MakeMarker(false, 65535, 0));
  EXPECT_EQ(words[3], EwahTraits::MakeMarker(false, 70000 - 1 - 65535, 1));
}

// --- CONCISE ---------------------------------------------------------------

TEST(ConciseTest, LiteralHasMsbSet) {
  std::vector<uint32_t> values = {1, 5};
  std::vector<uint32_t> words;
  ConciseTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0x80000000u | (1u << 1) | (1u << 5));
}

TEST(ConciseTest, MixedFillMergesPrecedingNearFillLiteral) {
  // §2.3-style: one bit set in group 0 (bit 23), then 3 empty groups, then a
  // literal in group 4. The first 4 groups collapse into one sequence word
  // with the odd-bit position.
  std::vector<uint32_t> values = {23};
  for (uint32_t i = 4 * 31; i < 4 * 31 + 20; ++i) values.push_back(i);
  std::vector<uint32_t> words;
  ConciseTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 2u);
  const uint32_t seq = words[0];
  EXPECT_EQ(seq >> 31, 0u);                  // sequence word
  EXPECT_EQ((seq >> 30) & 1u, 0u);           // 0-fill
  EXPECT_EQ((seq >> 25) & 31u, 24u);         // odd bit position 23 (1-based)
  EXPECT_EQ(seq & 0x1ffffffu, 3u);           // 4 groups => count-1 = 3
  EXPECT_EQ(words[1] >> 31, 1u);             // trailing literal
}

TEST(ConciseTest, PureFillHasZeroPosition) {
  std::vector<uint32_t> values = {3, 17, 31 * 100};  // literal, long gap, lit
  std::vector<uint32_t> words;
  ConciseTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ((words[1] >> 25) & 31u, 0u);
  EXPECT_EQ(words[1] & 0x1ffffffu, 99u - 1u);  // 99 zero groups
}

// --- PLWAH ------------------------------------------------------------------

TEST(PlwahTest, FillAbsorbsFollowingNearFillLiteral) {
  // §2.4: fill groups followed by a literal with a single odd bit are one
  // word. 3 zero groups then bit 100 (group 3, offset 7).
  std::vector<uint32_t> values = {100};
  std::vector<uint32_t> words;
  PlwahTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 1u);
  const uint32_t w = words[0];
  EXPECT_EQ(w >> 31, 1u);             // fill word
  EXPECT_EQ((w >> 30) & 1u, 0u);      // 0-fill
  EXPECT_EQ((w >> 25) & 31u, 8u);     // odd bit 7 (1-based)
  EXPECT_EQ(w & 0x1ffffffu, 3u);      // 3 fill groups
}

TEST(PlwahTest, DenseLiteralIsNotAbsorbed) {
  std::vector<uint32_t> values = {95, 96};  // group 3 literal with two bits
  std::vector<uint32_t> words;
  PlwahTraits::EncodeWords(values, &words);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ((words[0] >> 25) & 31u, 0u);  // pure fill
  EXPECT_EQ(words[1] >> 31, 0u);          // literal
}

// --- SBH --------------------------------------------------------------------

TEST(SbhTest, ShortFillIsOneByte) {
  std::vector<uint32_t> values = {0, 7 * 10 + 3};  // 9-group zero gap
  std::vector<uint8_t> bytes;
  SbhTraits::EncodeWords(values, &bytes);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x01);        // literal, bit 0
  EXPECT_EQ(bytes[1], 0x80 | 9);    // 0-fill of 9 groups
  EXPECT_EQ(bytes[2], 0x08);        // literal, bit 3
}

TEST(SbhTest, LongFillUsesTwoBytes) {
  std::vector<uint32_t> values = {0, 7 * 101};  // 100-group gap (> 63)
  std::vector<uint8_t> bytes;
  SbhTraits::EncodeWords(values, &bytes);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[1], 0x80 | (100 & 0x3f));
  EXPECT_EQ(bytes[2], 0x80 | (100 >> 6));
}

TEST(SbhTest, RunOverMaxSplitsIntoTwoByteTokens) {
  std::vector<uint32_t> values = {0, 7 * 5001};  // 5000-group gap (> 4093)
  std::vector<uint8_t> bytes;
  SbhTraits::EncodeWords(values, &bytes);
  // literal + 2 two-byte fills + literal.
  ASSERT_EQ(bytes.size(), 6u);
  // Both chunks are two-byte encoded, so no one-byte/two-byte ambiguity.
  EXPECT_EQ(bytes[1] & 0xc0, 0x80);
  EXPECT_EQ(bytes[2] & 0xc0, 0x80);
  EXPECT_EQ(bytes[3] & 0xc0, 0x80);
  EXPECT_EQ(bytes[4] & 0xc0, 0x80);
}

// --- BBC --------------------------------------------------------------------

TEST(BbcTest, Pattern1ShortFillPlusLiterals) {
  // 2 zero bytes then two literal bytes (mirror of Fig. 2a).
  std::vector<uint32_t> values = {17, 20, 21, 24, 30};  // bytes 2 and 3
  std::vector<uint8_t> bytes;
  BbcTraits::EncodeWords(values, &bytes);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x80 | (2u << 4) | 2u);  // P1, t=0, k=2, q=2
}

TEST(BbcTest, Pattern2OddByteAfterShortFill) {
  // Fig. 2b mirrored: 2 zero bytes then a byte with one set bit (pos 1).
  std::vector<uint32_t> values = {17};
  std::vector<uint8_t> bytes;
  BbcTraits::EncodeWords(values, &bytes);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x40 | (2u << 3) | 1u);  // P2, t=0, k=2, pos=1
}

TEST(BbcTest, Pattern3LongFillPlusLiterals) {
  // Fig. 2c mirrored: 4 zero bytes then a 2-bit literal.
  std::vector<uint32_t> values = {32, 36};
  std::vector<uint8_t> bytes;
  BbcTraits::EncodeWords(values, &bytes);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x20 | 1u);  // P3, t=0, q=1
  EXPECT_EQ(bytes[1], 4u);         // VByte counter = 4 fill bytes
  EXPECT_EQ(bytes[2], (1u << 0) | (1u << 4));
}

TEST(BbcTest, Pattern4OddByteAfterLongFill) {
  // Fig. 2d mirrored: 4 zero bytes then one set bit at position 7.
  std::vector<uint32_t> values = {39};
  std::vector<uint8_t> bytes;
  BbcTraits::EncodeWords(values, &bytes);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x10 | 7u);  // P4, t=0, pos=7
  EXPECT_EQ(bytes[1], 4u);         // counter
}

TEST(BbcTest, LiteralRunsSplitAtFifteen) {
  // 40 consecutive non-fill bytes (alternating bit patterns) must split
  // into chunks of <= 15 literals.
  std::vector<uint32_t> values;
  for (uint32_t byte = 0; byte < 40; ++byte) values.push_back(byte * 8 + 1);
  std::vector<uint8_t> bytes;
  BbcTraits::EncodeWords(values, &bytes);
  // Headers at chunk starts: 15+15+10 literals -> 3 headers + 40 literals.
  ASSERT_EQ(bytes.size(), 43u);
  EXPECT_EQ(bytes[0], 0x80 | 15u);
  EXPECT_EQ(bytes[16], 0x80 | 15u);
  EXPECT_EQ(bytes[32], 0x80 | 10u);
}

TEST(BbcTest, OneFillRuns) {
  // 8 one-fill bytes, then a byte with a single *zero* bit (bit 7) — an odd
  // byte relative to the 1-fill.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 71; ++i) values.push_back(i);  // bits 64..70 set
  std::vector<uint8_t> bytes;
  BbcTraits::EncodeWords(values, &bytes);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x10 | 0x08 | 7u);  // P4, t=1, pos=7
  EXPECT_EQ(bytes[1], 8u);                // counter
}

// --- Roaring ----------------------------------------------------------------

TEST(RoaringTest, ContainerTypeThreshold) {
  auto a4096 = RandomSortedList(4096, 65536, 1);
  auto a4097 = RandomSortedList(4097, 65536, 2);
  RoaringCodec codec;
  auto s1 = codec.Encode(a4096, 1u << 16);
  auto s2 = codec.Encode(a4097, 1u << 16);
  const auto& r1 = static_cast<const RoaringCodec::Set&>(*s1);
  const auto& r2 = static_cast<const RoaringCodec::Set&>(*s2);
  ASSERT_EQ(r1.containers.size(), 1u);
  ASSERT_EQ(r2.containers.size(), 1u);
  EXPECT_FALSE(r1.containers[0].is_bitmap);  // <= 4096 stays an array
  EXPECT_TRUE(r2.containers[0].is_bitmap);   // > 4096 becomes a bitmap
  // Array container: 2 bytes per element; bitmap container: 8KB fixed.
  EXPECT_EQ(r1.SizeInBytes(), 4u + 2u * 4096u);
  EXPECT_EQ(r2.SizeInBytes(), 4u + 8192u);
}

TEST(RoaringTest, BucketSkippingIntersection) {
  // Values in disjoint 2^16 buckets intersect to empty without touching
  // payloads; shared buckets produce hits.
  std::vector<uint32_t> a = {5, 100, 65536 * 2 + 7};
  std::vector<uint32_t> b = {65536 + 5, 65536 * 2 + 7, 65536 * 3 + 1};
  RoaringCodec codec;
  auto sa = codec.Encode(a, uint64_t{1} << 32);
  auto sb = codec.Encode(b, uint64_t{1} << 32);
  std::vector<uint32_t> out;
  codec.Intersect(*sa, *sb, &out);
  EXPECT_EQ(out, std::vector<uint32_t>{65536u * 2 + 7});
}

TEST(RoaringTest, MixedContainerOps) {
  auto dense = RandomSortedList(30000, 65536, 3);          // bitmap container
  auto sparse = RandomSortedList(100, 65536, 4);           // array container
  RoaringCodec codec;
  auto sd = codec.Encode(dense, 1u << 16);
  auto ss = codec.Encode(sparse, 1u << 16);
  std::vector<uint32_t> out;
  codec.Intersect(*sd, *ss, &out);
  EXPECT_EQ(out, RefIntersect(dense, sparse));
  codec.Union(*sd, *ss, &out);
  EXPECT_EQ(out, RefUnion(dense, sparse));
}

// --- VALWAH -----------------------------------------------------------------

TEST(ValwahTest, PicksSmallestSegmentLength) {
  // A very sparse bitmap compresses best with short segments (7-bit units);
  // a dense literal-heavy bitmap prefers 31-bit units.
  ValwahCodec codec;
  auto sparse = RandomSortedList(5000, 1 << 19, 11);  // short fills dominate
  auto s = codec.Encode(sparse, 1 << 19);
  const auto& vs = static_cast<const ValwahCodec::Set&>(*s);
  EXPECT_LT(vs.unit_bytes, 4);

  auto dense = RandomSortedList(40000, 1 << 17, 12);
  auto d = codec.Encode(dense, 1 << 17);
  const auto& vd = static_cast<const ValwahCodec::Set&>(*d);
  EXPECT_EQ(vd.unit_bytes, 4);
}

TEST(ValwahTest, CrossWidthIntersection) {
  // Operands that picked different segment widths must still intersect
  // correctly through the bit-granular engine.
  ValwahCodec codec;
  auto sparse = RandomSortedList(60, 1 << 20, 21);     // mid-length fills
  auto dense = RandomSortedList(40000, 1 << 17, 22);   // literal-dominated
  auto ss = codec.Encode(sparse, 1 << 20);
  auto sd = codec.Encode(dense, 1 << 17);
  const auto& a = static_cast<const ValwahCodec::Set&>(*ss);
  const auto& b = static_cast<const ValwahCodec::Set&>(*sd);
  ASSERT_NE(a.unit_bytes, b.unit_bytes);  // the interesting case
  std::vector<uint32_t> out;
  codec.Intersect(*ss, *sd, &out);
  EXPECT_EQ(out, RefIntersect(sparse, dense));
  codec.Union(*ss, *sd, &out);
  EXPECT_EQ(out, RefUnion(sparse, dense));
}

// --- Bitset -----------------------------------------------------------------

TEST(BitsetTest, SizeTracksMaxElementNotCardinality) {
  BitsetCodec codec;
  auto small = codec.Encode(std::vector<uint32_t>{1, 2, 3}, 1 << 30);
  auto wide = codec.Encode(std::vector<uint32_t>{1 << 20}, 1 << 30);
  EXPECT_LT(small->SizeInBytes(), 64u);
  EXPECT_GE(wide->SizeInBytes(), (1u << 20) / 8);
}

}  // namespace
}  // namespace intcomp
