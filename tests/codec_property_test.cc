// Cross-codec property suite: every method in the registry must satisfy the
// invariants of DESIGN.md §3 on a battery of list shapes — roundtrip,
// intersection/union against the std::set_* reference, list probing, and
// determinism.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/codec.h"
#include "core/registry.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

struct ListCase {
  const char* name;
  std::vector<uint32_t> (*make)(uint64_t seed);
};

std::vector<uint32_t> EmptyList(uint64_t) { return {}; }

std::vector<uint32_t> SingleZero(uint64_t) { return {0}; }

std::vector<uint32_t> SingleMax(uint64_t) { return {4294967295u}; }

std::vector<uint32_t> SparseHuge(uint64_t seed) {
  return RandomSortedList(200, uint64_t{1} << 32, seed);
}

std::vector<uint32_t> DenseRun(uint64_t) {
  std::vector<uint32_t> v(100000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<uint32_t>(i + 37);
  return v;
}

std::vector<uint32_t> TwoRuns(uint64_t) {
  std::vector<uint32_t> v;
  for (uint32_t i = 0; i < 5000; ++i) v.push_back(i);
  for (uint32_t i = 0; i < 5000; ++i) v.push_back(3000000 + i);
  return v;
}

std::vector<uint32_t> UniformMedium(uint64_t seed) {
  return RandomSortedList(20000, 1 << 24, seed);
}

std::vector<uint32_t> UniformSparse(uint64_t seed) {
  return RandomSortedList(3000, kPaperDomain, seed);
}

std::vector<uint32_t> ClusteredMarkov(uint64_t seed) {
  return GenerateMarkov(30000, 1 << 22, kPaperMarkovClustering, seed);
}

std::vector<uint32_t> ZipfSkewed(uint64_t seed) {
  return GenerateZipf(20000, kPaperDomain, kPaperZipfSkew, seed);
}

std::vector<uint32_t> EveryOther(uint64_t) {
  std::vector<uint32_t> v(4096);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<uint32_t>(2 * i);
  return v;
}

std::vector<uint32_t> RoaringBoundary(uint64_t seed) {
  // Chunks just below / at / above the array-container threshold (4096),
  // plus a dense chunk, spanning several 2^16 buckets.
  std::vector<uint32_t> v = RandomSortedList(4095, 65536, seed);
  auto c2 = RandomSortedList(4096, 65536, seed + 1);
  auto c3 = RandomSortedList(4097, 65536, seed + 2);
  auto c4 = RandomSortedList(60000, 65536, seed + 3);
  for (uint32_t x : c2) v.push_back(65536u + x);
  for (uint32_t x : c3) v.push_back(3u * 65536u + x);
  for (uint32_t x : c4) v.push_back(9u * 65536u + x);
  return v;
}

std::vector<uint32_t> WordBoundaries(uint64_t) {
  // Values straddling the group widths of all bitmap codecs (7, 8, 31, 32)
  // and the 128-element block size.
  std::vector<uint32_t> v;
  for (uint32_t base : {7u, 8u, 31u, 32u, 62u, 64u, 124u, 128u, 992u, 1024u}) {
    v.push_back(base - 1);
    v.push_back(base);
  }
  for (uint32_t i = 0; i < 300; ++i) v.push_back(2000 + 31 * i);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

constexpr ListCase kCases[] = {
    {"empty", &EmptyList},
    {"single_zero", &SingleZero},
    {"single_max", &SingleMax},
    {"sparse_huge_gaps", &SparseHuge},
    {"dense_run", &DenseRun},
    {"two_runs", &TwoRuns},
    {"uniform_medium", &UniformMedium},
    {"uniform_sparse", &UniformSparse},
    {"clustered_markov", &ClusteredMarkov},
    {"zipf_skewed", &ZipfSkewed},
    {"every_other", &EveryOther},
    {"roaring_boundary", &RoaringBoundary},
    {"word_boundaries", &WordBoundaries},
};

class CodecPropertyTest
    : public ::testing::TestWithParam<std::tuple<const Codec*, size_t>> {
 protected:
  const Codec& codec() const { return *std::get<0>(GetParam()); }
  std::vector<uint32_t> MakeList(uint64_t seed) const {
    return kCases[std::get<1>(GetParam())].make(seed);
  }
};

TEST_P(CodecPropertyTest, RoundTrip) {
  const auto list = MakeList(100);
  auto set = codec().Encode(list, uint64_t{1} << 32);
  EXPECT_EQ(set->Cardinality(), list.size());
  std::vector<uint32_t> decoded;
  codec().Decode(*set, &decoded);
  EXPECT_EQ(decoded, list);
}

TEST_P(CodecPropertyTest, SizeIsPositiveForNonEmpty) {
  const auto list = MakeList(101);
  auto set = codec().Encode(list, uint64_t{1} << 32);
  if (!list.empty()) {
    EXPECT_GT(set->SizeInBytes(), 0u);
  }
}

TEST_P(CodecPropertyTest, EncodingIsDeterministic) {
  const auto list = MakeList(102);
  auto s1 = codec().Encode(list, uint64_t{1} << 32);
  auto s2 = codec().Encode(list, uint64_t{1} << 32);
  EXPECT_EQ(s1->SizeInBytes(), s2->SizeInBytes());
  std::vector<uint32_t> d1, d2;
  codec().Decode(*s1, &d1);
  codec().Decode(*s2, &d2);
  EXPECT_EQ(d1, d2);
}

TEST_P(CodecPropertyTest, IntersectMatchesReference) {
  const auto a = MakeList(200);
  const auto b = MakeList(201);  // same shape, different seed
  const auto expected = RefIntersect(a, b);
  auto sa = codec().Encode(a, uint64_t{1} << 32);
  auto sb = codec().Encode(b, uint64_t{1} << 32);
  std::vector<uint32_t> got;
  codec().Intersect(*sa, *sb, &got);
  EXPECT_EQ(got, expected);
  // Symmetric.
  codec().Intersect(*sb, *sa, &got);
  EXPECT_EQ(got, expected);
}

TEST_P(CodecPropertyTest, IntersectWithSkewedList) {
  // Cross-shape: this case's list against a small and a large uniform list,
  // exercising both the merge and the skip/gallop paths.
  const auto a = MakeList(300);
  for (uint64_t seed : {400u, 401u}) {
    const auto b = seed == 400 ? RandomSortedList(97, 1 << 24, seed)
                               : RandomSortedList(50000, 1 << 24, seed);
    const auto expected = RefIntersect(a, b);
    auto sa = codec().Encode(a, uint64_t{1} << 32);
    auto sb = codec().Encode(b, uint64_t{1} << 32);
    std::vector<uint32_t> got;
    codec().Intersect(*sa, *sb, &got);
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST_P(CodecPropertyTest, UnionMatchesReference) {
  const auto a = MakeList(500);
  const auto b = MakeList(501);
  const auto expected = RefUnion(a, b);
  auto sa = codec().Encode(a, uint64_t{1} << 32);
  auto sb = codec().Encode(b, uint64_t{1} << 32);
  std::vector<uint32_t> got;
  codec().Union(*sa, *sb, &got);
  EXPECT_EQ(got, expected);
  codec().Union(*sb, *sa, &got);
  EXPECT_EQ(got, expected);
}

TEST_P(CodecPropertyTest, UnionWithCrossShape) {
  const auto a = MakeList(502);
  const auto b = RandomSortedList(5000, 1 << 24, 503);
  const auto expected = RefUnion(a, b);
  auto sa = codec().Encode(a, uint64_t{1} << 32);
  auto sb = codec().Encode(b, uint64_t{1} << 32);
  std::vector<uint32_t> got;
  codec().Union(*sa, *sb, &got);
  EXPECT_EQ(got, expected);
}

TEST_P(CodecPropertyTest, IntersectWithListMatchesReference) {
  const auto a = MakeList(600);
  auto sa = codec().Encode(a, uint64_t{1} << 32);
  for (uint64_t seed : {601u, 602u, 603u}) {
    const size_t n = seed == 601 ? 13 : (seed == 602 ? 1000 : 80000);
    auto probe = RandomSortedList(n, 1 << 24, seed);
    // Make sure some probes actually hit.
    for (size_t i = 0; i < a.size() && i < 50; i += 5) probe.push_back(a[i]);
    std::sort(probe.begin(), probe.end());
    probe.erase(std::unique(probe.begin(), probe.end()), probe.end());
    const auto expected = RefIntersect(a, probe);
    std::vector<uint32_t> got;
    codec().IntersectWithList(*sa, probe, &got);
    EXPECT_EQ(got, expected) << "probe seed " << seed;
  }
}

TEST_P(CodecPropertyTest, SerializeRoundTrip) {
  const auto list = MakeList(800);
  auto set = codec().Encode(list, uint64_t{1} << 32);
  std::vector<uint8_t> image = {0xAA, 0xBB};  // nonzero prefix offset
  codec().Serialize(*set, &image);
  auto restored = codec().Deserialize(image.data() + 2, image.size() - 2);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Cardinality(), set->Cardinality());
  EXPECT_EQ(restored->SizeInBytes(), set->SizeInBytes());
  std::vector<uint32_t> decoded;
  codec().Decode(*restored, &decoded);
  EXPECT_EQ(decoded, list);
  // The restored set must be fully operational, not just decodable.
  std::vector<uint32_t> out;
  codec().Intersect(*restored, *set, &out);
  EXPECT_EQ(out, list);
}

TEST_P(CodecPropertyTest, DeserializeRejectsTruncation) {
  const auto list = MakeList(801);
  auto set = codec().Encode(list, uint64_t{1} << 32);
  std::vector<uint8_t> image;
  codec().Serialize(*set, &image);
  // Every strict prefix that cuts into a length field or payload must be
  // rejected (never crash). Probe a few cut points including 0.
  for (size_t cut : {size_t{0}, size_t{1}, image.size() / 2,
                     image.size() - (image.empty() ? 0 : 1)}) {
    if (cut >= image.size()) continue;
    auto restored = codec().Deserialize(image.data(), cut);
    if (restored != nullptr) {
      // A codec may tolerate a cut that only loses trailing slack; it must
      // then still decode to a prefix-consistent state. Cardinality beyond
      // the data is the only acceptable difference we allow here.
      SUCCEED();
    }
  }
}

TEST_P(CodecPropertyTest, SelfIntersectIsIdentity) {
  const auto a = MakeList(700);
  auto sa = codec().Encode(a, uint64_t{1} << 32);
  std::vector<uint32_t> got;
  codec().Intersect(*sa, *sa, &got);
  EXPECT_EQ(got, a);
  codec().Union(*sa, *sa, &got);
  EXPECT_EQ(got, a);
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<const Codec*, size_t>>& info) {
  std::string name(std::get<0>(info.param)->Name());
  for (char& c : name) {
    if (c == '*') c = 'S';  // gtest names must be alphanumeric
  }
  return name + "_" + kCases[std::get<1>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecPropertyTest,
    ::testing::Combine(::testing::ValuesIn(AllCodecs().begin(),
                                           AllCodecs().end()),
                       ::testing::Range<size_t>(0, std::size(kCases))),
    CaseName);

// The extension codecs (Hybrid) must satisfy the same invariants.
INSTANTIATE_TEST_SUITE_P(
    ExtensionCodecs, CodecPropertyTest,
    ::testing::Combine(::testing::ValuesIn(ExtensionCodecs().begin(),
                                           ExtensionCodecs().end()),
                       ::testing::Range<size_t>(0, std::size(kCases))),
    CaseName);

TEST(RegistryTest, HasAll24PaperMethods) {
  EXPECT_EQ(AllCodecs().size(), 24u);
  EXPECT_EQ(BitmapCodecs().size(), 9u);
  EXPECT_EQ(InvertedListCodecs().size(), 15u);
  for (const char* name :
       {"Bitset", "BBC", "WAH", "EWAH", "PLWAH", "CONCISE", "VALWAH", "SBH",
        "Roaring", "List", "VB", "Simple9", "PforDelta", "NewPforDelta",
        "OptPforDelta", "Simple16", "GroupVB", "Simple8b", "PEF",
        "SIMDPforDelta", "SIMDBP128", "PforDelta*", "SIMDPforDelta*",
        "SIMDBP128*"}) {
    EXPECT_NE(FindCodec(name), nullptr) << name;
  }
  EXPECT_EQ(FindCodec("NoSuchCodec"), nullptr);
}

TEST(RegistryTest, FamiliesArePartitioned) {
  for (const Codec* c : BitmapCodecs()) {
    EXPECT_EQ(c->Family(), CodecFamily::kBitmap) << c->Name();
  }
  for (const Codec* c : InvertedListCodecs()) {
    EXPECT_EQ(c->Family(), CodecFamily::kInvertedList) << c->Name();
  }
}

}  // namespace
}  // namespace intcomp
