// Unit tests for the common substrate: bit utilities, scalar bit packing,
// SIMD packing, prefix sums, VByte, and the PRNG.

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitpack.h"
#include "common/bits.h"
#include "common/prng.h"
#include "common/serialize_util.h"
#include "common/simdpack.h"
#include "common/simdpack256.h"
#include "common/status.h"
#include "common/vbyte_raw.h"
#include "test_util.h"

namespace intcomp {
namespace {

TEST(BitsTest, PopCount) {
  EXPECT_EQ(PopCount32(0u), 0);
  EXPECT_EQ(PopCount32(0xffffffffu), 32);
  EXPECT_EQ(PopCount32(0b1011u), 3);
  EXPECT_EQ(PopCount64(~uint64_t{0}), 64);
}

TEST(BitsTest, CountTrailingZeros) {
  EXPECT_EQ(CountTrailingZeros32(1u), 0);
  EXPECT_EQ(CountTrailingZeros32(0x80000000u), 31);
  EXPECT_EQ(CountTrailingZeros64(uint64_t{1} << 63), 63);
}

TEST(BitsTest, BitWidth) {
  EXPECT_EQ(BitWidth32(0u), 0);
  EXPECT_EQ(BitWidth32(1u), 1);
  EXPECT_EQ(BitWidth32(255u), 8);
  EXPECT_EQ(BitWidth32(256u), 9);
  EXPECT_EQ(BitWidth32(~0u), 32);
}

TEST(BitsTest, LowMask) {
  EXPECT_EQ(LowMask32(0), 0u);
  EXPECT_EQ(LowMask32(5), 31u);
  EXPECT_EQ(LowMask32(32), ~0u);
  EXPECT_EQ(LowMask64(64), ~uint64_t{0});
}

TEST(BitsTest, EmitSetBits) {
  uint32_t out[32];
  uint32_t* end = EmitSetBits32(0b1010010u, 100, out);
  ASSERT_EQ(end - out, 3);
  EXPECT_EQ(out[0], 101u);
  EXPECT_EQ(out[1], 104u);
  EXPECT_EQ(out[2], 106u);
}

class BitPackTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackTest, RoundTripAllWidths) {
  const int b = GetParam();
  Prng rng(b * 7919);
  std::vector<uint32_t> in(301);
  for (auto& v : in) {
    v = b == 0 ? 0 : static_cast<uint32_t>(rng.Next()) & LowMask32(b);
  }
  std::vector<uint32_t> packed(PackedWords32(in.size(), b) + 1, 0xdeadbeef);
  PackBits(in.data(), in.size(), b, packed.data());
  std::vector<uint32_t> out(in.size());
  UnpackBits(packed.data(), in.size(), b, out.data());
  EXPECT_EQ(out, in);
  // Random access must agree with bulk unpack.
  for (size_t i = 0; i < in.size(); i += 37) {
    EXPECT_EQ(GetPacked(packed.data(), i, b), in[i]) << i;
  }
}

TEST_P(BitPackTest, SetPackedMatchesPackBits) {
  const int b = GetParam();
  if (b == 0) return;
  Prng rng(b * 104729);
  std::vector<uint32_t> in(130);
  for (auto& v : in) v = static_cast<uint32_t>(rng.Next()) & LowMask32(b);
  std::vector<uint32_t> a(PackedWords32(in.size(), b), 0);
  std::vector<uint32_t> c(PackedWords32(in.size(), b), 0);
  PackBits(in.data(), in.size(), b, a.data());
  for (size_t i = 0; i < in.size(); ++i) SetPacked(c.data(), i, b, in[i]);
  EXPECT_EQ(a, c);
}

TEST_P(BitPackTest, SimdRoundTripAllWidths) {
  const int b = GetParam();
  Prng rng(b * 31337);
  uint32_t in[128];
  for (auto& v : in) {
    v = b == 0 ? 0 : static_cast<uint32_t>(rng.Next()) & LowMask32(b);
  }
  uint32_t packed[128 + 1];
  packed[SimdPackedWords(b)] = 0xabadcafe;  // canary
  SimdPack128(in, b, packed);
  uint32_t out[128];
  SimdUnpack128(packed, b, out);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(out[i], in[i]) << i;
  EXPECT_EQ(packed[SimdPackedWords(b)], 0xabadcafe);
}

TEST_P(BitPackTest, Simd256RoundTripAllWidths) {
  const int b = GetParam();
  Prng rng(b * 65537);
  uint32_t in[128];
  for (auto& v : in) {
    v = b == 0 ? 0 : static_cast<uint32_t>(rng.Next()) & LowMask32(b);
  }
  uint32_t packed[129];
  packed[Simd256PackedWords(b)] = 0xabadcafe;  // canary
  Simd256Pack128(in, b, packed);
  uint32_t out[128];
  Simd256Unpack128(packed, b, out);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(out[i], in[i]) << i;
  EXPECT_EQ(packed[Simd256PackedWords(b)], 0xabadcafe);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitPackTest, ::testing::Range(0, 33));

TEST(SimdPackTest, SimdAndScalarDisagreeOnLayoutButAgreeOnValues) {
  // The vertical SIMD layout differs from horizontal scalar packing; both
  // must still round-trip the same values (checked above). Here we pin the
  // vertical property: lane i%4, slot i/4.
  uint32_t in[128];
  for (int i = 0; i < 128; ++i) in[i] = static_cast<uint32_t>(i);
  uint32_t packed[32];  // b = 8 -> 8 vectors = 32 words
  SimdPack128(in, 8, packed);
  // First output vector word 0 packs in[0], in[4], in[8], in[12] (lane 0).
  EXPECT_EQ(packed[0] & 0xff, 0u);
  EXPECT_EQ((packed[0] >> 8) & 0xff, 4u);
  EXPECT_EQ((packed[0] >> 16) & 0xff, 8u);
  EXPECT_EQ((packed[0] >> 24) & 0xff, 12u);
}

TEST(PrefixSumTest, SimdMatchesScalar) {
  Prng rng(42);
  uint32_t a[128], b[128];
  for (int i = 0; i < 128; ++i) a[i] = b[i] = rng.Next() & 0xffff;
  SimdPrefixSum128(a, 1000);
  ScalarPrefixSum(b, 128, 1000);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(PrefixSumTest, DeltaThenPrefixSumIsIdentity) {
  auto values = RandomSortedList(128, 1u << 30, 99);
  uint32_t buf[128];
  std::copy(values.begin(), values.end(), buf);
  SimdDelta128(buf, 500);
  // First delta is relative to the base.
  EXPECT_EQ(buf[0], values[0] - 500);
  SimdPrefixSum128(buf, 500);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(buf[i], values[i]) << i;
}

TEST(PrefixSumTest, ScalarDeltaRoundTrip) {
  auto values = RandomSortedList(77, 1u << 20, 7);
  std::vector<uint32_t> buf = values;
  ScalarDelta(buf.data(), buf.size(), 3);
  ScalarPrefixSum(buf.data(), buf.size(), 3);
  EXPECT_EQ(buf, values);
}

TEST(VByteRawTest, PaperExample16385) {
  // §3.1: 16385 encodes as 10000001 10000000 00000001.
  std::vector<uint8_t> out;
  VByteEncode(16385, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0b10000001);
  EXPECT_EQ(out[1], 0b10000000);
  EXPECT_EQ(out[2], 0b00000001);
  size_t pos = 0;
  EXPECT_EQ(VByteDecode(out.data(), &pos), 16385u);
  EXPECT_EQ(pos, 3u);
}

TEST(VByteRawTest, RoundTripBoundaries) {
  std::vector<uint8_t> buf;
  std::vector<uint32_t> values = {0,       1,        127,        128,
                                  16383,   16384,    2097151,    2097152,
                                  1u << 28, (1u << 28) - 1, ~0u};
  for (uint32_t v : values) {
    buf.clear();
    VByteEncode(v, &buf);
    EXPECT_EQ(buf.size(), static_cast<size_t>(VByteLength(v))) << v;
    size_t pos = 0;
    EXPECT_EQ(VByteDecode(buf.data(), &pos), v);
  }
}

TEST(SerializeUtilTest, RoundTripsVectors) {
  std::vector<uint32_t> v32 = {1, 2, 100000, 0xffffffffu};
  std::vector<uint8_t> buf;
  WriteVector(v32, &buf);
  ByteReader reader(buf.data(), buf.size());
  std::vector<uint32_t> back;
  ASSERT_TRUE(ReadVector(&reader, &back));
  EXPECT_EQ(back, v32);
  EXPECT_EQ(reader.Remaining(), 0u);
}

TEST(SerializeUtilTest, ReadVectorRejectsOverflowingElementCount) {
  // Regression: a 16-byte buffer whose length prefix claims 2^61 8-byte
  // elements. 2^61 * 8 wraps a 64-bit size_t to 0, so a naive byte-count
  // check passes and resize(2^61) aborts; the checked form must reject
  // before allocating.
  std::vector<uint8_t> buf(16, 0);
  const uint64_t huge = uint64_t{1} << 61;
  std::memcpy(buf.data(), &huge, 8);
  ByteReader reader(buf.data(), buf.size());
  std::vector<uint64_t> out;
  EXPECT_FALSE(ReadVector(&reader, &out));
  EXPECT_TRUE(out.empty());

  // Same shape for 4-byte elements: 2^62 * 4 also wraps to 0.
  std::vector<uint8_t> buf2(16, 0);
  const uint64_t huge2 = uint64_t{1} << 62;
  std::memcpy(buf2.data(), &huge2, 8);
  ByteReader r2(buf2.data(), buf2.size());
  std::vector<uint32_t> out2;
  EXPECT_FALSE(ReadVector(&r2, &out2));

  // A count that merely exceeds the buffer (no wrap) is rejected too.
  std::vector<uint8_t> buf3(16, 0);
  const uint64_t big = 1000;
  std::memcpy(buf3.data(), &big, 8);
  ByteReader r3(buf3.data(), buf3.size());
  std::vector<uint32_t> out3;
  EXPECT_FALSE(ReadVector(&r3, &out3));
}

TEST(StatusTest, CodesFactoriesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status corrupt = Status::Corrupt("bad header");
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.code(), StatusCode::kCorruptData);
  EXPECT_EQ(corrupt.message(), "bad header");
  EXPECT_EQ(corrupt.ToString(), "CORRUPT_DATA: bad header");
  EXPECT_EQ(Status::DeadlineExceeded("t").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::InvalidArgument("a").code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, CarriesValueOrStatus) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);
  StatusOr<int> bad(Status::Corrupt("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruptData);
}

TEST(CheckedByteReaderTest, ReadsExactlyWhatFits) {
  const uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  CheckedByteReader r(data, sizeof(data));
  uint8_t u8 = 0xff;
  uint16_t u16 = 0xffff;
  uint32_t u32 = 0xffffffff;
  ASSERT_TRUE(r.GetU8(&u8));
  EXPECT_EQ(u8, 0x01);
  ASSERT_TRUE(r.GetU16(&u16));
  EXPECT_EQ(u16, 0x0302);
  ASSERT_TRUE(r.GetU32(&u32));
  EXPECT_EQ(u32, 0x07060504u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.Remaining(), 0u);

  // Past-the-end reads fail, poison the output, and do not advance.
  uint64_t u64 = 0xdeadbeef;
  EXPECT_FALSE(r.GetU64(&u64));
  EXPECT_EQ(u64, 0u);
  EXPECT_EQ(r.Position(), sizeof(data));
}

TEST(CheckedByteReaderTest, ShortBufferFailsWideReadsButCursorHolds) {
  const uint8_t data[] = {0xaa, 0xbb};
  CheckedByteReader r(data, sizeof(data));
  uint64_t u64 = 1;
  uint32_t u32 = 1;
  EXPECT_FALSE(r.GetU64(&u64));
  EXPECT_EQ(u64, 0u);
  EXPECT_FALSE(r.GetU32(&u32));
  EXPECT_EQ(u32, 0u);
  EXPECT_EQ(r.Position(), 0u);  // failed reads never advance
  EXPECT_FALSE(r.Skip(3));
  ASSERT_TRUE(r.Skip(2));
  EXPECT_TRUE(r.AtEnd());
  uint8_t buf[4];
  EXPECT_FALSE(r.GetBytes(buf, 1));
}

TEST(PrngTest, DeterministicAndBounded) {
  Prng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.NextBounded(17), 17u);
    double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, RoughlyUniform) {
  Prng rng(5);
  int buckets[10] = {};
  for (int i = 0; i < 100000; ++i) ++buckets[rng.NextBounded(10)];
  for (int b : buckets) {
    EXPECT_GT(b, 9000);
    EXPECT_LT(b, 11000);
  }
}

}  // namespace
}  // namespace intcomp
