// Corruption fuzzer for the untrusted-image boundary (DeserializeChecked).
//
// For every registry codec and extension, over uniform / zipf / markov /
// dense datasets: serialize a genuine image, then hammer DeserializeChecked
// with truncations, bit flips, length inflation, window scrambles, splices
// of two genuine images, and cross-codec images. The contract under test:
// DeserializeChecked either returns a non-OK Status or a set whose decode
// is sane (strictly increasing, inside the domain, cardinality-consistent)
// and round-trips through Encode — and it NEVER crashes, hangs, or trips a
// sanitizer. The CI ASan+UBSan job runs this binary with a raised
// --fuzz-iters; the default keeps tier-1 ctest fast.
//
// This binary has its own main (not gtest_main) to parse --fuzz-iters=N.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "core/registry.h"
#include "common/fault.h"
#include "workload/synthetic.h"

namespace intcomp {

int g_fuzz_iters = 250;  // mutations per (codec, dataset, operator family)

namespace {

constexpr uint64_t kDomain = 1 << 17;

const std::vector<std::vector<uint32_t>>& Datasets() {
  static const auto* datasets = [] {
    auto* d = new std::vector<std::vector<uint32_t>>;
    d->push_back(GenerateUniform(4000, kDomain, 11));
    d->push_back(GenerateZipf(4000, kDomain, kPaperZipfSkew, 12));
    d->push_back(GenerateMarkov(4000, kDomain, kPaperMarkovClustering, 13));
    d->push_back(GenerateUniform(50000, kDomain, 14));  // dense, ~38%
    return d;
  }();
  return *datasets;
}

// Decode must be safe on any set DeserializeChecked accepted; the values
// must be a well-formed sorted set inside the domain, and re-encoding them
// must reproduce the same values (the set is semantically reachable, not
// just memory-safe to walk).
void ExpectSane(const Codec& codec, const CompressedSet& set) {
  std::vector<uint32_t> vals;
  codec.Decode(set, &vals);
  ASSERT_EQ(vals.size(), set.Cardinality());
  for (size_t i = 0; i < vals.size(); ++i) {
    ASSERT_LT(vals[i], kDomain) << "value past domain at " << i;
    if (i > 0) ASSERT_LT(vals[i - 1], vals[i]) << "not increasing at " << i;
  }
  auto re = codec.Encode(vals, kDomain);
  std::vector<uint32_t> vals2;
  codec.Decode(*re, &vals2);
  ASSERT_EQ(vals2, vals) << "accepted set does not round-trip";
}

void CheckImage(const Codec& codec, const std::vector<uint8_t>& image) {
  auto r = codec.DeserializeChecked(image, kDomain);
  if (r.ok()) ExpectSane(codec, **r);
}

std::vector<std::vector<uint8_t>> GenuineImages(const Codec& codec) {
  std::vector<std::vector<uint8_t>> images;
  for (const auto& data : Datasets()) {
    auto set = codec.Encode(data, kDomain);
    std::vector<uint8_t> image;
    codec.Serialize(*set, &image);
    images.push_back(std::move(image));
  }
  return images;
}

class CorruptionFuzzTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(CorruptionFuzzTest, GenuineImagesValidateAndRoundTrip) {
  const Codec& codec = *GetParam();
  const auto& datasets = Datasets();
  const auto images = GenuineImages(codec);
  for (size_t d = 0; d < images.size(); ++d) {
    SCOPED_TRACE(d);
    auto r = codec.DeserializeChecked(images[d], kDomain);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<uint32_t> vals;
    codec.Decode(**r, &vals);
    EXPECT_EQ(vals, datasets[d]);
  }
}

TEST_P(CorruptionFuzzTest, SurvivesTruncationBitFlipsAndLengthInflation) {
  const Codec& codec = *GetParam();
  const auto images = GenuineImages(codec);
  for (size_t d = 0; d < images.size(); ++d) {
    SCOPED_TRACE(d);
    const std::vector<uint8_t>& image = images[d];
    Prng rng(7000 + d);
    // Small prefixes always (header parsing edge cases are dense there).
    for (size_t n = 0; n <= std::min<size_t>(image.size(), 64); ++n) {
      CheckImage(codec, TruncateAt(image, n));
    }
    for (int it = 0; it < g_fuzz_iters; ++it) {
      std::vector<uint8_t> mut;
      switch (rng.NextBounded(4)) {
        case 0:
          mut = TruncateAt(image, rng.NextBounded(image.size() + 1));
          FlipBits(&mut, rng.NextBounded(3), &rng);
          break;
        case 1:
          mut = image;
          FlipBits(&mut, 1 + rng.NextBounded(8), &rng);
          break;
        case 2:
          mut = image;
          InflateLength(&mut, &rng);
          break;
        default:
          mut = image;
          Scramble(&mut, &rng);
          break;
      }
      CheckImage(codec, mut);
    }
  }
}

TEST_P(CorruptionFuzzTest, SurvivesSplicedImages) {
  const Codec& codec = *GetParam();
  const auto images = GenuineImages(codec);
  Prng rng(9100);
  for (int it = 0; it < g_fuzz_iters; ++it) {
    const auto& a = images[rng.NextBounded(images.size())];
    const auto& b = images[rng.NextBounded(images.size())];
    std::vector<uint8_t> mut = Splice(a, b, &rng);
    if (rng.NextBounded(2) == 0) FlipBits(&mut, 1, &rng);
    CheckImage(codec, mut);
  }
}

TEST_P(CorruptionFuzzTest, SurvivesForeignCodecImages) {
  // Feed this codec images genuinely produced by every *other* codec — the
  // framing is wrong from byte 0, which exercises a different rejection
  // path than local mutations.
  const Codec& codec = *GetParam();
  for (const Codec* other : AllCodecs()) {
    if (other == &codec) continue;
    SCOPED_TRACE(std::string(other->Name()));
    auto set = other->Encode(Datasets()[0], kDomain);
    std::vector<uint8_t> image;
    other->Serialize(*set, &image);
    CheckImage(codec, image);
  }
}

std::vector<const Codec*> AllAndExtensions() {
  // Shared roster (core/registry.h): paper methods + extensions, so this
  // suite can never drift from the other differential suites.
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

std::string ParamName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name;
  for (char c : std::string(info.param->Name())) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      name += c;
    } else if (c == '*') {
      name += "Star";
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CorruptionFuzzTest,
                         ::testing::ValuesIn(AllAndExtensions()), ParamName);

}  // namespace
}  // namespace intcomp

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* value = nullptr;
    if (arg.rfind("--fuzz-iters=", 0) == 0) {
      value = argv[i] + 13;
    } else if (arg == "--fuzz-iters" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    const long iters = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || iters <= 0) {
      std::fprintf(stderr, "--fuzz-iters: expected a positive integer, got '%s'\n",
                   value);
      return 1;
    }
    intcomp::g_fuzz_iters = static_cast<int>(iters);
  }
  return RUN_ALL_TESTS();
}
