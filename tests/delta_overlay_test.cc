// Delta-overlay tests (src/service/delta_overlay.h + LiveIndex::Wrap).
//
// The load-bearing identity: an OverlaySnapshot over (base, deltas) answers
// every plan exactly like an index rebuilt from scratch on the mutated
// lists — for every codec in the registry. Plus the DeltaMap set-semantics
// algebra that makes WAL replay idempotent and compaction commit a
// subtraction, and two race hammers (run under TSan in CI): queries racing
// a mutation see exactly the before- or after-state, and queries racing a
// compaction — which never changes the effective index — all agree.

#include "service/delta_overlay.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "core/registry.h"
#include "engine/thread_pool.h"
#include "service/sharded_index.h"
#include "storage/live_index.h"
#include "test_util.h"

namespace intcomp {
namespace {

// --------------------------------------------------------------- primitives

TEST(DeltaPrimitivesTest, CanonicalizeRowsSortsAndDedups) {
  std::vector<uint32_t> rows = {9, 3, 3, 7, 0, 9, 9};
  CanonicalizeRows(&rows);
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 3, 7, 9}));
  std::vector<uint32_t> empty;
  CanonicalizeRows(&empty);
  EXPECT_TRUE(empty.empty());
}

TEST(DeltaPrimitivesTest, ApplyDeltaIsDeleteThenInsert) {
  ListDelta delta;
  delta.inserts = {2, 5, 40};
  delta.deletes = {10, 30};
  std::vector<uint32_t> out;
  ApplyDelta(std::vector<uint32_t>{5, 10, 20, 30}, delta, &out);
  // (base \ deletes) ∪ inserts; 5 in both base and inserts stays single.
  EXPECT_EQ(out, (std::vector<uint32_t>{2, 5, 20, 40}));

  ApplyDelta({}, delta, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{2, 5, 40}));

  ApplyDelta(std::vector<uint32_t>{10, 30}, ListDelta{}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{10, 30}));
}

// ------------------------------------------------------------ DeltaMap law

TEST(DeltaMapTest, PolarityFlipsKeepRowsDisjoint) {
  DeltaMap map;
  EXPECT_FALSE(map.Dirty());
  map.Insert(3, std::vector<uint32_t>{1, 2, 3});
  map.Remove(3, std::vector<uint32_t>{2, 9});
  // 2 flipped to delete; 1 and 3 remain inserts; 9 is a fresh delete.
  auto copy = map.Copy();
  ASSERT_EQ(copy.size(), 1u);
  EXPECT_EQ(copy[0].first, 3u);
  EXPECT_EQ(copy[0].second.inserts, (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(copy[0].second.deletes, (std::vector<uint32_t>{2, 9}));
  // Flip back: a row never carries both polarities.
  map.Insert(3, std::vector<uint32_t>{2});
  copy = map.Copy();
  EXPECT_EQ(copy[0].second.inserts, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(copy[0].second.deletes, (std::vector<uint32_t>{9}));
  EXPECT_EQ(map.DeltaRows(), 4u);
  EXPECT_EQ(map.DirtyLists(), 1u);
}

TEST(DeltaMapTest, VersionBumpsOnEveryChange) {
  DeltaMap map;
  const uint64_t v0 = map.Version();
  map.Insert(0, std::vector<uint32_t>{1});
  const uint64_t v1 = map.Version();
  EXPECT_NE(v0, v1);
  map.Remove(1, std::vector<uint32_t>{2});
  EXPECT_NE(map.Version(), v1);
}

TEST(DeltaMapTest, SubtractKeepsUpdatesThatRacedTheFreeze) {
  DeltaMap map;
  map.Insert(0, std::vector<uint32_t>{1, 2, 3});
  map.Remove(1, std::vector<uint32_t>{7});
  const auto frozen = map.Copy();  // what a compaction would fold in

  // Racing updates while the "compaction" runs: 2 flips to delete in list
  // 0, a brand-new insert lands in list 2.
  map.Remove(0, std::vector<uint32_t>{2});
  map.Insert(2, std::vector<uint32_t>{5});

  map.Subtract(frozen);
  const auto survivors = map.Copy();
  // Folded rows are gone; the racing flip and the new insert survive.
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0].first, 0u);
  EXPECT_TRUE(survivors[0].second.inserts.empty());
  EXPECT_EQ(survivors[0].second.deletes, (std::vector<uint32_t>{2}));
  EXPECT_EQ(survivors[1].first, 2u);
  EXPECT_EQ(survivors[1].second.inserts, (std::vector<uint32_t>{5}));

  // Subtracting a frozen view from an identical map empties it.
  DeltaMap clean;
  clean.Insert(4, std::vector<uint32_t>{8, 9});
  clean.Subtract(clean.Copy());
  EXPECT_FALSE(clean.Dirty());
  EXPECT_EQ(clean.DeltaRows(), 0u);
}

// --------------------------------------------- overlay ≡ rebuilt, all codecs

struct OverlayFixture {
  uint64_t num_rows = 2048;
  size_t num_shards = 3;
  std::vector<std::vector<uint32_t>> base_lists;
  std::vector<std::vector<uint32_t>> mutated_lists;  // base after deltas
  DeltaMap deltas;
  std::vector<QueryPlan> plans;
};

OverlayFixture MakeOverlayFixture(uint64_t seed) {
  OverlayFixture f;
  Prng rng(seed);
  const size_t num_lists = 6;
  for (size_t l = 0; l < num_lists; ++l) {
    f.base_lists.push_back(
        RandomSortedList(100 + rng.NextBounded(400), f.num_rows, rng.Next()));
  }
  f.mutated_lists = f.base_lists;
  // Dirty four of the six lists (two stay clean → base passthrough), with
  // overlapping insert/remove batches in arbitrary order.
  for (size_t l = 0; l < 4; ++l) {
    std::vector<uint32_t> ins =
        RandomSortedList(1 + rng.NextBounded(80), f.num_rows, rng.Next());
    std::vector<uint32_t> del =
        RandomSortedList(1 + rng.NextBounded(80), f.num_rows, rng.Next());
    f.deltas.Remove(static_cast<uint32_t>(l), del);
    f.deltas.Insert(static_cast<uint32_t>(l), ins);
    // Model: remove-then-insert == delete (del \ ins), then insert ins (set
    // semantics — the later Insert call wins the shared rows).
    std::vector<uint32_t> tmp;
    std::vector<uint32_t> eff_del;
    std::set_difference(del.begin(), del.end(), ins.begin(), ins.end(),
                        std::back_inserter(eff_del));
    ListDelta eff;
    eff.deletes = eff_del;
    eff.inserts = ins;
    ApplyDelta(f.mutated_lists[l], eff, &tmp);
    f.mutated_lists[l] = tmp;
  }
  f.plans.push_back(QueryPlan::Leaf(0));
  f.plans.push_back(QueryPlan::Leaf(4));  // clean list
  f.plans.push_back(QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}));
  f.plans.push_back(QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(5)}));
  f.plans.push_back(QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(3)}),
       QueryPlan::Leaf(2)}));
  return f;
}

class OverlayEquivalenceTest : public ::testing::TestWithParam<const Codec*> {
};

TEST_P(OverlayEquivalenceTest, OverlayMatchesRebuiltIndex) {
  const Codec& codec = *GetParam();
  const OverlayFixture f = MakeOverlayFixture(TestSeed(0x0e0e));

  auto base = std::make_shared<ShardedIndex>(ShardedIndex::Build(
      codec, f.base_lists, f.num_rows, f.num_shards));
  const ShardedIndex rebuilt = ShardedIndex::Build(
      codec, f.mutated_lists, f.num_rows, f.num_shards);
  const OverlaySnapshot overlay(base, f.deltas.Copy());
  EXPECT_EQ(overlay.DirtyLists(), 4u);
  EXPECT_EQ(overlay.NumLists(), base->NumLists());
  EXPECT_EQ(overlay.NumRows(), base->NumRows());
  EXPECT_EQ(overlay.SizeInBytes(),
            base->SizeInBytes() + f.deltas.DeltaRows() * 4);

  ThreadPool pool(2);
  IndexServiceOptions options;
  options.cache_enabled = false;
  IndexService overlay_service(&overlay, &pool, options);
  IndexService rebuilt_service(&rebuilt, &pool, options);
  for (size_t q = 0; q < f.plans.size(); ++q) {
    std::vector<uint32_t> got, want;
    ASSERT_TRUE(overlay_service.Query(f.plans[q], &got).ok());
    ASSERT_TRUE(rebuilt_service.Query(f.plans[q], &want).ok());
    ASSERT_EQ(got, want) << "plan " << q;
  }

  // An overlay with no deltas delegates to the base wholesale.
  const OverlaySnapshot clean(base, {});
  IndexService clean_service(&clean, &pool, options);
  IndexService base_service(base.get(), &pool, options);
  for (size_t q = 0; q < f.plans.size(); ++q) {
    std::vector<uint32_t> got, want;
    ASSERT_TRUE(clean_service.Query(f.plans[q], &got).ok());
    ASSERT_TRUE(base_service.Query(f.plans[q], &want).ok());
    ASSERT_EQ(got, want) << "plan " << q;
  }
}

std::string OverlayCodecName(
    const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name(info.param->Name());
  for (char& c : name) {
    if (c == '*' || c == '+' || c == '-') c = '_';
  }
  return name;
}

// The full shared roster — paper methods plus extensions. This suite used
// to instantiate over AllCodecs() only, silently dropping Hybrid and EF
// while every other differential suite covered them; the registry's shared
// roster keeps the suites from drifting apart again.
INSTANTIATE_TEST_SUITE_P(AllCodecs, OverlayEquivalenceTest,
                         ::testing::ValuesIn(AllCodecsWithExtensions()),
                         OverlayCodecName);

// Metamorphic round trips: remove-then-reinsert rows from the base is the
// identity; insert-then-remove rows disjoint from the base is the identity.
TEST(OverlayEquivalenceTest, RoundTripDeltasAreTheIdentity) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t num_rows = 4096;
  std::vector<std::vector<uint32_t>> lists = {
      RandomSortedList(600, num_rows, TestSeed(0x1d01)),
      RandomSortedList(300, num_rows, TestSeed(0x1d02))};
  auto base = std::make_shared<ShardedIndex>(
      ShardedIndex::Build(codec, lists, num_rows, 2));

  // Rows present in list 0 / absent from list 1.
  std::vector<uint32_t> present(lists[0].begin(), lists[0].begin() + 50);
  std::vector<uint32_t> absent;
  for (uint32_t r = 0; absent.size() < 50; ++r) {
    if (!std::binary_search(lists[1].begin(), lists[1].end(), r)) {
      absent.push_back(r);
    }
  }

  DeltaMap map;
  map.Remove(0, present);
  map.Insert(0, present);  // flip back: pure insert polarity of base rows
  map.Insert(1, absent);
  map.Remove(1, absent);   // flip to delete polarity of non-base rows
  const OverlaySnapshot overlay(base, map.Copy());

  ThreadPool pool(2);
  IndexServiceOptions options;
  options.cache_enabled = false;
  IndexService overlay_service(&overlay, &pool, options);
  IndexService base_service(base.get(), &pool, options);
  for (uint32_t l = 0; l < 2; ++l) {
    std::vector<uint32_t> got, want;
    ASSERT_TRUE(overlay_service.Query(QueryPlan::Leaf(l), &got).ok());
    ASSERT_TRUE(base_service.Query(QueryPlan::Leaf(l), &want).ok());
    EXPECT_EQ(got, want) << "list " << l;
  }
}

// ------------------------------------------------------------ race hammers

// Queries racing one mutation observe exactly the before- or after-state —
// never a torn mix. Run under TSan in CI to catch publication races.
TEST(OverlayRaceTest, QueriesRacingAMutationSeeBeforeOrAfter) {
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t num_rows = 8192;
  std::vector<std::vector<uint32_t>> lists = {
      RandomSortedList(900, num_rows, TestSeed(0x5ace)),
      RandomSortedList(700, num_rows, TestSeed(0x5acf))};
  const std::vector<uint32_t> before = lists[0];
  std::vector<uint32_t> extra;
  for (uint32_t r = 0; extra.size() < 64; ++r) {
    if (!std::binary_search(before.begin(), before.end(), r)) {
      extra.push_back(r);
    }
  }
  const std::vector<uint32_t> after = RefUnion(before, extra);

  ThreadPool pool(3);
  for (int iter = 0; iter < 8; ++iter) {
    auto live = storage::LiveIndex::Wrap(std::make_shared<ShardedIndex>(
        ShardedIndex::Build(codec, lists, num_rows, 2)));
    IndexServiceOptions options;
    options.cache.require_second_touch = false;
    IndexService service(live->Snapshot(), &pool, options);
    live->AttachService(&service);

    std::atomic<bool> start{false};
    std::atomic<int> torn{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&] {
        while (!start.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 40; ++i) {
          std::vector<uint32_t> rows;
          if (!service.Query(QueryPlan::Leaf(0), &rows).ok() ||
              (rows != before && rows != after)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    start.store(true, std::memory_order_release);
    ASSERT_TRUE(live->Insert(0, extra).ok());
    for (std::thread& t : readers) t.join();
    EXPECT_EQ(torn.load(), 0) << "iteration " << iter;

    // After the mutation settles, everyone sees the after-state — including
    // through the cache (stale entries must not survive the publish).
    std::vector<uint32_t> rows;
    ASSERT_TRUE(service.Query(QueryPlan::Leaf(0), &rows).ok());
    EXPECT_EQ(rows, after);
  }
}

// Compaction never changes the effective index, so queries racing it must
// all return the identical result, and the post-compaction snapshot has no
// pending deltas left.
TEST(OverlayRaceTest, QueriesRacingCompactionAllAgree) {
  const Codec& codec = *FindCodec("WAH");
  const uint64_t num_rows = 8192;
  std::vector<std::vector<uint32_t>> lists = {
      RandomSortedList(800, num_rows, TestSeed(0xc0de)),
      RandomSortedList(500, num_rows, TestSeed(0xc0df))};

  ThreadPool pool(3);
  for (int iter = 0; iter < 4; ++iter) {
    auto live = storage::LiveIndex::Wrap(std::make_shared<ShardedIndex>(
        ShardedIndex::Build(codec, lists, num_rows, 2)));
    IndexServiceOptions options;
    options.cache.require_second_touch = false;
    IndexService service(live->Snapshot(), &pool, options);
    live->AttachService(&service);

    ASSERT_TRUE(
        live->Insert(0, RandomSortedList(100, num_rows,
                                         TestSeed(0xc100) + iter)).ok());
    ASSERT_TRUE(
        live->Remove(1, RandomSortedList(60, num_rows,
                                         TestSeed(0xc200) + iter)).ok());
    const QueryPlan plan =
        QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)});
    std::vector<uint32_t> expected;
    ASSERT_TRUE(service.Query(plan, &expected).ok());

    std::atomic<bool> start{false};
    std::atomic<int> divergent{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&] {
        while (!start.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 30; ++i) {
          std::vector<uint32_t> rows;
          if (!service.Query(plan, &rows).ok() || rows != expected) {
            divergent.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    start.store(true, std::memory_order_release);
    ASSERT_TRUE(live->Compact().ok());
    for (std::thread& t : readers) t.join();
    EXPECT_EQ(divergent.load(), 0) << "iteration " << iter;

    const storage::LiveIndexStats stats = live->Stats();
    EXPECT_EQ(stats.compactions, 1u);
    EXPECT_EQ(stats.delta_rows, 0u);
    // The served snapshot is now the compacted base itself — no overlay.
    std::vector<uint32_t> rows;
    ASSERT_TRUE(service.Query(plan, &rows).ok());
    EXPECT_EQ(rows, expected);
  }
}

}  // namespace
}  // namespace intcomp
