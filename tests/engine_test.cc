// Tests for the batch query engine: the work-stealing pool, the batch
// executor's determinism guarantee (1 thread == N threads == serial
// EvaluatePlan, for every codec), stats accounting across re-used pools,
// and a small-query stress run to shake out races. This binary is the one
// the INTCOMP_SANITIZE=thread CI job exercises.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "core/registry.h"
#include "engine/batch_executor.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace intcomp {
namespace {

constexpr size_t kStressThreads = 8;  // the sanitizer job's thread count

struct Workload {
  std::vector<std::vector<uint32_t>> lists;
  std::vector<QueryPlan> plans;
  uint64_t domain = 0;
};

// A mixed AND/OR plan load over one distribution's lists: pairwise ANDs
// with the Table-1 size skew, plus SSB-style (a OR b) AND c shapes.
Workload MakeWorkload(const char* dist, size_t nlists, size_t nplans) {
  Workload w;
  w.domain = 1 << 20;
  for (size_t i = 0; i < nlists; ++i) {
    const size_t n = 200 + 600 * (i % 4);
    const uint64_t seed = 1000 + i;
    if (std::string_view(dist) == "uniform") {
      w.lists.push_back(GenerateUniform(n, w.domain, seed));
    } else if (std::string_view(dist) == "zipf") {
      w.lists.push_back(GenerateZipf(n, w.domain, kPaperZipfSkew, seed));
    } else {
      w.lists.push_back(GenerateMarkov(n, w.domain, kPaperMarkovClustering, seed));
    }
  }
  Prng rng(42);
  for (size_t q = 0; q < nplans; ++q) {
    const size_t a = rng.NextBounded(nlists);
    const size_t b = rng.NextBounded(nlists);
    const size_t c = rng.NextBounded(nlists);
    switch (q % 3) {
      case 0:
        w.plans.push_back(QueryPlan::And({QueryPlan::Leaf(a), QueryPlan::Leaf(b)}));
        break;
      case 1:
        w.plans.push_back(QueryPlan::Or({QueryPlan::Leaf(a), QueryPlan::Leaf(b)}));
        break;
      default:
        w.plans.push_back(QueryPlan::And(
            {QueryPlan::Or({QueryPlan::Leaf(a), QueryPlan::Leaf(b)}),
             QueryPlan::Leaf(c)}));
        break;
    }
  }
  return w;
}

struct EncodedWorkload {
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
};

EncodedWorkload Encode(const Codec& codec, const Workload& w) {
  EncodedWorkload e;
  for (const auto& l : w.lists) {
    e.sets.push_back(codec.Encode(l, w.domain));
    e.ptrs.push_back(e.sets.back().get());
  }
  return e;
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> ran(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&ran, i](size_t) { ran[i].fetch_add(1); });
  }
  pool.Wait();
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeOnce) {
  ThreadPool pool(kStressThreads);
  std::vector<uint32_t> hits(10007, 0);  // one slot per index: no two tasks
                                         // share an index, so plain writes
  pool.ParallelFor(100, 10007, [&](size_t i, size_t) { hits[i] += 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 100 ? 1u : 0u) << "index " << i;
  }
  pool.ParallelFor(5, 5, [&](size_t, size_t) { FAIL() << "empty range ran"; });
}

TEST(ThreadPoolTest, WaitIsReusableAcrossGenerations) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&sum](size_t) { sum.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(sum.load(), static_cast<uint64_t>((round + 1) * 50));
  }
}

TEST(ThreadPoolTest, TasksSeeTheExecutingWorkerIndex) {
  ThreadPool pool(4);
  std::atomic<uint64_t> bad{0};
  pool.ParallelFor(0, 4000, [&](size_t, size_t worker) {
    if (worker >= pool.NumWorkers()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

// ------------------------------------------------------------- determinism

class EngineDeterminismTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(EngineDeterminismTest, BatchMatchesSerialOnEveryDistribution) {
  const Codec& codec = *GetParam();
  for (const char* dist : {"uniform", "zipf", "markov"}) {
    SCOPED_TRACE(dist);
    const Workload w = MakeWorkload(dist, 10, 60);
    const EncodedWorkload e = Encode(codec, w);

    // Serial reference, via the arena-free legacy entry point.
    std::vector<std::vector<uint32_t>> ref;
    ref.reserve(w.plans.size());
    for (const QueryPlan& p : w.plans) {
      ref.push_back(EvaluatePlan(codec, p, e.ptrs));
    }

    for (size_t threads : {size_t{1}, kStressThreads}) {
      SCOPED_TRACE(threads);
      ThreadPool pool(threads);
      BatchExecutor exec(&pool);
      const QueryBatch batch{.codec = &codec, .plans = w.plans, .sets = e.ptrs};
      // Two rounds through the same executor: warm arenas must not change
      // results.
      for (int round = 0; round < 2; ++round) {
        const auto got = exec.Execute(batch);
        ASSERT_EQ(got.size(), ref.size());
        for (size_t q = 0; q < ref.size(); ++q) {
          ASSERT_EQ(got[q], ref[q]) << "query " << q << " round " << round;
        }
      }
    }
  }
}

std::string CodecName(const ::testing::TestParamInfo<const Codec*>& info) {
  std::string name(info.param->Name());
  for (char& c : name) {
    if (c == '*') c = 'S';
  }
  return name;
}

std::vector<const Codec*> AllPlusExtensions() {
  // Shared roster (core/registry.h): paper methods + extensions, so this
  // suite can never drift from the other differential suites.
  return {AllCodecsWithExtensions().begin(), AllCodecsWithExtensions().end()};
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, EngineDeterminismTest,
                         ::testing::ValuesIn(AllPlusExtensions()), CodecName);

// ------------------------------------------------------------------ stress

TEST(EngineStressTest, TenThousandTinyQueries) {
  // 10k near-empty queries: task scheduling dominates the work, which is
  // exactly where submission/steal/quiescence races would surface. Run
  // under INTCOMP_SANITIZE=thread this is the engine's race detector.
  const Codec* codec = FindCodec("Roaring");
  ASSERT_NE(codec, nullptr);
  const uint64_t domain = 1 << 16;
  Prng rng(7);
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < 64; ++i) {
    lists.push_back(RandomSortedList(1 + rng.NextBounded(8), domain, 500 + i));
  }
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (const auto& l : lists) {
    sets.push_back(codec->Encode(l, domain));
    ptrs.push_back(sets.back().get());
  }
  std::vector<QueryPlan> plans;
  plans.reserve(10000);
  for (size_t q = 0; q < 10000; ++q) {
    const size_t a = rng.NextBounded(lists.size());
    const size_t b = rng.NextBounded(lists.size());
    plans.push_back(q % 2 == 0
                        ? QueryPlan::And({QueryPlan::Leaf(a), QueryPlan::Leaf(b)})
                        : QueryPlan::Or({QueryPlan::Leaf(a), QueryPlan::Leaf(b)}));
  }

  ThreadPool pool(kStressThreads);
  BatchExecutor exec(&pool);
  BatchReport report;
  const auto got = exec.Execute({.codec = codec, .plans = plans, .sets = ptrs}, &report);

  ASSERT_EQ(got.size(), plans.size());
  for (size_t q = 0; q < plans.size(); ++q) {
    const auto& a = lists[plans[q].children[0].leaf];
    const auto& b = lists[plans[q].children[1].leaf];
    const auto ref = q % 2 == 0 ? RefIntersect(a, b) : RefUnion(a, b);
    ASSERT_EQ(got[q], ref) << "query " << q;
  }
  EXPECT_EQ(report.Totals().queries, plans.size());
}

// ------------------------------------------------------------ engine stats

TEST(EngineStatsTest, CountersSumAcrossWorkers) {
  const Codec* codec = FindCodec("WAH");
  ASSERT_NE(codec, nullptr);
  const Workload w = MakeWorkload("uniform", 8, 100);
  const EncodedWorkload e = Encode(*codec, w);

  ThreadPool pool(4);
  BatchExecutor exec(&pool);
  BatchReport report;
  const auto results = exec.Execute({.codec = codec, .plans = w.plans, .sets = e.ptrs}, &report);

  ASSERT_EQ(report.NumWorkers(), pool.NumWorkers());
  const WorkerCounters totals = report.Totals();
  EXPECT_EQ(totals.queries, w.plans.size());
  size_t result_ints = 0;
  for (const auto& r : results) result_ints += r.size();
  EXPECT_EQ(totals.result_ints, result_ints);
  uint64_t queries_by_worker = 0;
  for (const auto& c : report.per_worker) queries_by_worker += c.queries;
  EXPECT_EQ(queries_by_worker, totals.queries);
  EXPECT_GT(totals.busy_ns, 0u);
  const std::string table = report.ToString();
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(EngineStatsTest, ReusedPoolDoesNotDoubleCount) {
  // Two consecutive batches through the same pool+executor: each report
  // must hold only its own batch's numbers, and the steal/busy/idle deltas
  // must not accumulate the first batch's totals.
  const Codec* codec = FindCodec("SIMDBP128");
  ASSERT_NE(codec, nullptr);
  const Workload w = MakeWorkload("markov", 8, 80);
  const EncodedWorkload e = Encode(*codec, w);

  ThreadPool pool(4);
  BatchExecutor exec(&pool);
  const QueryBatch batch{.codec = codec, .plans = w.plans, .sets = e.ptrs};
  BatchReport first, second;
  const auto r1 = exec.Execute(batch, &first);
  const auto r2 = exec.Execute(batch, &second);
  ASSERT_EQ(r1, r2);

  EXPECT_EQ(first.Totals().queries, w.plans.size());
  EXPECT_EQ(second.Totals().queries, w.plans.size());
  EXPECT_EQ(second.Totals().result_ints, first.Totals().result_ints);
  // Busy time is per-batch: batch 2's total can't include batch 1's too.
  // (Generous 4x bound — scheduling noise, but not 2-batches-in-one.)
  EXPECT_LT(second.Totals().busy_ns,
            4 * std::max<uint64_t>(first.Totals().busy_ns, 1));

  // The scratch arenas persist across batches, so the buffer population is
  // bounded by workers x plan depth — not by query count. (An exact
  // across-batch equality would be flaky: stealing may hand a different
  // worker the deepest plan on a later run and warm that one arena up.)
  for (int round = 0; round < 10; ++round) exec.Execute(batch, nullptr);
  EXPECT_LE(exec.ScratchBuffers(), pool.NumWorkers() * 8)
      << "scratch buffers scale with queries, not workers: reuse is broken";
}

// ------------------------------------------------------- fault containment

TEST(EvaluatePlanCheckedTest, ValidatesShapeAndMatchesTrustedPath) {
  const Codec& codec = *FindCodec("VB");
  const uint64_t domain = 1 << 16;
  auto la = RandomSortedList(2000, domain, 31);
  auto lb = RandomSortedList(3000, domain, 32);
  auto sa = codec.Encode(la, domain);
  auto sb = codec.Encode(lb, domain);
  std::vector<const CompressedSet*> sets = {sa.get(), sb.get()};

  ScratchArena arena;
  std::vector<uint32_t> out;
  const auto plan =
      QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)});
  ASSERT_TRUE(
      EvaluatePlanChecked(codec, plan, sets, nullptr, &arena, &out).ok());
  EXPECT_EQ(out, EvaluatePlan(codec, plan, sets));

  // Leaf index out of range.
  Status st = EvaluatePlanChecked(codec, QueryPlan::Leaf(7), sets, nullptr,
                                  &arena, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());
  // Null set slot (an image that failed DeserializeChecked upstream).
  std::vector<const CompressedSet*> holed = {sa.get(), nullptr};
  st = EvaluatePlanChecked(
      codec, QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}), holed,
      nullptr, &arena, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Operator nodes with no children.
  st = EvaluatePlanChecked(codec, QueryPlan::And({}), sets, nullptr, &arena,
                           &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  st = EvaluatePlanChecked(codec, QueryPlan::Or({}), sets, nullptr, &arena,
                           &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  // A pre-tripped token cancels before any work.
  CancellationToken cancelled;
  cancelled.Cancel();
  st = EvaluatePlanChecked(codec, plan, sets, &cancelled, &arena, &out);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // An already-elapsed deadline reports kDeadlineExceeded.
  CancellationToken past;
  past.SetDeadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  st = EvaluatePlanChecked(codec, plan, sets, &past, &arena, &out);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultContainmentTest, BadQueriesFailAloneAndHealthyResultsAreIdentical) {
  // One batch holding: healthy queries, a query over a missing (null) set
  // slot — the engine's representation of a set whose byte image failed
  // DeserializeChecked — a query with an already-impossible deadline, and a
  // plan referencing an out-of-range leaf. The batch must complete; each
  // bad query reports its own Status; healthy results are bit-identical to
  // serial EvaluatePlan at 1 and N threads.
  const Codec& codec = *FindCodec("Roaring");
  const uint64_t domain = 1 << 18;
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < 6; ++i) {
    lists.push_back(RandomSortedList(4000 + 700 * i, domain, 600 + i));
  }
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (const auto& l : lists) {
    sets.push_back(codec.Encode(l, domain));
    ptrs.push_back(sets.back().get());
  }
  ptrs.push_back(nullptr);  // slot 6: the corrupt set

  std::vector<QueryPlan> plans;
  plans.push_back(QueryPlan::And({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}));
  plans.push_back(QueryPlan::And({QueryPlan::Leaf(2), QueryPlan::Leaf(6)}));
  plans.push_back(QueryPlan::Or({QueryPlan::Leaf(2), QueryPlan::Leaf(3)}));
  plans.push_back(QueryPlan::And(  // deadline victim (1 ns)
      {QueryPlan::Or({QueryPlan::Leaf(0), QueryPlan::Leaf(1)}),
       QueryPlan::Leaf(4)}));
  plans.push_back(QueryPlan::Leaf(99));  // out of range
  plans.push_back(QueryPlan::And(
      {QueryPlan::Or({QueryPlan::Leaf(4), QueryPlan::Leaf(5)}),
       QueryPlan::Leaf(0)}));
  const std::vector<uint64_t> deadlines = {0, 0, 0, 1, 0, 0};
  const std::vector<size_t> healthy = {0, 2, 5};

  std::vector<std::vector<uint32_t>> ref(plans.size());
  for (size_t q : healthy) ref[q] = EvaluatePlan(codec, plans[q], ptrs);

  EngineStats stats;
  std::vector<std::vector<std::vector<uint32_t>>> per_thread_results;
  for (size_t threads : {size_t{1}, kStressThreads}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    BatchExecutor exec(&pool);
    const QueryBatch batch{.codec = &codec,
                           .plans = plans,
                           .sets = ptrs,
                           .deadlines_ns = deadlines};
    BatchReport report;
    const auto results = exec.Execute(batch, &report);
    ASSERT_EQ(results.size(), plans.size());
    ASSERT_EQ(report.per_query.size(), plans.size());

    for (size_t q : healthy) {
      EXPECT_TRUE(report.per_query[q].ok()) << "query " << q;
      EXPECT_EQ(results[q], ref[q]) << "query " << q;
    }
    EXPECT_EQ(report.per_query[1].code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(report.per_query[3].code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(report.per_query[4].code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(results[1].empty());
    EXPECT_TRUE(results[3].empty());
    EXPECT_TRUE(results[4].empty());

    const WorkerCounters totals = report.Totals();
    EXPECT_EQ(totals.queries, plans.size());
    EXPECT_EQ(totals.ok, healthy.size());
    EXPECT_EQ(totals.rejected, 2u);
    EXPECT_EQ(totals.timed_out, 1u);
    EXPECT_EQ(totals.cancelled, 0u);
    EXPECT_EQ(totals.failed, 0u);
    EXPECT_NE(report.ToString().find("rejected"), std::string::npos);
    stats.Accumulate(report);
    per_thread_results.push_back(results);
  }
  // Bit-identical across thread counts, including the failed slots.
  EXPECT_EQ(per_thread_results[0], per_thread_results[1]);
  EXPECT_EQ(stats.Batches(), 2u);
  EXPECT_EQ(stats.Ok(), 2 * healthy.size());
  EXPECT_EQ(stats.Rejected(), 4u);
  EXPECT_EQ(stats.TimedOut(), 2u);
  EXPECT_EQ(stats.BatchWallNs().Count(), 2u);
  EXPECT_NE(stats.ToString().find("2 batches"), std::string::npos);
}

TEST(FaultContainmentTest, BatchWideCancellationStopsEveryQuery) {
  const Codec& codec = *FindCodec("WAH");
  const Workload w = MakeWorkload("uniform", 8, 64);
  const EncodedWorkload e = Encode(codec, w);
  ThreadPool pool(4);
  BatchExecutor exec(&pool);
  CancellationToken cancel;
  cancel.Cancel();  // tripped before submission, e.g. client disconnected
  BatchReport report;
  const auto results = exec.Execute({.codec = &codec,
                                     .plans = w.plans,
                                     .sets = e.ptrs,
                                     .cancel = &cancel},
                                    &report);
  ASSERT_EQ(report.per_query.size(), w.plans.size());
  for (size_t q = 0; q < w.plans.size(); ++q) {
    EXPECT_EQ(report.per_query[q].code(), StatusCode::kCancelled);
    EXPECT_TRUE(results[q].empty());
  }
  EXPECT_EQ(report.Totals().cancelled, w.plans.size());

  // The same batch without the token runs to completion.
  BatchReport clean;
  exec.Execute({.codec = &codec, .plans = w.plans, .sets = e.ptrs}, &clean);
  EXPECT_EQ(clean.Totals().ok, w.plans.size());
}

TEST(EngineStatsTest, AccumulateRacesSafelyWithReaders) {
  // EngineStats promises lock-free Accumulate concurrent with ToString and
  // every accessor. This binary is the INTCOMP_SANITIZE=thread CI job, so
  // hammering the two sides here is the proof of that contract.
  BatchReport report;
  report.per_worker.assign(2, WorkerCounters{});
  report.per_worker[0].queries = 3;
  report.per_worker[0].result_ints = 10;
  report.per_worker[0].ok = 2;
  report.per_worker[0].rejected = 1;
  report.per_worker[0].kernels.simd_merge = 5;
  report.per_worker[1].queries = 1;
  report.per_worker[1].ok = 1;
  report.per_worker[1].kernels.block_probes = 2;
  report.wall_ms = 0.25;

  EngineStats stats;
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kRounds = 250;
  std::atomic<uint64_t> sink{0};  // keep reader results observable
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) stats.Accumulate(report);
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        sink.fetch_add(stats.ToString().size() + stats.Ok() +
                       stats.Kernels().simd_merge +
                       stats.BatchWallNs().P99());
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t n = kWriters * kRounds;
  EXPECT_EQ(stats.Batches(), n);
  EXPECT_EQ(stats.Queries(), 4 * n);
  EXPECT_EQ(stats.ResultInts(), 10 * n);
  EXPECT_EQ(stats.Ok(), 3 * n);
  EXPECT_EQ(stats.Rejected(), n);
  EXPECT_EQ(stats.Kernels().simd_merge, 5 * n);
  EXPECT_EQ(stats.Kernels().block_probes, 2 * n);
  EXPECT_EQ(stats.BatchWallNs().Count(), n);
  EXPECT_GT(sink.load(), 0u);
}

TEST(EngineStatsTest, QueryProfileCapturesWorkShape) {
  // PforDelta is a blocked codec: the 3-leaf ANDs push their SvS tail
  // through the skip cursor, so the profile must see block traffic, and the
  // plain-leaf decodes feed bytes_decoded.
  const Codec* codec = FindCodec("PforDelta");
  ASSERT_NE(codec, nullptr);
  const uint64_t domain = 1 << 20;
  std::vector<std::vector<uint32_t>> lists;
  for (size_t i = 0; i < 6; ++i) {
    lists.push_back(RandomSortedList(5000 + 3000 * i, domain, 900 + i));
  }
  std::vector<std::unique_ptr<CompressedSet>> sets;
  std::vector<const CompressedSet*> ptrs;
  for (const auto& l : lists) {
    sets.push_back(codec->Encode(l, domain));
    ptrs.push_back(sets.back().get());
  }
  std::vector<QueryPlan> plans;
  constexpr size_t kAnd3 = 12;
  constexpr size_t kLeafQ = 4;
  Prng rng(5);
  for (size_t q = 0; q < kAnd3; ++q) {
    plans.push_back(QueryPlan::And({QueryPlan::Leaf(rng.NextBounded(6)),
                                    QueryPlan::Leaf(rng.NextBounded(6)),
                                    QueryPlan::Leaf(rng.NextBounded(6))}));
  }
  for (size_t q = 0; q < kLeafQ; ++q) {
    plans.push_back(QueryPlan::Leaf(q));
  }

  ThreadPool pool(4);
  BatchExecutor exec(&pool);
  BatchReport report;
  exec.Execute({.codec = codec, .plans = plans, .sets = ptrs}, &report);

  const QueryProfile p = report.Profile();
  EXPECT_EQ(p.queries, plans.size());
  EXPECT_EQ(p.ok, plans.size());
  EXPECT_EQ(p.lists_touched, 3 * kAnd3 + kLeafQ);
  EXPECT_GT(p.bytes_decoded, 0u);
  EXPECT_GT(p.blocks_loaded, 0u);
  EXPECT_GE(p.SkipHitRate(), 0.0);
  EXPECT_LE(p.SkipHitRate(), 1.0);
  EXPECT_NE(p.dominant_kernel, "none");
  EXPECT_GT(p.wall_ms, 0.0);
  const std::string line = p.ToString();
  EXPECT_NE(line.find("queries"), std::string::npos);
  EXPECT_NE(line.find("skip-hit"), std::string::npos);
  // The empty profile keeps the rate well-defined.
  EXPECT_EQ(QueryProfile{}.SkipHitRate(), 0.0);
}

TEST(ObservabilityTest, TracingAndMetricsDoNotPerturbResults) {
  // The determinism guarantee must survive observability: sampled tracing
  // plus the metrics registry enabled, at 1 and N threads, bit-identical to
  // the reference computed with everything off.
  const Codec* codec = FindCodec("PforDelta");
  ASSERT_NE(codec, nullptr);
  const Workload w = MakeWorkload("zipf", 10, 60);
  const EncodedWorkload e = Encode(*codec, w);

  obs::SetTraceSampling(0);
  obs::MetricsRegistry::Global().SetEnabled(false);
  std::vector<std::vector<uint32_t>> ref;
  ref.reserve(w.plans.size());
  for (const QueryPlan& p : w.plans) {
    ref.push_back(EvaluatePlan(*codec, p, e.ptrs));
  }

  obs::SetTraceSeed(42);
  obs::SetTraceSampling(4);
  obs::MetricsRegistry::Global().Reset();
  obs::MetricsRegistry::Global().SetEnabled(true);
  for (size_t threads : {size_t{1}, kStressThreads}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    BatchExecutor exec(&pool);
    const auto got =
        exec.Execute({.codec = codec, .plans = w.plans, .sets = e.ptrs});
    ASSERT_EQ(got.size(), ref.size());
    for (size_t q = 0; q < ref.size(); ++q) {
      ASSERT_EQ(got[q], ref[q]) << "query " << q;
    }
  }
  // One more run with every root sampled: still bit-identical, and now the
  // rings are guaranteed to hold spans (at 1/4 both batch roots may lose
  // the sampling draw).
  obs::SetTraceSampling(1);
  {
    ThreadPool pool(kStressThreads);
    BatchExecutor exec(&pool);
    const auto got =
        exec.Execute({.codec = codec, .plans = w.plans, .sets = e.ptrs});
    ASSERT_EQ(got.size(), ref.size());
    for (size_t q = 0; q < ref.size(); ++q) {
      ASSERT_EQ(got[q], ref[q]) << "query " << q;
    }
  }
  // The instrumented runs actually recorded: per-codec query latencies in
  // the registry and spans in the rings.
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .OpLatency(codec->Name(), obs::OpKind::kQuery)
                ->Count(),
            3 * w.plans.size());
  obs::SetTraceSampling(0);  // quiesce before reading the rings
  EXPECT_FALSE(obs::SnapshotSpans().empty());
  obs::ClearSpans();
  obs::MetricsRegistry::Global().SetEnabled(false);
  obs::MetricsRegistry::Global().Reset();
}

TEST(EngineStatsTest, BusyFractionIsBounded) {
  BatchReport r;
  r.per_worker.assign(2, WorkerCounters{});
  EXPECT_EQ(r.BusyFraction(), 0.0);
  r.per_worker[0].busy_ns = 300;
  r.per_worker[1].idle_ns = 100;
  EXPECT_DOUBLE_EQ(r.BusyFraction(), 0.75);
  WorkerCounters sum = r.Totals();
  EXPECT_EQ(sum.busy_ns, 300u);
  EXPECT_EQ(sum.idle_ns, 100u);
}

}  // namespace
}  // namespace intcomp
